//! Offline stand-in for the `serde_json` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset the bench reports use: [`Value`], the [`json!`] macro,
//! [`Map`], [`to_string_pretty`], [`from_str`], and indexing
//! (`value["key"] = ...`). There is no serde derive integration — the
//! benches construct, print, and (for the perf gate's committed
//! thresholds) re-read untyped [`Value`] trees. Object keys are stored in
//! a `BTreeMap`, so output key order is sorted rather than
//! insertion-ordered; JSON object order carries no meaning, and nothing
//! downstream depends on it.

// Vendored stand-in, not a production decode/serving path: its
// internal serializer plumbing panics by documented contract, so the
// workspace-wide unwrap/expect wall is relaxed here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Index, IndexMut};

/// JSON object representation (sorted keys).
pub type Map = BTreeMap<String, Value>;

/// A JSON number: one of the three wire shapes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A finite or non-finite double (non-finite prints as `null`).
    Float(f64),
}

impl Number {
    /// The number as an `f64` (always possible, possibly lossy).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            // {:?} keeps a trailing ".0" on integral floats, matching
            // upstream serde_json output.
            Number::Float(v) if v.is_finite() => write!(f, "{v:?}"),
            Number::Float(_) => write!(f, "null"),
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;

    /// Missing keys read as `Null`, like upstream.
    ///
    /// # Panics
    ///
    /// Panics when indexing into a non-object.
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(map) => map.get(key).unwrap_or(&NULL),
            other => panic!("cannot index non-object JSON value {other:?} with {key:?}"),
        }
    }
}

impl IndexMut<&str> for Value {
    /// Assigning to a missing key inserts it (auto-vivification).
    ///
    /// # Panics
    ///
    /// Panics when indexing into a non-object.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        match self {
            Value::Object(map) => map.entry(key.to_string()).or_insert(Value::Null),
            other => panic!("cannot index non-object JSON value {other:?} with {key:?}"),
        }
    }
}

impl Index<String> for Value {
    type Output = Value;

    fn index(&self, key: String) -> &Value {
        &self[key.as_str()]
    }
}

impl IndexMut<String> for Value {
    fn index_mut(&mut self, key: String) -> &mut Value {
        match self {
            Value::Object(map) => map.entry(key).or_insert(Value::Null),
            other => panic!("cannot index non-object JSON value {other:?} with {key:?}"),
        }
    }
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::PosInt(v as u64))
            }
        }
    )*};
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v as i64))
                }
            }
        }
    )*};
}

from_unsigned!(u8, u16, u32, u64, usize);
from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::Float(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl From<Map> for Value {
    fn from(v: Map) -> Value {
        Value::Object(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

/// Builds a [`Value`] from a `{ "key": expr, ... }` object literal, a
/// `[ expr, ... ]` array literal, `null`, or any expression convertible
/// via [`From`].
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ({ $($k:literal : $v:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $(map.insert(($k).to_string(), $crate::Value::from($v));)*
        $crate::Value::Object(map)
    }};
    ([ $($v:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![$($crate::Value::from($v)),*])
    };
    ($other:expr) => {
        $crate::Value::from($other)
    };
}

/// Serialization or parse error. The shim writer is infallible (the
/// `Result`-shaped API matches upstream); [`from_str`] produces errors
/// carrying a message and byte offset.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn parse(pos: usize, msg: &str) -> Self {
        Error { msg: format!("{msg} at byte {pos}") }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: usize, pretty: bool) {
    const STEP: usize = 2;
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&" ".repeat(indent + STEP));
                }
                write_value(out, item, indent + STEP, pretty);
            }
            if pretty {
                out.push('\n');
                out.push_str(&" ".repeat(indent));
            }
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&" ".repeat(indent + STEP));
                }
                escape_into(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, item, indent + STEP, pretty);
            }
            if pretty {
                out.push('\n');
                out.push_str(&" ".repeat(indent));
            }
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(self.pos, what))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::parse(self.pos, "invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::parse(self.pos, "expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected '{'")?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::parse(self.pos, "expected ',' or '}'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let s = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| Error::parse(self.pos, "truncated \\u escape"))?;
        let v = u32::from_str_radix(s, 16)
            .map_err(|_| Error::parse(self.pos, "invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::parse(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::parse(self.pos, "truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let mut code = self.hex4()?;
                            // Surrogate pair: combine with the low half.
                            if (0xD800..0xDC00).contains(&code)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                let save = self.pos;
                                self.pos += 2;
                                let low = self.hex4()?;
                                if (0xDC00..0xE000).contains(&low) {
                                    code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                } else {
                                    self.pos = save;
                                }
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(Error::parse(self.pos, "unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::parse(self.pos, "invalid UTF-8"))?;
                    let c = s.chars().next().unwrap_or('\u{FFFD}');
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse(start, "invalid number"))?;
        let num = if float {
            Number::Float(
                text.parse::<f64>().map_err(|_| Error::parse(start, "invalid number"))?,
            )
        } else if let Ok(v) = text.parse::<u64>() {
            Number::PosInt(v)
        } else {
            Number::NegInt(
                text.parse::<i64>().map_err(|_| Error::parse(start, "invalid number"))?,
            )
        };
        Ok(Value::Number(num))
    }
}

/// Parses a JSON document into an untyped [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] (with a byte offset) on malformed input or trailing
/// non-whitespace data.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse(p.pos, "trailing data"));
    }
    Ok(v)
}

/// Compact single-line serialization.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, 0, false);
    Ok(out)
}

/// Two-space-indented serialization, matching upstream's layout.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, 0, true);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({
            "name": "iiu",
            "cores": 8u32,
            "speedup": 13.5,
            "nested": vec![json!(1u32), json!(2u32)],
        });
        assert_eq!(v["name"].as_str(), Some("iiu"));
        assert_eq!(v["cores"].as_u64(), Some(8));
        assert_eq!(v["speedup"].as_f64(), Some(13.5));
        assert_eq!(v["nested"].as_array().map(Vec::len), Some(2));
        assert_eq!(v["missing"], Value::Null);
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!([1u32, 2u32]).as_array().map(Vec::len), Some(2));
    }

    #[test]
    fn index_assign_auto_inserts() {
        let mut v = json!({ "a": 1u32 });
        v["b"] = json!(2u32);
        v[format!("c{}", 3)] = json!(3u32);
        assert_eq!(v["b"].as_u64(), Some(2));
        assert_eq!(v["c3"].as_u64(), Some(3));
    }

    #[test]
    fn pretty_output_is_stable() {
        let v = json!({ "b": vec![json!(1u32)], "a": "x\"y" });
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": \"x\\\"y\",\n  \"b\": [\n    1\n  ]\n}");
        let c = to_string(&v).unwrap();
        assert_eq!(c, "{\"a\":\"x\\\"y\",\"b\":[1]}");
    }

    #[test]
    fn from_str_round_trips_writer_output() {
        let v = json!({
            "name": "iiu \"quoted\"\n",
            "widths": vec![json!(1u32), json!(32u32)],
            "min_ns": 12.5,
            "neg": -3i64,
            "ok": true,
            "none": json!(null),
        });
        let parsed = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(parsed, v);
        let parsed = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn from_str_parses_common_shapes() {
        assert_eq!(from_str("  null ").unwrap(), Value::Null);
        assert_eq!(from_str("[1, 2.5e1, -3]").unwrap(), json!([1u64, 25.0, -3i64]));
        assert_eq!(from_str("\"a\\u0041\\ud83d\\ude00b\"").unwrap(), json!("aA\u{1F600}b"));
        assert_eq!(from_str("{}").unwrap(), Value::Object(Map::new()));
        let nested = from_str("{\"a\": {\"b\": [true, false]}}").unwrap();
        assert_eq!(nested["a"]["b"].as_array().map(Vec::len), Some(2));
    }

    #[test]
    fn from_str_rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated", "nan"] {
            assert!(from_str(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn number_display_shapes() {
        assert_eq!(json!(3.0f64).as_f64(), Some(3.0));
        assert_eq!(to_string(&json!(3.0f64)).unwrap(), "3.0");
        assert_eq!(to_string(&json!(7u64)).unwrap(), "7");
        assert_eq!(to_string(&json!(-7i64)).unwrap(), "-7");
        assert_eq!(to_string(&json!(f64::NAN)).unwrap(), "null");
        let m: Map = Map::new();
        assert_eq!(to_string(&Value::from(m)).unwrap(), "{}");
    }
}
