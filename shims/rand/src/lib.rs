//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the *interface subset* it actually uses — `StdRng`, `SeedableRng`, and
//! `Rng::{gen_range, gen_bool}` — over a xoshiro256++ generator seeded
//! through SplitMix64 (the same construction the upstream `rand_chacha`-
//! less small RNGs use). Everything is deterministic per seed, which is
//! all the workloads and tests require; no claim of statistical parity
//! with upstream `StdRng` is made, and none of the callers depend on the
//! exact stream.

// Vendored stand-in, not a production decode/serving path: its
// internal RNG plumbing panics by documented contract, so the
// workspace-wide unwrap/expect wall is relaxed here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::ops::{Range, RangeInclusive};

/// A source of pseudo-random 64-bit words.
pub trait RngCore {
    /// The next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 pseudo-random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let v = self.start + unit * (self.end - self.start);
                // Guard the open upper bound against rounding.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `0.0..=1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic per seed, `Clone`-able, and fast.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..32).all(|_| a.gen_range(0u64..u64::MAX) == c.gen_range(0u64..u64::MAX));
        assert!(!same, "different seeds must diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let v = rng.gen_range(5u64..=5);
            assert_eq!(v, 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((0.27..0.33).contains(&frac), "got {frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn full_width_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(2);
        // Must not panic or divide by zero.
        let _ = rng.gen_range(0u8..=u8::MAX);
        let _ = rng.gen_range(0u64..=u64::MAX);
    }
}
