//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the strategy/macro subset its tests actually use: the [`proptest!`]
//! macro, `prop_assert*`, [`prop_oneof!`], [`Just`], range and tuple
//! strategies, a regex-lite string strategy, `collection::{vec, btree_set,
//! btree_map}`, `prop_map`/`prop_recursive`, and [`ProptestConfig`].
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs (`Debug`) and the
//!   deterministic per-test seed instead of a minimized counterexample.
//! * **Deterministic streams.** Each test's RNG is seeded from its name,
//!   so failures reproduce without a regression file; the
//!   `proptest-regressions/` files upstream writes are ignored.
//! * **Smaller default case count** (64) to keep `cargo test -q` fast.

// Vendored stand-in, not a production decode/serving path: its
// internal test harness panics by documented contract, so the
// workspace-wide unwrap/expect wall is relaxed here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// Deterministic test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary byte string (the test name).
    pub fn from_name(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A failed test case (what `prop_assert*` returns).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        U: fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        MapStrategy { inner: self, f }
    }

    /// Builds a recursive strategy: values are either from `self` (the
    /// leaves) or from `recurse` applied to the previous layer, nested at
    /// most `depth` levels. The `_desired_size`/`_expected_branch_size`
    /// tuning knobs of upstream proptest are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut layer = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(layer).boxed();
            // Lean toward leaves so expected tree size stays bounded.
            layer = Union::new(vec![(2, leaf.clone()), (3, deeper)]).boxed();
        }
        layer
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    U: fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<T>(Arc<dyn StrategyObj<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

trait StrategyObj<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> StrategyObj<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between strategies of one value type ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|&(w, _)| u64::from(w)).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone(), total: self.total }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < u64::from(*w) {
                return s.sample(rng);
            }
            pick -= u64::from(*w);
        }
        self.arms[self.arms.len() - 1].1.sample(rng)
    }
}

// --- ranges ----------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((u128::from(rng.next_u64()) % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((u128::from(rng.next_u64()) % span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

// --- tuples ----------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

// --- regex-lite string strategy --------------------------------------------

#[derive(Debug, Clone)]
enum CharSet {
    /// Inclusive character ranges, e.g. `[a-z0-9_]`.
    Classes(Vec<(char, char)>),
    /// `.` — printable ASCII.
    Any,
}

impl CharSet {
    fn draw(&self, rng: &mut TestRng) -> char {
        match self {
            CharSet::Any => char::from(rng.below(95) as u8 + 0x20),
            CharSet::Classes(ranges) => {
                let total: u64 =
                    ranges.iter().map(|&(a, b)| (b as u64) - (a as u64) + 1).sum();
                let mut pick = rng.below(total);
                for &(a, b) in ranges {
                    let span = (b as u64) - (a as u64) + 1;
                    if pick < span {
                        return char::from_u32(a as u32 + pick as u32).unwrap_or(a);
                    }
                    pick -= span;
                }
                ranges[0].0
            }
        }
    }
}

#[derive(Debug, Clone)]
struct PatternPiece {
    set: CharSet,
    min: u32,
    max: u32,
}

/// Parses the regex subset the workspace's string strategies use:
/// literal characters, `[...]` classes of chars and ranges, `.`, and
/// quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (the last two capped at 8).
fn parse_pattern(pattern: &str) -> Vec<PatternPiece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '.' => {
                i += 1;
                CharSet::Any
            }
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let mut ranges = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        ranges.push((chars[j], chars[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((chars[j], chars[j]));
                        j += 1;
                    }
                }
                i = close + 1;
                CharSet::Classes(ranges)
            }
            '\\' => {
                i += 2;
                CharSet::Classes(vec![(chars[i - 1], chars[i - 1])])
            }
            c => {
                i += 1;
                CharSet::Classes(vec![(c, c)])
            }
        };
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad quantifier"),
                        n.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n: u32 = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        pieces.push(PatternPiece { set, min, max });
    }
    pieces
}

impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let n = piece.min + rng.below(u64::from(piece.max - piece.min + 1)) as u32;
            for _ in 0..n {
                out.push(piece.set.draw(rng));
            }
        }
        out
    }
}

// --- collections -----------------------------------------------------------

/// A size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { min: r.start, max: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

/// Collection strategies (`proptest::collection::*`).
pub mod collection {
    use super::*;

    /// `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// `BTreeSet` of values from `element`; sizes that dedup cannot reach
    /// are clipped rather than looped on forever.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// `BTreeMap` with keys from `key` and values from `value`.
    pub fn btree_map<K, V>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    /// Strategy produced by [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.min + rng.below((self.size.max - self.size.min) as u64) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy produced by [`btree_set`].
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.min + rng.below((self.size.max - self.size.min) as u64) as usize;
            let mut out = BTreeSet::new();
            for _ in 0..n.saturating_mul(16) {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }
    }

    /// Strategy produced by [`btree_map`].
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.min + rng.below((self.size.max - self.size.min) as u64) as usize;
            let mut out = BTreeMap::new();
            for _ in 0..n.saturating_mul(16) {
                if out.len() >= n {
                    break;
                }
                out.insert(self.key.sample(rng), self.value.sample(rng));
            }
            out
        }
    }
}

/// Numeric "any value" strategies (`proptest::num::*::ANY`).
pub mod num {
    macro_rules! any_mod {
        ($($m:ident : $t:ty),*) => {$(
            /// `ANY` strategy for the corresponding primitive.
            pub mod $m {
                /// Every value of the type, uniformly.
                pub const ANY: ::std::ops::RangeInclusive<$t> = <$t>::MIN..=<$t>::MAX;
            }
        )*};
    }
    any_mod!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize, i32: i32, i64: i64);
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// `assert!` that fails the current case instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that fails the current case instead of panicking outright.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {:?} != {:?}", a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {:?} != {:?} — {}", a, b, format!($($fmt)*)
        );
    }};
}

/// Declares property tests: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` that samples its inputs [`ProptestConfig::cases`]
/// times and runs the body against each sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..cfg.cases {
                    // Sampled into a tuple first so the inputs can be
                    // rendered for the failure message even when a binding
                    // pattern (`mut x`) is not an expression, and even when
                    // the body moves the values.
                    let sampled = ($($crate::Strategy::sample(&($strat), &mut rng),)*);
                    let rendered_inputs = format!("{sampled:?}");
                    let ($($arg,)*) = sampled;
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{} with inputs {}: {}",
                            stringify!($name),
                            case + 1,
                            cfg.cases,
                            rendered_inputs,
                            e,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// The glob import test modules use.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
    /// Upstream re-exports strategies under `prop::`; mirror the alias.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    proptest! {
        #[test]
        fn ranges_sample_in_bounds(x in 3u32..17, y in 1usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0u8..255, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn btree_set_is_deduped(s in crate::collection::btree_set(0u32..50, 1..20)) {
            prop_assert!(!s.is_empty() && s.len() < 20);
        }

        #[test]
        fn string_pattern_shape(s in "[a-c][a-c0-9]{0,3}") {
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.chars().next().map(|c| ('a'..='c').contains(&c)).unwrap_or(false));
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u32), Just(2), Just(3)]) {
            prop_assert!([1, 2, 3].contains(&v));
        }

        #[test]
        fn oneof_weighted(v in prop_oneof![9 => Just(1u32), 1 => Just(2)]) {
            prop_assert!(v == 1 || v == 2);
        }

        #[test]
        fn tuples_and_prop_map(p in (0u8..4, 0u8..4).prop_map(|(a, b)| (b, a))) {
            prop_assert!(p.0 < 4 && p.1 < 4);
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(v) => usize::from(*v < 16),
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u8..16).prop_map(Tree::Leaf).prop_recursive(4, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::from_name("recursive_strategy_terminates");
        let mut seen_node = false;
        for _ in 0..64 {
            let t = strat.sample(&mut rng);
            assert!(depth(&t) <= 5);
            seen_node |= matches!(t, Tree::Node(_, _));
        }
        assert!(seen_node, "recursion should produce internal nodes");
    }

    #[test]
    fn config_controls_case_count() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static RUNS: AtomicU32 = AtomicU32::new(0);
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(7))]
            fn counted(_x in 0u8..10) {
                RUNS.fetch_add(1, Ordering::Relaxed);
            }
        }
        counted();
        assert_eq!(RUNS.load(Ordering::Relaxed), 7);
    }
}
