#!/usr/bin/env sh
# Full verification gate: build, tests, and the no-panic lint wall.
#
# The clippy pass denies unwrap()/expect() across the workspace. Crates
# whose internals legitimately panic (simulator queue plumbing, the bench
# harness, the baseline) opt back out with a crate-root
# `#![allow(clippy::unwrap_used, clippy::expect_used)]`; the hardened
# index modules (io, checksum, faultinject, block decode paths) re-deny
# via `#![cfg_attr(not(test), deny(...))]` so a panicking call cannot
# sneak back into the load path.
set -eu

cargo build --release
cargo test -q
cargo clippy --workspace -- -D clippy::unwrap_used -D clippy::expect_used

echo "verify: OK"
