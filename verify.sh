#!/usr/bin/env sh
# Full verification gate: build, tests, the fault-injected serving soak,
# the no-panic lint wall, and the hot-path decode, shard-scaling, mmap
# storage, and serve tail-latency perf gates.
#
# Usage: ./verify.sh [--quick]
#   --quick  skip the perf gates (the slowest steps; use while
#            iterating on functional changes).
#
# The clippy pass denies unwrap()/expect() across the workspace. Crates
# whose internals legitimately panic (simulator queue plumbing, the bench
# harness) opt back out with a crate-root
# `#![allow(clippy::unwrap_used, clippy::expect_used)]`; the hardened
# crates (iiu-codecs decode paths, iiu-index
# io/checksum/faultinject/bounds and the whole incremental write path
# (wal/memtable/segment/recovery/incremental), all of iiu-baseline
# including the supervised shard pool, all of iiu-serve, the iiu-bench
# library, and iiu-workloads) re-deny via
# `#![cfg_attr(not(test), deny(...))]` so a panicking call cannot sneak
# back into an untrusted-input or serving path. The second clippy line
# keeps iiu-serve, iiu-baseline, iiu-codecs, iiu-workloads and
# iiu-bench honest even if the workspace-wide wall is ever relaxed.
set -eu

quick=0
for arg in "$@"; do
    case "$arg" in
        --quick) quick=1 ;;
        *) echo "usage: $0 [--quick]" >&2; exit 2 ;;
    esac
done

cargo build --release --workspace
cargo test -q --workspace

# Pruned top-k equivalence (DESIGN.md §13): release-mode run of the
# property suite proving block-max pruned search is bit-identical to
# exhaustive scoring across query shapes, k values, and engines.
cargo test --release --test topk_equivalence -q

# Sharded-search equivalence (DESIGN.md §14): release-mode proof that the
# document-sharded engine returns bit-identical hits (score and docID
# order) to the unsharded engine across shard counts and query shapes,
# including under the cross-shard shared threshold.
cargo test --release --test shard_equivalence -q

# Acceptance soak for the resilient serving layer (DESIGN.md §10): 10k
# queries open-loop at 2x the measured sustainable rate with injected
# stalls, an all-fail burst, and injected panics. Release mode, ~30s
# budget (typically far less); exact outcome accounting, a breaker
# trip+recovery, and zero worker deaths are asserted inside.
cargo test --release --test soak -q

# Shard-level chaos campaign (DESIGN.md §15): 10k queries forced onto the
# sharded CPU path while shard workers are panicked (randomly and in a
# quarantine-tripping burst), stalled past the pool deadline, and killed
# mid-stream. Asserts total availability, truthful
# Degradation::ShardsUnavailable labeling, bit-identical surviving-shard
# hits against an unsharded reference, and quarantine trip + half-open
# recovery + worker respawn. Skipped under --quick (the heaviest soak).
if [ "$quick" -eq 0 ]; then
    cargo test --release --test shard_chaos -q
else
    echo "verify: --quick set, skipping shard chaos campaign"
fi

# Torn-write recovery campaign (DESIGN.md §16): 1,200 randomized
# crash-and-recover trials over the incremental write path (torn WAL
# tails, garbage appends, stale temp segments, deleted and stale WALs),
# plus typed-error checks for unrecoverable damage and a
# write-while-serving soak. Zero panics, zero hangs, and bit-identical
# post-recovery search are asserted inside. Skipped under --quick.
if [ "$quick" -eq 0 ]; then
    cargo test --release --test recovery_chaos -q
else
    echo "verify: --quick set, skipping torn-write recovery campaign"
fi

# Incremental-equivalence gate (DESIGN.md §16): the 60k-doc CC-News-like
# corpus grown through randomized batches, auto-seals, merges and 8
# injected crash/reopen events must be bit-identical to the one-shot
# build — full index equality plus hit-for-hit agreement on single-term,
# AND and OR queries. Skipped under --quick.
if [ "$quick" -eq 0 ]; then
    cargo test --release --test incremental_equivalence -q
else
    echo "verify: --quick set, skipping incremental equivalence gate"
fi

cargo clippy --workspace -- -D clippy::unwrap_used -D clippy::expect_used
cargo clippy -p iiu-serve -p iiu-baseline -p iiu-codecs -p iiu-workloads -p iiu-bench -- -D clippy::unwrap_used -D clippy::expect_used

# Decode perf gate + codec shootout (DESIGN.md §11, §13, §18):
# re-measures the unpack kernels, end-to-end query throughput,
# pruned-vs-exhaustive top-k, and per-codec block decode (bitpack,
# stream-vbyte, simdbp128 over the same blocks), rewrites
# BENCH_decode.json, and fails if any gated min_ns exceeds the committed
# baseline by more than the fail_above_ratio in
# BENCH_decode_thresholds.json, if pruning stops skipping blocks, if the
# single-term k=10 pruning gain drops below 1.5x, if simdbp128 stops
# strictly beating the scalar word-window bitpack baseline at
# equal-or-better compression, or if any codec's shootout bits/posting
# exceeds its committed max_bits_per_posting. Regenerate baselines (only
# after an intentional perf change, on a quiet machine) with:
#   cargo run --release -p iiu-bench --bin decode_bench -- \
#     --write-thresholds BENCH_decode_thresholds.json
# Under --quick, only the one-block-per-codec decode bit-identity smoke
# runs (no timing).
if [ "$quick" -eq 0 ]; then
    cargo run --release -p iiu-bench --bin decode_bench -- \
        --check BENCH_decode_thresholds.json
else
    echo "verify: --quick set, running codec decode smoke instead of perf gate"
    cargo run --release -p iiu-bench --bin decode_bench -- --smoke
fi

# Shard scaling gate (DESIGN.md §14): re-measures document-sharded vs
# unsharded pruned top-k on the 60k-doc corpus, rewrites BENCH_shard.json,
# and fails if a gated wall min_ns regresses past the committed baseline,
# if the 4-shard single-term k=10 modeled QPS gain drops below 2.5x, or
# if per-shard pruning stops skipping blocks. Regenerate baselines with:
#   cargo run --release -p iiu-bench --bin shard_bench -- \
#     --write-thresholds BENCH_shard_thresholds.json
if [ "$quick" -eq 0 ]; then
    cargo run --release -p iiu-bench --bin shard_bench -- \
        --check BENCH_shard_thresholds.json
else
    echo "verify: --quick set, skipping shard scaling gate"
fi

# Mmap storage gate (DESIGN.md §19): loads the same corpus heap-side and
# through the zero-copy mapped loader, proves the sources interchangeable
# (equal indexes, bit-identical pruned hits per query shape), times warm
# mapped block decode and end-to-end queries against in-RAM (within-run
# max_warm_ratio plus committed min_ns baselines), reports an advisory
# cold-cache sweep, and re-execs itself to stream a 1M-doc corpus to disk
# and serve it through a fresh mapping — failing if that child's peak RSS
# exceeds the committed rss_max_kb. Rewrites BENCH_mmap.json. Regenerate
# baselines with:
#   cargo run --release -p iiu-bench --bin mmap_bench -- \
#     --write-thresholds BENCH_mmap_thresholds.json
# Under --quick, only the source-equivalence smoke runs (no timing, no
# RSS child).
if [ "$quick" -eq 0 ]; then
    cargo run --release -p iiu-bench --bin mmap_bench -- \
        --check BENCH_mmap_thresholds.json
else
    echo "verify: --quick set, running mmap source-equivalence smoke instead of perf gate"
    cargo run --release -p iiu-bench --bin mmap_bench -- --smoke
fi

# Serve tail-latency gate (DESIGN.md §17): offers the same 100k-query
# Zipf-skewed stream to the serving layer twice at equal offered load —
# fixed topology (every query fans out) vs the hybrid inter/intra-query
# scheduler — with the device path sabotaged so everything runs the
# sharded CPU path. Proves the two modes' hit streams bit-identical,
# rewrites BENCH_serve.json, and fails unless the hybrid p99 is strictly
# below the fixed p99, both routes were exercised, and the committed
# end-to-end latency ceilings hold. Regenerate baselines with:
#   cargo run --release -p iiu-bench --bin serve_bench -- \
#     --write-thresholds BENCH_serve_thresholds.json
if [ "$quick" -eq 0 ]; then
    cargo run --release -p iiu-bench --bin serve_bench -- \
        --check BENCH_serve_thresholds.json
else
    echo "verify: --quick set, skipping serve tail-latency gate"
fi

echo "verify: OK"
