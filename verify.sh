#!/usr/bin/env sh
# Full verification gate: build, tests, the fault-injected serving soak,
# and the no-panic lint wall.
#
# The clippy pass denies unwrap()/expect() across the workspace. Crates
# whose internals legitimately panic (simulator queue plumbing, the bench
# harness, the baseline) opt back out with a crate-root
# `#![allow(clippy::unwrap_used, clippy::expect_used)]`; the hardened
# crates (iiu-codecs decode paths, iiu-index io/checksum/faultinject, and
# all of iiu-serve) re-deny via `#![cfg_attr(not(test), deny(...))]` so a
# panicking call cannot sneak back into an untrusted-input or serving
# path. The second clippy line keeps iiu-serve and iiu-codecs honest even
# if the workspace-wide wall is ever relaxed.
set -eu

cargo build --release --workspace
cargo test -q --workspace

# Acceptance soak for the resilient serving layer (DESIGN.md §10): 10k
# queries open-loop at 2x the measured sustainable rate with injected
# stalls, an all-fail burst, and injected panics. Release mode, ~30s
# budget (typically far less); exact outcome accounting, a breaker
# trip+recovery, and zero worker deaths are asserted inside.
cargo test --release --test soak -q

cargo clippy --workspace -- -D clippy::unwrap_used -D clippy::expect_used
cargo clippy -p iiu-serve -p iiu-codecs -- -D clippy::unwrap_used -D clippy::expect_used

echo "verify: OK"
