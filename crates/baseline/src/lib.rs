//! The software baseline: a Lucene-like search engine over the IIU index
//! format, with a calibrated CPU cost model.
//!
//! The paper compares IIU against Apache Lucene on an i7-7820X, profiled
//! with VTune at 70–100 instructions per docID (§1), with decompression
//! taking >40% of query time (Fig. 1). This crate reimplements the
//! baseline's query processing — block-wise decompression, SvS
//! intersection over skip lists, linear-merge union, BM25 scoring and
//! heap-based top-k — and *counts operations* as it goes. A
//! [`cost::CpuCostModel`] calibrated to the paper's profiling numbers then
//! converts operation counts into nanoseconds, so the baseline and the
//! cycle-level IIU simulator live in the same deterministic time domain
//! (see DESIGN.md §2 for why this substitution preserves the paper's
//! comparisons).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cost;
pub mod engine;
pub mod ops;
pub mod pruned;
pub mod sharded;
pub mod throughput;
pub mod topk;

pub use cost::{
    estimate_query_cost, CpuCostModel, PhaseBreakdown, QueryCostEstimate, HEAVY_DF_THRESHOLD,
};
pub use engine::{CpuEngine, QueryOutcome};
pub use ops::{BlockCache, DecodeScratch, OpCounts, BLOCK_CACHE_ENTRIES};
pub use sharded::{
    PoolWorkerReport, ShardHealth, ShardHealthReport, ShardOutcome, ShardPool,
    ShardPoolConfig, ShardRun, ShardedEngine, ShardedOutcome,
};
pub use throughput::parallel_makespan_ns;
pub use topk::{rank_cmp, top_k, FusedTopK, Hit, SharedThreshold};
