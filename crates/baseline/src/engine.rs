//! The Lucene-like query engine: functional results plus priced operation
//! counts.

use iiu_index::score::term_score_fixed;
use iiu_index::{IndexError, InvertedIndex, TermId};

use crate::cost::{CpuCostModel, PhaseBreakdown};
use crate::ops::{self, DecodeScratch, OpCounts};
use crate::pruned;
use crate::topk::{top_k, Hit};

/// The result of one query: ranked hits, raw operation counts, and the
/// cost model's per-phase timing.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Top-k hits in descending score order.
    pub hits: Vec<Hit>,
    /// Number of candidate documents before top-k selection.
    pub candidates: u64,
    /// Operation counts accumulated while processing.
    pub counts: OpCounts,
    /// Per-phase time under the CPU cost model.
    pub phases: PhaseBreakdown,
}

impl QueryOutcome {
    /// Modeled end-to-end latency in nanoseconds.
    pub fn latency_ns(&self) -> f64 {
        self.phases.total_ns()
    }
}

/// A software search engine over the IIU index, mimicking Lucene's query
/// processing (block decompression, SvS intersection, merge union, BM25,
/// heap top-k).
///
/// Scoring uses the same Q16.16 fixed-point datapath as the simulated
/// hardware so that both engines return bit-identical scores; the paper's
/// baseline comparison is about *time*, which the cost model prices from
/// operation counts.
///
/// The engine owns a [`DecodeScratch`] — reusable decode buffers plus the
/// decoded-block probe cache — so query methods take `&mut self` and the
/// steady-state hot path allocates only for results.
///
/// With [`CpuEngine::with_pruning`] the engine runs in block-max pruned
/// mode ([`crate::pruned`]): top-k is fused into the scoring loop and
/// blocks whose score upper bound cannot beat the heap threshold are
/// skipped. Results are bit-identical to the exhaustive mode; only the
/// operation counts (and therefore modeled latency) change.
#[derive(Debug, Clone)]
pub struct CpuEngine<'a> {
    index: &'a InvertedIndex,
    cost: CpuCostModel,
    scratch: DecodeScratch,
    pruned: bool,
}

impl<'a> CpuEngine<'a> {
    /// Creates an engine with the default cost model (exhaustive mode).
    pub fn new(index: &'a InvertedIndex) -> Self {
        CpuEngine {
            index,
            cost: CpuCostModel::default(),
            scratch: DecodeScratch::new(),
            pruned: false,
        }
    }

    /// Creates an engine with a custom cost model.
    pub fn with_cost_model(index: &'a InvertedIndex, cost: CpuCostModel) -> Self {
        CpuEngine { index, cost, scratch: DecodeScratch::new(), pruned: false }
    }

    /// Enables or disables block-max pruned execution (builder style).
    #[must_use]
    pub fn with_pruning(mut self, pruned: bool) -> Self {
        self.pruned = pruned;
        self
    }

    /// Enables or disables block-max pruned execution.
    pub fn set_pruning(&mut self, pruned: bool) {
        self.pruned = pruned;
    }

    /// True when the engine skips blocks via score bounds.
    pub fn pruning(&self) -> bool {
        self.pruned
    }

    /// Wraps pruned-path results into a [`QueryOutcome`].
    fn pruned_outcome(&self, hits: Vec<Hit>, counts: OpCounts) -> QueryOutcome {
        let candidates = counts.topk_candidates;
        let phases = self.cost.price(&counts);
        QueryOutcome { hits, candidates, counts, phases }
    }

    /// The engine's decode scratch (buffers + decoded-block cache).
    pub fn scratch(&self) -> &DecodeScratch {
        &self.scratch
    }

    /// The engine's cost model.
    pub fn cost_model(&self) -> CpuCostModel {
        self.cost
    }

    /// The underlying index.
    pub fn index(&self) -> &'a InvertedIndex {
        self.index
    }

    fn resolve(&self, term: &str) -> Result<TermId, IndexError> {
        let id = self
            .index
            .term_id(term)
            .ok_or_else(|| IndexError::UnknownTerm { term: term.to_owned() })?;
        // Mmap-backed lists defer their record CRC to first touch; checking
        // here turns late corruption into a typed error instead of letting
        // a panicking decode wrapper see it mid-query.
        self.index.verify_term(id)?;
        Ok(id)
    }

    /// Single-term query: decompress, score, top-k (§2.2 workflow).
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::UnknownTerm`] if `term` is not indexed.
    pub fn search_single(&mut self, term: &str, k: usize) -> Result<QueryOutcome, IndexError> {
        let id = self.resolve(term)?;
        if self.pruned {
            let mut counts = OpCounts::default();
            let hits = pruned::search_single_pruned(
                self.index,
                id,
                k,
                &mut counts,
                &mut self.scratch,
            );
            return Ok(self.pruned_outcome(hits, counts));
        }
        let list = self.index.encoded_list(id);
        let idf_bar = self.index.term_info(id).idf_bar;

        let mut counts = OpCounts::default();
        ops::decode_full_into(list, &mut counts, &mut self.scratch.full_a);
        let index = self.index;
        let hits: Vec<Hit> = self
            .scratch
            .full_a
            .iter()
            .map(|p| Hit {
                doc_id: p.doc_id,
                score: term_score_fixed(idf_bar, index.dl_bar(p.doc_id), p.tf).to_f64(),
            })
            .collect();
        counts.docs_scored = hits.len() as u64;
        counts.topk_candidates = hits.len() as u64;
        counts.results = hits.len() as u64;
        let candidates = hits.len() as u64;

        let phases = self.cost.price(&counts);
        Ok(QueryOutcome { hits: top_k(hits, k), candidates, counts, phases })
    }

    /// Intersection query via Small-versus-Small (§2.2).
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::UnknownTerm`] if either term is not indexed.
    pub fn search_intersection(
        &mut self,
        term_a: &str,
        term_b: &str,
        k: usize,
    ) -> Result<QueryOutcome, IndexError> {
        let ia = self.resolve(term_a)?;
        let ib = self.resolve(term_b)?;
        // SvS orders by list length: shorter list drives the probing.
        let (short_id, long_id) = if self.index.term_info(ia).df <= self.index.term_info(ib).df
        {
            (ia, ib)
        } else {
            (ib, ia)
        };
        if self.pruned {
            let mut counts = OpCounts::default();
            let hits = pruned::search_intersection_pruned(
                self.index,
                short_id,
                long_id,
                k,
                &mut counts,
                &mut self.scratch,
            );
            return Ok(self.pruned_outcome(hits, counts));
        }
        let short = self.index.encoded_list(short_id);
        let long = self.index.encoded_list(long_id);
        let idf_short = self.index.term_info(short_id).idf_bar;
        let idf_long = self.index.term_info(long_id).idf_bar;

        let mut counts = OpCounts::default();
        let matches = ops::intersect_svs(short, long, long_id, &mut counts, &mut self.scratch);
        let hits: Vec<Hit> = matches
            .iter()
            .map(|&(doc_id, tf_s, tf_l)| {
                let dl = self.index.dl_bar(doc_id);
                let s = term_score_fixed(idf_short, dl, tf_s)
                    .saturating_add(term_score_fixed(idf_long, dl, tf_l));
                Hit { doc_id, score: s.to_f64() }
            })
            .collect();
        counts.docs_scored = 2 * hits.len() as u64;
        counts.topk_candidates = hits.len() as u64;
        let candidates = hits.len() as u64;

        let phases = self.cost.price(&counts);
        Ok(QueryOutcome { hits: top_k(hits, k), candidates, counts, phases })
    }

    /// Union query via linear merge (§2.2).
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::UnknownTerm`] if either term is not indexed.
    pub fn search_union(
        &mut self,
        term_a: &str,
        term_b: &str,
        k: usize,
    ) -> Result<QueryOutcome, IndexError> {
        let ia = self.resolve(term_a)?;
        let ib = self.resolve(term_b)?;
        if self.pruned {
            let mut counts = OpCounts::default();
            let hits = pruned::search_union_pruned(
                self.index,
                ia,
                ib,
                k,
                &mut counts,
                &mut self.scratch,
            );
            return Ok(self.pruned_outcome(hits, counts));
        }
        let la = self.index.encoded_list(ia);
        let lb = self.index.encoded_list(ib);
        let idf_a = self.index.term_info(ia).idf_bar;
        let idf_b = self.index.term_info(ib).idf_bar;

        let mut counts = OpCounts::default();
        let merged = ops::union_merge(la, lb, &mut counts, &mut self.scratch);
        let mut scored = 0u64;
        let hits: Vec<Hit> = merged
            .iter()
            .map(|&(doc_id, tf_a, tf_b)| {
                let dl = self.index.dl_bar(doc_id);
                let mut s = iiu_index::Fixed::ZERO;
                if tf_a > 0 {
                    s = s.saturating_add(term_score_fixed(idf_a, dl, tf_a));
                    scored += 1;
                }
                if tf_b > 0 {
                    s = s.saturating_add(term_score_fixed(idf_b, dl, tf_b));
                    scored += 1;
                }
                Hit { doc_id, score: s.to_f64() }
            })
            .collect();
        counts.docs_scored = scored;
        counts.topk_candidates = hits.len() as u64;
        let candidates = hits.len() as u64;

        let phases = self.cost.price(&counts);
        Ok(QueryOutcome { hits: top_k(hits, k), candidates, counts, phases })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iiu_index::{BuildOptions, IndexBuilder};

    fn engine_index() -> InvertedIndex {
        let mut b = IndexBuilder::new(BuildOptions::default());
        b.add_document("business lausanne report"); // 0
        b.add_document("cameo appearance"); // 1
        b.add_document("business cameo business"); // 2
        b.add_document("weather report"); // 3
        b.add_document("business weather cameo"); // 4
        b.build()
    }

    #[test]
    fn single_term_ranks_by_tf() {
        let idx = engine_index();
        let mut engine = CpuEngine::new(&idx);
        let out = engine.search_single("business", 10).unwrap();
        assert_eq!(out.hits.len(), 3);
        // doc 2 has tf 2 and the shortest competitive length.
        assert_eq!(out.hits[0].doc_id, 2);
        assert!(out.latency_ns() > 0.0);
        assert_eq!(out.counts.postings_decoded, 3);
    }

    #[test]
    fn intersection_returns_common_docs() {
        let idx = engine_index();
        let mut engine = CpuEngine::new(&idx);
        let out = engine.search_intersection("business", "cameo", 10).unwrap();
        let docs: Vec<u32> = out.hits.iter().map(|h| h.doc_id).collect();
        let mut sorted = docs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![2, 4]);
        assert_eq!(out.counts.docs_scored, 4);
    }

    #[test]
    fn intersection_is_symmetric() {
        let idx = engine_index();
        let mut engine = CpuEngine::new(&idx);
        let ab = engine.search_intersection("business", "cameo", 10).unwrap();
        let ba = engine.search_intersection("cameo", "business", 10).unwrap();
        assert_eq!(ab.hits, ba.hits);
    }

    #[test]
    fn union_covers_both_lists() {
        let idx = engine_index();
        let mut engine = CpuEngine::new(&idx);
        let out = engine.search_union("business", "cameo", 10).unwrap();
        let mut docs: Vec<u32> = out.hits.iter().map(|h| h.doc_id).collect();
        docs.sort_unstable();
        assert_eq!(docs, vec![0, 1, 2, 4]);
        // Docs containing both terms outrank single-term docs of similar length.
        assert_eq!(out.hits[0].doc_id, 2);
    }

    #[test]
    fn unknown_term_is_an_error() {
        let idx = engine_index();
        let mut engine = CpuEngine::new(&idx);
        assert!(engine.search_single("zebra", 5).is_err());
        assert!(engine.search_intersection("zebra", "business", 5).is_err());
        assert!(engine.search_union("business", "zebra", 5).is_err());
    }

    #[test]
    fn k_truncates_results() {
        let idx = engine_index();
        let mut engine = CpuEngine::new(&idx);
        let out = engine.search_single("business", 1).unwrap();
        assert_eq!(out.hits.len(), 1);
        assert_eq!(out.candidates, 3);
    }

    #[test]
    fn pruned_mode_matches_exhaustive_on_every_query_shape() {
        let idx = engine_index();
        let mut plain = CpuEngine::new(&idx);
        let mut pruned = CpuEngine::new(&idx).with_pruning(true);
        assert!(pruned.pruning() && !plain.pruning());
        for k in [0usize, 1, 2, 10] {
            let a = plain.search_single("business", k).unwrap();
            let b = pruned.search_single("business", k).unwrap();
            assert_eq!(a.hits, b.hits, "single k={k}");
            let a = plain.search_intersection("business", "cameo", k).unwrap();
            let b = pruned.search_intersection("business", "cameo", k).unwrap();
            assert_eq!(a.hits, b.hits, "and k={k}");
            let a = plain.search_union("business", "cameo", k).unwrap();
            let b = pruned.search_union("business", "cameo", k).unwrap();
            assert_eq!(a.hits, b.hits, "or k={k}");
        }
    }

    #[test]
    fn pruned_single_skips_blocks_on_a_skewed_list() {
        // One high-tf posting per far-apart block region, k=1: after the
        // best doc is seen, lower-bound blocks must be skipped.
        let mut b = iiu_index::IndexBuilder::new(iiu_index::BuildOptions {
            partitioner: iiu_index::Partitioner::fixed(4),
            ..Default::default()
        });
        b.add_document(&"hot ".repeat(50));
        for _ in 0..200 {
            b.add_document("hot cold");
        }
        let idx = b.build();
        let mut pruned = CpuEngine::new(&idx).with_pruning(true);
        let out = pruned.search_single("hot", 1).unwrap();
        assert!(out.counts.blocks_skipped > 0, "no blocks skipped: {:?}", out.counts);
        assert!(out.counts.postings_skipped > 0);
        let mut plain = CpuEngine::new(&idx);
        assert_eq!(plain.search_single("hot", 1).unwrap().hits, out.hits);
        assert!(
            out.counts.postings_decoded
                < plain.search_single("hot", 1).unwrap().counts.postings_decoded
        );
    }
}
