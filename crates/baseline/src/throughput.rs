//! Multi-core throughput modeling for the baseline (Fig. 2, Fig. 16).
//!
//! Lucene "only exploits inter-query parallelism for throughput, but not
//! intra-query parallelism" (§1): each query runs on one core, and a pool
//! of cores drains the backlog. The makespan of a batch is therefore a
//! multiprocessor-scheduling problem; this module models it with the
//! longest-processing-time (LPT) greedy rule, which is what a work-stealing
//! query pool approximates. A real multithreaded executor (std scoped
//! threads over a shared work queue) is also provided so examples can
//! demonstrate genuine parallel execution.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Mutex;

/// Makespan in nanoseconds of running queries with the given latencies on
/// `cores` single-query cores, using LPT assignment.
///
/// # Panics
///
/// Panics if `cores` is zero.
pub fn parallel_makespan_ns(latencies_ns: &[f64], cores: usize) -> f64 {
    assert!(cores > 0, "at least one core is required");
    let mut sorted: Vec<f64> = latencies_ns.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let mut loads = vec![0.0f64; cores];
    for lat in sorted {
        // `loads` is non-empty (cores > 0 asserted above).
        let mut min_idx = 0;
        for (i, &l) in loads.iter().enumerate().skip(1) {
            if l < loads[min_idx] {
                min_idx = i;
            }
        }
        loads[min_idx] += lat;
    }
    loads.iter().fold(0.0f64, |m, &l| m.max(l))
}

/// Throughput in queries per second for a batch under the makespan model.
pub fn batch_throughput_qps(latencies_ns: &[f64], cores: usize) -> f64 {
    if latencies_ns.is_empty() {
        return 0.0;
    }
    let makespan = parallel_makespan_ns(latencies_ns, cores);
    latencies_ns.len() as f64 / (makespan * 1e-9)
}

/// Runs `jobs` on up to `workers` OS threads and collects the results in
/// input order. This executes the queries for real (used by examples and
/// correctness tests); the *modeled* time still comes from the cost model.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn run_parallel<T, F>(jobs: Vec<F>, workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.max(1).min(n);
    let queue: Mutex<VecDeque<(usize, F)>> =
        Mutex::new(jobs.into_iter().enumerate().collect());
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let queue = &queue;
            let tx = tx.clone();
            s.spawn(move || loop {
                // Jobs are popped atomically under the lock; a poisoned
                // guard cannot expose a half-updated queue.
                let next = queue
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .pop_front();
                match next {
                    Some((idx, job)) => {
                        // The receiver outlives the scope; a failed send
                        // means it was dropped mid-collect and the result
                        // has nowhere to go anyway.
                        let _ = tx.send((idx, job()));
                    }
                    None => break,
                }
            });
        }
        drop(tx);
    });
    let mut results: Vec<(usize, T)> = rx.into_iter().collect();
    results.sort_by_key(|&(idx, _)| idx);
    results.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_core_makespan_is_sum() {
        let lat = [3.0, 1.0, 2.0];
        assert_eq!(parallel_makespan_ns(&lat, 1), 6.0);
    }

    #[test]
    fn enough_cores_makespan_is_max() {
        let lat = [3.0, 1.0, 2.0];
        assert_eq!(parallel_makespan_ns(&lat, 8), 3.0);
    }

    #[test]
    fn lpt_balances_loads() {
        // 4 jobs of 2 and 2 jobs of 3 on 2 cores: LPT gives {3,2,2}, {3,2} ->
        // makespan 7... compute: sorted [3,3,2,2,2,2]; loads: 3 | 3; 2->both 3: first -> 5|3; 2->3: 5|5; 2->5: 7|5; 2->5: 7|7.
        let lat = [2.0, 2.0, 2.0, 2.0, 3.0, 3.0];
        assert_eq!(parallel_makespan_ns(&lat, 2), 7.0);
    }

    #[test]
    fn throughput_saturates_with_cores() {
        let lat = vec![100.0; 16];
        let t1 = batch_throughput_qps(&lat, 1);
        let t8 = batch_throughput_qps(&lat, 8);
        let t16 = batch_throughput_qps(&lat, 16);
        let t32 = batch_throughput_qps(&lat, 32);
        assert!(t8 > t1 * 7.9);
        assert!(t16 > t8 * 1.9);
        // Beyond one core per query there is nothing left to parallelize.
        assert_eq!(t16, t32);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = parallel_makespan_ns(&[1.0], 0);
    }

    #[test]
    fn run_parallel_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..64usize).map(|i| Box::new(move || i * i) as _).collect();
        let results = run_parallel(jobs, 8);
        assert_eq!(results, (0..64usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_parallel_with_one_worker() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            (0..5u32).map(|i| Box::new(move || i + 1) as _).collect();
        assert_eq!(run_parallel(jobs, 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_batch() {
        assert_eq!(batch_throughput_qps(&[], 4), 0.0);
        let jobs: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        assert!(run_parallel(jobs, 4).is_empty());
    }
}
