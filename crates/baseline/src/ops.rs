//! Set operations over compressed posting lists, with operation counting.
//!
//! These are the baseline's (and, functionally, the accelerator's)
//! semantics for the three query types of §2.2/§4.2: full decompression
//! for single-term queries, Small-versus-Small intersection with skip-list
//! membership testing, and linear-merge union. Every function fills an
//! [`OpCounts`] so the cost model can price the work.
//!
//! All hot-path decoding goes through [`iiu_index::EncodedList::decode_block_into`]
//! with buffers owned by a [`DecodeScratch`], so steady-state query
//! processing performs no per-block allocation. The scratch also carries a
//! small LRU cache of decoded blocks — the software analogue of the paper's
//! 32-entry traversal cache — that serves repeated membership probes
//! without re-decoding (cache hits and misses are tallied in [`OpCounts`];
//! the `blocks_decoded`/`postings_decoded` tallies count *logical* decodes
//! and are unaffected by caching, so the cost model's pricing is stable).

use iiu_index::block::EncodedList;
use iiu_index::{DocId, Posting, TermId};

/// Counters of the primitive operations a query performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Postings decompressed (d-gap + tf decode and prefix-sum). Counts
    /// logical decodes: a decoded-block cache hit still tallies here.
    pub postings_decoded: u64,
    /// Blocks decompressed (logical; see `postings_decoded`).
    pub blocks_decoded: u64,
    /// Blocks skipped thanks to skip-list membership testing or block-max
    /// score pruning.
    pub blocks_skipped: u64,
    /// Postings never decoded or scored because their block's score upper
    /// bound (or their own partial score) could not beat the top-k
    /// threshold (pruned mode only).
    pub postings_skipped: u64,
    /// Skip-list binary-search probes.
    pub binary_probes: u64,
    /// Element comparisons in merge/intersect loops (and within-block
    /// binary search).
    pub comparisons: u64,
    /// Documents scored with BM25.
    pub docs_scored: u64,
    /// Candidates pushed through the top-k heap.
    pub topk_candidates: u64,
    /// Result postings produced.
    pub results: u64,
    /// Phrase-position verifications performed (host side).
    pub phrase_checks: u64,
    /// Probe-path block requests served from the decoded-block cache.
    pub cache_hits: u64,
    /// Probe-path block requests that had to decode for real.
    pub cache_misses: u64,
}

impl OpCounts {
    /// Merges another counter set into this one, field by field.
    ///
    /// Per-shard tallies are summed through this exact function, so it
    /// exhaustively destructures `other`: adding a counter to the struct
    /// without adding it here is a compile error, not a silently dropped
    /// tally.
    pub fn merge(&mut self, other: &OpCounts) {
        let OpCounts {
            postings_decoded,
            blocks_decoded,
            blocks_skipped,
            postings_skipped,
            binary_probes,
            comparisons,
            docs_scored,
            topk_candidates,
            results,
            phrase_checks,
            cache_hits,
            cache_misses,
        } = *other;
        self.postings_decoded += postings_decoded;
        self.blocks_decoded += blocks_decoded;
        self.blocks_skipped += blocks_skipped;
        self.postings_skipped += postings_skipped;
        self.binary_probes += binary_probes;
        self.comparisons += comparisons;
        self.docs_scored += docs_scored;
        self.topk_candidates += topk_candidates;
        self.results += results;
        self.phrase_checks += phrase_checks;
        self.cache_hits += cache_hits;
        self.cache_misses += cache_misses;
    }
}

/// Number of decoded blocks the probe cache retains, matching the paper's
/// 32-entry traversal cache (§4.4).
pub const BLOCK_CACHE_ENTRIES: usize = 32;

/// An LRU cache of decoded blocks keyed by `(term, block)` — the software
/// analogue of the traversal cache the paper puts in front of the BSU.
/// Entries recycle their posting buffers on eviction, so a warm cache
/// allocates nothing.
///
/// Capacity is [`BLOCK_CACHE_ENTRIES`]; lookup is a linear scan, which at
/// 32 entries is cheaper than hashing.
#[derive(Debug, Clone)]
pub struct BlockCache {
    cap: usize,
    tick: u64,
    /// Index of the most recently used entry: consecutive probes of the
    /// same block (the common case in SvS) skip the scan entirely.
    mru: usize,
    /// The realm (index identity) entries are currently keyed under. A
    /// `(term, block)` pair is only unique within one index; a scratch
    /// serving multiple shards (the shared work pool) must switch realms
    /// between tasks or stale postings from another shard would alias.
    realm: u64,
    entries: Vec<CacheEntry>,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    realm: u64,
    term: TermId,
    block: u32,
    last_used: u64,
    postings: Vec<Posting>,
}

impl Default for BlockCache {
    fn default() -> Self {
        BlockCache::with_capacity(BLOCK_CACHE_ENTRIES)
    }
}

impl BlockCache {
    /// Creates a cache holding at most `cap` decoded blocks (0 disables
    /// caching: every probe is a miss that decodes into a recycled buffer).
    pub fn with_capacity(cap: usize) -> Self {
        BlockCache { cap, tick: 0, mru: 0, realm: 0, entries: Vec::with_capacity(cap.min(64)) }
    }

    /// Switches the cache to `realm` (an index identity such as a shard
    /// number). Entries cached under other realms stop matching but stay
    /// resident, so a worker alternating between shards keeps whatever
    /// warm blocks fit in the LRU budget.
    pub fn set_realm(&mut self, realm: u64) {
        self.realm = realm;
    }

    /// Returns the decoded postings of `list`'s block `block_idx`, from
    /// cache when possible, decoding (into a recycled buffer) otherwise.
    /// `counts` tallies the hit or miss.
    pub(crate) fn get_or_decode(
        &mut self,
        list: &EncodedList,
        term: TermId,
        block_idx: usize,
        counts: &mut OpCounts,
    ) -> &[Posting] {
        self.tick += 1;
        let block = block_idx as u32;
        // MRU fast path: the SvS probe loop asks for the same block many
        // times in a row, and this check keeps that O(1).
        let hit = |e: &CacheEntry| e.realm == self.realm && e.term == term && e.block == block;
        let mru_matches = self.entries.get(self.mru).is_some_and(hit);
        let pos = if mru_matches { Some(self.mru) } else { self.entries.iter().position(hit) };
        if let Some(pos) = pos {
            counts.cache_hits += 1;
            self.entries[pos].last_used = self.tick;
            self.mru = pos;
            return &self.entries[pos].postings;
        }
        counts.cache_misses += 1;
        let pos = if self.entries.len() < self.cap.max(1) {
            self.entries.push(CacheEntry {
                realm: self.realm,
                term,
                block,
                last_used: self.tick,
                postings: Vec::new(),
            });
            self.entries.len() - 1
        } else {
            // Evict the least recently used entry, keeping its buffer.
            let pos = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .unwrap_or(0);
            self.entries[pos].realm = self.realm;
            self.entries[pos].term = term;
            self.entries[pos].block = block;
            self.entries[pos].last_used = self.tick;
            self.entries[pos].postings.clear();
            pos
        };
        self.mru = pos;
        let entry = &mut self.entries[pos];
        if entry.postings.is_empty() {
            list.decode_block_into(block_idx, &mut entry.postings);
        }
        // A zero-capacity cache keeps one recycled slot that is always
        // repopulated; cap >= 1 keeps decoded contents.
        if self.cap == 0 {
            entry.term = TermId::MAX;
            entry.block = u32::MAX;
        }
        &self.entries[pos].postings
    }

    /// Drops all cached blocks (buffers are freed too).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.tick = 0;
        self.mru = 0;
    }

    /// Number of blocks currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Reusable decode buffers for one query engine. Owning one per engine
/// (rather than allocating inside every op) is what makes the hot path
/// allocation-free: `decode_full`-style work lands in `full_a`/`full_b`,
/// membership probes go through the [`BlockCache`].
///
/// Ownership rule: a `DecodeScratch` belongs to exactly one engine and is
/// borrowed mutably for the duration of one op — the slices the ops return
/// to their callers are copied out (results), never aliases of the scratch.
#[derive(Debug, Clone, Default)]
pub struct DecodeScratch {
    pub(crate) full_a: Vec<Posting>,
    pub(crate) full_b: Vec<Posting>,
    pub(crate) cache: BlockCache,
}

impl DecodeScratch {
    /// Creates an empty scratch with the default
    /// [`BLOCK_CACHE_ENTRIES`]-entry block cache.
    pub fn new() -> Self {
        DecodeScratch::default()
    }

    /// Creates a scratch whose block cache holds `cap` entries (0 disables
    /// reuse across probes but still recycles the decode buffer).
    pub fn with_cache_capacity(cap: usize) -> Self {
        DecodeScratch {
            full_a: Vec::new(),
            full_b: Vec::new(),
            cache: BlockCache::with_capacity(cap),
        }
    }

    /// The decoded-block cache.
    pub fn cache(&self) -> &BlockCache {
        &self.cache
    }

    /// Re-keys the block cache under `realm` (see
    /// [`BlockCache::set_realm`]). The shared shard pool calls this with
    /// the task's shard number before every task, so one worker's warm
    /// cache can never leak another shard's postings.
    pub fn set_realm(&mut self, realm: u64) {
        self.cache.set_realm(realm);
    }
}

/// Decompresses an entire list into `out` (cleared first), counting blocks
/// and postings. The zero-alloc form of [`decode_full`].
pub fn decode_full_into(list: &EncodedList, counts: &mut OpCounts, out: &mut Vec<Posting>) {
    out.clear();
    out.reserve(list.num_postings() as usize);
    for b in 0..list.num_blocks() {
        list.decode_block_into(b, out);
        counts.blocks_decoded += 1;
    }
    counts.postings_decoded += out.len() as u64;
}

/// Decompresses an entire list (single-term query path), allocating the
/// result. Hot paths use [`decode_full_into`] with a scratch buffer.
pub fn decode_full(list: &EncodedList, counts: &mut OpCounts) -> Vec<Posting> {
    let mut out = Vec::new();
    decode_full_into(list, counts, &mut out);
    out
}

/// Small-versus-Small intersection (§2.2): decompresses the shorter list in
/// full, then for each of its docIDs binary-searches the longer list's skip
/// list to find the one candidate block, decompressing only those blocks.
/// Candidate blocks come from `scratch`'s decoded-block cache; `long_term`
/// keys the cache entries.
///
/// Returns matched postings as `(docID, tf_short, tf_long)`.
pub fn intersect_svs(
    short: &EncodedList,
    long: &EncodedList,
    long_term: TermId,
    counts: &mut OpCounts,
    scratch: &mut DecodeScratch,
) -> Vec<(DocId, u32, u32)> {
    debug_assert!(short.num_postings() <= long.num_postings());
    let DecodeScratch { full_a, cache, .. } = scratch;
    decode_full_into(short, counts, full_a);
    let short_postings: &[Posting] = full_a;
    let skips = long.skips();
    let mut out = Vec::new();
    let mut last_block: Option<usize> = None;
    let mut decoded_blocks = vec![false; long.num_blocks()];

    for p in short_postings {
        // Binary search over the skip list for the last skip <= docID.
        let mut lo = 0usize;
        let mut hi = skips.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            counts.binary_probes += 1;
            if skips[mid] <= p.doc_id {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let Some(block_idx) = lo.checked_sub(1) else {
            continue; // docID precedes the first block
        };

        // Logical decode accounting matches the pre-cache baseline: a new
        // block (relative to the previous probe) counts as decoded whether
        // or not the cache already holds it.
        if last_block != Some(block_idx) {
            counts.blocks_decoded += 1;
            decoded_blocks[block_idx] = true;
            counts.postings_decoded += u64::from(long.metas()[block_idx].count);
            last_block = Some(block_idx);
        }
        let block = cache.get_or_decode(long, long_term, block_idx, counts);

        // Binary search within the decompressed block.
        let mut lo = 0usize;
        let mut hi = block.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            counts.comparisons += 1;
            if block[mid].doc_id < p.doc_id {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < block.len() && block[lo].doc_id == p.doc_id {
            out.push((p.doc_id, p.tf, block[lo].tf));
        }
    }

    counts.blocks_skipped += decoded_blocks.iter().filter(|&&d| !d).count() as u64;
    counts.results += out.len() as u64;
    out
}

/// Linear-merge union (§2.2, §4.2): decompresses both lists and merges like
/// a 2-way merge sort; matched docIDs carry both term frequencies. Both
/// full decodes land in `scratch` buffers — no per-block allocation.
///
/// Returns `(docID, tf_a, tf_b)` with a zero tf marking "absent from that
/// list".
pub fn union_merge(
    a: &EncodedList,
    b: &EncodedList,
    counts: &mut OpCounts,
    scratch: &mut DecodeScratch,
) -> Vec<(DocId, u32, u32)> {
    let DecodeScratch { full_a, full_b, .. } = scratch;
    decode_full_into(a, counts, full_a);
    decode_full_into(b, counts, full_b);
    let (pa, pb): (&[Posting], &[Posting]) = (full_a, full_b);
    let mut out = Vec::with_capacity(pa.len() + pb.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < pa.len() && j < pb.len() {
        counts.comparisons += 1;
        match pa[i].doc_id.cmp(&pb[j].doc_id) {
            std::cmp::Ordering::Less => {
                out.push((pa[i].doc_id, pa[i].tf, 0));
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push((pb[j].doc_id, 0, pb[j].tf));
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((pa[i].doc_id, pa[i].tf, pb[j].tf));
                i += 1;
                j += 1;
            }
        }
    }
    // Flush the remainder (the paper's "remaining postings from the other
    // DCU are flushed to memory").
    for p in &pa[i..] {
        out.push((p.doc_id, p.tf, 0));
    }
    for p in &pb[j..] {
        out.push((p.doc_id, 0, p.tf));
    }
    counts.results += out.len() as u64;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iiu_index::{Partitioner, Posting, PostingList};
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn merge_sums_every_field_exactly() {
        // Give every field a distinct value so a swapped or dropped field
        // in merge() cannot cancel out.
        fn distinct(base: u64) -> OpCounts {
            OpCounts {
                postings_decoded: base,
                blocks_decoded: base * 2,
                blocks_skipped: base * 3,
                postings_skipped: base * 4,
                binary_probes: base * 5,
                comparisons: base * 6,
                docs_scored: base * 7,
                topk_candidates: base * 8,
                results: base * 9,
                phrase_checks: base * 10,
                cache_hits: base * 11,
                cache_misses: base * 12,
            }
        }
        let mut a = distinct(100);
        let b = distinct(1000);
        a.merge(&b);
        assert_eq!(a, distinct(1100), "every field must sum: {a:?}");

        // Merging a default is the identity; merge order is immaterial.
        let mut c = distinct(7);
        c.merge(&OpCounts::default());
        assert_eq!(c, distinct(7));
        let mut d = OpCounts::default();
        d.merge(&distinct(7));
        assert_eq!(d, distinct(7));
    }

    fn encode(ids: &[(u32, u32)], max_size: usize) -> EncodedList {
        let list =
            PostingList::from_sorted(ids.iter().map(|&(d, t)| Posting::new(d, t)).collect());
        let part = Partitioner::dynamic(max_size).partition(&list);
        EncodedList::encode(&list, &part).unwrap()
    }

    #[test]
    fn decode_full_counts_everything() {
        let list = encode(&[(0, 1), (5, 2), (9, 1), (100, 3)], 2);
        let mut c = OpCounts::default();
        let postings = decode_full(&list, &mut c);
        assert_eq!(postings.len(), 4);
        assert_eq!(c.postings_decoded, 4);
        assert_eq!(c.blocks_decoded, list.num_blocks() as u64);
    }

    #[test]
    fn decode_full_into_reuses_the_buffer() {
        let list = encode(&[(0, 1), (5, 2), (9, 1), (100, 3)], 2);
        let mut c = OpCounts::default();
        let mut buf = Vec::new();
        decode_full_into(&list, &mut c, &mut buf);
        assert_eq!(buf.len(), 4);
        let cap = buf.capacity();
        decode_full_into(&list, &mut c, &mut buf);
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.capacity(), cap, "second decode must not reallocate");
    }

    #[test]
    fn intersect_paper_example() {
        // L(business) ∩ L(cameo) = [11, 38, 46] (§2.2).
        let business = encode(&[(0, 1), (2, 1), (11, 1), (20, 1), (38, 1), (46, 1)], 2);
        let cameo = encode(&[(1, 2), (11, 2), (38, 2), (39, 2), (46, 2), (55, 2), (62, 2)], 2);
        let mut c = OpCounts::default();
        let mut s = DecodeScratch::new();
        let result = intersect_svs(&business, &cameo, 1, &mut c, &mut s);
        assert_eq!(result.iter().map(|&(d, _, _)| d).collect::<Vec<_>>(), vec![11, 38, 46]);
        assert_eq!(result[0], (11, 1, 2));
        assert_eq!(c.results, 3);
        assert!(c.binary_probes > 0);
        // Probes 2/11/20 land in the long list's block 0, then 38 and 46
        // each open a new block: 3 cold misses, 2 consecutive-probe hits.
        // (`blocks_decoded` additionally counts the short list's 3 blocks.)
        assert_eq!(c.cache_misses, 3);
        assert_eq!(c.cache_hits, 2);
    }

    #[test]
    fn intersect_skips_unneeded_blocks() {
        // Short list hits only the tail of the long list: head blocks
        // must be skipped, not decompressed.
        let long: Vec<(u32, u32)> = (0..1000).map(|i| (i * 2, 1)).collect();
        let long = encode(&long, 64);
        let short = encode(&[(1990, 1), (1998, 1)], 64);
        let mut c = OpCounts::default();
        let mut s = DecodeScratch::new();
        let result = intersect_svs(&short, &long, 0, &mut c, &mut s);
        assert_eq!(result.len(), 2);
        assert!(c.blocks_skipped > 10, "expected most blocks skipped, got {c:?}");
        assert!(c.blocks_decoded < 5);
    }

    #[test]
    fn intersect_docid_before_first_skip() {
        let long = encode(&[(100, 1), (200, 1)], 2);
        let short = encode(&[(5, 1), (100, 1)], 2);
        let mut c = OpCounts::default();
        let mut s = DecodeScratch::new();
        let result = intersect_svs(&short, &long, 0, &mut c, &mut s);
        assert_eq!(result.len(), 1);
        assert_eq!(result[0].0, 100);
    }

    #[test]
    fn block_cache_serves_repeat_probes_without_changing_tallies() {
        let long: Vec<(u32, u32)> = (0..256).map(|i| (i * 3, 1)).collect();
        let long = encode(&long, 16);
        // Probes cluster in two far-apart blocks: consecutive probes of the
        // same block hit the cache, and a repeat of the whole query on the
        // same scratch is served entirely from cache — while the logical
        // blocks_decoded tally stays identical to the uncached engine.
        let short = encode(&[(0, 1), (3, 1), (6, 1), (600, 1), (603, 1), (606, 1)], 2);
        let mut warm_counts = OpCounts::default();
        let mut s = DecodeScratch::new();
        let warm = intersect_svs(&short, &long, 7, &mut warm_counts, &mut s);

        let mut cold_counts = OpCounts::default();
        let mut cold_scratch = DecodeScratch::with_cache_capacity(0);
        let cold = intersect_svs(&short, &long, 7, &mut cold_counts, &mut cold_scratch);

        assert_eq!(warm, cold, "cache must not change results");
        assert_eq!(warm_counts.blocks_decoded, cold_counts.blocks_decoded);
        assert_eq!(warm_counts.postings_decoded, cold_counts.postings_decoded);
        assert!(warm_counts.cache_hits > 0, "alternating probes must hit: {warm_counts:?}");
        assert_eq!(cold_counts.cache_hits, 0, "cap 0 disables the cache");

        // A second identical query on the same scratch is all hits.
        let mut again = OpCounts::default();
        let rerun = intersect_svs(&short, &long, 7, &mut again, &mut s);
        assert_eq!(rerun, warm);
        assert_eq!(again.cache_misses, 0, "warm cache must serve every probe: {again:?}");
        assert_eq!(again.blocks_decoded, warm_counts.blocks_decoded);
    }

    #[test]
    fn block_cache_evicts_lru_beyond_capacity() {
        let long: Vec<(u32, u32)> = (0..4096).map(|i| (i, 1)).collect();
        let long = encode(&long, 8); // hundreds of blocks
        let probes: Vec<(u32, u32)> = (0..400).map(|i| (i * 10, 1)).collect();
        let short = encode(&probes, 64);
        let mut c = OpCounts::default();
        let mut s = DecodeScratch::new();
        let _ = intersect_svs(&short, &long, 3, &mut c, &mut s);
        assert!(s.cache().len() <= BLOCK_CACHE_ENTRIES);
        assert!(c.cache_misses as usize > BLOCK_CACHE_ENTRIES);
    }

    #[test]
    fn union_paper_example() {
        let business = encode(&[(0, 1), (2, 1), (11, 1), (20, 1), (38, 1), (46, 1)], 3);
        let cameo = encode(&[(1, 2), (11, 2), (38, 2), (39, 2), (46, 2), (55, 2), (62, 2)], 3);
        let mut c = OpCounts::default();
        let mut s = DecodeScratch::new();
        let result = union_merge(&business, &cameo, &mut c, &mut s);
        assert_eq!(
            result.iter().map(|&(d, _, _)| d).collect::<Vec<_>>(),
            vec![0, 1, 2, 11, 20, 38, 39, 46, 55, 62]
        );
        // Matched docID carries both tfs.
        let row11 = result.iter().find(|r| r.0 == 11).unwrap();
        assert_eq!((row11.1, row11.2), (1, 2));
        let row55 = result.iter().find(|r| r.0 == 55).unwrap();
        assert_eq!((row55.1, row55.2), (0, 2));
    }

    #[test]
    fn union_with_empty_list() {
        let a = encode(&[(3, 1), (9, 2)], 2);
        let b = EncodedList::default();
        let mut c = OpCounts::default();
        let mut s = DecodeScratch::new();
        let result = union_merge(&a, &b, &mut c, &mut s);
        assert_eq!(result.len(), 2);
        assert_eq!(result[0], (3, 1, 0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_intersection_matches_btreeset(
            a in proptest::collection::btree_set(0u32..3000, 1..150),
            b in proptest::collection::btree_set(0u32..3000, 1..150),
        ) {
            let ea = encode(&a.iter().map(|&d| (d, 1)).collect::<Vec<_>>(), 16);
            let eb = encode(&b.iter().map(|&d| (d, 2)).collect::<Vec<_>>(), 16);
            let (short, long) = if a.len() <= b.len() { (&ea, &eb) } else { (&eb, &ea) };
            let mut c = OpCounts::default();
            let mut s = DecodeScratch::new();
            let got: Vec<u32> = intersect_svs(short, long, 1, &mut c, &mut s)
                .into_iter().map(|(d, _, _)| d).collect();
            let want: Vec<u32> = a.intersection(&b).copied().collect();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn prop_union_matches_btreemap(
            a in proptest::collection::btree_set(0u32..3000, 0..150),
            b in proptest::collection::btree_set(0u32..3000, 0..150),
        ) {
            let ea = encode(&a.iter().map(|&d| (d, 1)).collect::<Vec<_>>(), 16);
            let eb = encode(&b.iter().map(|&d| (d, 2)).collect::<Vec<_>>(), 16);
            let mut c = OpCounts::default();
            let mut s = DecodeScratch::new();
            let got = union_merge(&ea, &eb, &mut c, &mut s);
            let mut want: BTreeMap<u32, (u32, u32)> = BTreeMap::new();
            for &d in &a { want.entry(d).or_insert((0, 0)).0 = 1; }
            for &d in &b { want.entry(d).or_insert((0, 0)).1 = 2; }
            let want: Vec<(u32, u32, u32)> =
                want.into_iter().map(|(d, (x, y))| (d, x, y)).collect();
            prop_assert_eq!(got, want);
        }

        /// Scratch reuse across many randomized queries never changes
        /// results or block/posting tallies versus a fresh scratch.
        #[test]
        fn prop_scratch_reuse_is_invisible(
            a in proptest::collection::btree_set(0u32..2000, 1..100),
            b in proptest::collection::btree_set(0u32..2000, 1..100),
        ) {
            let ea = encode(&a.iter().map(|&d| (d, 1)).collect::<Vec<_>>(), 8);
            let eb = encode(&b.iter().map(|&d| (d, 2)).collect::<Vec<_>>(), 8);
            let (short, long) = if a.len() <= b.len() { (&ea, &eb) } else { (&eb, &ea) };

            let mut reused = DecodeScratch::new();
            let mut c1 = OpCounts::default();
            let first = intersect_svs(short, long, 9, &mut c1, &mut reused);
            let mut c2 = OpCounts::default();
            let second = intersect_svs(short, long, 9, &mut c2, &mut reused);
            let mut fresh = DecodeScratch::new();
            let mut c3 = OpCounts::default();
            let third = intersect_svs(short, long, 9, &mut c3, &mut fresh);

            prop_assert_eq!(&first, &second);
            prop_assert_eq!(&first, &third);
            prop_assert_eq!(c1.blocks_decoded, c2.blocks_decoded);
            prop_assert_eq!(c1.postings_decoded, c2.postings_decoded);
            prop_assert_eq!(c1.blocks_decoded, c3.blocks_decoded);
            prop_assert_eq!(c1.comparisons, c3.comparisons);

            let mut u1 = OpCounts::default();
            let mut u2 = OpCounts::default();
            let ua = union_merge(&ea, &eb, &mut u1, &mut reused);
            let ub = union_merge(&ea, &eb, &mut u2, &mut fresh);
            prop_assert_eq!(ua, ub);
            prop_assert_eq!(u1, u2);
        }
    }
}
