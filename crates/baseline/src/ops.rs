//! Set operations over compressed posting lists, with operation counting.
//!
//! These are the baseline's (and, functionally, the accelerator's)
//! semantics for the three query types of §2.2/§4.2: full decompression
//! for single-term queries, Small-versus-Small intersection with skip-list
//! membership testing, and linear-merge union. Every function fills an
//! [`OpCounts`] so the cost model can price the work.

use iiu_index::block::EncodedList;
use iiu_index::{DocId, Posting};

/// Counters of the primitive operations a query performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Postings decompressed (d-gap + tf decode and prefix-sum).
    pub postings_decoded: u64,
    /// Blocks decompressed.
    pub blocks_decoded: u64,
    /// Blocks skipped thanks to skip-list membership testing.
    pub blocks_skipped: u64,
    /// Skip-list binary-search probes.
    pub binary_probes: u64,
    /// Element comparisons in merge/intersect loops (and within-block
    /// binary search).
    pub comparisons: u64,
    /// Documents scored with BM25.
    pub docs_scored: u64,
    /// Candidates pushed through the top-k heap.
    pub topk_candidates: u64,
    /// Result postings produced.
    pub results: u64,
    /// Phrase-position verifications performed (host side).
    pub phrase_checks: u64,
}

impl OpCounts {
    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &OpCounts) {
        self.postings_decoded += other.postings_decoded;
        self.blocks_decoded += other.blocks_decoded;
        self.blocks_skipped += other.blocks_skipped;
        self.binary_probes += other.binary_probes;
        self.comparisons += other.comparisons;
        self.docs_scored += other.docs_scored;
        self.topk_candidates += other.topk_candidates;
        self.results += other.results;
        self.phrase_checks += other.phrase_checks;
    }
}

/// Decompresses an entire list (single-term query path).
pub fn decode_full(list: &EncodedList, counts: &mut OpCounts) -> Vec<Posting> {
    let mut out = Vec::with_capacity(list.num_postings() as usize);
    for b in 0..list.num_blocks() {
        out.extend(list.decode_block(b));
        counts.blocks_decoded += 1;
    }
    counts.postings_decoded += out.len() as u64;
    out
}

/// Small-versus-Small intersection (§2.2): decompresses the shorter list in
/// full, then for each of its docIDs binary-searches the longer list's skip
/// list to find the one candidate block, decompressing only those blocks.
///
/// Returns matched postings as `(docID, tf_short, tf_long)`.
pub fn intersect_svs(
    short: &EncodedList,
    long: &EncodedList,
    counts: &mut OpCounts,
) -> Vec<(DocId, u32, u32)> {
    debug_assert!(short.num_postings() <= long.num_postings());
    let short_postings = decode_full(short, counts);
    let skips = long.skips();
    let mut out = Vec::new();
    let mut cached_block: Option<(usize, Vec<Posting>)> = None;
    let mut decoded_blocks = vec![false; long.num_blocks()];

    for p in &short_postings {
        // Binary search over the skip list for the last skip <= docID.
        let mut lo = 0usize;
        let mut hi = skips.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            counts.binary_probes += 1;
            if skips[mid] <= p.doc_id {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let Some(block_idx) = lo.checked_sub(1) else {
            continue; // docID precedes the first block
        };

        let cache_hit = matches!(&cached_block, Some((idx, _)) if *idx == block_idx);
        if !cache_hit {
            counts.blocks_decoded += 1;
            decoded_blocks[block_idx] = true;
            let decoded = long.decode_block(block_idx);
            counts.postings_decoded += decoded.len() as u64;
            cached_block = Some((block_idx, decoded));
        }
        let block = &cached_block.as_ref().expect("decoded above").1;

        // Binary search within the decompressed block.
        let mut lo = 0usize;
        let mut hi = block.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            counts.comparisons += 1;
            if block[mid].doc_id < p.doc_id {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < block.len() && block[lo].doc_id == p.doc_id {
            out.push((p.doc_id, p.tf, block[lo].tf));
        }
    }

    counts.blocks_skipped += decoded_blocks.iter().filter(|&&d| !d).count() as u64;
    counts.results += out.len() as u64;
    out
}

/// Linear-merge union (§2.2, §4.2): decompresses both lists and merges like
/// a 2-way merge sort; matched docIDs carry both term frequencies.
///
/// Returns `(docID, tf_a, tf_b)` with a zero tf marking "absent from that
/// list".
pub fn union_merge(
    a: &EncodedList,
    b: &EncodedList,
    counts: &mut OpCounts,
) -> Vec<(DocId, u32, u32)> {
    let pa = decode_full(a, counts);
    let pb = decode_full(b, counts);
    let mut out = Vec::with_capacity(pa.len() + pb.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < pa.len() && j < pb.len() {
        counts.comparisons += 1;
        match pa[i].doc_id.cmp(&pb[j].doc_id) {
            std::cmp::Ordering::Less => {
                out.push((pa[i].doc_id, pa[i].tf, 0));
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push((pb[j].doc_id, 0, pb[j].tf));
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((pa[i].doc_id, pa[i].tf, pb[j].tf));
                i += 1;
                j += 1;
            }
        }
    }
    // Flush the remainder (the paper's "remaining postings from the other
    // DCU are flushed to memory").
    for p in &pa[i..] {
        out.push((p.doc_id, p.tf, 0));
    }
    for p in &pb[j..] {
        out.push((p.doc_id, 0, p.tf));
    }
    counts.results += out.len() as u64;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iiu_index::{Partitioner, Posting, PostingList};
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn encode(ids: &[(u32, u32)], max_size: usize) -> EncodedList {
        let list = PostingList::from_sorted(
            ids.iter().map(|&(d, t)| Posting::new(d, t)).collect(),
        );
        let part = Partitioner::dynamic(max_size).partition(&list);
        EncodedList::encode(&list, &part).unwrap()
    }

    #[test]
    fn decode_full_counts_everything() {
        let list = encode(&[(0, 1), (5, 2), (9, 1), (100, 3)], 2);
        let mut c = OpCounts::default();
        let postings = decode_full(&list, &mut c);
        assert_eq!(postings.len(), 4);
        assert_eq!(c.postings_decoded, 4);
        assert_eq!(c.blocks_decoded, list.num_blocks() as u64);
    }

    #[test]
    fn intersect_paper_example() {
        // L(business) ∩ L(cameo) = [11, 38, 46] (§2.2).
        let business = encode(&[(0, 1), (2, 1), (11, 1), (20, 1), (38, 1), (46, 1)], 2);
        let cameo = encode(
            &[(1, 2), (11, 2), (38, 2), (39, 2), (46, 2), (55, 2), (62, 2)],
            2,
        );
        let mut c = OpCounts::default();
        let result = intersect_svs(&business, &cameo, &mut c);
        assert_eq!(
            result.iter().map(|&(d, _, _)| d).collect::<Vec<_>>(),
            vec![11, 38, 46]
        );
        assert_eq!(result[0], (11, 1, 2));
        assert_eq!(c.results, 3);
        assert!(c.binary_probes > 0);
    }

    #[test]
    fn intersect_skips_unneeded_blocks() {
        // Short list hits only the tail of the long list: head blocks
        // must be skipped, not decompressed.
        let long: Vec<(u32, u32)> = (0..1000).map(|i| (i * 2, 1)).collect();
        let long = encode(&long, 64);
        let short = encode(&[(1990, 1), (1998, 1)], 64);
        let mut c = OpCounts::default();
        let result = intersect_svs(&short, &long, &mut c);
        assert_eq!(result.len(), 2);
        assert!(c.blocks_skipped > 10, "expected most blocks skipped, got {c:?}");
        assert!(c.blocks_decoded < 5);
    }

    #[test]
    fn intersect_docid_before_first_skip() {
        let long = encode(&[(100, 1), (200, 1)], 2);
        let short = encode(&[(5, 1), (100, 1)], 2);
        let mut c = OpCounts::default();
        let result = intersect_svs(&short, &long, &mut c);
        assert_eq!(result.len(), 1);
        assert_eq!(result[0].0, 100);
    }

    #[test]
    fn union_paper_example() {
        let business = encode(&[(0, 1), (2, 1), (11, 1), (20, 1), (38, 1), (46, 1)], 3);
        let cameo = encode(
            &[(1, 2), (11, 2), (38, 2), (39, 2), (46, 2), (55, 2), (62, 2)],
            3,
        );
        let mut c = OpCounts::default();
        let result = union_merge(&business, &cameo, &mut c);
        assert_eq!(
            result.iter().map(|&(d, _, _)| d).collect::<Vec<_>>(),
            vec![0, 1, 2, 11, 20, 38, 39, 46, 55, 62]
        );
        // Matched docID carries both tfs.
        let row11 = result.iter().find(|r| r.0 == 11).unwrap();
        assert_eq!((row11.1, row11.2), (1, 2));
        let row55 = result.iter().find(|r| r.0 == 55).unwrap();
        assert_eq!((row55.1, row55.2), (0, 2));
    }

    #[test]
    fn union_with_empty_list() {
        let a = encode(&[(3, 1), (9, 2)], 2);
        let b = EncodedList::default();
        let mut c = OpCounts::default();
        let result = union_merge(&a, &b, &mut c);
        assert_eq!(result.len(), 2);
        assert_eq!(result[0], (3, 1, 0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_intersection_matches_btreeset(
            a in proptest::collection::btree_set(0u32..3000, 1..150),
            b in proptest::collection::btree_set(0u32..3000, 1..150),
        ) {
            let ea = encode(&a.iter().map(|&d| (d, 1)).collect::<Vec<_>>(), 16);
            let eb = encode(&b.iter().map(|&d| (d, 2)).collect::<Vec<_>>(), 16);
            let (short, long) = if a.len() <= b.len() { (&ea, &eb) } else { (&eb, &ea) };
            let mut c = OpCounts::default();
            let got: Vec<u32> = intersect_svs(short, long, &mut c)
                .into_iter().map(|(d, _, _)| d).collect();
            let want: Vec<u32> = a.intersection(&b).copied().collect();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn prop_union_matches_btreemap(
            a in proptest::collection::btree_set(0u32..3000, 0..150),
            b in proptest::collection::btree_set(0u32..3000, 0..150),
        ) {
            let ea = encode(&a.iter().map(|&d| (d, 1)).collect::<Vec<_>>(), 16);
            let eb = encode(&b.iter().map(|&d| (d, 2)).collect::<Vec<_>>(), 16);
            let mut c = OpCounts::default();
            let got = union_merge(&ea, &eb, &mut c);
            let mut want: BTreeMap<u32, (u32, u32)> = BTreeMap::new();
            for &d in &a { want.entry(d).or_insert((0, 0)).0 = 1; }
            for &d in &b { want.entry(d).or_insert((0, 0)).1 = 2; }
            let want: Vec<(u32, u32, u32)> =
                want.into_iter().map(|(d, (x, y))| (d, x, y)).collect();
            prop_assert_eq!(got, want);
        }
    }
}
