//! Top-k selection with a size-k min-heap (the paper's Fig. 13 pseudocode,
//! executed on the host CPU in both the baseline and the IIU system).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use iiu_index::DocId;

/// A scored document.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Document identifier.
    pub doc_id: DocId,
    /// Query score (larger is better).
    pub score: f64,
}

/// Wrapper giving `Hit` the min-heap ordering the algorithm needs
/// (`BinaryHeap` is a max-heap, so order is reversed; ties break on docID
/// so results are deterministic).
#[derive(Debug, Clone, Copy, PartialEq)]
struct MinScore(Hit);

impl Eq for MinScore {}

impl Ord for MinScore {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed on score (min-heap); among tied scores the *largest*
        // docID is the heap top, so ties evict high docIDs and the final
        // order (descending score, ascending docID) matches a full sort.
        other
            .0
            .score
            .partial_cmp(&self.0.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.0.doc_id.cmp(&other.0.doc_id))
    }
}

impl PartialOrd for MinScore {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Selects the `k` highest-scoring hits, returned in descending score
/// order (ties broken by ascending docID).
///
/// This is exactly the paper's algorithm: a size-k priority queue that
/// admits a candidate only if it beats the current minimum.
///
/// # Example
///
/// ```
/// use iiu_baseline::topk::{top_k, Hit};
/// let hits = vec![
///     Hit { doc_id: 1, score: 0.5 },
///     Hit { doc_id: 2, score: 2.0 },
///     Hit { doc_id: 3, score: 1.0 },
/// ];
/// let top = top_k(hits, 2);
/// assert_eq!(top[0].doc_id, 2);
/// assert_eq!(top[1].doc_id, 3);
/// ```
pub fn top_k(candidates: impl IntoIterator<Item = Hit>, k: usize) -> Vec<Hit> {
    if k == 0 {
        return Vec::new();
    }
    let mut pq: BinaryHeap<MinScore> = BinaryHeap::with_capacity(k + 1);
    for hit in candidates {
        if pq.len() < k {
            pq.push(MinScore(hit));
        } else if let Some(min) = pq.peek() {
            if min.0.score < hit.score {
                pq.pop();
                pq.push(MinScore(hit));
            }
        }
    }
    let mut out: Vec<Hit> = pq.into_iter().map(|m| m.0).collect();
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.doc_id.cmp(&b.doc_id))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hit(doc_id: u32, score: f64) -> Hit {
        Hit { doc_id, score }
    }

    #[test]
    fn fewer_candidates_than_k() {
        let top = top_k(vec![hit(1, 1.0), hit(2, 2.0)], 10);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].doc_id, 2);
    }

    #[test]
    fn k_zero_returns_nothing() {
        assert!(top_k(vec![hit(1, 1.0)], 0).is_empty());
    }

    #[test]
    fn exact_selection_and_order() {
        let cands: Vec<Hit> = (0..100).map(|i| hit(i, f64::from(i % 10))).collect();
        let top = top_k(cands, 5);
        assert_eq!(top.len(), 5);
        assert!(top.iter().all(|h| h.score == 9.0));
        // Ties break by ascending docID.
        assert_eq!(
            top.iter().map(|h| h.doc_id).collect::<Vec<_>>(),
            vec![9, 19, 29, 39, 49]
        );
    }

    #[test]
    fn equal_minimum_is_not_replaced() {
        // A candidate equal to the heap minimum must not evict it
        // (pq.top().value < curr.score is strict in the paper).
        let top = top_k(vec![hit(1, 5.0), hit(2, 5.0), hit(3, 5.0)], 1);
        assert_eq!(top[0].doc_id, 1);
    }

    proptest! {
        #[test]
        fn prop_matches_full_sort(
            scores in proptest::collection::vec(0u32..1000, 0..300),
            k in 0usize..50,
        ) {
            let cands: Vec<Hit> = scores.iter().enumerate()
                .map(|(i, &s)| hit(i as u32, f64::from(s)))
                .collect();
            let got = top_k(cands.clone(), k);
            let mut want = cands;
            want.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap()
                .then_with(|| a.doc_id.cmp(&b.doc_id)));
            want.truncate(k);
            prop_assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.score, w.score);
                prop_assert_eq!(g.doc_id, w.doc_id);
            }
        }
    }
}
