//! Top-k selection with a size-k min-heap (the paper's Fig. 13 pseudocode,
//! executed on the host CPU in both the baseline and the IIU system).
//!
//! [`rank_cmp`] is the single definition of result order — descending
//! score, ties broken by ascending docID — shared by the exhaustive heap,
//! the pruned-mode [`FusedTopK`], and the simulator's host heap, so pruned
//! vs exhaustive comparisons can be exact rather than set-based.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU32, Ordering as AtomicOrdering};

use iiu_index::{DocId, Fixed};

/// A scored document.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Document identifier.
    pub doc_id: DocId,
    /// Query score (larger is better).
    pub score: f64,
}

/// The canonical result ordering: descending score, equal scores by
/// ascending docID. `Less` means `a` ranks ahead of `b`. Every ranked
/// surface (exhaustive top-k, the fused pruning heap, the simulator's
/// host heap) sorts with this one function.
pub fn rank_cmp(a: &Hit, b: &Hit) -> Ordering {
    b.score
        .partial_cmp(&a.score)
        .unwrap_or(Ordering::Equal)
        .then_with(|| a.doc_id.cmp(&b.doc_id))
}

/// Wrapper giving `Hit` the min-heap ordering the algorithm needs:
/// `BinaryHeap` is a max-heap, so its top is the *worst-ranked* hit under
/// [`rank_cmp`] — the minimum score, ties evicting the largest docID —
/// and the final drain matches a full [`rank_cmp`] sort.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MinScore(Hit);

impl Eq for MinScore {}

impl Ord for MinScore {
    fn cmp(&self, other: &Self) -> Ordering {
        rank_cmp(&self.0, &other.0)
    }
}

impl PartialOrd for MinScore {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Selects the `k` highest-scoring hits, returned in descending score
/// order (ties broken by ascending docID).
///
/// This is exactly the paper's algorithm: a size-k priority queue that
/// admits a candidate only if it beats the current minimum.
///
/// # Example
///
/// ```
/// use iiu_baseline::topk::{top_k, Hit};
/// let hits = vec![
///     Hit { doc_id: 1, score: 0.5 },
///     Hit { doc_id: 2, score: 2.0 },
///     Hit { doc_id: 3, score: 1.0 },
/// ];
/// let top = top_k(hits, 2);
/// assert_eq!(top[0].doc_id, 2);
/// assert_eq!(top[1].doc_id, 3);
/// ```
pub fn top_k(candidates: impl IntoIterator<Item = Hit>, k: usize) -> Vec<Hit> {
    if k == 0 {
        return Vec::new();
    }
    let mut pq: BinaryHeap<MinScore> = BinaryHeap::with_capacity(k + 1);
    for hit in candidates {
        if pq.len() < k {
            pq.push(MinScore(hit));
        } else if let Some(min) = pq.peek() {
            if min.0.score < hit.score {
                pq.pop();
                pq.push(MinScore(hit));
            }
        }
    }
    let mut out: Vec<Hit> = pq.into_iter().map(|m| m.0).collect();
    out.sort_by(rank_cmp);
    out
}

/// A fixed-point hit in the fused heap (scores stay in the Q16.16 domain
/// so the admission threshold can be compared against block bounds without
/// conversion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FixedHit {
    doc_id: DocId,
    score: Fixed,
}

/// Min-heap ordering for [`FixedHit`], the `Fixed`-domain mirror of
/// [`MinScore`]. `Fixed → f64` conversion is exact and monotone, so this
/// heap admits and evicts exactly the hits the f64 heap would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MinFixed(FixedHit);

impl Ord for MinFixed {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.score.cmp(&self.0.score).then_with(|| self.0.doc_id.cmp(&other.0.doc_id))
    }
}

impl PartialOrd for MinFixed {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A size-k min-heap over fixed-point scores that exposes its admission
/// threshold, so scoring loops can skip whole blocks whose upper bound
/// cannot beat it (block-max pruning).
///
/// Admission is strict (`candidate > current minimum`), exactly like
/// [`top_k`]; with skipping gated on `bound <= threshold`, the pruned and
/// exhaustive paths admit the *same sequence* of hits and therefore return
/// bit-identical results.
#[derive(Debug, Clone)]
pub struct FusedTopK {
    k: usize,
    heap: BinaryHeap<MinFixed>,
}

impl FusedTopK {
    /// Creates an empty heap selecting the best `k` hits.
    pub fn new(k: usize) -> Self {
        FusedTopK { k, heap: BinaryHeap::with_capacity(k.saturating_add(1).min(1 << 20)) }
    }

    /// Number of hits currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no hit has been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Offers a candidate; admitted only while the heap is filling or when
    /// it strictly beats the current minimum (ties never evict).
    pub fn push(&mut self, doc_id: DocId, score: Fixed) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(MinFixed(FixedHit { doc_id, score }));
        } else if let Some(min) = self.heap.peek() {
            if min.0.score < score {
                self.heap.pop();
                self.heap.push(MinFixed(FixedHit { doc_id, score }));
            }
        }
    }

    /// The pruning threshold: any candidate with `score <= threshold` is
    /// guaranteed to be refused, so blocks whose upper bound is at or
    /// below it may be skipped without changing the result.
    ///
    /// `None` while the heap is still filling (nothing may be skipped);
    /// for `k == 0` every candidate is refused, so the threshold is the
    /// maximum representable score.
    pub fn threshold(&self) -> Option<Fixed> {
        if self.k == 0 {
            return Some(Fixed::from_raw(u32::MAX));
        }
        if self.heap.len() < self.k {
            return None;
        }
        self.heap.peek().map(|m| m.0.score)
    }

    /// Drains into [`Hit`]s in canonical [`rank_cmp`] order — the same
    /// shape [`top_k`] returns.
    pub fn into_hits(self) -> Vec<Hit> {
        let mut out: Vec<Hit> = self
            .heap
            .into_iter()
            .map(|m| Hit { doc_id: m.0.doc_id, score: m.0.score.to_f64() })
            .collect();
        out.sort_by(rank_cmp);
        out
    }
}

/// A pruning threshold shared across shards executing one query.
///
/// Each shard publishes its local [`FusedTopK::threshold`] as it grows;
/// late shards then read the maximum published so far and skip blocks
/// earlier shards already priced out. Two rules make this safe:
///
/// * **Publication is monotone.** [`publish`](Self::publish) uses
///   `fetch_max`, never a plain store: with a racy store, a shard holding
///   a *stale* low threshold could overwrite a higher one already
///   published, and a shard that read between the two values would skip a
///   block it was never entitled to skip. `fetch_max` makes the visible
///   value non-decreasing under every interleaving, so any value a shard
///   reads was genuinely reached by some shard's heap. `Relaxed` ordering
///   suffices — the value itself carries the invariant; no other memory
///   is published alongside it.
/// * **Foreign thresholds are strict.** A published value `S` proves that
///   some shard holds k hits scoring `>= S` — so scores `< S` are out of
///   the global top-k, but a score *equal* to `S` may still belong in it
///   (a tie at the global k-th boundary, won on docID). [`strict`]
///   (Self::strict) therefore returns `S − 1`: under the engines' skip
///   rule `bound <= threshold`, that prices out exactly the provably-dead
///   scores `< S` and never a boundary tie. (A shard's *own* heap
///   threshold stays usable non-strictly, exactly as in single-shard
///   pruning, because local pushes happen in ascending docID order.)
///
/// The raw value is the Q16.16 bit pattern of the threshold; `0` (no
/// score can be below zero) doubles as "nothing published yet".
#[derive(Debug, Default)]
pub struct SharedThreshold(AtomicU32);

impl SharedThreshold {
    /// A threshold with nothing published yet.
    pub fn new() -> Self {
        SharedThreshold(AtomicU32::new(0))
    }

    /// Raises the shared threshold to at least `t`. Monotone under any
    /// interleaving: a concurrent publish of a smaller value can never
    /// lower what other shards see.
    pub fn publish(&self, t: Fixed) {
        self.0.fetch_max(t.raw(), AtomicOrdering::Relaxed);
    }

    /// The highest score provably refused by every shard, usable with the
    /// engines' non-strict skip rule (`bound <= threshold`). `None` until
    /// a nonzero threshold has been published.
    pub fn strict(&self) -> Option<Fixed> {
        let raw = self.0.load(AtomicOrdering::Relaxed);
        (raw > 0).then(|| Fixed::from_raw(raw - 1))
    }

    /// The raw published maximum (tests and introspection).
    pub fn raw(&self) -> u32 {
        self.0.load(AtomicOrdering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hit(doc_id: u32, score: f64) -> Hit {
        Hit { doc_id, score }
    }

    #[test]
    fn shared_threshold_is_monotone_and_strict() {
        let s = SharedThreshold::new();
        assert_eq!(s.strict(), None, "nothing published yet");
        s.publish(Fixed::from_f64(2.0));
        assert_eq!(s.raw(), Fixed::from_f64(2.0).raw());
        // Publishing a smaller value must not lower the visible maximum.
        s.publish(Fixed::from_f64(1.0));
        assert_eq!(s.raw(), Fixed::from_f64(2.0).raw());
        s.publish(Fixed::from_f64(3.0));
        assert_eq!(s.raw(), Fixed::from_f64(3.0).raw());
        // Strict reading: one ulp below the published value, so a
        // boundary tie (score == published) is never priced out.
        assert_eq!(s.strict(), Some(Fixed::from_raw(Fixed::from_f64(3.0).raw() - 1)));
    }

    #[test]
    fn shared_threshold_publish_races_keep_the_maximum() {
        // Regression for the publish protocol: hammer one threshold from
        // two threads publishing interleaved rising-and-falling values. A
        // racy relaxed *store* would let a stale low value overwrite a
        // higher one; `fetch_max` must keep the running maximum exact at
        // every step and end at the global maximum.
        let s = std::sync::Arc::new(SharedThreshold::new());
        let mut handles = Vec::new();
        for lane in 0..2u32 {
            let s = std::sync::Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                // Lane 0 publishes 1..=1000 ascending; lane 1 descending,
                // so late publishes in lane 1 are stale by construction.
                for i in 1..=1000u32 {
                    let v = if lane == 0 { i } else { 1001 - i };
                    s.publish(Fixed::from_raw(v));
                    let seen = s.raw();
                    assert!(seen >= v, "visible threshold dropped below a published value");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.raw(), 1000);
    }

    #[test]
    fn fewer_candidates_than_k() {
        let top = top_k(vec![hit(1, 1.0), hit(2, 2.0)], 10);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].doc_id, 2);
    }

    #[test]
    fn k_zero_returns_nothing() {
        assert!(top_k(vec![hit(1, 1.0)], 0).is_empty());
    }

    #[test]
    fn exact_selection_and_order() {
        let cands: Vec<Hit> = (0..100).map(|i| hit(i, f64::from(i % 10))).collect();
        let top = top_k(cands, 5);
        assert_eq!(top.len(), 5);
        assert!(top.iter().all(|h| h.score == 9.0));
        // Ties break by ascending docID.
        assert_eq!(top.iter().map(|h| h.doc_id).collect::<Vec<_>>(), vec![9, 19, 29, 39, 49]);
    }

    #[test]
    fn equal_minimum_is_not_replaced() {
        // A candidate equal to the heap minimum must not evict it
        // (pq.top().value < curr.score is strict in the paper).
        let top = top_k(vec![hit(1, 5.0), hit(2, 5.0), hit(3, 5.0)], 1);
        assert_eq!(top[0].doc_id, 1);
    }

    #[test]
    fn rank_cmp_orders_by_score_then_docid() {
        assert_eq!(rank_cmp(&hit(5, 2.0), &hit(1, 1.0)), std::cmp::Ordering::Less);
        assert_eq!(rank_cmp(&hit(1, 1.0), &hit(5, 2.0)), std::cmp::Ordering::Greater);
        assert_eq!(rank_cmp(&hit(1, 1.0), &hit(5, 1.0)), std::cmp::Ordering::Less);
        assert_eq!(rank_cmp(&hit(3, 1.0), &hit(3, 1.0)), std::cmp::Ordering::Equal);
    }

    #[test]
    fn fused_threshold_lifecycle() {
        let mut f = FusedTopK::new(2);
        assert_eq!(f.threshold(), None, "filling heap must not prune");
        f.push(1, Fixed::from_f64(1.0));
        assert_eq!(f.threshold(), None);
        f.push(2, Fixed::from_f64(3.0));
        assert_eq!(f.threshold(), Some(Fixed::from_f64(1.0)));
        // Equal to the minimum: refused, threshold unchanged.
        f.push(3, Fixed::from_f64(1.0));
        assert_eq!(f.threshold(), Some(Fixed::from_f64(1.0)));
        // Strictly above: admitted, threshold grows.
        f.push(4, Fixed::from_f64(2.0));
        assert_eq!(f.threshold(), Some(Fixed::from_f64(2.0)));
        let hits = f.into_hits();
        assert_eq!(hits.iter().map(|h| h.doc_id).collect::<Vec<_>>(), vec![2, 4]);
    }

    #[test]
    fn fused_k_zero_refuses_everything() {
        let mut f = FusedTopK::new(0);
        assert_eq!(f.threshold(), Some(Fixed::from_raw(u32::MAX)));
        f.push(1, Fixed::from_raw(u32::MAX));
        assert!(f.is_empty());
        assert!(f.into_hits().is_empty());
    }

    proptest! {
        /// The fused Fixed-domain heap returns exactly what [`top_k`]
        /// returns for the same candidate stream (scores converted the
        /// way the engines convert them).
        #[test]
        fn prop_fused_matches_top_k(
            raws in proptest::collection::vec(0u32..5_000_000, 0..300),
            k in 0usize..50,
        ) {
            let mut fused = FusedTopK::new(k);
            for (i, &r) in raws.iter().enumerate() {
                fused.push(i as u32, Fixed::from_raw(r));
            }
            let cands: Vec<Hit> = raws.iter().enumerate()
                .map(|(i, &r)| hit(i as u32, Fixed::from_raw(r).to_f64()))
                .collect();
            let want = top_k(cands, k);
            let got = fused.into_hits();
            prop_assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.doc_id, w.doc_id);
                prop_assert_eq!(g.score, w.score);
            }
        }

        #[test]
        fn prop_matches_full_sort(
            scores in proptest::collection::vec(0u32..1000, 0..300),
            k in 0usize..50,
        ) {
            let cands: Vec<Hit> = scores.iter().enumerate()
                .map(|(i, &s)| hit(i as u32, f64::from(s)))
                .collect();
            let got = top_k(cands.clone(), k);
            let mut want = cands;
            want.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap()
                .then_with(|| a.doc_id.cmp(&b.doc_id)));
            want.truncate(k);
            prop_assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.score, w.score);
                prop_assert_eq!(g.doc_id, w.doc_id);
            }
        }
    }
}
