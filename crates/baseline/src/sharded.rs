//! Document-sharded intra-query parallelism: a persistent per-shard
//! worker pool and an engine that fans one query out across shards,
//! merges with [`rank_cmp`], and stays bit-identical to the unsharded
//! engine.
//!
//! # Execution substrate
//!
//! [`ShardPool`] owns a fixed set of pool worker threads
//! ([`ShardPoolConfig::pool_threads`], default = max(cores, shards))
//! draining one shared deque of `(query, shard)` tasks. Any worker can
//! execute any shard's task — N concurrent queries each fan across M
//! shards without oversubscribing the machine, and idle shard capacity
//! absorbs inter-query load (the paper's §4.4 *hybrid* mode). Each
//! worker owns a private [`DecodeScratch`], so tasks reuse warm decode
//! buffers without cross-thread sharing. Jobs are boxed closures; each
//! runs under `catch_unwind`, so a panicking query marks its shard's
//! slot failed instead of killing the worker or hanging the caller.
//!
//! Supervision is two-plane: *shard* state (quarantine after repeated
//! failures, half-open probes, wedge/drain accounting for tasks that
//! missed a fan-out deadline) and *worker* state (liveness, kill
//! switches, respawn with bounded exponential backoff). A dead worker no
//! longer takes a shard down with it — the remaining workers keep
//! serving every shard.
//!
//! # Why sharded results are bit-identical
//!
//! Shards are built with global scoring statistics
//! ([`iiu_index::shard`]), so any document's Q16.16 score is the same in
//! its shard as in the whole index. Each shard computes a *local* top-k
//! under [`rank_cmp`] on (score, local docID); the round-robin docID map
//! is monotone per shard, so local rank order equals global rank order
//! restricted to the shard. If a document is in the global top-k, fewer
//! than k documents rank ahead of it globally — so fewer than k rank
//! ahead of it in its own shard, and it survives the shard-local top-k.
//! Concatenating the per-shard results, mapping docIDs back to global,
//! sorting with the shared [`rank_cmp`], and truncating to k therefore
//! yields exactly the unsharded result, ties included.
//!
//! Pruned execution additionally exchanges a [`SharedThreshold`]: shards
//! publish their local heap thresholds monotonically and skip blocks
//! under the *strict* foreign threshold (see
//! [`crate::topk::SharedThreshold`]), which prices out only documents
//! provably below the global k-th score — never a boundary tie — so the
//! per-shard result still contains every global top-k member from that
//! shard.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use iiu_index::faultinject::ShardChaosPlan;
use iiu_index::score::term_score_fixed;
use iiu_index::shard::ShardedIndex;
use iiu_index::{IndexError, InvertedIndex, TermId};

use crate::cost::{CpuCostModel, PhaseBreakdown};
use crate::ops::{self, DecodeScratch, OpCounts};
use crate::pruned;
use crate::topk::{rank_cmp, top_k, Hit, SharedThreshold};

/// Locks a mutex, recovering the guard if a previous holder panicked
/// (shard state stays usable; the panicked query already reported
/// failure through its result slot).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

type Job = Box<dyn FnOnce(&InvertedIndex, &mut DecodeScratch) + Send>;

/// One queued unit of work: one fan-out's closure bound to one shard.
struct Task {
    shard: usize,
    job: Job,
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task").field("shard", &self.shard).finish_non_exhaustive()
    }
}

/// Supervision policy for a [`ShardPool`]: how many workers share the
/// task deque, how long the coordinator waits per fan-out, when a
/// failing shard is quarantined, and how dead workers are respawned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardPoolConfig {
    /// Number of pool worker threads draining the shared task deque.
    /// `0` (the default) auto-sizes to `max(available cores, shards)`,
    /// so a single fan-out is never serialized worse than the old
    /// thread-per-shard topology while concurrent queries still share
    /// the same bounded set of threads.
    pub pool_threads: usize,
    /// Maximum time one fan-out waits for its dispatched shards. A shard
    /// missing the deadline is marked [`ShardHealth::Wedged`], its slot
    /// comes back `None`, and the run proceeds with the shards that
    /// answered. `None` (the default) waits unboundedly — the legacy
    /// library behavior; serving layers should always set a deadline.
    pub deadline: Option<Duration>,
    /// Consecutive failures (panic, timeout, dead dispatch) after which a
    /// shard is quarantined: skipped at fan-out, then probed half-open
    /// after [`Self::quarantine_cooldown`]. `0` disables quarantine.
    pub quarantine_threshold: u32,
    /// How long a quarantined shard sits out before one probe query is
    /// allowed through (half-open, mirroring the serve circuit breaker).
    pub quarantine_cooldown: Duration,
    /// Base delay before respawning a dead worker; doubles per
    /// consecutive failed attempt up to [`Self::respawn_max_backoff`].
    pub respawn_base_backoff: Duration,
    /// Cap on the respawn backoff.
    pub respawn_max_backoff: Duration,
    /// How long `Drop` waits for each worker to finish before detaching
    /// it (a wedged worker must not deadlock shutdown).
    pub drop_join_timeout: Duration,
}

impl ShardPoolConfig {
    /// The effective worker count for an index with `num_shards` shards
    /// (resolving the `pool_threads == 0` auto-sizing rule).
    pub fn effective_pool_threads(&self, num_shards: usize) -> usize {
        if self.pool_threads == 0 {
            let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
            cores.max(num_shards).max(1)
        } else {
            self.pool_threads
        }
    }

    /// The single place the per-fan-out deadline policy becomes an
    /// absolute instant, shared by [`ShardPool::run_on`] (supervision)
    /// and scheduler layers that pre-compute a query's slack: `None`
    /// waits unboundedly, otherwise the run resolves by `now +
    /// deadline`.
    pub fn fanout_deadline_from(&self, now: Instant) -> Option<Instant> {
        self.deadline.map(|d| now + d)
    }

    /// [`Self::fanout_deadline_from`] anchored at the current instant.
    pub fn fanout_deadline(&self) -> Option<Instant> {
        self.fanout_deadline_from(Instant::now())
    }
}

impl Default for ShardPoolConfig {
    fn default() -> Self {
        ShardPoolConfig {
            pool_threads: 0,
            deadline: None,
            quarantine_threshold: 3,
            quarantine_cooldown: Duration::from_millis(100),
            respawn_base_backoff: Duration::from_millis(10),
            respawn_max_backoff: Duration::from_secs(1),
            drop_join_timeout: Duration::from_millis(500),
        }
    }
}

/// A shard's current supervision state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Answering normally.
    Ok,
    /// Last execution panicked (still dispatched; quarantine trips after
    /// enough consecutive failures).
    Panicked,
    /// Missed the fan-out deadline; skipped until its backlog drains.
    Wedged,
    /// No live pool worker was available to run this shard's task (all
    /// workers dead or unspawnable; respawn with bounded backoff is
    /// pending). Worker-plane liveness itself is reported per worker by
    /// [`PoolWorkerReport`].
    DeadWorker,
    /// Tripped the consecutive-failure threshold; skipped at fan-out
    /// until the cooldown elapses, then probed half-open.
    Quarantined,
}

impl std::fmt::Display for ShardHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ShardHealth::Ok => "ok",
            ShardHealth::Panicked => "panicked",
            ShardHealth::Wedged => "wedged",
            ShardHealth::DeadWorker => "dead-worker",
            ShardHealth::Quarantined => "quarantined",
        };
        f.write_str(s)
    }
}

/// What happened to one shard during one [`ShardPool::run_on`] fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardOutcome {
    /// Not in the run's target set.
    NotDispatched,
    /// Dispatched and answered in time.
    Answered,
    /// Dispatched; the execution panicked (slot is `None`).
    Panicked,
    /// Dispatched; missed the deadline (slot is `None`, shard marked
    /// wedged).
    TimedOut,
    /// Skipped: still draining a backlog from an earlier timeout.
    SkippedWedged,
    /// Skipped: quarantined and not yet due for a half-open probe.
    SkippedQuarantined,
    /// Skipped: no live pool worker to run the task (all dead or
    /// unspawnable; respawn pending).
    NoWorker,
}

impl ShardOutcome {
    /// Whether the shard produced a result this run.
    pub fn answered(self) -> bool {
        self == ShardOutcome::Answered
    }
}

/// Cumulative supervision counters for one shard, as reported by
/// [`ShardPool::supervision`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardHealthReport {
    /// Shard index.
    pub shard: usize,
    /// Current state.
    pub health: ShardHealth,
    /// Consecutive failures since the last success.
    pub consecutive_failures: u32,
    /// Total failed executions (panics + timeouts + dead dispatches).
    pub failures: u64,
    /// Executions that panicked.
    pub panics: u64,
    /// Executions that missed the fan-out deadline.
    pub timeouts: u64,
    /// Times quarantine tripped.
    pub quarantine_trips: u64,
    /// Times a half-open probe recovered the shard from quarantine.
    pub quarantine_recoveries: u64,
}

/// Worker-plane liveness and counters for one pool worker, as reported
/// by [`ShardPool::worker_reports`]. (The shard plane —
/// [`ShardHealthReport`] — tracks quarantine and wedge state; this
/// plane tracks the threads actually executing tasks.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolWorkerReport {
    /// Worker slot index (stable across respawns).
    pub worker: usize,
    /// Whether the worker thread is currently running.
    pub alive: bool,
    /// Tasks this slot's threads have finished (cumulative across
    /// respawns).
    pub tasks_completed: u64,
    /// Times a dead thread in this slot was respawned.
    pub respawns: u64,
}

/// State shared between the pool handle and its worker threads.
#[derive(Debug)]
struct PoolShared {
    index: Arc<ShardedIndex>,
    /// The single task deque every worker drains.
    queue: Mutex<VecDeque<Task>>,
    not_empty: Condvar,
    /// Pool-wide stop flag (set on `Drop`).
    shutdown: AtomicBool,
    /// Per-shard completed-task counters — the other half of the
    /// wedge-drain accounting (`ShardState::submitted` is the half
    /// behind the supervision mutex). Incremented by whichever worker
    /// finishes (or fast-drains) the task.
    completed: Vec<AtomicU64>,
}

/// Shard-plane supervision state (behind the pool's supervision mutex).
#[derive(Debug)]
struct ShardState {
    /// Tasks enqueued for this shard. `completed >= submitted` (see
    /// [`PoolShared::completed`]) means the backlog has drained.
    submitted: u64,
    health: ShardHealth,
    consecutive_failures: u32,
    quarantined_at: Option<Instant>,
    probe_in_flight: bool,
    failures: u64,
    panics: u64,
    timeouts: u64,
    dead_dispatches: u64,
    quarantine_trips: u64,
    quarantine_recoveries: u64,
}

impl ShardState {
    fn new() -> Self {
        ShardState {
            submitted: 0,
            health: ShardHealth::Ok,
            consecutive_failures: 0,
            quarantined_at: None,
            probe_in_flight: false,
            failures: 0,
            panics: 0,
            timeouts: 0,
            dead_dispatches: 0,
            quarantine_trips: 0,
            quarantine_recoveries: 0,
        }
    }
}

/// Worker-plane bookkeeping for one pool worker slot (behind the
/// supervision mutex).
#[derive(Debug)]
struct PoolWorker {
    handle: Option<JoinHandle<()>>,
    /// Kill switch the worker checks between tasks
    /// ([`ShardPool::kill_worker`]).
    die: Arc<AtomicBool>,
    /// Tasks finished by this slot's threads (incremented by the worker).
    tasks_done: Arc<AtomicU64>,
    /// `tasks_done` observed at the last (re)spawn; progress past it
    /// proves the respawned thread works and resets the backoff.
    tasks_done_at_spawn: u64,
    respawn_attempts: u32,
    last_respawn: Option<Instant>,
    respawns: u64,
}

impl PoolWorker {
    fn dead(&self) -> bool {
        self.handle.as_ref().is_none_or(|h| h.is_finished())
    }
}

/// Mutex-protected supervision state: both planes, one lock.
#[derive(Debug)]
struct PoolState {
    shards: Vec<ShardState>,
    workers: Vec<PoolWorker>,
}

/// The per-run result slots plus what happened to every shard.
#[derive(Debug)]
pub struct ShardRun<T> {
    /// Per-shard results in shard order; `None` where the shard did not
    /// answer (see the matching outcome for why).
    pub slots: Vec<Option<T>>,
    /// Per-shard dispatch outcome in shard order.
    pub outcomes: Vec<ShardOutcome>,
}

fn spawn_pool_worker(
    shared: &Arc<PoolShared>,
    w: usize,
    die: Arc<AtomicBool>,
    tasks_done: Arc<AtomicU64>,
) -> std::io::Result<JoinHandle<()>> {
    let shared = Arc::clone(shared);
    let builder = std::thread::Builder::new().name(format!("iiu-pool-{w}"));
    builder.spawn(move || {
        let mut scratch = DecodeScratch::new();
        loop {
            let Task { shard, job } = {
                let mut q = lock(&shared.queue);
                loop {
                    if die.load(Ordering::Relaxed) || shared.shutdown.load(Ordering::Relaxed) {
                        return;
                    }
                    if let Some(t) = q.pop_front() {
                        break t;
                    }
                    q = shared.not_empty.wait(q).unwrap_or_else(PoisonError::into_inner);
                }
            };
            // The dispatch path wraps the caller's closure in its own
            // catch_unwind so the result slot is always signalled; this
            // outer guard keeps the worker alive even if that wrapper
            // itself panics.
            // Re-key the block cache to this task's shard: `(term,
            // block)` is only unique within one index, and this worker
            // serves them all.
            scratch.set_realm(shard as u64);
            let _ = catch_unwind(AssertUnwindSafe(|| {
                job(shared.index.shard(shard), &mut scratch);
            }));
            if let Some(c) = shared.completed.get(shard) {
                c.fetch_add(1, Ordering::Relaxed);
            }
            tasks_done.fetch_add(1, Ordering::Relaxed);
        }
    })
}

/// A persistent shared work pool: `pool_threads` supervised workers
/// draining one deque of `(query, shard)` tasks. The execution substrate
/// sharded engines (and higher layers running general query trees)
/// submit onto. Any worker can run any shard's task, so N concurrent
/// fan-outs interleave across the same bounded thread set (hybrid
/// inter/intra-query parallelism) instead of oversubscribing one thread
/// per query per shard.
///
/// Supervision (see [`ShardPoolConfig`]): fan-outs wait at most the
/// configured deadline; a shard missing it is *wedged* and skipped until
/// its backlog drains; a shard failing repeatedly is *quarantined* and
/// probed half-open after a cooldown; a dead worker thread is respawned
/// with bounded exponential backoff. All of it is fail-soft — the
/// surviving workers keep every shard answering throughout.
#[derive(Debug)]
pub struct ShardPool {
    shared: Arc<PoolShared>,
    cfg: ShardPoolConfig,
    n_workers: usize,
    state: Mutex<PoolState>,
    /// Test-only spawn sabotage: bit `w` set means pool worker slot `w`
    /// can never spawn (exercises the spawn-failure path end to end).
    fail_spawn_mask: u64,
}

impl ShardPool {
    /// Spawns one worker per shard of `index` with default supervision.
    pub fn new(index: Arc<ShardedIndex>) -> Self {
        Self::with_config(index, ShardPoolConfig::default())
    }

    /// Spawns one worker per shard of `index` under `cfg`.
    pub fn with_config(index: Arc<ShardedIndex>, cfg: ShardPoolConfig) -> Self {
        Self::build(index, cfg, 0)
    }

    #[cfg(test)]
    fn with_unspawnable(index: Arc<ShardedIndex>, cfg: ShardPoolConfig, mask: u64) -> Self {
        Self::build(index, cfg, mask)
    }

    fn build(index: Arc<ShardedIndex>, cfg: ShardPoolConfig, fail_spawn_mask: u64) -> Self {
        let n = index.num_shards();
        let n_workers = cfg.effective_pool_threads(n);
        let shared = Arc::new(PoolShared {
            index,
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            shutdown: AtomicBool::new(false),
            completed: (0..n).map(|_| AtomicU64::new(0)).collect(),
        });
        let mut workers = Vec::with_capacity(n_workers);
        for w in 0..n_workers {
            let die = Arc::new(AtomicBool::new(false));
            let tasks_done = Arc::new(AtomicU64::new(0));
            let masked = w < 64 && fail_spawn_mask & (1u64 << w) != 0;
            let handle = if masked {
                None
            } else {
                // Spawn failure: dispatch reports NoWorker when no slot
                // is live and retries the spawn with backoff later.
                spawn_pool_worker(&shared, w, Arc::clone(&die), Arc::clone(&tasks_done)).ok()
            };
            let (attempts, last) =
                if handle.is_some() { (0, None) } else { (1, Some(Instant::now())) };
            workers.push(PoolWorker {
                handle,
                die,
                tasks_done,
                tasks_done_at_spawn: 0,
                respawn_attempts: attempts,
                last_respawn: last,
                respawns: 0,
            });
        }
        let shards = (0..n).map(|_| ShardState::new()).collect();
        ShardPool {
            shared,
            cfg,
            n_workers,
            state: Mutex::new(PoolState { shards, workers }),
            fail_spawn_mask,
        }
    }

    /// The sharded index the pool serves.
    pub fn index(&self) -> &Arc<ShardedIndex> {
        &self.shared.index
    }

    /// Number of shards queries fan out across.
    pub fn num_shards(&self) -> usize {
        self.shared.index.num_shards()
    }

    /// Number of pool worker slots draining the shared deque.
    pub fn num_workers(&self) -> usize {
        self.n_workers
    }

    /// The pool's supervision policy.
    pub fn config(&self) -> &ShardPoolConfig {
        &self.cfg
    }

    fn backoff(cfg: &ShardPoolConfig, attempts: u32) -> Duration {
        let mult = 1u32 << attempts.min(16).min(31);
        cfg.respawn_base_backoff.saturating_mul(mult).min(cfg.respawn_max_backoff)
    }

    /// Attempts to respawn a dead worker slot, honoring the exponential
    /// backoff. Returns whether the slot now has a live thread. Unlike
    /// the old thread-per-shard topology, queued tasks are never lost on
    /// worker death — the shared deque outlives any one thread.
    fn try_respawn_worker(&self, w: &mut PoolWorker, slot: usize) -> bool {
        // Progress since the last spawn proves the thread worked;
        // restart the backoff ladder for the next death.
        if w.tasks_done.load(Ordering::Relaxed) > w.tasks_done_at_spawn {
            w.respawn_attempts = 0;
        }
        let backoff = Self::backoff(&self.cfg, w.respawn_attempts);
        if w.last_respawn.is_some_and(|t| t.elapsed() < backoff) {
            return false;
        }
        w.last_respawn = Some(Instant::now());
        w.respawn_attempts = w.respawn_attempts.saturating_add(1);
        if slot < 64 && self.fail_spawn_mask & (1u64 << slot) != 0 {
            return false;
        }
        let die = Arc::new(AtomicBool::new(false));
        match spawn_pool_worker(
            &self.shared,
            slot,
            Arc::clone(&die),
            Arc::clone(&w.tasks_done),
        ) {
            Ok(handle) => {
                w.tasks_done_at_spawn = w.tasks_done.load(Ordering::Relaxed);
                w.handle = Some(handle);
                w.die = die;
                w.respawns += 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Revives dead worker slots (bounded backoff) and returns how many
    /// are live. Called at every dispatch under the supervision lock.
    fn ensure_workers(&self, workers: &mut [PoolWorker]) -> usize {
        let mut alive = 0usize;
        for (i, w) in workers.iter_mut().enumerate() {
            if !w.dead() || self.try_respawn_worker(w, i) {
                alive += 1;
            }
        }
        alive
    }

    fn record_failure(cfg: &ShardPoolConfig, w: &mut ShardState, kind: ShardHealth) {
        w.failures += 1;
        w.consecutive_failures = w.consecutive_failures.saturating_add(1);
        if cfg.quarantine_threshold > 0 && w.consecutive_failures >= cfg.quarantine_threshold {
            if w.health != ShardHealth::Quarantined {
                w.quarantine_trips += 1;
            }
            w.health = ShardHealth::Quarantined;
            w.quarantined_at = Some(Instant::now());
        } else {
            w.health = kind;
        }
    }

    /// Kills pool worker `w`'s thread: the chaos-campaign instrument for
    /// worker death mid-stream. The worker exits after its current task
    /// (queued tasks stay in the shared deque for the other workers);
    /// dead-slot detection and respawn take over at a later dispatch.
    pub fn kill_worker(&self, w: usize) {
        let st = lock(&self.state);
        let Some(w) = st.workers.get(w) else { return };
        w.die.store(true, Ordering::Relaxed);
        // Wake everything blocked on the deque so the victim sees the
        // kill switch even while idle (the others re-check and re-wait).
        self.shared.not_empty.notify_all();
    }

    fn drained(&self, sh: &ShardState, s: usize) -> bool {
        self.shared.completed.get(s).is_none_or(|c| c.load(Ordering::Relaxed) >= sh.submitted)
    }

    /// Current per-shard supervision state and counters (the shard
    /// plane; see [`Self::worker_reports`] for the worker plane).
    pub fn supervision(&self) -> Vec<ShardHealthReport> {
        let st = lock(&self.state);
        st.shards
            .iter()
            .enumerate()
            .map(|(shard, w)| ShardHealthReport {
                shard,
                health: w.health,
                consecutive_failures: w.consecutive_failures,
                failures: w.failures,
                panics: w.panics,
                timeouts: w.timeouts,
                quarantine_trips: w.quarantine_trips,
                quarantine_recoveries: w.quarantine_recoveries,
            })
            .collect()
    }

    /// Current per-worker liveness and counters (the worker plane).
    pub fn worker_reports(&self) -> Vec<PoolWorkerReport> {
        let st = lock(&self.state);
        st.workers
            .iter()
            .enumerate()
            .map(|(worker, w)| PoolWorkerReport {
                worker,
                alive: !w.dead(),
                tasks_completed: w.tasks_done.load(Ordering::Relaxed),
                respawns: w.respawns,
            })
            .collect()
    }

    /// Shards a fan-out would currently dispatch to (no side effects):
    /// shards that are neither quarantine-cooling nor draining a wedge
    /// backlog — provided at least one worker slot is live or
    /// respawn-due. Engines use this to pick fan-out targets (and the
    /// threshold primer shard) up front instead of discovering
    /// unavailability mid-run.
    pub fn ready_shards(&self) -> Vec<usize> {
        let st = lock(&self.state);
        // With no live worker and none due for a respawn attempt there
        // is no execution substrate at all.
        let any_worker = st.workers.iter().any(|w| {
            if !w.dead() {
                return true;
            }
            let backoff = Self::backoff(&self.cfg, w.respawn_attempts);
            w.last_respawn.is_none_or(|t| t.elapsed() >= backoff)
        });
        if !any_worker {
            return Vec::new();
        }
        st.shards
            .iter()
            .enumerate()
            .filter_map(|(s, w)| match w.health {
                ShardHealth::Quarantined => {
                    let cooled = w
                        .quarantined_at
                        .is_none_or(|t| t.elapsed() >= self.cfg.quarantine_cooldown);
                    (cooled && !w.probe_in_flight && self.drained(w, s)).then_some(s)
                }
                ShardHealth::Wedged => self.drained(w, s).then_some(s),
                _ => Some(s),
            })
            .collect()
    }

    /// Runs `f` once per shard (in parallel across the pool workers) and
    /// collects the per-shard results in shard order. A slot is `None`
    /// if that shard's execution panicked, missed the deadline, was
    /// quarantined, or no worker could run it — the other shards still
    /// complete and the pool remains usable.
    pub fn run<T, F>(&self, f: F) -> Vec<Option<T>>
    where
        F: Fn(usize, &InvertedIndex, &mut DecodeScratch) -> T + Send + Sync + 'static,
        T: Send + 'static,
    {
        self.run_on(None, f).slots
    }

    /// Like [`Self::run`] but also reports what happened to every shard.
    pub fn run_with_report<T, F>(&self, f: F) -> ShardRun<T>
    where
        F: Fn(usize, &InvertedIndex, &mut DecodeScratch) -> T + Send + Sync + 'static,
        T: Send + 'static,
    {
        self.run_on(None, f)
    }

    /// Runs `f` on the shards in `targets` (all shards when `None`),
    /// waiting at most the configured fan-out deadline
    /// ([`ShardPoolConfig::fanout_deadline`]), and updates supervision
    /// state from the outcomes.
    pub fn run_on<T, F>(&self, targets: Option<&[usize]>, f: F) -> ShardRun<T>
    where
        F: Fn(usize, &InvertedIndex, &mut DecodeScratch) -> T + Send + Sync + 'static,
        T: Send + 'static,
    {
        self.run_on_until(targets, self.cfg.fanout_deadline(), f)
    }

    /// Like [`Self::run_on`] but waits until an explicit absolute
    /// `deadline` (`None` waits unboundedly) — the entry point for
    /// schedulers that already computed a query's remaining slack.
    pub fn run_on_until<T, F>(
        &self,
        targets: Option<&[usize]>,
        deadline: Option<Instant>,
        f: F,
    ) -> ShardRun<T>
    where
        F: Fn(usize, &InvertedIndex, &mut DecodeScratch) -> T + Send + Sync + 'static,
        T: Send + 'static,
    {
        struct Slot<T> {
            /// (per-shard results, per-shard done flags, done count)
            state: Mutex<(Vec<Option<T>>, Vec<bool>, usize)>,
            done: Condvar,
            /// Set when the run gives up (deadline): tasks still queued
            /// drain without doing the query work, so a timeout storm
            /// does not snowball stale backlog through the shared pool.
            abandoned: AtomicBool,
        }
        let n = self.num_shards();
        let f = Arc::new(f);
        let slot = Arc::new(Slot {
            state: Mutex::new((
                (0..n).map(|_| None).collect::<Vec<Option<T>>>(),
                vec![false; n],
                0usize,
            )),
            done: Condvar::new(),
            abandoned: AtomicBool::new(false),
        });
        let mut outcomes = vec![ShardOutcome::NotDispatched; n];
        let mut dispatched = vec![false; n];
        let mut probing = vec![false; n];
        let mut expected = 0usize;
        {
            let mut st = lock(&self.state);
            let st = &mut *st;
            // Revive dead worker slots first; with zero live workers the
            // targeted shards report NoWorker immediately instead of
            // burning the fan-out deadline on tasks nothing can run.
            let alive = self.ensure_workers(&mut st.workers);
            let mut batch: Vec<Task> = Vec::new();
            for (s, w) in st.shards.iter_mut().enumerate() {
                if targets.is_some_and(|t| !t.contains(&s)) {
                    continue;
                }
                if alive == 0 {
                    w.dead_dispatches += 1;
                    if w.health != ShardHealth::Quarantined {
                        w.health = ShardHealth::DeadWorker;
                    }
                    outcomes[s] = ShardOutcome::NoWorker;
                    continue;
                }
                match w.health {
                    ShardHealth::Quarantined => {
                        let cooled = w
                            .quarantined_at
                            .is_none_or(|t| t.elapsed() >= self.cfg.quarantine_cooldown);
                        let drained = self
                            .shared
                            .completed
                            .get(s)
                            .is_none_or(|c| c.load(Ordering::Relaxed) >= w.submitted);
                        if !cooled || w.probe_in_flight || !drained {
                            outcomes[s] = ShardOutcome::SkippedQuarantined;
                            continue;
                        }
                        // Half-open: let exactly one probe through.
                        w.probe_in_flight = true;
                        probing[s] = true;
                    }
                    ShardHealth::Wedged => {
                        let drained = self
                            .shared
                            .completed
                            .get(s)
                            .is_none_or(|c| c.load(Ordering::Relaxed) >= w.submitted);
                        if drained {
                            // Backlog flushed; the wedge is over.
                            w.health = ShardHealth::Ok;
                        } else {
                            outcomes[s] = ShardOutcome::SkippedWedged;
                            continue;
                        }
                    }
                    _ => {}
                }
                let f = Arc::clone(&f);
                let slot = Arc::clone(&slot);
                let job: Job = Box::new(move |shard, scratch| {
                    if slot.abandoned.load(Ordering::Relaxed) {
                        // Stale task from a run that already gave up:
                        // drain the accounting without the query work.
                        return;
                    }
                    let out = catch_unwind(AssertUnwindSafe(|| f(s, shard, scratch))).ok();
                    let mut g = lock(&slot.state);
                    g.0[s] = out;
                    g.1[s] = true;
                    g.2 += 1;
                    slot.done.notify_all();
                });
                batch.push(Task { shard: s, job });
                w.submitted += 1;
                dispatched[s] = true;
                expected += 1;
            }
            if !batch.is_empty() {
                let mut q = lock(&self.shared.queue);
                q.extend(batch);
                drop(q);
                self.shared.not_empty.notify_all();
            }
        }

        let (values, done_flags) = {
            let mut g = lock(&slot.state);
            loop {
                if g.2 >= expected {
                    break;
                }
                match deadline {
                    None => g = slot.done.wait(g).unwrap_or_else(PoisonError::into_inner),
                    Some(dl) => {
                        let now = Instant::now();
                        if now >= dl {
                            break;
                        }
                        let (ng, _) = slot
                            .done
                            .wait_timeout(g, dl - now)
                            .unwrap_or_else(PoisonError::into_inner);
                        g = ng;
                    }
                }
            }
            if g.2 < expected {
                // The run is giving up on the stragglers; let their
                // still-queued tasks fast-drain on the pool.
                slot.abandoned.store(true, Ordering::Relaxed);
            }
            // Swap in a fresh vec (not mem::take): a shard finishing after
            // the deadline still writes into a full-length slot vec
            // harmlessly instead of indexing out of bounds.
            let values = std::mem::replace(&mut g.0, (0..n).map(|_| None).collect());
            (values, g.1.clone())
        };

        {
            let mut st = lock(&self.state);
            for (s, w) in st.shards.iter_mut().enumerate() {
                if !dispatched[s] {
                    continue;
                }
                if done_flags[s] {
                    if values[s].is_some() {
                        outcomes[s] = ShardOutcome::Answered;
                        w.consecutive_failures = 0;
                        if w.health == ShardHealth::Quarantined {
                            w.quarantine_recoveries += 1;
                            w.quarantined_at = None;
                        }
                        w.health = ShardHealth::Ok;
                    } else {
                        outcomes[s] = ShardOutcome::Panicked;
                        w.panics += 1;
                        Self::record_failure(&self.cfg, w, ShardHealth::Panicked);
                    }
                } else {
                    outcomes[s] = ShardOutcome::TimedOut;
                    w.timeouts += 1;
                    Self::record_failure(&self.cfg, w, ShardHealth::Wedged);
                }
                if probing[s] {
                    w.probe_in_flight = false;
                }
            }
        }
        ShardRun { slots: values, outcomes }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        // The shutdown flag (plus a broadcast) ends every worker loop;
        // join with a timeout so a wedged worker cannot deadlock
        // shutdown — past the timeout the thread is detached and keeps
        // its Arc of the pool state until it finishes on its own.
        self.shared.shutdown.store(true, Ordering::Relaxed);
        let st = self.state.get_mut().unwrap_or_else(PoisonError::into_inner);
        for w in st.workers.iter_mut() {
            w.die.store(true, Ordering::Relaxed);
        }
        self.shared.not_empty.notify_all();
        let deadline = Instant::now() + self.cfg.drop_join_timeout;
        for w in st.workers.iter_mut() {
            let Some(h) = w.handle.take() else { continue };
            while !h.is_finished() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            if h.is_finished() {
                let _ = h.join();
            }
            // else: detach (dropping the handle) — leaking a stuck thread
            // beats hanging shutdown.
        }
    }
}

/// The result of one sharded query: merged hits plus exact per-shard and
/// summed operation counts, priced as a parallel execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedOutcome {
    /// Global top-k hits, bit-identical to the unsharded engine.
    pub hits: Vec<Hit>,
    /// Candidate documents offered to top-k selection, summed over shards.
    pub candidates: u64,
    /// Operation counts summed exactly over all shards plus the
    /// coordinator's threshold primer (via [`OpCounts::merge`]).
    pub counts: OpCounts,
    /// Per-shard operation counts, in shard order.
    pub shard_counts: Vec<OpCounts>,
    /// Coordinator-side work done *before* dispatch (the single-term
    /// threshold primer, [`pruned::prime_single_threshold`]); zero for
    /// exhaustive and multi-term queries. `counts` is the sum of
    /// `shard_counts` and this.
    pub primer: OpCounts,
    /// Modeled parallel timing: the critical-path (slowest) shard's phase
    /// breakdown plus the cross-shard merge priced into the top-k phase.
    pub phases: PhaseBreakdown,
    /// Shards that did not contribute (panicked, wedged, quarantined, or
    /// worker gone), in shard order. Empty for a full-coverage answer;
    /// non-empty means `hits` covers only the surviving shards' documents
    /// (each missing round-robin shard drops a uniform ~1/total slice).
    pub missing: Vec<usize>,
    /// Total number of shards fanned out across.
    pub total: usize,
}

impl ShardedOutcome {
    /// Modeled end-to-end latency in nanoseconds (critical path + merge).
    pub fn latency_ns(&self) -> f64 {
        self.phases.total_ns()
    }

    /// True when every shard contributed (the answer is exact).
    pub fn complete(&self) -> bool {
        self.missing.is_empty()
    }
}

/// A query engine executing every query across the shards of a
/// [`ShardedIndex`] in parallel. The sharded mirror of
/// [`crate::engine::CpuEngine`]: same query shapes, same error contract,
/// bit-identical hits.
///
/// Methods take `&self` — per-query mutable state lives in the pool
/// workers (scratch) or per-query structures (heaps, shared threshold).
#[derive(Debug)]
pub struct ShardedEngine {
    pool: ShardPool,
    cost: CpuCostModel,
    pruned: bool,
    /// Error out instead of answering partially when a shard is missing.
    fail_closed: bool,
    /// Shard-level fault injection for chaos campaigns (quiet by default).
    chaos: ShardChaosPlan,
    /// Monotonic query sequence number driving the chaos plan's
    /// deterministic draws.
    seq: AtomicU64,
    /// Cumulative docs scored per shard, for operator load-balance views.
    loads: Vec<std::sync::atomic::AtomicU64>,
}

impl ShardedEngine {
    /// Creates an engine (and its worker pool) over a sharded index, with
    /// the default cost model, in exhaustive mode.
    pub fn new(index: Arc<ShardedIndex>) -> Self {
        Self::with_config(index, ShardPoolConfig::default())
    }

    /// Creates an engine whose worker pool follows `cfg`.
    pub fn with_config(index: Arc<ShardedIndex>, cfg: ShardPoolConfig) -> Self {
        Self::from_pool(ShardPool::with_config(index, cfg))
    }

    fn from_pool(pool: ShardPool) -> Self {
        let loads =
            (0..pool.num_shards()).map(|_| std::sync::atomic::AtomicU64::new(0)).collect();
        ShardedEngine {
            pool,
            cost: CpuCostModel::default(),
            pruned: false,
            fail_closed: false,
            chaos: ShardChaosPlan::NONE,
            seq: AtomicU64::new(0),
            loads,
        }
    }

    /// Enables or disables block-max pruned execution (builder style).
    #[must_use]
    pub fn with_pruning(mut self, pruned: bool) -> Self {
        self.pruned = pruned;
        self
    }

    /// Replaces the cost model (builder style).
    #[must_use]
    pub fn with_cost_model(mut self, cost: CpuCostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the fail-closed policy (builder style): when `true`, a query
    /// that cannot cover every shard returns
    /// [`IndexError::CorruptIndex`] instead of a partial answer.
    #[must_use]
    pub fn with_fail_closed(mut self, fail_closed: bool) -> Self {
        self.fail_closed = fail_closed;
        self
    }

    /// Installs a shard-level fault-injection plan (builder style).
    #[must_use]
    pub fn with_chaos(mut self, chaos: ShardChaosPlan) -> Self {
        self.chaos = chaos;
        self
    }

    /// True when the engine skips blocks via score bounds.
    pub fn pruning(&self) -> bool {
        self.pruned
    }

    /// True when partial coverage is treated as an error.
    pub fn fail_closed(&self) -> bool {
        self.fail_closed
    }

    /// The cost model pricing per-shard work.
    pub fn cost_model(&self) -> &CpuCostModel {
        &self.cost
    }

    /// Cumulative documents scored per shard since the engine started —
    /// an operator's load-balance view across the shard workers.
    pub fn shard_loads(&self) -> Vec<u64> {
        self.loads.iter().map(|l| l.load(std::sync::atomic::Ordering::Relaxed)).collect()
    }

    /// The underlying sharded index.
    pub fn index(&self) -> &Arc<ShardedIndex> {
        self.pool.index()
    }

    /// The worker pool (for layers running general query trees).
    pub fn pool(&self) -> &ShardPool {
        &self.pool
    }

    /// Number of shards queries fan out across.
    pub fn num_shards(&self) -> usize {
        self.pool.num_shards()
    }

    fn resolve(&self, term: &str) -> Result<TermId, IndexError> {
        // Dictionaries are uniform across shards; shard 0 speaks for all.
        let id = self
            .pool
            .index()
            .shard(0)
            .term_id(term)
            .ok_or_else(|| IndexError::UnknownTerm { term: term.to_owned() })?;
        // Mmap-backed shards defer record CRCs to first touch; verifying
        // the term in every shard here surfaces late corruption as a typed
        // error before the workers' decode paths run.
        for shard in self.pool.index().shards() {
            shard.verify_term(id)?;
        }
        Ok(id)
    }

    /// Sums a term's document frequency across shards (the global df).
    fn global_df(&self, id: TermId) -> u64 {
        self.pool.index().shards().iter().map(|s| s.term_info(id).df).sum()
    }

    /// Merges per-shard `(hits, counts)` results into a [`ShardedOutcome`],
    /// mapping shard-local docIDs back to global ones. Fail-soft: a `None`
    /// slot lands in `missing` (with zeroed shard counts) and the merge
    /// covers the shards that answered; only a fully-empty result set is
    /// an error.
    fn merge_outcome(
        &self,
        results: Vec<Option<(Vec<Hit>, OpCounts)>>,
        k: usize,
        primer: OpCounts,
    ) -> Result<ShardedOutcome, IndexError> {
        let n = self.num_shards() as u32;
        let total = results.len();
        let mut all_hits = Vec::new();
        let mut counts = OpCounts::default();
        let mut shard_counts = Vec::with_capacity(results.len());
        let mut missing = Vec::new();
        let mut crit = PhaseBreakdown::default();
        for (s, r) in results.into_iter().enumerate() {
            let Some((hits, shard)) = r else {
                missing.push(s);
                shard_counts.push(OpCounts::default());
                continue;
            };
            all_hits.extend(
                hits.into_iter()
                    .map(|h| Hit { doc_id: h.doc_id * n + s as u32, score: h.score }),
            );
            counts.merge(&shard);
            if let Some(load) = self.loads.get(s) {
                load.fetch_add(shard.docs_scored, std::sync::atomic::Ordering::Relaxed);
            }
            let phases = self.cost.price(&shard);
            if phases.total_ns() > crit.total_ns() {
                crit = phases;
            }
            shard_counts.push(shard);
        }
        if missing.len() == total {
            return Err(IndexError::CorruptIndex { context: "all shards unavailable" });
        }
        // The host-side cross-shard merge is a top-k pass over at most
        // n·k candidates; price it into the top-k phase.
        crit.topk_ns += self.cost.price_topk(all_hits.len() as u64);
        // The primer runs serially before dispatch, so its phases land on
        // the critical path in full. `price` bakes the fixed per-query
        // overhead into `other_ns`; the primer belongs to the same query,
        // so strip that term rather than charging it twice.
        if primer != OpCounts::default() {
            let p = self.cost.price(&primer);
            crit.decompress_ns += p.decompress_ns;
            crit.setop_ns += p.setop_ns;
            crit.score_ns += p.score_ns;
            crit.topk_ns += p.topk_ns;
            crit.other_ns += p.other_ns - self.cost.query_overhead_ns;
            counts.merge(&primer);
        }
        all_hits.sort_by(rank_cmp);
        all_hits.truncate(k);
        Ok(ShardedOutcome {
            hits: all_hits,
            candidates: counts.topk_candidates,
            counts,
            shard_counts,
            primer,
            phases: crit,
            missing,
            total,
        })
    }

    /// Runs `f` across the shards with the engine's supervision-aware
    /// targeting and chaos injection — the fan-out primitive for layers
    /// executing general query trees on the engine's pool. Slots are
    /// full-length (`None` for shards that did not answer); callers
    /// decide their own partial-coverage policy. Safe to merge partially
    /// only for computations with no cross-shard coupling (exhaustive
    /// evaluation; anything sharing a pruning threshold must go through
    /// the query methods instead).
    pub fn run_shards<T, F>(&self, f: F) -> ShardRun<T>
    where
        F: Fn(usize, &InvertedIndex, &mut DecodeScratch) -> T + Send + Sync + 'static,
        T: Send + 'static,
    {
        let n = self.num_shards();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if let Some(victim) = self.chaos.kill(seq) {
            if victim < self.pool.num_workers() {
                self.pool.kill_worker(victim);
            }
        }
        let mut alive = self.pool.ready_shards();
        if alive.is_empty() {
            alive = (0..n).collect();
        }
        let chaos = self.chaos.clone();
        self.pool.run_on(Some(&alive), move |s, shard, scratch| {
            if let Some(d) = chaos.sabotage_stall(seq, s) {
                std::thread::sleep(d);
            }
            if chaos.sabotage_panic(seq, s) {
                panic!("injected shard panic fault (seq {seq}, shard {s})");
            }
            f(s, shard, scratch)
        })
    }

    /// The fail-soft fan-out driver behind every query shape.
    ///
    /// `shard_fn` runs one shard's query; it receives the shared
    /// cross-shard threshold only in pruned mode. Exhaustive shards are
    /// independent, so survivors merge directly whatever failed. Pruned
    /// shards exchange thresholds through [`SharedThreshold`], so a shard
    /// that published thresholds and then failed mid-run may have
    /// over-pruned the survivors — in that case the query reruns
    /// restricted to the survivors with a fresh threshold (and a primer
    /// re-chosen among them, tolerating the best shard being the missing
    /// one). Each rerun loses at least one shard, so the loop is bounded.
    fn fan_out<F>(
        &self,
        k: usize,
        primer_term: Option<TermId>,
        shard_fn: F,
    ) -> Result<ShardedOutcome, IndexError>
    where
        F: Fn(
                &InvertedIndex,
                Option<&SharedThreshold>,
                &mut OpCounts,
                &mut DecodeScratch,
            ) -> Vec<Hit>
            + Clone
            + Send
            + Sync
            + 'static,
    {
        let n = self.num_shards();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if let Some(victim) = self.chaos.kill(seq) {
            if victim < self.pool.num_workers() {
                self.pool.kill_worker(victim);
            }
        }
        // Skip shards supervision already knows are unavailable, so the
        // primer (and pruned threshold exchange) only involves shards
        // that can actually reach the merge.
        let mut alive = self.pool.ready_shards();
        if alive.is_empty() {
            alive = (0..n).collect();
        }
        for _pass in 0..=n {
            let shared = Arc::new(SharedThreshold::new());
            // Prime the shared threshold from the live shard holding the
            // highest-bound block, so no shard pays the cold-heap ramp-up
            // (the serial fraction that would otherwise cap scaling).
            let mut primer = OpCounts::default();
            if let Some(id) = primer_term {
                if self.pruned && alive.len() > 1 {
                    let shards = self.pool.index().shards();
                    let best = alive
                        .iter()
                        .filter_map(|&s| shards.get(s))
                        .max_by_key(|sh| sh.list_bounds(id).max_ub());
                    if let Some(best) = best {
                        let mut scratch = DecodeScratch::default();
                        pruned::prime_single_threshold(
                            best,
                            id,
                            k,
                            &mut primer,
                            &mut scratch,
                            &shared,
                        );
                    }
                }
            }
            let chaos = self.chaos.clone();
            let f = shard_fn.clone();
            let sh = Arc::clone(&shared);
            let pruned_mode = self.pruned;
            let run = self.pool.run_on(Some(&alive), move |s, shard, scratch| {
                if let Some(d) = chaos.sabotage_stall(seq, s) {
                    std::thread::sleep(d);
                }
                if chaos.sabotage_panic(seq, s) {
                    panic!("injected shard panic fault (seq {seq}, shard {s})");
                }
                let mut counts = OpCounts::default();
                let hits = f(shard, pruned_mode.then_some(&*sh), &mut counts, scratch);
                (hits, counts)
            });
            let survivors: Vec<usize> = (0..n).filter(|&s| run.slots[s].is_some()).collect();
            if survivors.is_empty() {
                return Err(IndexError::CorruptIndex { context: "all shards unavailable" });
            }
            if self.fail_closed && survivors.len() < n {
                return Err(IndexError::CorruptIndex { context: "shard execution failed" });
            }
            if !pruned_mode || survivors.len() == alive.len() {
                return self.merge_outcome(run.slots, k, primer);
            }
            // Pruned mode lost a threshold-exchange participant mid-run:
            // rerun on the survivors only.
            alive = survivors;
        }
        Err(IndexError::CorruptIndex { context: "shard execution failed" })
    }

    /// Single-term query fanned across shards.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::UnknownTerm`] if `term` is not indexed and
    /// [`IndexError::CorruptIndex`] if no shard could answer (or, under
    /// [`Self::with_fail_closed`], if any shard could not).
    pub fn search_single(&self, term: &str, k: usize) -> Result<ShardedOutcome, IndexError> {
        let id = self.resolve(term)?;
        self.fan_out(k, Some(id), move |shard, shared, counts, scratch| match shared {
            Some(sh) => {
                pruned::search_single_pruned_shared(shard, id, k, counts, scratch, Some(sh))
            }
            None => exhaustive_single(shard, id, k, counts, scratch),
        })
    }

    /// Intersection query fanned across shards.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::UnknownTerm`] if either term is not indexed
    /// and [`IndexError::CorruptIndex`] if no shard could answer (or,
    /// under [`Self::with_fail_closed`], if any shard could not).
    pub fn search_intersection(
        &self,
        term_a: &str,
        term_b: &str,
        k: usize,
    ) -> Result<ShardedOutcome, IndexError> {
        let ia = self.resolve(term_a)?;
        let ib = self.resolve(term_b)?;
        // Global SvS order by global df; a shard whose local lists invert
        // the order swaps locally (hits are symmetric, only work differs).
        let (ga, gb) =
            if self.global_df(ia) <= self.global_df(ib) { (ia, ib) } else { (ib, ia) };
        self.fan_out(k, None, move |shard, shared, counts, scratch| {
            let (short_id, long_id) = if shard.term_info(ga).df <= shard.term_info(gb).df {
                (ga, gb)
            } else {
                (gb, ga)
            };
            match shared {
                Some(sh) => pruned::search_intersection_pruned_shared(
                    shard,
                    short_id,
                    long_id,
                    k,
                    counts,
                    scratch,
                    Some(sh),
                ),
                None => exhaustive_intersection(shard, short_id, long_id, k, counts, scratch),
            }
        })
    }

    /// Union query fanned across shards.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::UnknownTerm`] if either term is not indexed
    /// and [`IndexError::CorruptIndex`] if no shard could answer (or,
    /// under [`Self::with_fail_closed`], if any shard could not).
    pub fn search_union(
        &self,
        term_a: &str,
        term_b: &str,
        k: usize,
    ) -> Result<ShardedOutcome, IndexError> {
        let ia = self.resolve(term_a)?;
        let ib = self.resolve(term_b)?;
        self.fan_out(k, None, move |shard, shared, counts, scratch| match shared {
            Some(sh) => {
                pruned::search_union_pruned_shared(shard, ia, ib, k, counts, scratch, Some(sh))
            }
            None => exhaustive_union(shard, ia, ib, k, counts, scratch),
        })
    }
}

/// Per-shard exhaustive single-term execution, count-compatible with
/// [`crate::engine::CpuEngine::search_single`].
fn exhaustive_single(
    index: &InvertedIndex,
    id: TermId,
    k: usize,
    counts: &mut OpCounts,
    scratch: &mut DecodeScratch,
) -> Vec<Hit> {
    let list = index.encoded_list(id);
    let idf_bar = index.term_info(id).idf_bar;
    ops::decode_full_into(list, counts, &mut scratch.full_a);
    let hits: Vec<Hit> = scratch
        .full_a
        .iter()
        .map(|p| Hit {
            doc_id: p.doc_id,
            score: term_score_fixed(idf_bar, index.dl_bar(p.doc_id), p.tf).to_f64(),
        })
        .collect();
    counts.docs_scored = hits.len() as u64;
    counts.topk_candidates = hits.len() as u64;
    counts.results = hits.len() as u64;
    top_k(hits, k)
}

/// Per-shard exhaustive SvS intersection, count-compatible with
/// [`crate::engine::CpuEngine::search_intersection`].
fn exhaustive_intersection(
    index: &InvertedIndex,
    short_id: TermId,
    long_id: TermId,
    k: usize,
    counts: &mut OpCounts,
    scratch: &mut DecodeScratch,
) -> Vec<Hit> {
    let short = index.encoded_list(short_id);
    let long = index.encoded_list(long_id);
    let idf_short = index.term_info(short_id).idf_bar;
    let idf_long = index.term_info(long_id).idf_bar;
    let matches = ops::intersect_svs(short, long, long_id, counts, scratch);
    let hits: Vec<Hit> = matches
        .iter()
        .map(|&(doc_id, tf_s, tf_l)| {
            let dl = index.dl_bar(doc_id);
            let s = term_score_fixed(idf_short, dl, tf_s)
                .saturating_add(term_score_fixed(idf_long, dl, tf_l));
            Hit { doc_id, score: s.to_f64() }
        })
        .collect();
    counts.docs_scored = 2 * hits.len() as u64;
    counts.topk_candidates = hits.len() as u64;
    top_k(hits, k)
}

/// Per-shard exhaustive union merge, count-compatible with
/// [`crate::engine::CpuEngine::search_union`].
fn exhaustive_union(
    index: &InvertedIndex,
    ia: TermId,
    ib: TermId,
    k: usize,
    counts: &mut OpCounts,
    scratch: &mut DecodeScratch,
) -> Vec<Hit> {
    let la = index.encoded_list(ia);
    let lb = index.encoded_list(ib);
    let idf_a = index.term_info(ia).idf_bar;
    let idf_b = index.term_info(ib).idf_bar;
    let merged = ops::union_merge(la, lb, counts, scratch);
    let mut scored = 0u64;
    let hits: Vec<Hit> = merged
        .iter()
        .map(|&(doc_id, tf_a, tf_b)| {
            let dl = index.dl_bar(doc_id);
            let mut s = iiu_index::Fixed::ZERO;
            if tf_a > 0 {
                s = s.saturating_add(term_score_fixed(idf_a, dl, tf_a));
                scored += 1;
            }
            if tf_b > 0 {
                s = s.saturating_add(term_score_fixed(idf_b, dl, tf_b));
                scored += 1;
            }
            Hit { doc_id, score: s.to_f64() }
        })
        .collect();
    counts.docs_scored = scored;
    counts.topk_candidates = hits.len() as u64;
    top_k(hits, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CpuEngine;
    use iiu_index::{BuildOptions, IndexBuilder, Partitioner};

    fn sample_index() -> InvertedIndex {
        let mut b = IndexBuilder::new(BuildOptions {
            partitioner: Partitioner::fixed(4),
            ..Default::default()
        });
        b.add_document(&"hot ".repeat(40));
        b.add_document(&"cold ".repeat(40));
        b.add_document(&"hot cold ".repeat(25));
        for i in 0..120 {
            b.add_document(&format!("hot cold filler{}", i % 7));
        }
        b.build()
    }

    fn sharded(n: usize, pruned: bool) -> ShardedEngine {
        let idx = sample_index();
        let s = Arc::new(ShardedIndex::split(&idx, n).unwrap());
        ShardedEngine::new(s).with_pruning(pruned)
    }

    #[test]
    fn sharded_matches_unsharded_on_all_shapes() {
        let idx = sample_index();
        for n in [1usize, 2, 3, 4, 7] {
            for pruned in [false, true] {
                let eng = sharded(n, pruned);
                let mut cpu = CpuEngine::new(&idx).with_pruning(pruned);
                for k in [0usize, 1, 5, 10, 1000] {
                    let a = cpu.search_single("hot", k).unwrap();
                    let b = eng.search_single("hot", k).unwrap();
                    assert_eq!(a.hits, b.hits, "single n={n} pruned={pruned} k={k}");
                    let a = cpu.search_intersection("hot", "cold", k).unwrap();
                    let b = eng.search_intersection("hot", "cold", k).unwrap();
                    assert_eq!(a.hits, b.hits, "and n={n} pruned={pruned} k={k}");
                    let a = cpu.search_union("hot", "cold", k).unwrap();
                    let b = eng.search_union("hot", "cold", k).unwrap();
                    assert_eq!(a.hits, b.hits, "or n={n} pruned={pruned} k={k}");
                }
            }
        }
    }

    #[test]
    fn shard_counts_sum_exactly_into_merged_counts() {
        let eng = sharded(3, true);
        let out = eng.search_single("hot", 10).unwrap();
        assert_eq!(out.shard_counts.len(), 3);
        let mut sum = OpCounts::default();
        for c in &out.shard_counts {
            sum.merge(c);
        }
        sum.merge(&out.primer);
        assert_eq!(sum, out.counts, "shard tallies + primer must sum exactly");
        assert_eq!(out.candidates, out.counts.topk_candidates);
    }

    #[test]
    fn unknown_term_is_an_error() {
        let eng = sharded(2, false);
        assert!(matches!(eng.search_single("zebra", 5), Err(IndexError::UnknownTerm { .. })));
        assert!(eng.search_intersection("zebra", "hot", 5).is_err());
        assert!(eng.search_union("hot", "zebra", 5).is_err());
    }

    #[test]
    fn pool_survives_a_panicking_job() {
        let idx = sample_index();
        let s = Arc::new(ShardedIndex::split(&idx, 3).unwrap());
        let pool = ShardPool::new(s);
        let r = pool.run(|s, _, _| {
            if s == 1 {
                panic!("injected shard panic");
            }
            s * 10
        });
        assert_eq!(r, vec![Some(0), None, Some(20)]);
        // The pool (including the worker whose job panicked) still works.
        let r = pool.run(|s, shard, _| (s, shard.num_docs()));
        assert!(r.iter().all(|x| x.is_some()));
    }

    #[test]
    fn engine_recovers_after_pool_wide_panics() {
        let eng = sharded(2, true);
        // Panic inside a run() on the engine's own pool, then confirm the
        // engine still answers full-coverage queries on the same workers.
        let r = eng.pool().run::<(), _>(|_, _, _| panic!("injected shard panic"));
        assert!(r.iter().all(|x| x.is_none()));
        let out = eng.search_single("hot", 3).unwrap();
        assert_eq!(out.hits.len(), 3);
        assert!(out.complete(), "both shards answered: {:?}", out.missing);
    }

    /// Reference: the unsharded engine's answer restricted to the
    /// documents of the surviving shards (round-robin: doc d lives on
    /// shard d % n).
    fn surviving_reference(
        idx: &InvertedIndex,
        shape: (&str, Option<&str>, bool),
        n: usize,
        missing: &[usize],
        k: usize,
    ) -> Vec<Hit> {
        let (a, b, and) = shape;
        let mut cpu = CpuEngine::new(idx);
        // k larger than the corpus: the full ranking, nothing truncated.
        let all = idx.num_docs() as usize + 1;
        let full = match b {
            None => cpu.search_single(a, all).unwrap(),
            Some(b) if and => cpu.search_intersection(a, b, all).unwrap(),
            Some(b) => cpu.search_union(a, b, all).unwrap(),
        };
        let mut hits: Vec<Hit> = full
            .hits
            .into_iter()
            .filter(|h| !missing.contains(&(h.doc_id as usize % n)))
            .collect();
        hits.truncate(k);
        hits
    }

    #[test]
    fn partial_hits_are_bit_identical_to_unsharded_over_surviving_docs() {
        // Whichever shard dies — including the one the pruned primer
        // would have chosen — the partial answer must equal the unsharded
        // engine run over the surviving documents, bit for bit.
        let idx = sample_index();
        let n = 4;
        for victim in 0..n {
            for pruned in [false, true] {
                let s = Arc::new(ShardedIndex::split(&idx, n).unwrap());
                let chaos = ShardChaosPlan {
                    panic_burst: Some((0, u64::MAX, victim)),
                    ..ShardChaosPlan::NONE
                };
                let eng = ShardedEngine::new(s).with_pruning(pruned).with_chaos(chaos);
                for (shape, label) in [
                    (("hot", None, false), "single"),
                    (("hot", Some("cold"), true), "and"),
                    (("hot", Some("cold"), false), "or"),
                ] {
                    let out = match shape {
                        (a, None, _) => eng.search_single(a, 10).unwrap(),
                        (a, Some(b), true) => eng.search_intersection(a, b, 10).unwrap(),
                        (a, Some(b), false) => eng.search_union(a, b, 10).unwrap(),
                    };
                    assert_eq!(
                        out.missing,
                        vec![victim],
                        "{label} victim={victim} pruned={pruned}"
                    );
                    assert_eq!(out.total, n);
                    assert!(!out.complete());
                    let want = surviving_reference(&idx, shape, n, &out.missing, 10);
                    assert_eq!(
                        out.hits, want,
                        "{label} victim={victim} pruned={pruned}: partial hits \
                         must match unsharded over survivors"
                    );
                }
            }
        }
    }

    #[test]
    fn fail_closed_engine_rejects_partial_coverage() {
        let idx = sample_index();
        let s = Arc::new(ShardedIndex::split(&idx, 3).unwrap());
        let chaos =
            ShardChaosPlan { panic_burst: Some((0, u64::MAX, 1)), ..ShardChaosPlan::NONE };
        let eng = ShardedEngine::new(s).with_fail_closed(true).with_chaos(chaos);
        assert!(eng.fail_closed());
        assert!(matches!(eng.search_single("hot", 5), Err(IndexError::CorruptIndex { .. })));
    }

    #[test]
    fn deadline_wedges_a_stalling_shard_then_drain_recovers_it() {
        let idx = sample_index();
        let s = Arc::new(ShardedIndex::split(&idx, 3).unwrap());
        let cfg = ShardPoolConfig {
            // Enough workers that the stalled task never starves the
            // healthy shards' tasks of a thread.
            pool_threads: 3,
            deadline: Some(Duration::from_millis(25)),
            // High threshold so the wedge itself (not quarantine) is
            // what we observe.
            quarantine_threshold: 100,
            ..Default::default()
        };
        let pool = ShardPool::with_config(s, cfg);
        let run = pool.run_on(None, |s, _, _| {
            if s == 1 {
                std::thread::sleep(Duration::from_millis(150));
            }
            s
        });
        assert_eq!(run.slots, vec![Some(0), None, Some(2)]);
        assert_eq!(run.outcomes[1], ShardOutcome::TimedOut);
        assert_eq!(pool.supervision()[1].health, ShardHealth::Wedged);
        assert_eq!(pool.supervision()[1].timeouts, 1);
        assert!(!pool.ready_shards().contains(&1));

        // Still draining its backlog: skipped, not re-dispatched.
        let run = pool.run_on(None, |s, _, _| s);
        assert_eq!(run.outcomes[1], ShardOutcome::SkippedWedged);
        assert!(run.slots[1].is_none());

        // Once the stalled job flushes, the shard answers again.
        std::thread::sleep(Duration::from_millis(200));
        assert!(pool.ready_shards().contains(&1));
        let run = pool.run_on(None, |s, _, _| s);
        assert_eq!(run.slots, vec![Some(0), Some(1), Some(2)]);
        assert_eq!(pool.supervision()[1].health, ShardHealth::Ok);
    }

    #[test]
    fn quarantine_trips_after_consecutive_failures_and_recovers_half_open() {
        let idx = sample_index();
        let s = Arc::new(ShardedIndex::split(&idx, 2).unwrap());
        let cfg = ShardPoolConfig {
            quarantine_threshold: 2,
            quarantine_cooldown: Duration::from_millis(30),
            ..Default::default()
        };
        let pool = ShardPool::with_config(s, cfg);
        for _ in 0..2 {
            let run = pool.run_on(None, |s, _, _| {
                if s == 0 {
                    panic!("injected shard panic");
                }
                s
            });
            assert!(run.slots[0].is_none());
            assert_eq!(run.slots[1], Some(1));
        }
        let sup = pool.supervision();
        assert_eq!(sup[0].health, ShardHealth::Quarantined);
        assert_eq!(sup[0].quarantine_trips, 1);
        assert_eq!(sup[0].panics, 2);
        assert!(!pool.ready_shards().contains(&0));

        // Inside the cooldown the shard is skipped without dispatch.
        let run = pool.run_on(None, |s, _, _| s);
        assert_eq!(run.outcomes[0], ShardOutcome::SkippedQuarantined);

        // After the cooldown one half-open probe goes through; success
        // closes the quarantine.
        std::thread::sleep(Duration::from_millis(40));
        assert!(pool.ready_shards().contains(&0));
        let run = pool.run_on(None, |s, _, _| s);
        assert_eq!(run.outcomes[0], ShardOutcome::Answered);
        let sup = pool.supervision();
        assert_eq!(sup[0].health, ShardHealth::Ok);
        assert_eq!(sup[0].quarantine_recoveries, 1);
    }

    #[test]
    fn killed_worker_is_respawned_and_answers_again() {
        let idx = sample_index();
        let s = Arc::new(ShardedIndex::split(&idx, 3).unwrap());
        let cfg = ShardPoolConfig {
            pool_threads: 3,
            deadline: Some(Duration::from_millis(100)),
            ..Default::default()
        };
        let pool = ShardPool::with_config(s, cfg);
        pool.kill_worker(1);
        // Give the worker time to see the kill switch and exit.
        std::thread::sleep(Duration::from_millis(50));
        assert!(!pool.worker_reports()[1].alive);
        // The next dispatch detects the dead slot, respawns it, and all
        // shards still answer (the survivors could have covered them
        // regardless — that is the point of the shared deque).
        let run = pool.run_on(None, |s, _, _| s);
        assert_eq!(run.slots, vec![Some(0), Some(1), Some(2)]);
        let w = pool.worker_reports();
        assert_eq!(w[1].respawns, 1);
        assert!(w[1].alive);
        assert!(pool.supervision().iter().all(|h| h.health == ShardHealth::Ok));
    }

    #[test]
    fn chaos_kill_mid_stream_degrades_then_respawn_restores_coverage() {
        let idx = sample_index();
        let s = Arc::new(ShardedIndex::split(&idx, 3).unwrap());
        let cfg = ShardPoolConfig {
            deadline: Some(Duration::from_millis(100)),
            respawn_base_backoff: Duration::from_millis(1),
            ..Default::default()
        };
        let chaos = ShardChaosPlan { kills: vec![(0, 1)], ..ShardChaosPlan::NONE };
        let eng = ShardedEngine::from_pool(ShardPool::with_config(s, cfg)).with_chaos(chaos);
        // Query 0 assassinates worker 1 just before fan-out. Depending on
        // how fast the worker exits, the query either rides a respawned
        // worker (full coverage) or times out on the dying one (partial)
        // — but it must resolve within the deadline either way.
        let out = eng.search_single("hot", 5).unwrap();
        assert!(out.missing.is_empty() || out.missing == vec![1]);
        // Coverage comes back once the dead worker is detected/respawned.
        std::thread::sleep(Duration::from_millis(120));
        let out = eng.search_single("hot", 5).unwrap();
        assert!(out.complete(), "still degraded: {:?}", out.missing);
        let respawns: u64 = eng.pool().worker_reports().iter().map(|w| w.respawns).sum();
        assert!(respawns >= 1, "killed pool worker was never respawned");
    }

    #[test]
    fn unspawnable_pool_worker_does_not_reduce_shard_coverage() {
        // The spawn-failure arm, worker plane: slot 1 can never spawn,
        // but the surviving workers drain every shard's tasks — no shard
        // goes dark with the shared deque.
        let idx = sample_index();
        let s = Arc::new(ShardedIndex::split(&idx, 3).unwrap());
        let cfg = ShardPoolConfig {
            pool_threads: 3,
            // Park the respawn far in the future so the dead slot stays
            // dead for the whole test.
            respawn_base_backoff: Duration::from_secs(3600),
            respawn_max_backoff: Duration::from_secs(3600),
            ..Default::default()
        };
        let pool = ShardPool::with_unspawnable(Arc::clone(&s), cfg, 1 << 1);
        let run = pool.run_on(None, |s, _, _| s);
        assert_eq!(run.slots, vec![Some(0), Some(1), Some(2)]);
        let w = pool.worker_reports();
        assert!(w[0].alive && !w[1].alive && w[2].alive);

        let eng = ShardedEngine::from_pool(pool);
        let out = eng.search_single("hot", 10).unwrap();
        assert!(out.complete(), "missing: {:?}", out.missing);
    }

    #[test]
    fn all_workers_unspawnable_reports_no_worker_without_burning_deadline() {
        // Zero live workers: dispatch must report NoWorker on every
        // target immediately instead of waiting out the fan-out deadline
        // on tasks nothing can run.
        let idx = sample_index();
        let s = Arc::new(ShardedIndex::split(&idx, 3).unwrap());
        let cfg = ShardPoolConfig {
            pool_threads: 2,
            deadline: Some(Duration::from_secs(5)),
            respawn_base_backoff: Duration::from_secs(3600),
            respawn_max_backoff: Duration::from_secs(3600),
            ..Default::default()
        };
        let pool = ShardPool::with_unspawnable(Arc::clone(&s), cfg, 0b11);
        let start = Instant::now();
        let run = pool.run_on(None, |s, _, _| s);
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "a dead pool must fail fast, not wait for the deadline"
        );
        assert!(run.slots.iter().all(|x| x.is_none()));
        assert!(run.outcomes.iter().all(|&o| o == ShardOutcome::NoWorker));
        assert_eq!(pool.supervision()[0].health, ShardHealth::DeadWorker);
        assert!(pool.ready_shards().is_empty(), "no substrate, nothing is ready");

        let eng = ShardedEngine::from_pool(pool);
        assert!(matches!(eng.search_single("hot", 5), Err(IndexError::CorruptIndex { .. })));
    }

    #[test]
    fn concurrent_fan_outs_share_the_pool_without_serializing() {
        // The tentpole property: N concurrent fan-outs × M shards ride
        // pool_threads workers concurrently. Four 2-shard runs whose
        // tasks each sleep 50ms would serialize to ~400ms on any
        // one-at-a-time substrate; a shared 8-worker pool finishes in
        // roughly one task's time.
        let idx = sample_index();
        let s = Arc::new(ShardedIndex::split(&idx, 2).unwrap());
        let cfg = ShardPoolConfig { pool_threads: 8, ..Default::default() };
        let pool = Arc::new(ShardPool::with_config(s, cfg));
        let start = Instant::now();
        let handles: Vec<_> = (0..4)
            .map(|q| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let run = pool.run_on(None, move |s, _, _| {
                        std::thread::sleep(Duration::from_millis(50));
                        (q, s)
                    });
                    run.slots
                })
            })
            .collect();
        for (q, h) in handles.into_iter().enumerate() {
            let slots = h.join().unwrap();
            assert_eq!(slots, vec![Some((q, 0)), Some((q, 1))]);
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(300),
            "8 tasks on 8 workers took {elapsed:?}; the pool serialized"
        );
    }

    #[test]
    fn fanout_deadline_policy_is_derived_in_one_place() {
        let cfg = ShardPoolConfig {
            deadline: Some(Duration::from_millis(40)),
            ..Default::default()
        };
        let now = Instant::now();
        assert_eq!(cfg.fanout_deadline_from(now), Some(now + Duration::from_millis(40)));
        let unbounded = ShardPoolConfig::default();
        assert_eq!(unbounded.fanout_deadline_from(now), None);
    }

    #[test]
    fn dropping_a_pool_with_a_wedged_worker_does_not_hang() {
        let idx = sample_index();
        let s = Arc::new(ShardedIndex::split(&idx, 2).unwrap());
        let cfg = ShardPoolConfig {
            deadline: Some(Duration::from_millis(10)),
            drop_join_timeout: Duration::from_millis(50),
            ..Default::default()
        };
        let pool = ShardPool::with_config(s, cfg);
        let run = pool.run_on(None, |s, _, _| {
            if s == 0 {
                // Wedge well past both the fan-out deadline and the drop
                // join timeout.
                std::thread::sleep(Duration::from_secs(3));
            }
            s
        });
        assert_eq!(run.outcomes[0], ShardOutcome::TimedOut);
        let start = Instant::now();
        drop(pool);
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "drop must detach the wedged worker, not wait for it"
        );
    }

    #[test]
    fn modeled_parallel_latency_is_critical_path_not_sum() {
        let eng = sharded(4, true);
        let out = eng.search_single("hot", 10).unwrap();
        let cost = CpuCostModel::default();
        let slowest =
            out.shard_counts.iter().map(|c| cost.price(c).total_ns()).fold(0.0f64, f64::max);
        let summed = cost.price(&out.counts).total_ns();
        assert!(out.latency_ns() >= slowest);
        assert!(
            out.latency_ns() < summed,
            "parallel model {} must beat serial sum {}",
            out.latency_ns(),
            summed
        );
    }

    #[test]
    fn pool_and_engine_are_shareable_across_threads() {
        // Serve workers hold the engine behind an Arc and query through
        // &self; losing Sync would silently break that layer.
        fn assert_share<T: Send + Sync>() {}
        assert_share::<ShardPool>();
        assert_share::<ShardedEngine>();
    }

    #[test]
    fn shard_loads_accumulate_docs_scored_per_shard() {
        let eng = sharded(3, false);
        assert_eq!(eng.shard_loads(), vec![0, 0, 0]);
        let out = eng.search_single("hot", 10).unwrap();
        let want: Vec<u64> = out.shard_counts.iter().map(|c| c.docs_scored).collect();
        assert_eq!(eng.shard_loads(), want);
        let out2 = eng.search_union("hot", "cold", 10).unwrap();
        let want2: Vec<u64> =
            want.iter().zip(&out2.shard_counts).map(|(a, c)| a + c.docs_scored).collect();
        assert_eq!(eng.shard_loads(), want2, "loads are cumulative across queries");
    }

    #[test]
    fn sharded_pruning_still_skips_blocks() {
        let eng = sharded(2, true);
        let out = eng.search_single("hot", 1).unwrap();
        assert!(
            out.counts.blocks_skipped > 0,
            "sharded pruning never skipped: {:?}",
            out.counts
        );
    }
}
