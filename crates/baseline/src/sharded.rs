//! Document-sharded intra-query parallelism: a persistent per-shard
//! worker pool and an engine that fans one query out across shards,
//! merges with [`rank_cmp`], and stays bit-identical to the unsharded
//! engine.
//!
//! # Execution substrate
//!
//! [`ShardPool`] owns one worker thread per shard. Each worker holds its
//! shard's [`iiu_index::InvertedIndex`] (via the shared
//! [`ShardedIndex`]) and a private [`DecodeScratch`], so queries reuse
//! warm decode buffers and the probe cache without any cross-thread
//! sharing. Jobs are boxed closures; each runs under `catch_unwind`, so
//! a panicking query marks its shard's slot failed instead of killing
//! the worker or hanging the caller.
//!
//! # Why sharded results are bit-identical
//!
//! Shards are built with global scoring statistics
//! ([`iiu_index::shard`]), so any document's Q16.16 score is the same in
//! its shard as in the whole index. Each shard computes a *local* top-k
//! under [`rank_cmp`] on (score, local docID); the round-robin docID map
//! is monotone per shard, so local rank order equals global rank order
//! restricted to the shard. If a document is in the global top-k, fewer
//! than k documents rank ahead of it globally — so fewer than k rank
//! ahead of it in its own shard, and it survives the shard-local top-k.
//! Concatenating the per-shard results, mapping docIDs back to global,
//! sorting with the shared [`rank_cmp`], and truncating to k therefore
//! yields exactly the unsharded result, ties included.
//!
//! Pruned execution additionally exchanges a [`SharedThreshold`]: shards
//! publish their local heap thresholds monotonically and skip blocks
//! under the *strict* foreign threshold (see
//! [`crate::topk::SharedThreshold`]), which prices out only documents
//! provably below the global k-th score — never a boundary tie — so the
//! per-shard result still contains every global top-k member from that
//! shard.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use iiu_index::score::term_score_fixed;
use iiu_index::shard::ShardedIndex;
use iiu_index::{IndexError, InvertedIndex, TermId};

use crate::cost::{CpuCostModel, PhaseBreakdown};
use crate::ops::{self, DecodeScratch, OpCounts};
use crate::pruned;
use crate::topk::{rank_cmp, top_k, Hit, SharedThreshold};

/// Locks a mutex, recovering the guard if a previous holder panicked
/// (shard state stays usable; the panicked query already reported
/// failure through its result slot).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

type Job = Box<dyn FnOnce(&InvertedIndex, &mut DecodeScratch) + Send>;

/// A persistent pool with one worker per shard, each owning its shard
/// reference and decode scratch. The execution substrate sharded engines
/// (and higher layers running general query trees) submit onto.
#[derive(Debug)]
pub struct ShardPool {
    index: Arc<ShardedIndex>,
    senders: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl ShardPool {
    /// Spawns one worker per shard of `index`.
    pub fn new(index: Arc<ShardedIndex>) -> Self {
        let n = index.num_shards();
        let mut senders = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for s in 0..n {
            let (tx, rx) = mpsc::channel::<Job>();
            let index = Arc::clone(&index);
            let builder = std::thread::Builder::new().name(format!("iiu-shard-{s}"));
            let handle = builder.spawn(move || {
                let mut scratch = DecodeScratch::new();
                while let Ok(job) = rx.recv() {
                    // The submit path wraps the caller's closure in its
                    // own catch_unwind so the result slot is always
                    // signalled; this outer guard keeps the worker alive
                    // even if that wrapper itself panics.
                    let _ = catch_unwind(AssertUnwindSafe(|| {
                        job(index.shard(s), &mut scratch);
                    }));
                }
            });
            match handle {
                Ok(h) => {
                    senders.push(tx);
                    handles.push(h);
                }
                Err(_) => {
                    // Spawn failure: drop the sender; run() treats the
                    // missing worker as a failed shard.
                    drop(tx);
                }
            }
        }
        ShardPool { index, senders, handles }
    }

    /// The sharded index the pool serves.
    pub fn index(&self) -> &Arc<ShardedIndex> {
        &self.index
    }

    /// Number of shards (== workers).
    pub fn num_shards(&self) -> usize {
        self.index.num_shards()
    }

    /// Runs `f` once on every shard worker (in parallel) and collects the
    /// per-shard results in shard order. A slot is `None` if that shard's
    /// execution panicked or its worker is gone — the other shards still
    /// complete and the pool remains usable.
    pub fn run<T, F>(&self, f: F) -> Vec<Option<T>>
    where
        F: Fn(usize, &InvertedIndex, &mut DecodeScratch) -> T + Send + Sync + 'static,
        T: Send + 'static,
    {
        struct Slot<T> {
            state: Mutex<(Vec<Option<T>>, usize)>,
            done: Condvar,
        }
        let n = self.num_shards();
        let f = Arc::new(f);
        let slot = Arc::new(Slot {
            state: Mutex::new(((0..n).map(|_| None).collect::<Vec<Option<T>>>(), 0usize)),
            done: Condvar::new(),
        });
        let mut expected = 0usize;
        for (s, tx) in self.senders.iter().enumerate() {
            let f = Arc::clone(&f);
            let slot = Arc::clone(&slot);
            let job: Job = Box::new(move |shard, scratch| {
                let out = catch_unwind(AssertUnwindSafe(|| f(s, shard, scratch))).ok();
                let mut g = lock(&slot.state);
                g.0[s] = out;
                g.1 += 1;
                slot.done.notify_all();
            });
            if tx.send(job).is_ok() {
                expected += 1;
            }
        }
        let mut g = lock(&slot.state);
        while g.1 < expected {
            g = slot.done.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
        std::mem::take(&mut g.0)
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        // Closing the channels ends every worker loop; then join so no
        // worker outlives the pool (and its Arc of the index).
        self.senders.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The result of one sharded query: merged hits plus exact per-shard and
/// summed operation counts, priced as a parallel execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedOutcome {
    /// Global top-k hits, bit-identical to the unsharded engine.
    pub hits: Vec<Hit>,
    /// Candidate documents offered to top-k selection, summed over shards.
    pub candidates: u64,
    /// Operation counts summed exactly over all shards plus the
    /// coordinator's threshold primer (via [`OpCounts::merge`]).
    pub counts: OpCounts,
    /// Per-shard operation counts, in shard order.
    pub shard_counts: Vec<OpCounts>,
    /// Coordinator-side work done *before* dispatch (the single-term
    /// threshold primer, [`pruned::prime_single_threshold`]); zero for
    /// exhaustive and multi-term queries. `counts` is the sum of
    /// `shard_counts` and this.
    pub primer: OpCounts,
    /// Modeled parallel timing: the critical-path (slowest) shard's phase
    /// breakdown plus the cross-shard merge priced into the top-k phase.
    pub phases: PhaseBreakdown,
}

impl ShardedOutcome {
    /// Modeled end-to-end latency in nanoseconds (critical path + merge).
    pub fn latency_ns(&self) -> f64 {
        self.phases.total_ns()
    }
}

/// A query engine executing every query across the shards of a
/// [`ShardedIndex`] in parallel. The sharded mirror of
/// [`crate::engine::CpuEngine`]: same query shapes, same error contract,
/// bit-identical hits.
///
/// Methods take `&self` — per-query mutable state lives in the pool
/// workers (scratch) or per-query structures (heaps, shared threshold).
#[derive(Debug)]
pub struct ShardedEngine {
    pool: ShardPool,
    cost: CpuCostModel,
    pruned: bool,
    /// Cumulative docs scored per shard, for operator load-balance views.
    loads: Vec<std::sync::atomic::AtomicU64>,
}

impl ShardedEngine {
    /// Creates an engine (and its worker pool) over a sharded index, with
    /// the default cost model, in exhaustive mode.
    pub fn new(index: Arc<ShardedIndex>) -> Self {
        let pool = ShardPool::new(index);
        let loads = (0..pool.num_shards())
            .map(|_| std::sync::atomic::AtomicU64::new(0))
            .collect();
        ShardedEngine { pool, cost: CpuCostModel::default(), pruned: false, loads }
    }

    /// Enables or disables block-max pruned execution (builder style).
    #[must_use]
    pub fn with_pruning(mut self, pruned: bool) -> Self {
        self.pruned = pruned;
        self
    }

    /// Replaces the cost model (builder style).
    #[must_use]
    pub fn with_cost_model(mut self, cost: CpuCostModel) -> Self {
        self.cost = cost;
        self
    }

    /// True when the engine skips blocks via score bounds.
    pub fn pruning(&self) -> bool {
        self.pruned
    }

    /// The cost model pricing per-shard work.
    pub fn cost_model(&self) -> &CpuCostModel {
        &self.cost
    }

    /// Cumulative documents scored per shard since the engine started —
    /// an operator's load-balance view across the shard workers.
    pub fn shard_loads(&self) -> Vec<u64> {
        self.loads
            .iter()
            .map(|l| l.load(std::sync::atomic::Ordering::Relaxed))
            .collect()
    }

    /// The underlying sharded index.
    pub fn index(&self) -> &Arc<ShardedIndex> {
        self.pool.index()
    }

    /// The worker pool (for layers running general query trees).
    pub fn pool(&self) -> &ShardPool {
        &self.pool
    }

    /// Number of shards queries fan out across.
    pub fn num_shards(&self) -> usize {
        self.pool.num_shards()
    }

    fn resolve(&self, term: &str) -> Result<TermId, IndexError> {
        // Dictionaries are uniform across shards; shard 0 speaks for all.
        self.pool
            .index()
            .shard(0)
            .term_id(term)
            .ok_or_else(|| IndexError::UnknownTerm { term: term.to_owned() })
    }

    /// Sums a term's document frequency across shards (the global df).
    fn global_df(&self, id: TermId) -> u64 {
        self.pool.index().shards().iter().map(|s| s.term_info(id).df).sum()
    }

    /// Merges per-shard `(hits, counts)` results into a [`ShardedOutcome`],
    /// mapping shard-local docIDs back to global ones.
    fn merge_outcome(
        &self,
        results: Vec<Option<(Vec<Hit>, OpCounts)>>,
        k: usize,
        primer: OpCounts,
    ) -> Result<ShardedOutcome, IndexError> {
        let n = self.num_shards() as u32;
        let mut all_hits = Vec::new();
        let mut counts = OpCounts::default();
        let mut shard_counts = Vec::with_capacity(results.len());
        let mut crit = PhaseBreakdown::default();
        for (s, r) in results.into_iter().enumerate() {
            let Some((hits, shard)) = r else {
                return Err(IndexError::CorruptIndex { context: "shard execution failed" });
            };
            all_hits.extend(hits.into_iter().map(|h| Hit {
                doc_id: h.doc_id * n + s as u32,
                score: h.score,
            }));
            counts.merge(&shard);
            if let Some(load) = self.loads.get(s) {
                load.fetch_add(shard.docs_scored, std::sync::atomic::Ordering::Relaxed);
            }
            let phases = self.cost.price(&shard);
            if phases.total_ns() > crit.total_ns() {
                crit = phases;
            }
            shard_counts.push(shard);
        }
        // The host-side cross-shard merge is a top-k pass over at most
        // n·k candidates; price it into the top-k phase.
        crit.topk_ns += self.cost.price_topk(all_hits.len() as u64);
        // The primer runs serially before dispatch, so its phases land on
        // the critical path in full. `price` bakes the fixed per-query
        // overhead into `other_ns`; the primer belongs to the same query,
        // so strip that term rather than charging it twice.
        if primer != OpCounts::default() {
            let p = self.cost.price(&primer);
            crit.decompress_ns += p.decompress_ns;
            crit.setop_ns += p.setop_ns;
            crit.score_ns += p.score_ns;
            crit.topk_ns += p.topk_ns;
            crit.other_ns += p.other_ns - self.cost.query_overhead_ns;
            counts.merge(&primer);
        }
        all_hits.sort_by(rank_cmp);
        all_hits.truncate(k);
        Ok(ShardedOutcome {
            hits: all_hits,
            candidates: counts.topk_candidates,
            counts,
            shard_counts,
            primer,
            phases: crit,
        })
    }

    /// Single-term query fanned across shards.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::UnknownTerm`] if `term` is not indexed and
    /// [`IndexError::CorruptIndex`] if a shard execution failed.
    pub fn search_single(&self, term: &str, k: usize) -> Result<ShardedOutcome, IndexError> {
        let id = self.resolve(term)?;
        let pruned_mode = self.pruned;
        let shared = Arc::new(SharedThreshold::new());
        // Prime the shared threshold from the shard holding the
        // highest-bound block, so no shard pays the cold-heap ramp-up
        // (the serial fraction that would otherwise cap scaling).
        let mut primer = OpCounts::default();
        if pruned_mode && self.num_shards() > 1 {
            let shards = self.pool.index().shards();
            if let Some(best) = shards.iter().max_by_key(|sh| sh.list_bounds(id).max_ub()) {
                let mut scratch = DecodeScratch::default();
                pruned::prime_single_threshold(best, id, k, &mut primer, &mut scratch, &shared);
            }
        }
        let results = self.pool.run(move |_, shard, scratch| {
            let mut counts = OpCounts::default();
            let hits = if pruned_mode {
                pruned::search_single_pruned_shared(
                    shard,
                    id,
                    k,
                    &mut counts,
                    scratch,
                    Some(&shared),
                )
            } else {
                exhaustive_single(shard, id, k, &mut counts, scratch)
            };
            (hits, counts)
        });
        self.merge_outcome(results, k, primer)
    }

    /// Intersection query fanned across shards.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::UnknownTerm`] if either term is not indexed
    /// and [`IndexError::CorruptIndex`] if a shard execution failed.
    pub fn search_intersection(
        &self,
        term_a: &str,
        term_b: &str,
        k: usize,
    ) -> Result<ShardedOutcome, IndexError> {
        let ia = self.resolve(term_a)?;
        let ib = self.resolve(term_b)?;
        // Global SvS order by global df; a shard whose local lists invert
        // the order swaps locally (hits are symmetric, only work differs).
        let (ga, gb) = if self.global_df(ia) <= self.global_df(ib) { (ia, ib) } else { (ib, ia) };
        let pruned_mode = self.pruned;
        let shared = Arc::new(SharedThreshold::new());
        let results = self.pool.run(move |_, shard, scratch| {
            let (short_id, long_id) =
                if shard.term_info(ga).df <= shard.term_info(gb).df { (ga, gb) } else { (gb, ga) };
            let mut counts = OpCounts::default();
            let hits = if pruned_mode {
                pruned::search_intersection_pruned_shared(
                    shard,
                    short_id,
                    long_id,
                    k,
                    &mut counts,
                    scratch,
                    Some(&shared),
                )
            } else {
                exhaustive_intersection(shard, short_id, long_id, k, &mut counts, scratch)
            };
            (hits, counts)
        });
        self.merge_outcome(results, k, OpCounts::default())
    }

    /// Union query fanned across shards.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::UnknownTerm`] if either term is not indexed
    /// and [`IndexError::CorruptIndex`] if a shard execution failed.
    pub fn search_union(
        &self,
        term_a: &str,
        term_b: &str,
        k: usize,
    ) -> Result<ShardedOutcome, IndexError> {
        let ia = self.resolve(term_a)?;
        let ib = self.resolve(term_b)?;
        let pruned_mode = self.pruned;
        let shared = Arc::new(SharedThreshold::new());
        let results = self.pool.run(move |_, shard, scratch| {
            let mut counts = OpCounts::default();
            let hits = if pruned_mode {
                pruned::search_union_pruned_shared(
                    shard,
                    ia,
                    ib,
                    k,
                    &mut counts,
                    scratch,
                    Some(&shared),
                )
            } else {
                exhaustive_union(shard, ia, ib, k, &mut counts, scratch)
            };
            (hits, counts)
        });
        self.merge_outcome(results, k, OpCounts::default())
    }
}

/// Per-shard exhaustive single-term execution, count-compatible with
/// [`crate::engine::CpuEngine::search_single`].
fn exhaustive_single(
    index: &InvertedIndex,
    id: TermId,
    k: usize,
    counts: &mut OpCounts,
    scratch: &mut DecodeScratch,
) -> Vec<Hit> {
    let list = index.encoded_list(id);
    let idf_bar = index.term_info(id).idf_bar;
    ops::decode_full_into(list, counts, &mut scratch.full_a);
    let hits: Vec<Hit> = scratch
        .full_a
        .iter()
        .map(|p| Hit {
            doc_id: p.doc_id,
            score: term_score_fixed(idf_bar, index.dl_bar(p.doc_id), p.tf).to_f64(),
        })
        .collect();
    counts.docs_scored = hits.len() as u64;
    counts.topk_candidates = hits.len() as u64;
    counts.results = hits.len() as u64;
    top_k(hits, k)
}

/// Per-shard exhaustive SvS intersection, count-compatible with
/// [`crate::engine::CpuEngine::search_intersection`].
fn exhaustive_intersection(
    index: &InvertedIndex,
    short_id: TermId,
    long_id: TermId,
    k: usize,
    counts: &mut OpCounts,
    scratch: &mut DecodeScratch,
) -> Vec<Hit> {
    let short = index.encoded_list(short_id);
    let long = index.encoded_list(long_id);
    let idf_short = index.term_info(short_id).idf_bar;
    let idf_long = index.term_info(long_id).idf_bar;
    let matches = ops::intersect_svs(short, long, long_id, counts, scratch);
    let hits: Vec<Hit> = matches
        .iter()
        .map(|&(doc_id, tf_s, tf_l)| {
            let dl = index.dl_bar(doc_id);
            let s = term_score_fixed(idf_short, dl, tf_s)
                .saturating_add(term_score_fixed(idf_long, dl, tf_l));
            Hit { doc_id, score: s.to_f64() }
        })
        .collect();
    counts.docs_scored = 2 * hits.len() as u64;
    counts.topk_candidates = hits.len() as u64;
    top_k(hits, k)
}

/// Per-shard exhaustive union merge, count-compatible with
/// [`crate::engine::CpuEngine::search_union`].
fn exhaustive_union(
    index: &InvertedIndex,
    ia: TermId,
    ib: TermId,
    k: usize,
    counts: &mut OpCounts,
    scratch: &mut DecodeScratch,
) -> Vec<Hit> {
    let la = index.encoded_list(ia);
    let lb = index.encoded_list(ib);
    let idf_a = index.term_info(ia).idf_bar;
    let idf_b = index.term_info(ib).idf_bar;
    let merged = ops::union_merge(la, lb, counts, scratch);
    let mut scored = 0u64;
    let hits: Vec<Hit> = merged
        .iter()
        .map(|&(doc_id, tf_a, tf_b)| {
            let dl = index.dl_bar(doc_id);
            let mut s = iiu_index::Fixed::ZERO;
            if tf_a > 0 {
                s = s.saturating_add(term_score_fixed(idf_a, dl, tf_a));
                scored += 1;
            }
            if tf_b > 0 {
                s = s.saturating_add(term_score_fixed(idf_b, dl, tf_b));
                scored += 1;
            }
            Hit { doc_id, score: s.to_f64() }
        })
        .collect();
    counts.docs_scored = scored;
    counts.topk_candidates = hits.len() as u64;
    top_k(hits, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CpuEngine;
    use iiu_index::{BuildOptions, IndexBuilder, Partitioner};

    fn sample_index() -> InvertedIndex {
        let mut b = IndexBuilder::new(BuildOptions {
            partitioner: Partitioner::fixed(4),
            ..Default::default()
        });
        b.add_document(&"hot ".repeat(40));
        b.add_document(&"cold ".repeat(40));
        b.add_document(&"hot cold ".repeat(25));
        for i in 0..120 {
            b.add_document(&format!("hot cold filler{}", i % 7));
        }
        b.build()
    }

    fn sharded(n: usize, pruned: bool) -> ShardedEngine {
        let idx = sample_index();
        let s = Arc::new(ShardedIndex::split(&idx, n).unwrap());
        ShardedEngine::new(s).with_pruning(pruned)
    }

    #[test]
    fn sharded_matches_unsharded_on_all_shapes() {
        let idx = sample_index();
        for n in [1usize, 2, 3, 4, 7] {
            for pruned in [false, true] {
                let eng = sharded(n, pruned);
                let mut cpu = CpuEngine::new(&idx).with_pruning(pruned);
                for k in [0usize, 1, 5, 10, 1000] {
                    let a = cpu.search_single("hot", k).unwrap();
                    let b = eng.search_single("hot", k).unwrap();
                    assert_eq!(a.hits, b.hits, "single n={n} pruned={pruned} k={k}");
                    let a = cpu.search_intersection("hot", "cold", k).unwrap();
                    let b = eng.search_intersection("hot", "cold", k).unwrap();
                    assert_eq!(a.hits, b.hits, "and n={n} pruned={pruned} k={k}");
                    let a = cpu.search_union("hot", "cold", k).unwrap();
                    let b = eng.search_union("hot", "cold", k).unwrap();
                    assert_eq!(a.hits, b.hits, "or n={n} pruned={pruned} k={k}");
                }
            }
        }
    }

    #[test]
    fn shard_counts_sum_exactly_into_merged_counts() {
        let eng = sharded(3, true);
        let out = eng.search_single("hot", 10).unwrap();
        assert_eq!(out.shard_counts.len(), 3);
        let mut sum = OpCounts::default();
        for c in &out.shard_counts {
            sum.merge(c);
        }
        sum.merge(&out.primer);
        assert_eq!(sum, out.counts, "shard tallies + primer must sum exactly");
        assert_eq!(out.candidates, out.counts.topk_candidates);
    }

    #[test]
    fn unknown_term_is_an_error() {
        let eng = sharded(2, false);
        assert!(matches!(
            eng.search_single("zebra", 5),
            Err(IndexError::UnknownTerm { .. })
        ));
        assert!(eng.search_intersection("zebra", "hot", 5).is_err());
        assert!(eng.search_union("hot", "zebra", 5).is_err());
    }

    #[test]
    fn pool_survives_a_panicking_job() {
        let idx = sample_index();
        let s = Arc::new(ShardedIndex::split(&idx, 3).unwrap());
        let pool = ShardPool::new(s);
        let r = pool.run(|s, _, _| {
            if s == 1 {
                panic!("injected shard panic");
            }
            s * 10
        });
        assert_eq!(r, vec![Some(0), None, Some(20)]);
        // The pool (including the worker whose job panicked) still works.
        let r = pool.run(|s, shard, _| (s, shard.num_docs()));
        assert!(r.iter().all(|x| x.is_some()));
    }

    #[test]
    fn engine_reports_shard_failure_as_error() {
        let eng = sharded(2, true);
        // Panic inside a run() on the engine's own pool, then confirm the
        // engine still answers queries on the same workers.
        let r = eng.pool().run::<(), _>(|_, _, _| panic!("boom"));
        assert!(r.iter().all(|x| x.is_none()));
        let out = eng.search_single("hot", 3).unwrap();
        assert_eq!(out.hits.len(), 3);
    }

    #[test]
    fn modeled_parallel_latency_is_critical_path_not_sum() {
        let eng = sharded(4, true);
        let out = eng.search_single("hot", 10).unwrap();
        let cost = CpuCostModel::default();
        let slowest = out
            .shard_counts
            .iter()
            .map(|c| cost.price(c).total_ns())
            .fold(0.0f64, f64::max);
        let summed = cost.price(&out.counts).total_ns();
        assert!(out.latency_ns() >= slowest);
        assert!(
            out.latency_ns() < summed,
            "parallel model {} must beat serial sum {}",
            out.latency_ns(),
            summed
        );
    }

    #[test]
    fn pool_and_engine_are_shareable_across_threads() {
        // Serve workers hold the engine behind an Arc and query through
        // &self; losing Sync would silently break that layer.
        fn assert_share<T: Send + Sync>() {}
        assert_share::<ShardPool>();
        assert_share::<ShardedEngine>();
    }

    #[test]
    fn shard_loads_accumulate_docs_scored_per_shard() {
        let eng = sharded(3, false);
        assert_eq!(eng.shard_loads(), vec![0, 0, 0]);
        let out = eng.search_single("hot", 10).unwrap();
        let want: Vec<u64> = out.shard_counts.iter().map(|c| c.docs_scored).collect();
        assert_eq!(eng.shard_loads(), want);
        let out2 = eng.search_union("hot", "cold", 10).unwrap();
        let want2: Vec<u64> = want
            .iter()
            .zip(&out2.shard_counts)
            .map(|(a, c)| a + c.docs_scored)
            .collect();
        assert_eq!(eng.shard_loads(), want2, "loads are cumulative across queries");
    }

    #[test]
    fn sharded_pruning_still_skips_blocks() {
        let eng = sharded(2, true);
        let out = eng.search_single("hot", 1).unwrap();
        assert!(
            out.counts.blocks_skipped > 0,
            "sharded pruning never skipped: {:?}",
            out.counts
        );
    }
}
