//! Block-max pruned top-k execution: the scoring loops fused with a
//! [`FusedTopK`] heap so whole blocks whose score upper bound cannot beat
//! the current heap minimum are skipped instead of decoded.
//!
//! # Equivalence guarantee
//!
//! Every function here returns *bit-identical* hits to its exhaustive
//! counterpart in [`crate::engine::CpuEngine`]. The argument, shared by
//! all three query shapes:
//!
//! * admission is strict (`candidate > heap minimum`), so the heap's
//!   threshold `t` only grows;
//! * a candidate is only skipped when an upper bound on its final score is
//!   `<= t` at decision time — and since `t` is monotone, the candidate
//!   would also have been *refused* by the heap at its own position in the
//!   exhaustive stream;
//! * therefore the sequence of **admitted** pushes is identical in both
//!   modes, and the final heap contents (and
//!   [`crate::topk::rank_cmp`]-sorted output) are equal.
//!
//! For unions the bound on a partially-seen document is `partial score +
//! other list's MaxScore`; skipping one list's block under that bound also
//! covers documents present in *both* lists, because the combined score is
//! below `t` and the other list's partial push (which the pruned merge
//! still makes) is refused just like the combined push would have been.
//! Once `t` reaches one list's MaxScore the union switches to MaxScore
//! probe mode: the other list drives, and the non-essential list is only
//! consulted through skip-list probes — documents unique to it can no
//! longer enter the heap at all.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use iiu_index::block::EncodedList;
use iiu_index::score::term_score_fixed;
use iiu_index::{DocId, Fixed, InvertedIndex, ListBounds, Posting, TermId};

use crate::ops::{DecodeScratch, OpCounts};
use crate::topk::{FusedTopK, Hit, SharedThreshold};

/// A [`FusedTopK`] wired into an optional cross-shard
/// [`SharedThreshold`]: every local threshold increase is published, and
/// [`threshold`](Self::threshold) reads the max of the local threshold
/// and the strict foreign one. With `shared == None` this is exactly the
/// bare heap — the single-shard paths are bit- and work-identical to
/// before the gate existed.
struct GatedHeap<'a> {
    heap: FusedTopK,
    shared: Option<&'a SharedThreshold>,
}

impl<'a> GatedHeap<'a> {
    fn new(k: usize, shared: Option<&'a SharedThreshold>) -> Self {
        let g = GatedHeap { heap: FusedTopK::new(k), shared };
        g.publish(); // k == 0 prices out everything immediately
        g
    }

    fn publish(&self) {
        if let (Some(sh), Some(t)) = (self.shared, self.heap.threshold()) {
            sh.publish(t);
        }
    }

    fn push(&mut self, doc_id: DocId, score: Fixed) {
        self.heap.push(doc_id, score);
        self.publish();
    }

    /// The effective pruning threshold for the non-strict skip rule
    /// (`bound <= threshold`): the local heap threshold, raised to the
    /// strict reading of the shared one when a foreign shard has priced
    /// out more.
    fn threshold(&self) -> Option<Fixed> {
        let local = self.heap.threshold();
        let foreign = self.shared.and_then(SharedThreshold::strict);
        match (local, foreign) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        }
    }

    fn into_hits(self) -> Vec<Hit> {
        self.heap.into_hits()
    }
}

/// Binary search over a skip list for the block that could contain
/// `doc_id` (`None` if the docID precedes the first block). Probes are
/// tallied exactly like [`crate::ops::intersect_svs`].
fn candidate_block(skips: &[u32], doc_id: DocId, counts: &mut OpCounts) -> Option<usize> {
    let mut lo = 0usize;
    let mut hi = skips.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        counts.binary_probes += 1;
        if skips[mid] <= doc_id {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo.checked_sub(1)
}

/// Binary search for `doc_id` inside one decoded block, returning its term
/// frequency. Comparisons are tallied exactly like the exhaustive SvS.
fn tf_in_block(block: &[Posting], doc_id: DocId, counts: &mut OpCounts) -> Option<u32> {
    let mut lo = 0usize;
    let mut hi = block.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        counts.comparisons += 1;
        if block[mid].doc_id < doc_id {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    (lo < block.len() && block[lo].doc_id == doc_id).then(|| block[lo].tf)
}

/// Single-term query with block-max skipping: blocks whose bound is at or
/// below the heap threshold are never decoded.
pub fn search_single_pruned(
    index: &InvertedIndex,
    id: TermId,
    k: usize,
    counts: &mut OpCounts,
    scratch: &mut DecodeScratch,
) -> Vec<Hit> {
    search_single_pruned_shared(index, id, k, counts, scratch, None)
}

/// [`search_single_pruned`] with an optional cross-shard threshold: the
/// heap publishes its threshold as it grows and skips additionally under
/// the strict foreign threshold. The returned hits always contain every
/// member of the *global* top-k that lives in this index (shard), so a
/// [`crate::topk::rank_cmp`] merge across shards is bit-identical to the
/// unsharded engine.
pub fn search_single_pruned_shared(
    index: &InvertedIndex,
    id: TermId,
    k: usize,
    counts: &mut OpCounts,
    scratch: &mut DecodeScratch,
    shared: Option<&SharedThreshold>,
) -> Vec<Hit> {
    let list = index.encoded_list(id);
    let bounds = index.list_bounds(id);
    let idf = index.term_info(id).idf_bar;
    let mut heap = GatedHeap::new(k, shared);
    let buf = &mut scratch.full_a;
    for b in 0..list.num_blocks() {
        if let Some(t) = heap.threshold() {
            if bounds.block_ub(b) <= t {
                counts.blocks_skipped += 1;
                counts.postings_skipped += u64::from(list.metas()[b].count);
                continue;
            }
        }
        buf.clear();
        list.decode_block_into(b, buf);
        counts.blocks_decoded += 1;
        counts.postings_decoded += buf.len() as u64;
        for p in buf.iter() {
            let s = term_score_fixed(idf, index.dl_bar(p.doc_id), p.tf);
            counts.docs_scored += 1;
            counts.topk_candidates += 1;
            heap.push(p.doc_id, s);
        }
    }
    let hits = heap.into_hits();
    counts.results += hits.len() as u64;
    hits
}

/// Serial budget for [`prime_single_threshold`]: stop refining once this
/// many postings have been scored even if later blocks could still move
/// the kth-best score. Bounds coordinator time on lists whose block upper
/// bounds are flat.
const PRIME_MAX_POSTINGS: usize = 256;

/// Primes a cross-shard threshold before fan-out: scores the postings of
/// the highest-bound blocks — walking blocks in descending score upper
/// bound until the `k`-th best score seen matches or beats every
/// remaining block's upper bound (or a serial budget runs out) — and
/// publishes that `k`-th best score.
///
/// Without priming every shard starts with a cold heap and re-pays the
/// threshold ramp-up the unsharded scan pays once, which is exactly the
/// serial fraction that kills single-term scaling. The dynamic
/// partitioner isolates score outliers into short blocks, so this walk
/// typically decodes a handful of tiny blocks holding the list's hottest
/// postings — a near-global threshold for a few hundred nanoseconds of
/// serial work. The published value is the score of a real document that
/// `k - 1` others match or beat — the same invariant a shard's own heap
/// publishes — so foreign shards reading it strictly still return every
/// global top-k member and the merged output stays bit-identical.
///
/// All work is tallied into `counts`; the caller prices it onto the
/// serial (pre-dispatch) part of the critical path. Does nothing when `k`
/// is 0 or the whole list holds fewer than `k` postings.
pub fn prime_single_threshold(
    index: &InvertedIndex,
    id: TermId,
    k: usize,
    counts: &mut OpCounts,
    scratch: &mut DecodeScratch,
    shared: &SharedThreshold,
) {
    if k == 0 {
        return;
    }
    let list = index.encoded_list(id);
    if (list.num_postings() as usize) < k {
        return;
    }
    let bounds = index.list_bounds(id);
    let mut order: Vec<usize> = (0..list.num_blocks()).collect();
    order.sort_unstable_by(|&a, &b| {
        counts.comparisons += 1;
        bounds.block_ub(b).cmp(&bounds.block_ub(a))
    });
    let idf = index.term_info(id).idf_bar;
    let buf = &mut scratch.full_a;
    let mut scores: Vec<Fixed> = Vec::with_capacity(k * 2);
    let mut scored = 0usize;
    for &b in &order {
        if scores.len() >= k {
            // Once k real scores are in hand, keep walking only while the
            // next block's upper bound can still displace the kth best;
            // when it can't, `scores[k-1]` is this shard's exact kth score
            // — the tightest threshold the shard can contribute. The cap
            // bounds the serial spend when upper bounds are flat.
            counts.comparisons += 1;
            if bounds.block_ub(b) <= scores[k - 1] || scored >= PRIME_MAX_POSTINGS {
                break;
            }
        }
        buf.clear();
        list.decode_block_into(b, buf);
        counts.blocks_decoded += 1;
        counts.postings_decoded += buf.len() as u64;
        for p in buf.iter() {
            counts.docs_scored += 1;
            counts.topk_candidates += 1;
            scores.push(term_score_fixed(idf, index.dl_bar(p.doc_id), p.tf));
        }
        scored += buf.len();
        scores.sort_unstable_by(|x, y| y.cmp(x));
        scores.truncate(k);
    }
    if let Some(&kth) = scores.get(k - 1) {
        shared.publish(kth);
    }
}

/// SvS intersection with score-aware skipping on top of the candidate-block
/// skipping the exhaustive SvS already does: whole short-list blocks, then
/// individual candidates, then long-list probe decodes are dropped whenever
/// their combined-score upper bound cannot beat the threshold.
pub fn search_intersection_pruned(
    index: &InvertedIndex,
    short_id: TermId,
    long_id: TermId,
    k: usize,
    counts: &mut OpCounts,
    scratch: &mut DecodeScratch,
) -> Vec<Hit> {
    search_intersection_pruned_shared(index, short_id, long_id, k, counts, scratch, None)
}

/// [`search_intersection_pruned`] with an optional cross-shard threshold
/// (see [`search_single_pruned_shared`]).
#[allow(clippy::too_many_arguments)]
pub fn search_intersection_pruned_shared(
    index: &InvertedIndex,
    short_id: TermId,
    long_id: TermId,
    k: usize,
    counts: &mut OpCounts,
    scratch: &mut DecodeScratch,
    shared: Option<&SharedThreshold>,
) -> Vec<Hit> {
    let short = index.encoded_list(short_id);
    let long = index.encoded_list(long_id);
    let short_bounds = index.list_bounds(short_id);
    let long_bounds = index.list_bounds(long_id);
    let idf_short = index.term_info(short_id).idf_bar;
    let idf_long = index.term_info(long_id).idf_bar;
    let max_long = long_bounds.max_ub();
    let skips = long.skips();

    let mut heap = GatedHeap::new(k, shared);
    let DecodeScratch { full_a, cache, .. } = scratch;
    let mut decoded = vec![false; long.num_blocks()];
    let mut last_block: Option<usize> = None;

    for blk in 0..short.num_blocks() {
        if let Some(t) = heap.threshold() {
            if short_bounds.block_ub(blk).saturating_add(max_long) <= t {
                counts.blocks_skipped += 1;
                counts.postings_skipped += u64::from(short.metas()[blk].count);
                continue;
            }
        }
        full_a.clear();
        short.decode_block_into(blk, full_a);
        counts.blocks_decoded += 1;
        counts.postings_decoded += full_a.len() as u64;

        for p in full_a.iter() {
            let dl = index.dl_bar(p.doc_id);
            let s_short = term_score_fixed(idf_short, dl, p.tf);
            counts.docs_scored += 1;
            if let Some(t) = heap.threshold() {
                if s_short.saturating_add(max_long) <= t {
                    counts.postings_skipped += 1;
                    continue;
                }
            }
            let Some(block_idx) = candidate_block(skips, p.doc_id, counts) else {
                continue; // docID precedes the long list's first block
            };
            if let Some(t) = heap.threshold() {
                if s_short.saturating_add(long_bounds.block_ub(block_idx)) <= t {
                    counts.postings_skipped += 1;
                    continue;
                }
            }
            // Logical decode accounting matches the exhaustive SvS.
            if last_block != Some(block_idx) {
                counts.blocks_decoded += 1;
                decoded[block_idx] = true;
                counts.postings_decoded += u64::from(long.metas()[block_idx].count);
                last_block = Some(block_idx);
            }
            let block = cache.get_or_decode(long, long_id, block_idx, counts);
            if let Some(tf_long) = tf_in_block(block, p.doc_id, counts) {
                let s = s_short.saturating_add(term_score_fixed(idf_long, dl, tf_long));
                counts.docs_scored += 1;
                counts.topk_candidates += 1;
                heap.push(p.doc_id, s);
            }
        }
    }

    counts.blocks_skipped += decoded.iter().filter(|&&d| !d).count() as u64;
    let hits = heap.into_hits();
    counts.results += hits.len() as u64;
    hits
}

/// A block-at-a-time cursor over one encoded list that skips blocks whose
/// bound (plus the other list's MaxScore) cannot beat the threshold.
struct Cursor<'b, 'i> {
    list: &'i EncodedList,
    bounds: &'i ListBounds,
    idf: Fixed,
    /// Added to block bounds before comparing against the threshold: the
    /// other list's MaxScore while it can still contribute, zero once the
    /// cursor is draining alone.
    other_max: Fixed,
    blk: usize,
    buf: &'b mut Vec<Posting>,
    pos: usize,
}

impl Cursor<'_, '_> {
    /// Makes `head()` valid, decoding (or skipping) blocks as needed.
    /// Returns false when the list is exhausted.
    fn refill(&mut self, t: Option<Fixed>, counts: &mut OpCounts) -> bool {
        while self.pos >= self.buf.len() {
            if self.blk >= self.list.num_blocks() {
                return false;
            }
            let b = self.blk;
            self.blk += 1;
            if let Some(t) = t {
                if self.bounds.block_ub(b).saturating_add(self.other_max) <= t {
                    counts.blocks_skipped += 1;
                    counts.postings_skipped += u64::from(self.list.metas()[b].count);
                    continue;
                }
            }
            self.buf.clear();
            self.pos = 0;
            self.list.decode_block_into(b, self.buf);
            counts.blocks_decoded += 1;
            counts.postings_decoded += self.buf.len() as u64;
        }
        true
    }

    /// The current posting. Only valid after `refill` returned true.
    fn head(&self) -> Posting {
        self.buf[self.pos]
    }

    fn advance(&mut self) {
        self.pos += 1;
    }

    /// Skips everything left in the list, counting it as pruned.
    fn abandon(&mut self, counts: &mut OpCounts) {
        counts.postings_skipped += (self.buf.len() - self.pos) as u64;
        self.pos = self.buf.len();
        while self.blk < self.list.num_blocks() {
            counts.blocks_skipped += 1;
            counts.postings_skipped += u64::from(self.list.metas()[self.blk].count);
            self.blk += 1;
        }
    }
}

/// Union with MaxScore-style pruning.
///
/// Phase 1 merges both lists (skipping blocks under the combined bound);
/// once the threshold reaches one list's MaxScore, documents unique to
/// that list can no longer qualify, so phase 2 lets the other list drive
/// and consults the non-essential list only through skip-list probes.
/// When the threshold reaches the *sum* of both MaxScores, everything
/// remaining is abandoned.
pub fn search_union_pruned(
    index: &InvertedIndex,
    ia: TermId,
    ib: TermId,
    k: usize,
    counts: &mut OpCounts,
    scratch: &mut DecodeScratch,
) -> Vec<Hit> {
    search_union_pruned_shared(index, ia, ib, k, counts, scratch, None)
}

/// [`search_union_pruned`] with an optional cross-shard threshold
/// (see [`search_single_pruned_shared`]).
#[allow(clippy::too_many_arguments)]
pub fn search_union_pruned_shared(
    index: &InvertedIndex,
    ia: TermId,
    ib: TermId,
    k: usize,
    counts: &mut OpCounts,
    scratch: &mut DecodeScratch,
    shared: Option<&SharedThreshold>,
) -> Vec<Hit> {
    let la = index.encoded_list(ia);
    let lb = index.encoded_list(ib);
    let ba = index.list_bounds(ia);
    let bb = index.list_bounds(ib);
    let idf_a = index.term_info(ia).idf_bar;
    let idf_b = index.term_info(ib).idf_bar;
    let max_a = ba.max_ub();
    let max_b = bb.max_ub();
    let both_max = max_a.saturating_add(max_b);

    let mut heap = GatedHeap::new(k, shared);
    let DecodeScratch { full_a, full_b, cache } = scratch;
    full_a.clear();
    full_b.clear();
    let mut ca = Cursor {
        list: la,
        bounds: ba,
        idf: idf_a,
        other_max: max_b,
        blk: 0,
        buf: full_a,
        pos: 0,
    };
    let mut cb = Cursor {
        list: lb,
        bounds: bb,
        idf: idf_b,
        other_max: max_a,
        blk: 0,
        buf: full_b,
        pos: 0,
    };

    // Phase 1: 2-way merge while both lists are essential.
    let probe = loop {
        let t = heap.threshold();
        if let Some(tv) = t {
            if both_max <= tv {
                ca.abandon(counts);
                cb.abandon(counts);
                break None;
            }
            // One list's MaxScore can no longer stand alone: switch to
            // probe mode with the other list driving.
            if max_b <= tv {
                cb.abandon(counts);
                break Some((ca, lb, bb, idf_b, ib));
            }
            if max_a <= tv {
                ca.abandon(counts);
                break Some((cb, la, ba, idf_a, ia));
            }
        }
        match (ca.refill(t, counts), cb.refill(t, counts)) {
            (false, false) => break None,
            (true, false) => {
                ca.other_max = Fixed::ZERO;
                drain_single(index, &mut ca, &mut heap, counts);
                break None;
            }
            (false, true) => {
                cb.other_max = Fixed::ZERO;
                drain_single(index, &mut cb, &mut heap, counts);
                break None;
            }
            (true, true) => {
                let pa = ca.head();
                let pb = cb.head();
                counts.comparisons += 1;
                match pa.doc_id.cmp(&pb.doc_id) {
                    std::cmp::Ordering::Less => {
                        let dl = index.dl_bar(pa.doc_id);
                        let s = term_score_fixed(idf_a, dl, pa.tf);
                        counts.docs_scored += 1;
                        counts.topk_candidates += 1;
                        heap.push(pa.doc_id, s);
                        ca.advance();
                    }
                    std::cmp::Ordering::Greater => {
                        let dl = index.dl_bar(pb.doc_id);
                        let s = term_score_fixed(idf_b, dl, pb.tf);
                        counts.docs_scored += 1;
                        counts.topk_candidates += 1;
                        heap.push(pb.doc_id, s);
                        cb.advance();
                    }
                    std::cmp::Ordering::Equal => {
                        let dl = index.dl_bar(pa.doc_id);
                        let s = term_score_fixed(idf_a, dl, pa.tf)
                            .saturating_add(term_score_fixed(idf_b, dl, pb.tf));
                        counts.docs_scored += 2;
                        counts.topk_candidates += 1;
                        heap.push(pa.doc_id, s);
                        ca.advance();
                        cb.advance();
                    }
                }
            }
        }
    };

    // Phase 2: essential list drives, non-essential list is probed.
    if let Some((mut driver, probed, probed_bounds, probed_idf, probed_id)) = probe {
        let driver_max = driver.bounds.max_ub();
        let probed_max = probed_bounds.max_ub();
        let skips = probed.skips();
        let mut last_block: Option<usize> = None;
        loop {
            let t = heap.threshold();
            if let Some(tv) = t {
                if driver_max.saturating_add(probed_max) <= tv {
                    driver.abandon(counts);
                    break;
                }
            }
            if !driver.refill(t, counts) {
                break;
            }
            let p = driver.head();
            driver.advance();
            let dl = index.dl_bar(p.doc_id);
            let s_drv = term_score_fixed(driver.idf, dl, p.tf);
            counts.docs_scored += 1;
            let t = heap.threshold();
            let s = match candidate_block(skips, p.doc_id, counts) {
                None => s_drv, // precedes the probed list entirely
                Some(bi) => {
                    let can_improve = match t {
                        Some(tv) => s_drv.saturating_add(probed_bounds.block_ub(bi)) > tv,
                        None => true,
                    };
                    if can_improve {
                        if last_block != Some(bi) {
                            counts.blocks_decoded += 1;
                            counts.postings_decoded += u64::from(probed.metas()[bi].count);
                            last_block = Some(bi);
                        }
                        let block = cache.get_or_decode(probed, probed_id, bi, counts);
                        match tf_in_block(block, p.doc_id, counts) {
                            Some(tf) => {
                                counts.docs_scored += 1;
                                s_drv.saturating_add(term_score_fixed(probed_idf, dl, tf))
                            }
                            None => s_drv,
                        }
                    } else {
                        // Even a probed match could not beat the heap, and
                        // if the doc is absent the driver score alone is
                        // pushed either way — skip the decode.
                        counts.postings_skipped += 1;
                        s_drv
                    }
                }
            };
            counts.topk_candidates += 1;
            heap.push(p.doc_id, s);
        }
    }

    let hits = heap.into_hits();
    counts.results += hits.len() as u64;
    hits
}

/// Drains the sole remaining cursor of a union merge, skipping blocks that
/// cannot beat the threshold.
fn drain_single(
    index: &InvertedIndex,
    c: &mut Cursor<'_, '_>,
    heap: &mut GatedHeap<'_>,
    counts: &mut OpCounts,
) {
    loop {
        let t = heap.threshold();
        if !c.refill(t, counts) {
            return;
        }
        let p = c.head();
        c.advance();
        let dl = index.dl_bar(p.doc_id);
        let s = term_score_fixed(c.idf, dl, p.tf);
        counts.docs_scored += 1;
        counts.topk_candidates += 1;
        heap.push(p.doc_id, s);
    }
}
