//! The CPU cost model pricing the baseline's operation counts.
//!
//! Calibration anchors, all from the paper:
//!
//! * §1: Lucene spends **70–100 instructions per docID** on inverted-index
//!   operations (VTune profiling). The defaults below total ~86
//!   instructions per posting on a single-term query.
//! * Fig. 1: decompression is **>40%** of query time across query types;
//!   set operations and scoring dominate the rest.
//! * Table 1: i7-7820X at **3.6 GHz**; an aggressive sustained IPC of 2.0
//!   is assumed for this integer-heavy code.
//!
//! The model deliberately prices *operations counted by the functional
//! engine* rather than wall-clock of this Rust reimplementation, so results
//! are deterministic and reflect Lucene's measured per-docID costs rather
//! than rustc's code generation.

use iiu_index::InvertedIndex;

use crate::ops::OpCounts;

/// Document-frequency threshold above which a query term drives enough
/// postings work to be worth full intra-query shard fan-out. This is the
/// `shard_bench` heavy-query sampling floor: at df ≥ 4096 the per-shard
/// work dominates the fan-out/merge overhead, which is where the 4-shard
/// scaling gate measures its ≥2.5x gain. Schedulers route queries below
/// it inter-query style (one shard task, no fan-out tax) and queries at
/// or above it intra-query style (full fan-out).
pub const HEAVY_DF_THRESHOLD: u64 = 4096;

/// A pre-execution estimate of one query's postings volume, from the
/// term dictionary alone (no list decode). The scheduling analogue of
/// the block-max list metadata: cheap to read, conservative, and
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryCostEstimate {
    /// Sum of the query terms' document frequencies — an upper bound on
    /// postings touched by exhaustive evaluation.
    pub total_postings: u64,
    /// The largest single term's document frequency — the longest list
    /// any one shard task must walk.
    pub max_list_postings: u64,
    /// Terms that resolved in the dictionary (unknown terms contribute
    /// no postings and are pruned before execution anyway).
    pub resolved_terms: usize,
}

impl QueryCostEstimate {
    /// Whether the query clears `df_threshold` on any single list —
    /// the signal that intra-query fan-out pays for itself
    /// ([`HEAVY_DF_THRESHOLD`] is the calibrated default).
    pub fn is_heavy(&self, df_threshold: u64) -> bool {
        self.max_list_postings >= df_threshold
    }
}

/// Estimates the postings volume of a query over `index` from document
/// frequencies alone. Terms missing from the dictionary are skipped
/// (they cannot contribute work). O(terms) dictionary lookups; never
/// touches a postings list.
pub fn estimate_query_cost<S: AsRef<str>>(
    index: &InvertedIndex,
    terms: &[S],
) -> QueryCostEstimate {
    let mut est = QueryCostEstimate::default();
    for t in terms {
        let Some(id) = index.term_id(t.as_ref()) else { continue };
        let df = index.term_info(id).df;
        est.total_postings = est.total_postings.saturating_add(df);
        est.max_list_postings = est.max_list_postings.max(df);
        est.resolved_terms += 1;
    }
    est
}

/// Instruction-level cost model of the baseline CPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuCostModel {
    /// Core frequency in GHz (Table 1: 3.6).
    pub freq_ghz: f64,
    /// Sustained instructions per cycle.
    pub ipc: f64,
    /// Instructions to decode one posting (varint/bit-unpack + prefix sum).
    pub insts_decode_per_posting: f64,
    /// Instructions per merge/intersect comparison.
    pub insts_setop_per_comparison: f64,
    /// Instructions per skip-list binary-search probe (pointer chase,
    /// likely cache miss).
    pub insts_binary_probe: f64,
    /// Instructions to BM25-score one document.
    pub insts_score_per_doc: f64,
    /// Instructions per top-k heap candidate (mostly a compare-and-skip).
    pub insts_topk_per_candidate: f64,
    /// Per-posting bookkeeping the profile attributes to neither phase
    /// (iterator overhead, buffer management).
    pub insts_other_per_posting: f64,
    /// Instructions per phrase-position verification (decode positions,
    /// merge-check adjacency).
    pub insts_phrase_check: f64,
    /// Fixed per-query software overhead in nanoseconds (parsing,
    /// dispatch, result assembly).
    pub query_overhead_ns: f64,
}

impl Default for CpuCostModel {
    fn default() -> Self {
        CpuCostModel {
            freq_ghz: 3.6,
            ipc: 2.0,
            insts_decode_per_posting: 38.0,
            insts_setop_per_comparison: 12.0,
            insts_binary_probe: 18.0,
            insts_score_per_doc: 30.0,
            insts_topk_per_candidate: 4.0,
            insts_other_per_posting: 12.0,
            insts_phrase_check: 40.0,
            query_overhead_ns: 2_000.0,
        }
    }
}

impl CpuCostModel {
    /// Nanoseconds per instruction at this frequency and IPC.
    pub fn ns_per_inst(&self) -> f64 {
        1.0 / (self.freq_ghz * self.ipc)
    }

    /// Prices a query's operation counts into a per-phase breakdown.
    pub fn price(&self, counts: &OpCounts) -> PhaseBreakdown {
        let ns = self.ns_per_inst();
        PhaseBreakdown {
            decompress_ns: counts.postings_decoded as f64 * self.insts_decode_per_posting * ns,
            setop_ns: (counts.comparisons as f64 * self.insts_setop_per_comparison
                + counts.binary_probes as f64 * self.insts_binary_probe
                + counts.phrase_checks as f64 * self.insts_phrase_check)
                * ns,
            score_ns: counts.docs_scored as f64 * self.insts_score_per_doc * ns,
            topk_ns: counts.topk_candidates as f64 * self.insts_topk_per_candidate * ns,
            other_ns: counts.postings_decoded as f64 * self.insts_other_per_posting * ns
                + self.query_overhead_ns,
        }
    }

    /// Prices only the top-k phase (used for the host-side portion of an
    /// IIU query, §4.5).
    pub fn price_topk(&self, candidates: u64) -> f64 {
        candidates as f64 * self.insts_topk_per_candidate * self.ns_per_inst()
    }
}

/// Per-phase query time, the quantity Fig. 1 plots.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseBreakdown {
    /// Decompression time (ns).
    pub decompress_ns: f64,
    /// Set-operation time: merges, intersections, skip-list probes (ns).
    pub setop_ns: f64,
    /// BM25 scoring time (ns).
    pub score_ns: f64,
    /// Top-k selection time (ns).
    pub topk_ns: f64,
    /// Unattributed per-posting overhead plus fixed query overhead (ns).
    pub other_ns: f64,
}

impl PhaseBreakdown {
    /// Total query time in nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.decompress_ns + self.setop_ns + self.score_ns + self.topk_ns + self.other_ns
    }

    /// Fraction of the total spent decompressing (the Fig. 1 headline:
    /// >40% for Lucene).
    pub fn decompress_fraction(&self) -> f64 {
        if self.total_ns() == 0.0 {
            return 0.0;
        }
        self.decompress_ns / self.total_ns()
    }

    /// Adds another breakdown (for averaging over query batches).
    pub fn merge(&mut self, other: &PhaseBreakdown) {
        self.decompress_ns += other.decompress_ns;
        self.setop_ns += other.setop_ns;
        self.score_ns += other.score_ns;
        self.topk_ns += other.topk_ns;
        self.other_ns += other.other_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_fall_in_papers_instruction_range() {
        // Single-term query: decode + score + top-k + other per posting.
        let m = CpuCostModel::default();
        let per_posting = m.insts_decode_per_posting
            + m.insts_score_per_doc
            + m.insts_topk_per_candidate
            + m.insts_other_per_posting;
        assert!(
            (70.0..=100.0).contains(&per_posting),
            "{per_posting} insts/docID outside the paper's 70-100 range"
        );
    }

    #[test]
    fn single_term_decompression_over_40_percent() {
        // Fig. 1 anchor: a pure single-term query profile.
        let m = CpuCostModel::default();
        let counts = OpCounts {
            postings_decoded: 1_000_000,
            blocks_decoded: 8_000,
            docs_scored: 1_000_000,
            topk_candidates: 1_000_000,
            results: 1_000_000,
            ..Default::default()
        };
        let phases = m.price(&counts);
        assert!(
            phases.decompress_fraction() > 0.40,
            "decompression fraction {} must exceed 40%",
            phases.decompress_fraction()
        );
    }

    #[test]
    fn ns_per_inst_matches_frequency() {
        let m = CpuCostModel::default();
        assert!((m.ns_per_inst() - 1.0 / 7.2).abs() < 1e-12);
    }

    #[test]
    fn price_topk_is_linear() {
        let m = CpuCostModel::default();
        assert!((m.price_topk(2_000) - 2.0 * m.price_topk(1_000)).abs() < 1e-9);
    }

    #[test]
    fn breakdown_totals_and_merge() {
        let mut a = PhaseBreakdown {
            decompress_ns: 10.0,
            setop_ns: 5.0,
            score_ns: 3.0,
            topk_ns: 2.0,
            other_ns: 1.0,
        };
        assert_eq!(a.total_ns(), 21.0);
        a.merge(&a.clone());
        assert_eq!(a.total_ns(), 42.0);
    }

    #[test]
    fn empty_counts_cost_only_overhead() {
        let m = CpuCostModel::default();
        let phases = m.price(&OpCounts::default());
        assert_eq!(phases.total_ns(), m.query_overhead_ns);
    }

    #[test]
    fn query_cost_estimate_sums_dfs_and_flags_heavy_lists() {
        let mut b = iiu_index::IndexBuilder::new(iiu_index::BuildOptions::default());
        for i in 0..64 {
            // "common" in every doc; "rare" in one.
            let rare = if i == 0 { " rare" } else { "" };
            b.add_document(&format!("common filler{i}{rare}"));
        }
        let idx = b.build();
        let est = estimate_query_cost(&idx, &["common", "rare"]);
        assert_eq!(est.total_postings, 65);
        assert_eq!(est.max_list_postings, 64);
        assert_eq!(est.resolved_terms, 2);
        assert!(est.is_heavy(64));
        assert!(!est.is_heavy(65));

        // Unknown terms contribute nothing (and never panic).
        let est = estimate_query_cost(&idx, &["zzz-not-indexed"]);
        assert_eq!(est, QueryCostEstimate::default());
        assert!(!est.is_heavy(HEAVY_DF_THRESHOLD));
    }
}
