//! Concurrent cross-engine equivalence: under real thread-level
//! parallelism, the CPU baseline and the IIU engine must return identical
//! hits *and* identical degradation reports for randomized query streams —
//! including queries that mix in out-of-vocabulary terms. Each thread
//! builds its own engines over one shared index, so this also exercises
//! the `Sync` story of [`iiu_index::InvertedIndex`].

use std::sync::Arc;

use iiu_core::{CpuSearchEngine, IiuSearchEngine, Query, SearchEngine};
use iiu_index::InvertedIndex;
use iiu_workloads::{CorpusConfig, QuerySampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREADS: usize = 4;
const QUERIES_PER_THREAD: usize = 60;

fn shared_index() -> Arc<InvertedIndex> {
    let cfg = CorpusConfig { n_docs: 600, n_terms: 140, ..CorpusConfig::tiny(0xC0C0) };
    Arc::new(cfg.generate().into_default_index())
}

/// A term guaranteed out-of-vocabulary: the corpus generator only emits
/// `t…`-prefixed term names.
fn oov_term(rng: &mut StdRng) -> String {
    format!("zzoov{:05}", rng.gen_range(0u32..100_000))
}

/// Samples one random query over `index`'s vocabulary, mixing in an
/// unknown term with probability ~1/4.
fn random_query(index: &InvertedIndex, sampler: &mut QuerySampler, rng: &mut StdRng) -> Query {
    let known = sampler.single_queries(2);
    debug_assert!(index.term_id(&known[0]).is_some());
    match rng.gen_range(0u32..8) {
        0 => Query::term(&known[0]),
        1 => Query::and(Query::term(&known[0]), Query::term(&known[1])),
        2 => Query::or(Query::term(&known[0]), Query::term(&known[1])),
        3 => Query::and(
            Query::or(Query::term(&known[0]), Query::term(&known[1])),
            Query::term(&known[0]),
        ),
        // Unknown-term shapes: dropped from OR, empties AND.
        4 => Query::or(Query::term(&oov_term(rng)), Query::term(&known[0])),
        5 => Query::and(Query::term(&oov_term(rng)), Query::term(&known[0])),
        6 => Query::term(&oov_term(rng)),
        _ => Query::or(
            Query::and(Query::term(&known[0]), Query::term(&known[1])),
            Query::term(&oov_term(rng)),
        ),
    }
}

#[test]
fn engines_agree_on_random_queries_under_concurrency() {
    let index = shared_index();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let index = Arc::clone(&index);
                scope.spawn(move || {
                    let mut cpu = CpuSearchEngine::new(&index);
                    let mut iiu = IiuSearchEngine::new(&index);
                    let mut sampler = QuerySampler::new(&index, 0x9_0000 + t as u64);
                    let mut rng = StdRng::seed_from_u64(0xD1CE ^ t as u64);
                    let mut checked = 0usize;
                    let mut saw_degraded = false;
                    for i in 0..QUERIES_PER_THREAD {
                        let q = random_query(&index, &mut sampler, &mut rng);
                        let k = 1 + (i % 20);
                        let a = cpu
                            .search(&q, k)
                            .unwrap_or_else(|e| panic!("cpu search failed for {q}: {e}"));
                        let b = iiu
                            .search(&q, k)
                            .unwrap_or_else(|e| panic!("iiu search failed for {q}: {e}"));
                        assert_eq!(a.hits, b.hits, "hits diverge for {q} (thread {t})");
                        assert_eq!(
                            a.degraded, b.degraded,
                            "degradation reports diverge for {q} (thread {t})"
                        );
                        saw_degraded |= !a.degraded.is_empty();
                        checked += 1;
                    }
                    (checked, saw_degraded)
                })
            })
            .collect();
        let mut total = 0usize;
        for handle in handles {
            let (checked, saw_degraded) = handle.join().expect("worker thread panicked");
            assert_eq!(checked, QUERIES_PER_THREAD);
            assert!(
                saw_degraded,
                "query mix never produced a degraded response; OOV shapes untested"
            );
            total += checked;
        }
        assert_eq!(total, THREADS * QUERIES_PER_THREAD);
    });
}
