//! Cross-engine equivalence: the baseline and the simulated accelerator
//! must return identical hits for every query shape, and their modeled
//! latencies must have the shapes the paper reports.

use iiu_core::{
    CpuSearchEngine, Degradation, IiuSearchEngine, Query, SearchEngine, ShardedSearchEngine,
};
use iiu_workloads::{CorpusConfig, QuerySampler};

fn index() -> iiu_index::InvertedIndex {
    CorpusConfig::tiny(0x5EED).generate().into_default_index()
}

#[test]
fn engines_agree_on_sampled_primitive_queries() {
    let index = index();
    let mut cpu = CpuSearchEngine::new(&index);
    let mut iiu = IiuSearchEngine::new(&index);
    let mut sampler = QuerySampler::new(&index, 1);
    for term in sampler.single_queries(10) {
        let q = Query::term(term);
        let a = cpu.search(&q, 10).unwrap();
        let b = iiu.search(&q, 10).unwrap();
        assert_eq!(a.hits, b.hits, "hits differ for {q}");
        assert_eq!(a.candidates, b.candidates);
    }
    let mut sampler = QuerySampler::new(&index, 2);
    for (x, y) in sampler.pair_queries(10) {
        for q in [
            Query::parse(&format!("{x} AND {y}")).unwrap(),
            Query::parse(&format!("{x} OR {y}")).unwrap(),
        ] {
            let a = cpu.search(&q, 10).unwrap();
            let b = iiu.search(&q, 10).unwrap();
            assert_eq!(a.hits, b.hits, "hits differ for {q}");
        }
    }
}

#[test]
fn engines_agree_on_complex_trees() {
    let index = index();
    let mut cpu = CpuSearchEngine::new(&index);
    let mut iiu = IiuSearchEngine::new(&index);
    let mut sampler = QuerySampler::new(&index, 3);
    let terms = sampler.single_queries(4);
    let q = Query::parse(&format!(
        "({} OR {}) AND ({} OR {})",
        terms[0], terms[1], terms[2], terms[3]
    ))
    .unwrap();
    let a = cpu.search(&q, 20).unwrap();
    let b = iiu.search(&q, 20).unwrap();
    assert_eq!(a.hits, b.hits, "complex-tree hits differ for {q}");
    assert_eq!(a.candidates, b.candidates);
}

#[test]
fn complex_tree_matches_manual_set_algebra() {
    let index = index();
    let mut cpu = CpuSearchEngine::new(&index);
    let mut sampler = QuerySampler::new(&index, 4);
    let t = sampler.single_queries(3);
    let q = Query::parse(&format!("({} OR {}) AND {}", t[0], t[1], t[2])).unwrap();
    let got = cpu.search(&q, 1_000_000).unwrap();

    use std::collections::BTreeSet;
    let docs = |term: &str| -> BTreeSet<u32> {
        index.decode_term(term).unwrap().doc_ids().into_iter().collect()
    };
    let expected: BTreeSet<u32> = docs(&t[0])
        .union(&docs(&t[1]))
        .copied()
        .collect::<BTreeSet<_>>()
        .intersection(&docs(&t[2]))
        .copied()
        .collect();
    let got_docs: BTreeSet<u32> = got.hits.iter().map(|h| h.doc_id).collect();
    assert_eq!(got_docs, expected);
}

#[test]
fn sharded_engine_agrees_with_unsharded_everywhere() {
    let index = index();
    let mut cpu = CpuSearchEngine::new(&index);
    for shards in [1usize, 2, 4] {
        for pruned in [false, true] {
            let mut eng =
                ShardedSearchEngine::split(&index, shards).unwrap().with_pruning(pruned);
            let mut cpu_p = CpuSearchEngine::new(&index).with_pruning(pruned);
            let mut sampler = QuerySampler::new(&index, 11);
            for term in sampler.single_queries(6) {
                let q = Query::term(term);
                let a = cpu_p.search(&q, 10).unwrap();
                let b = eng.search(&q, 10).unwrap();
                assert_eq!(a.hits, b.hits, "single hits differ {shards}/{pruned} for {q}");
            }
            let mut sampler = QuerySampler::new(&index, 12);
            for (x, y) in sampler.pair_queries(6) {
                for q in [
                    Query::parse(&format!("{x} AND {y}")).unwrap(),
                    Query::parse(&format!("{x} OR {y}")).unwrap(),
                ] {
                    let a = cpu_p.search(&q, 10).unwrap();
                    let b = eng.search(&q, 10).unwrap();
                    assert_eq!(a.hits, b.hits, "pair hits differ {shards}/{pruned} for {q}");
                    if !pruned {
                        // Exhaustive candidate sets are the same documents;
                        // pruned candidate *counts* are a work metric and
                        // legitimately differ across shard layouts.
                        assert_eq!(a.candidates, b.candidates, "candidates differ for {q}");
                    }
                }
            }
            // General trees fan out per shard and must also agree.
            let mut sampler = QuerySampler::new(&index, 13);
            let t = sampler.single_queries(4);
            let q =
                Query::parse(&format!("({} OR {}) AND ({} OR {})", t[0], t[1], t[2], t[3]))
                    .unwrap();
            let a = cpu.search(&q, 20).unwrap();
            let b = eng.search(&q, 20).unwrap();
            assert_eq!(a.hits, b.hits, "tree hits differ {shards}/{pruned} for {q}");
            assert_eq!(a.candidates, b.candidates);
        }
    }
}

#[test]
fn sharded_engine_degrades_unknown_terms_like_unsharded() {
    let index = index();
    let mut eng = ShardedSearchEngine::split(&index, 3).unwrap().with_pruning(true);
    let mut sampler = QuerySampler::new(&index, 14);
    let known = sampler.single_queries(1).remove(0);
    let q = Query::or(Query::term(known.clone()), Query::term("nosuchterm0000001"));
    let r = eng.search(&q, 10).unwrap();
    let want = eng.search(&Query::term(known), 10).unwrap();
    assert_eq!(r.hits, want.hits, "OR degrades to the known side");
    assert_eq!(
        r.degraded,
        vec![Degradation::UnknownTermDropped { term: "nosuchterm0000001".into() }]
    );
}

#[test]
fn sharded_engine_rejects_phrase_queries() {
    let index = index();
    let mut eng = ShardedSearchEngine::split(&index, 2).unwrap();
    let mut sampler = QuerySampler::new(&index, 15);
    let t = sampler.single_queries(2);
    let q = Query::phrase(vec![t[0].clone(), t[1].clone()]);
    assert!(eng.search(&q, 10).is_err(), "phrases need the global positional sidecar");
}

#[test]
fn sharded_modeled_latency_beats_unsharded_on_heavy_queries() {
    // The whole point of document sharding: the critical-path shard is
    // cheaper than the full index scan.
    let index = index();
    let mut cpu = CpuSearchEngine::new(&index).with_pruning(false);
    let mut eng = ShardedSearchEngine::split(&index, 4).unwrap().with_pruning(false);
    let mut sampler = QuerySampler::new(&index, 16);
    let term = sampler.single_queries(1).remove(0);
    let q = Query::term(term);
    let a = cpu.search(&q, 10).unwrap();
    let b = eng.search(&q, 10).unwrap();
    assert_eq!(a.hits, b.hits);
    assert!(
        b.breakdown.device_ns < a.breakdown.device_ns,
        "4-shard device time {} should beat unsharded {}",
        b.breakdown.device_ns,
        a.breakdown.device_ns
    );
}

#[test]
fn iiu_is_faster_than_cpu_on_primitive_queries() {
    // The headline direction of Fig. 15 must hold even at test scale.
    let index = index();
    let mut cpu = CpuSearchEngine::new(&index);
    let mut iiu = IiuSearchEngine::new(&index);
    let mut sampler = QuerySampler::new(&index, 5);
    let (x, y) = sampler.pair_queries(1).remove(0);
    for q in [
        Query::term(x.clone()),
        Query::parse(&format!("{x} AND {y}")).unwrap(),
        Query::parse(&format!("{x} OR {y}")).unwrap(),
    ] {
        let a = cpu.search(&q, 10).unwrap();
        let b = iiu.search(&q, 10).unwrap();
        assert!(
            b.breakdown.device_ns < a.breakdown.device_ns,
            "IIU device time {} should beat CPU {} for {q}",
            b.breakdown.device_ns,
            a.breakdown.device_ns
        );
    }
}

#[test]
fn unknown_terms_degrade_instead_of_erroring() {
    let index = index();
    let mut cpu = CpuSearchEngine::new(&index);
    let mut iiu = IiuSearchEngine::new(&index);

    // A bare unknown term serves an empty (degraded) response.
    let q = Query::parse("nosuchterm0000001").unwrap();
    for r in [cpu.search(&q, 5).unwrap(), iiu.search(&q, 5).unwrap()] {
        assert!(r.hits.is_empty());
        assert!(r.is_degraded(), "pruning must be reported");
    }

    // Under OR the unknown term drops out and the rest still serves.
    let mut sampler = QuerySampler::new(&index, 3);
    let known = sampler.single_queries(1).remove(0);
    let q = Query::or(Query::term(known.clone()), Query::term("nosuchterm0000001"));
    let rc = cpu.search(&q, 10).unwrap();
    let ri = iiu.search(&q, 10).unwrap();
    let want = cpu.search(&Query::term(known.clone()), 10).unwrap();
    assert!(!rc.hits.is_empty());
    assert_eq!(rc.hits, want.hits, "OR degrades to the known side");
    assert_eq!(rc.hits, ri.hits, "both engines degrade identically");
    assert_eq!(
        rc.degraded,
        vec![Degradation::UnknownTermDropped { term: "nosuchterm0000001".into() }]
    );
    assert_eq!(ri.degraded, rc.degraded);

    // Under AND the unknown term empties the conjunction.
    let q = Query::and(Query::term(known), Query::term("nosuchterm0000001"));
    for r in [cpu.search(&q, 10).unwrap(), iiu.search(&q, 10).unwrap()] {
        assert!(r.hits.is_empty());
        assert_eq!(
            r.degraded,
            vec![Degradation::UnknownTermEmptyAnd { term: "nosuchterm0000001".into() }]
        );
    }
}

#[test]
fn k_limits_hits_but_not_candidates() {
    let index = index();
    let mut iiu = IiuSearchEngine::new(&index);
    let mut sampler = QuerySampler::new(&index, 6);
    let term = sampler.single_queries(1).remove(0);
    let q = Query::term(term);
    let r = iiu.search(&q, 3).unwrap();
    assert!(r.hits.len() <= 3);
    assert!(r.candidates >= r.hits.len() as u64);
    // Hits are sorted by descending score.
    assert!(r.hits.windows(2).all(|w| w[0].score >= w[1].score));
}

#[test]
fn latency_breakdown_components_are_consistent() {
    let index = index();
    let mut iiu = IiuSearchEngine::new(&index);
    let mut sampler = QuerySampler::new(&index, 7);
    let term = sampler.single_queries(1).remove(0);
    let r = iiu.search(&Query::term(term), 10).unwrap();
    let b = r.breakdown;
    assert!(b.device_ns > 0.0);
    assert!(b.topk_ns > 0.0);
    assert!((r.latency_ns() - (b.dispatch_ns + b.device_ns + b.topk_ns)).abs() < 1e-9);
}

#[test]
fn sharded_engine_labels_partial_coverage_truthfully() {
    // Shard 1's worker panics on every query: responses must carry
    // ShardsUnavailable with exact counts, and the surviving hits must be
    // bit-identical to the unsharded engine restricted to the documents
    // of the surviving shards (round-robin: doc d lives on shard d % n).
    let index = index();
    let n = 3usize;
    let chaos = iiu_core::ShardChaosPlan {
        panic_burst: Some((0, u64::MAX, 1)),
        ..iiu_core::ShardChaosPlan::NONE
    };
    for pruned in [false, true] {
        let eng = ShardedSearchEngine::split(&index, n)
            .unwrap()
            .with_pruning(pruned)
            .with_chaos(chaos.clone());
        let mut cpu = CpuSearchEngine::new(&index);
        let mut sampler = QuerySampler::new(&index, 11);
        let terms = sampler.single_queries(4);
        for q in [
            Query::term(terms[0].clone()),
            Query::parse(&format!("{} AND {}", terms[0], terms[1])).unwrap(),
            Query::parse(&format!("{} OR {}", terms[1], terms[2])).unwrap(),
            // A general expression tree takes the eval_sharded path.
            Query::parse(&format!(
                "({} OR {}) AND ({} OR {})",
                terms[0], terms[1], terms[2], terms[3]
            ))
            .unwrap(),
        ] {
            let partial = eng.search_ref(&q, 10).unwrap();
            assert!(
                partial.degraded.iter().any(|d| matches!(
                    d,
                    Degradation::ShardsUnavailable { missing, total }
                        if missing == &[1] && *total == n
                )),
                "pruned={pruned} {q}: degradations {:?}",
                partial.degraded
            );
            let full = cpu.search(&q, index.num_docs() as usize + 1).unwrap();
            let mut want: Vec<_> =
                full.hits.into_iter().filter(|h| h.doc_id as usize % n != 1).collect();
            want.truncate(10);
            assert_eq!(
                partial.hits, want,
                "pruned={pruned} {q}: partial hits must match unsharded over survivors"
            );
        }
    }
}

#[test]
fn fail_closed_sharded_engine_errors_instead_of_partial() {
    let index = index();
    let chaos = iiu_core::ShardChaosPlan {
        panic_burst: Some((0, u64::MAX, 0)),
        ..iiu_core::ShardChaosPlan::NONE
    };
    let eng = ShardedSearchEngine::split(&index, 2)
        .unwrap()
        .with_chaos(chaos)
        .with_fail_closed(true);
    let mut sampler = QuerySampler::new(&index, 12);
    let terms = sampler.single_queries(2);
    // Both the primitive path and the general-tree path must refuse.
    assert!(eng.search_ref(&Query::term(terms[0].clone()), 5).is_err());
    let tree =
        Query::parse(&format!("({} OR {}) AND {}", terms[0], terms[1], terms[0])).unwrap();
    assert!(eng.search_ref(&tree, 5).is_err());
}
