//! Phrase-query semantics across both engines (paper §2.2: phrase queries
//! are built from an intersection query plus positional verification).

use iiu_core::{CpuSearchEngine, IiuSearchEngine, Query, SearchEngine, SearchError};
use iiu_index::{BuildOptions, IndexBuilder, IndexError, PositionIndex};

fn build() -> (iiu_index::InvertedIndex, PositionIndex) {
    let docs = [
        "the new york times reported the story", // 0: "new york times" ✓
        "new shoes from york street",            // 1: has terms, wrong order
        "she moved to new york last year",       // 2: "new york" ✓
        "york new times",                        // 3: reversed
        "the times of new york",                 // 4: "new york" ✓
        "a new new york york times times", // 5: "new york" at 2-3? tokens: a new new york york times times -> new@1,2 york@3,4 -> 2+1=3 ✓
    ];
    let mut b =
        IndexBuilder::new(BuildOptions { track_positions: true, ..Default::default() });
    for d in docs {
        b.add_document(d);
    }
    b.build_with_positions()
}

#[test]
fn phrase_matches_exact_consecutive_terms() {
    let (index, positions) = build();
    let mut cpu = CpuSearchEngine::new(&index).with_position_index(&positions);
    let q = Query::parse("\"new york\"").unwrap();
    let r = cpu.search(&q, 10).unwrap();
    let mut docs: Vec<u32> = r.hits.iter().map(|h| h.doc_id).collect();
    docs.sort_unstable();
    assert_eq!(docs, vec![0, 2, 4, 5]);
}

#[test]
fn three_term_phrase_is_stricter() {
    let (index, positions) = build();
    let mut cpu = CpuSearchEngine::new(&index).with_position_index(&positions);
    let q = Query::parse("\"new york times\"").unwrap();
    let r = cpu.search(&q, 10).unwrap();
    let docs: Vec<u32> = r.hits.iter().map(|h| h.doc_id).collect();
    assert_eq!(docs, vec![0]);
}

#[test]
fn engines_agree_on_phrases() {
    let (index, positions) = build();
    let mut cpu = CpuSearchEngine::new(&index).with_position_index(&positions);
    let mut iiu = IiuSearchEngine::new(&index).with_position_index(&positions);
    for text in ["\"new york\"", "\"new york times\"", "\"york times\" OR street"] {
        let q = Query::parse(text).unwrap();
        let a = cpu.search(&q, 10).unwrap();
        let b = iiu.search(&q, 10).unwrap();
        assert_eq!(a.hits, b.hits, "engines disagree on {text}");
    }
}

#[test]
fn phrase_without_positions_errors() {
    let (index, _) = build();
    let mut cpu = CpuSearchEngine::new(&index);
    let mut iiu = IiuSearchEngine::new(&index);
    let q = Query::parse("\"new york\"").unwrap();
    assert!(matches!(
        cpu.search(&q, 5),
        Err(SearchError::Index(IndexError::PositionsUnavailable))
    ));
    assert!(matches!(
        iiu.search(&q, 5),
        Err(SearchError::Index(IndexError::PositionsUnavailable))
    ));
}

#[test]
fn phrase_inside_boolean_tree() {
    let (index, positions) = build();
    let mut cpu = CpuSearchEngine::new(&index).with_position_index(&positions);
    // Docs with the phrase "new york" but NOT containing "times":
    // doc 2 (moved to new york) qualifies; 0/4/5 contain "times".
    let q = Query::parse("\"new york\" AND year").unwrap();
    let r = cpu.search(&q, 10).unwrap();
    let docs: Vec<u32> = r.hits.iter().map(|h| h.doc_id).collect();
    assert_eq!(docs, vec![2]);
}

#[test]
fn phrase_latency_includes_host_verification() {
    let (index, positions) = build();
    let mut iiu = IiuSearchEngine::new(&index).with_position_index(&positions);
    let q = Query::parse("\"new york\"").unwrap();
    let r = iiu.search(&q, 10).unwrap();
    assert!(r.breakdown.device_ns > 0.0, "intersection runs on the accelerator");
    assert!(r.breakdown.topk_ns > 0.0, "verification + top-k run on the host");
}
