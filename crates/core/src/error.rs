//! Typed search errors and graceful-degradation records.
//!
//! The engines distinguish two failure planes: the *index* plane
//! ([`IndexError`] — a corrupt or incomplete index) and the *simulation*
//! plane ([`SimError`] — the accelerator model wedged or was misconfigured).
//! Unknown query terms are no longer errors at all: the engines prune them
//! and report what was pruned through [`Degradation`] entries on the
//! response, so a serving layer can return partial results instead of a
//! 5xx.

use std::error::Error;
use std::fmt;

use iiu_index::IndexError;
use iiu_sim::SimError;

/// An error from either engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum SearchError {
    /// The index rejected the request (missing positional sidecar,
    /// corruption detected mid-read, ...).
    Index(IndexError),
    /// The accelerator simulation failed (stall watchdog, bad allocation).
    Sim(SimError),
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::Index(e) => write!(f, "index error: {e}"),
            SearchError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl SearchError {
    /// Whether a retry of the same query could succeed. Only simulator
    /// stalls qualify; index errors and bad requests are permanent.
    pub fn is_transient(&self) -> bool {
        match self {
            SearchError::Sim(e) => e.is_transient(),
            SearchError::Index(_) => false,
        }
    }
}

impl Error for SearchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SearchError::Index(e) => Some(e),
            SearchError::Sim(e) => Some(e),
        }
    }
}

impl From<IndexError> for SearchError {
    fn from(e: IndexError) -> Self {
        SearchError::Index(e)
    }
}

impl From<SimError> for SearchError {
    fn from(e: SimError) -> Self {
        SearchError::Sim(e)
    }
}

/// How a response was weakened to keep serving despite a problem term.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Degradation {
    /// An unknown term under `OR` contributed nothing and was dropped;
    /// the rest of the query ran normally.
    UnknownTermDropped {
        /// The term that is not in the dictionary.
        term: String,
    },
    /// An unknown term under `AND` (or inside a phrase) forced that whole
    /// conjunction to an empty result.
    UnknownTermEmptyAnd {
        /// The term that is not in the dictionary.
        term: String,
    },
    /// The query was answered by the CPU baseline instead of the device
    /// path. Hits are bit-identical, so this only degrades latency, but a
    /// serving layer must surface it.
    CpuFallback {
        /// Why the device path was bypassed (breaker open, retries
        /// exhausted, device panic, ...).
        reason: String,
    },
    /// The device path succeeded only after transient failures.
    Retried {
        /// Device attempts consumed, including the successful one (≥ 2).
        attempts: u32,
    },
    /// One or more shards did not contribute to a sharded answer; the
    /// hits cover only the surviving shards' documents. Round-robin
    /// sharding makes the loss uniform: each missing shard drops about
    /// `1/total` of the corpus.
    ShardsUnavailable {
        /// Shard indices that did not answer, in ascending order.
        missing: Vec<usize>,
        /// Total number of shards the query fanned out across.
        total: usize,
    },
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Degradation::UnknownTermDropped { term } => {
                write!(f, "unknown term {term:?} dropped from OR")
            }
            Degradation::UnknownTermEmptyAnd { term } => {
                write!(f, "unknown term {term:?} empties its AND/phrase")
            }
            Degradation::CpuFallback { reason } => {
                write!(f, "served by CPU fallback: {reason}")
            }
            Degradation::Retried { attempts } => {
                write!(f, "device path needed {attempts} attempts")
            }
            Degradation::ShardsUnavailable { missing, total } => {
                write!(
                    f,
                    "{}/{total} shards unavailable (missing {missing:?}); \
                     hits cover surviving shards only",
                    missing.len()
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_and_displays() {
        // The full bound callers need to box and send across threads.
        fn assert_error<T: Error + Send + Sync + 'static>() {}
        fn assert_send_sync<T: Send + Sync>() {}
        assert_error::<SearchError>();
        assert_send_sync::<Degradation>();

        let e = SearchError::Index(IndexError::PositionsUnavailable);
        assert!(e.to_string().starts_with("index error:"));
        assert!(e.source().is_some());
        let _boxed: Box<dyn Error + Send + Sync + 'static> = Box::new(e);

        let d = Degradation::UnknownTermDropped { term: "zyzzy".into() };
        assert!(d.to_string().contains("zyzzy"));

        let d = Degradation::ShardsUnavailable { missing: vec![1, 3], total: 4 };
        let s = d.to_string();
        assert!(s.contains("2/4"), "{s}");
        assert!(s.contains("[1, 3]"), "{s}");
    }
}
