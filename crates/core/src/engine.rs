//! The search engines of the reproduction, behind one interface:
//!
//! * [`CpuSearchEngine`] — the Lucene-like software baseline, priced by the
//!   calibrated CPU cost model;
//! * [`ShardedSearchEngine`] — the same baseline fanned across the document
//!   shards of a [`ShardedIndex`] with a shared pruning threshold
//!   (intra-query parallelism on the host);
//! * [`IiuSearchEngine`] — the cycle-level accelerator simulation plus the
//!   host-side top-k pass.
//!
//! All return bit-identical hits for the same query (the scoring datapath
//! is shared), so every comparison between them is about *time*, exactly
//! like the paper's evaluation.

use std::sync::Arc;

use iiu_baseline::topk::{top_k, Hit};
use iiu_baseline::{
    CpuCostModel, CpuEngine, OpCounts, PhaseBreakdown, ShardPoolConfig, ShardedEngine,
};
use iiu_index::score::term_score_fixed;
use iiu_index::shard::ShardedIndex;
use iiu_index::{DocId, Fixed, IndexError, InvertedIndex, PositionIndex, ShardChaosPlan};
use iiu_sim::{HostModel, IiuMachine, SimConfig, SimQuery};

use crate::error::{Degradation, SearchError};
use crate::query::Query;

/// Where a query's time went.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyBreakdown {
    /// Fixed dispatch/software overhead.
    pub dispatch_ns: f64,
    /// Device time: CPU query processing for the baseline, accelerator
    /// cycles for IIU.
    pub device_ns: f64,
    /// Host top-k selection time.
    pub topk_ns: f64,
}

impl LatencyBreakdown {
    /// Total latency.
    pub fn total_ns(&self) -> f64 {
        self.dispatch_ns + self.device_ns + self.topk_ns
    }
}

/// A ranked search result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResponse {
    /// Top-k hits, descending score.
    pub hits: Vec<Hit>,
    /// Candidate documents before top-k selection.
    pub candidates: u64,
    /// Modeled time breakdown.
    pub breakdown: LatencyBreakdown,
    /// How the query was weakened to keep serving (unknown terms pruned).
    /// Empty for a fully-served query.
    pub degraded: Vec<Degradation>,
}

impl SearchResponse {
    /// Modeled end-to-end latency in nanoseconds.
    pub fn latency_ns(&self) -> f64 {
        self.breakdown.total_ns()
    }

    /// True if any part of the query was pruned rather than served.
    pub fn is_degraded(&self) -> bool {
        !self.degraded.is_empty()
    }

    /// The empty response a fully-pruned query yields.
    pub(crate) fn empty(degraded: Vec<Degradation>) -> Self {
        SearchResponse {
            hits: Vec::new(),
            candidates: 0,
            breakdown: LatencyBreakdown::default(),
            degraded,
        }
    }
}

/// A query engine: takes a boolean [`Query`], returns ranked hits with a
/// modeled latency.
///
/// Unknown terms are not errors: both engines prune them — an unknown term
/// under `OR` drops out, one under `AND` (or in a phrase) short-circuits
/// that conjunction to empty — and report each pruning in
/// [`SearchResponse::degraded`].
pub trait SearchEngine {
    /// Runs `query`, returning the top `k` hits.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::Index`] for index-plane failures (e.g. a
    /// phrase query without a positional sidecar) and
    /// [`SearchError::Sim`] if the accelerator simulation stalls.
    fn search(&mut self, query: &Query, k: usize) -> Result<SearchResponse, SearchError>;
}

// ---------------------------------------------------------------------------
// Unknown-term pruning (graceful degradation)
// ---------------------------------------------------------------------------

/// A pruned subtree: what survives, plus unknown terms whose degradation
/// kind is still undecided (a bare unknown term is only classified once we
/// see whether an `AND` or an `OR` absorbs the hole it left).
struct Pruned {
    query: Option<Query>,
    pending: Vec<String>,
}

fn classify_pending(pending: Vec<String>, and_like: bool, degraded: &mut Vec<Degradation>) {
    for term in pending {
        degraded.push(if and_like {
            Degradation::UnknownTermEmptyAnd { term }
        } else {
            Degradation::UnknownTermDropped { term }
        });
    }
}

/// Rewrites `q` without its unknown terms, recording every pruning in
/// `degraded`. `None` means the whole query pruned away (serve empty).
fn prune_query(
    index: &InvertedIndex,
    q: &Query,
    degraded: &mut Vec<Degradation>,
) -> Option<Query> {
    prune_query_with(&|t| index.term_id(t).is_some(), q, degraded)
}

/// [`prune_query`] generalized over a term-existence predicate, so engines
/// without an [`InvertedIndex`] vocabulary (the live incremental index)
/// share the exact degradation semantics.
pub(crate) fn prune_query_with(
    has_term: &dyn Fn(&str) -> bool,
    q: &Query,
    degraded: &mut Vec<Degradation>,
) -> Option<Query> {
    let pruned = prune_tree(has_term, q, degraded);
    // Whatever is still unclassified at the root vanished without an AND
    // forcing emptiness, so it "dropped out".
    classify_pending(pruned.pending, false, degraded);
    pruned.query
}

fn prune_tree(
    has_term: &dyn Fn(&str) -> bool,
    q: &Query,
    degraded: &mut Vec<Degradation>,
) -> Pruned {
    match q {
        Query::Term(t) => {
            if has_term(t) {
                Pruned { query: Some(q.clone()), pending: Vec::new() }
            } else {
                Pruned { query: None, pending: vec![t.clone()] }
            }
        }
        Query::Phrase(terms) => {
            let unknown: Vec<String> =
                terms.iter().filter(|t| !has_term(t)).cloned().collect();
            if unknown.is_empty() {
                Pruned { query: Some(q.clone()), pending: Vec::new() }
            } else {
                // A phrase is a conjunction: one unknown word empties it.
                classify_pending(unknown, true, degraded);
                Pruned { query: None, pending: Vec::new() }
            }
        }
        Query::And(a, b) => {
            let pa = prune_tree(has_term, a, degraded);
            let pb = prune_tree(has_term, b, degraded);
            let mut pending = pa.pending;
            pending.extend(pb.pending);
            match (pa.query, pb.query) {
                (Some(x), Some(y)) => Pruned { query: Some(Query::and(x, y)), pending },
                _ => {
                    classify_pending(pending, true, degraded);
                    Pruned { query: None, pending: Vec::new() }
                }
            }
        }
        Query::Or(a, b) => {
            let pa = prune_tree(has_term, a, degraded);
            let pb = prune_tree(has_term, b, degraded);
            let mut pending = pa.pending;
            pending.extend(pb.pending);
            match (pa.query, pb.query) {
                (Some(x), Some(y)) => Pruned { query: Some(Query::or(x, y)), pending },
                (Some(x), None) | (None, Some(x)) => {
                    classify_pending(pending, false, degraded);
                    Pruned { query: Some(x), pending: Vec::new() }
                }
                (None, None) => {
                    classify_pending(pending, false, degraded);
                    Pruned { query: None, pending: Vec::new() }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Shared functional evaluation of arbitrary expression trees
// ---------------------------------------------------------------------------

/// Evaluates an expression tree over decoded, scored lists (the §4.5
/// "operations on an uncompressed list" path), accumulating operation
/// counts for the cost model.
fn eval_tree(
    index: &InvertedIndex,
    q: &Query,
    counts: &mut OpCounts,
    positions: Option<&PositionIndex>,
) -> Result<Vec<(DocId, Fixed)>, IndexError> {
    match q {
        Query::Term(t) => {
            let id = t_id(index, t)?;
            let list = index.encoded_list(id);
            let idf = index.term_info(id).idf_bar;
            let mut scored = Vec::with_capacity(list.num_postings() as usize);
            // One reused buffer per term, not one allocation per block; a
            // corrupt payload surfaces as Err instead of a decode panic.
            let mut block = Vec::new();
            for b in 0..list.num_blocks() {
                counts.blocks_decoded += 1;
                block.clear();
                list.try_decode_block_into(b, &mut block)?;
                counts.postings_decoded += block.len() as u64;
                counts.docs_scored += block.len() as u64;
                for p in &block {
                    scored
                        .push((p.doc_id, term_score_fixed(idf, index.dl_bar(p.doc_id), p.tf)));
                }
            }
            Ok(scored)
        }
        Query::Phrase(terms) => {
            let pos_index = positions.ok_or(IndexError::PositionsUnavailable)?;
            // Candidates: intersection of every term's list (the part IIU
            // accelerates); verification: consecutive-position check.
            let mut acc: Option<Vec<(DocId, Fixed)>> = None;
            for t in terms {
                let lt = eval_tree(index, &Query::term(t.clone()), counts, positions)?;
                acc = Some(match acc {
                    None => lt,
                    Some(prev) => merge_lists(&prev, &lt, true, counts),
                });
            }
            let candidates = acc.unwrap_or_default();
            counts.phrase_checks += candidates.len() as u64;
            Ok(candidates
                .into_iter()
                .filter(|&(d, _)| pos_index.phrase_in_doc(terms, d))
                .collect())
        }
        Query::And(a, b) => {
            let la = eval_tree(index, a, counts, positions)?;
            let lb = eval_tree(index, b, counts, positions)?;
            Ok(merge_lists(&la, &lb, true, counts))
        }
        Query::Or(a, b) => {
            let la = eval_tree(index, a, counts, positions)?;
            let lb = eval_tree(index, b, counts, positions)?;
            Ok(merge_lists(&la, &lb, false, counts))
        }
    }
}

fn t_id(index: &InvertedIndex, term: &str) -> Result<u32, IndexError> {
    index.term_id(term).ok_or_else(|| IndexError::UnknownTerm { term: term.to_owned() })
}

pub(crate) fn to_hits(scored: &[(DocId, Fixed)], k: usize) -> Vec<Hit> {
    top_k(scored.iter().map(|&(doc_id, s)| Hit { doc_id, score: s.to_f64() }), k)
}

// ---------------------------------------------------------------------------
// CPU (baseline) engine
// ---------------------------------------------------------------------------

/// The Lucene-like baseline behind the [`SearchEngine`] interface.
#[derive(Debug, Clone)]
pub struct CpuSearchEngine<'a> {
    inner: CpuEngine<'a>,
    positions: Option<&'a PositionIndex>,
}

impl<'a> CpuSearchEngine<'a> {
    /// Creates a baseline engine with the default cost model.
    pub fn new(index: &'a InvertedIndex) -> Self {
        CpuSearchEngine { inner: CpuEngine::new(index), positions: None }
    }

    /// Creates a baseline engine with a custom cost model.
    pub fn with_cost_model(index: &'a InvertedIndex, cost: CpuCostModel) -> Self {
        CpuSearchEngine { inner: CpuEngine::with_cost_model(index, cost), positions: None }
    }

    /// Attaches a positional sidecar, enabling [`Query::Phrase`] queries.
    pub fn with_position_index(mut self, positions: &'a PositionIndex) -> Self {
        self.positions = Some(positions);
        self
    }

    /// Enables block-max pruned top-k for the primitive query shapes
    /// (single term, two-term AND/OR). Results are bit-identical to the
    /// exhaustive mode; general expression trees always evaluate
    /// exhaustively.
    #[must_use]
    pub fn with_pruning(mut self, pruned: bool) -> Self {
        self.inner.set_pruning(pruned);
        self
    }

    /// True when primitive shapes use block-max pruning.
    pub fn pruning(&self) -> bool {
        self.inner.pruning()
    }

    /// The wrapped low-level engine.
    pub fn inner(&self) -> &CpuEngine<'a> {
        &self.inner
    }
}

impl SearchEngine for CpuSearchEngine<'_> {
    fn search(&mut self, query: &Query, k: usize) -> Result<SearchResponse, SearchError> {
        let mut degraded = Vec::new();
        let Some(query) = prune_query(self.inner.index(), query, &mut degraded) else {
            return Ok(SearchResponse::empty(degraded));
        };
        let query = &query;
        // Primitive shapes take the specialized paths (SvS etc.).
        let outcome = match query {
            Query::Term(t) => Some(self.inner.search_single(t, k)?),
            Query::Phrase(_) => None,
            Query::And(a, b) => match (&**a, &**b) {
                (Query::Term(x), Query::Term(y)) => {
                    Some(self.inner.search_intersection(x, y, k)?)
                }
                _ => None,
            },
            Query::Or(a, b) => match (&**a, &**b) {
                (Query::Term(x), Query::Term(y)) => Some(self.inner.search_union(x, y, k)?),
                _ => None,
            },
        };
        if let Some(o) = outcome {
            let device_ns = o.phases.total_ns() - o.phases.topk_ns;
            return Ok(SearchResponse {
                hits: o.hits,
                candidates: o.candidates,
                breakdown: LatencyBreakdown {
                    dispatch_ns: 0.0,
                    device_ns,
                    topk_ns: o.phases.topk_ns,
                },
                degraded,
            });
        }

        // General expression tree.
        let mut counts = OpCounts::default();
        let scored = eval_tree(self.inner.index(), query, &mut counts, self.positions)?;
        counts.topk_candidates = scored.len() as u64;
        let phases = self.inner.cost_model().price(&counts);
        Ok(SearchResponse {
            hits: to_hits(&scored, k),
            candidates: scored.len() as u64,
            breakdown: LatencyBreakdown {
                dispatch_ns: 0.0,
                device_ns: phases.total_ns() - phases.topk_ns,
                topk_ns: phases.topk_ns,
            },
            degraded,
        })
    }
}

// ---------------------------------------------------------------------------
// Sharded CPU engine
// ---------------------------------------------------------------------------

/// The baseline engine fanned across document shards, behind the
/// [`SearchEngine`] interface.
///
/// Primitive shapes (single term, two-term AND/OR) execute on every shard
/// in parallel — pruned mode exchanges a shared threshold between shards —
/// and merge under the common rank order, so hits are bit-identical to
/// [`CpuSearchEngine`] over the unsharded index. General expression trees
/// also fan out: each shard evaluates the whole tree over its documents
/// exhaustively, and the host merges the scored lists. Phrase queries need
/// the (global-docID) positional sidecar and are not supported sharded;
/// they fail with [`IndexError::PositionsUnavailable`].
///
/// The modeled latency prices the critical-path (slowest) shard plus the
/// host-side merge, not the sum of all shards.
#[derive(Debug)]
pub struct ShardedSearchEngine {
    inner: ShardedEngine,
}

impl ShardedSearchEngine {
    /// Creates an engine (and its shard worker pool) over a sharded index.
    pub fn new(index: Arc<ShardedIndex>) -> Self {
        ShardedSearchEngine { inner: ShardedEngine::new(index) }
    }

    /// Creates an engine whose worker pool follows the given supervision
    /// policy (fan-out deadline, quarantine, respawn backoff).
    pub fn with_config(index: Arc<ShardedIndex>, cfg: ShardPoolConfig) -> Self {
        ShardedSearchEngine { inner: ShardedEngine::with_config(index, cfg) }
    }

    /// Splits an unsharded index into `shards` document shards and builds
    /// an engine over them.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::CorruptIndex`] if `shards` is zero.
    pub fn split(index: &InvertedIndex, shards: usize) -> Result<Self, IndexError> {
        Ok(Self::new(Arc::new(ShardedIndex::split(index, shards)?)))
    }

    /// Sets the fail-closed policy (builder style): when `true`, a query
    /// that cannot cover every shard fails instead of answering partially
    /// with [`Degradation::ShardsUnavailable`].
    #[must_use]
    pub fn with_fail_closed(mut self, fail_closed: bool) -> Self {
        self.inner = self.inner.with_fail_closed(fail_closed);
        self
    }

    /// Installs a shard-level fault-injection plan (builder style); quiet
    /// by default. Chaos campaigns use this to panic, stall, or kill
    /// shard workers on deterministic schedules.
    #[must_use]
    pub fn with_chaos(mut self, chaos: ShardChaosPlan) -> Self {
        self.inner = self.inner.with_chaos(chaos);
        self
    }

    /// Enables block-max pruned top-k with cross-shard threshold sharing
    /// for the primitive query shapes. Bit-identical to exhaustive mode.
    #[must_use]
    pub fn with_pruning(mut self, pruned: bool) -> Self {
        self.inner = self.inner.with_pruning(pruned);
        self
    }

    /// Replaces the cost model (builder style).
    #[must_use]
    pub fn with_cost_model(mut self, cost: CpuCostModel) -> Self {
        self.inner = self.inner.with_cost_model(cost);
        self
    }

    /// True when primitive shapes use block-max pruning.
    pub fn pruning(&self) -> bool {
        self.inner.pruning()
    }

    /// Number of shards queries fan out across.
    pub fn num_shards(&self) -> usize {
        self.inner.num_shards()
    }

    /// The wrapped sharded engine (per-shard counts, pool access).
    pub fn inner(&self) -> &ShardedEngine {
        &self.inner
    }

    /// Runs a query through a shared reference. Unlike the
    /// [`SearchEngine`] trait (whose `&mut self` receiver suits the
    /// single-threaded engines), sharded execution keeps all per-query
    /// state on the pool workers, so concurrent callers can share one
    /// engine — and one shard pool — behind an `Arc`.
    ///
    /// # Errors
    ///
    /// Same contract as [`SearchEngine::search`].
    pub fn search_ref(&self, query: &Query, k: usize) -> Result<SearchResponse, SearchError> {
        let mut degraded = Vec::new();
        // Dictionaries are uniform across shards; shard 0 speaks for all.
        let dict = self.inner.index().shard(0);
        let Some(query) = prune_query(dict, query, &mut degraded) else {
            return Ok(SearchResponse::empty(degraded));
        };
        let query = &query;
        let outcome = match query {
            Query::Term(t) => Some(self.inner.search_single(t, k)?),
            Query::Phrase(_) => {
                return Err(SearchError::Index(IndexError::PositionsUnavailable));
            }
            Query::And(a, b) => match (&**a, &**b) {
                (Query::Term(x), Query::Term(y)) => {
                    Some(self.inner.search_intersection(x, y, k)?)
                }
                _ => None,
            },
            Query::Or(a, b) => match (&**a, &**b) {
                (Query::Term(x), Query::Term(y)) => Some(self.inner.search_union(x, y, k)?),
                _ => None,
            },
        };
        if let Some(o) = outcome {
            if !o.missing.is_empty() {
                degraded.push(Degradation::ShardsUnavailable {
                    missing: o.missing.clone(),
                    total: o.total,
                });
            }
            let device_ns = o.phases.total_ns() - o.phases.topk_ns;
            return Ok(SearchResponse {
                hits: o.hits,
                candidates: o.candidates,
                breakdown: LatencyBreakdown {
                    dispatch_ns: 0.0,
                    device_ns,
                    topk_ns: o.phases.topk_ns,
                },
                degraded,
            });
        }

        let (hits, candidates, phases, missing) = self.eval_sharded(query, k)?;
        if !missing.is_empty() {
            degraded
                .push(Degradation::ShardsUnavailable { missing, total: self.num_shards() });
        }
        Ok(SearchResponse {
            hits,
            candidates,
            breakdown: LatencyBreakdown {
                dispatch_ns: 0.0,
                device_ns: phases.total_ns() - phases.topk_ns,
                topk_ns: phases.topk_ns,
            },
            degraded,
        })
    }

    /// Fans a general expression tree out: every shard evaluates the whole
    /// tree over its own documents, the host concatenates (mapping local
    /// docIDs to global) and selects top-k. Fail-soft: shards that do not
    /// answer (panic, deadline, quarantine, dead worker) are reported in
    /// the returned `missing` list and the merge covers the survivors —
    /// exhaustive tree evaluation has no cross-shard coupling, so the
    /// surviving hits are exact over the surviving documents. An
    /// index-plane `Err` from any shard still fails the query: that is a
    /// data problem, not an availability problem.
    fn eval_sharded(
        &self,
        query: &Query,
        k: usize,
    ) -> Result<(Vec<Hit>, u64, PhaseBreakdown, Vec<usize>), SearchError> {
        let q = query.clone();
        let per_shard = self
            .inner
            .run_shards(move |_, shard, _| {
                let mut counts = OpCounts::default();
                let scored = eval_tree(shard, &q, &mut counts, None);
                scored.map(|s| (s, counts))
            })
            .slots;
        let n = self.num_shards() as u32;
        let cost = self.inner.cost_model();
        let mut all = Vec::new();
        let mut missing = Vec::new();
        let mut crit = PhaseBreakdown::default();
        for (s, r) in per_shard.into_iter().enumerate() {
            let Some(r) = r else {
                missing.push(s);
                continue;
            };
            let (scored, mut counts) = r?;
            counts.topk_candidates = scored.len() as u64;
            let phases = cost.price(&counts);
            if phases.total_ns() > crit.total_ns() {
                crit = phases;
            }
            all.extend(scored.into_iter().map(|(d, sc)| (d * n + s as u32, sc)));
        }
        if missing.len() == self.num_shards() {
            return Err(SearchError::Index(IndexError::CorruptIndex {
                context: "all shards unavailable",
            }));
        }
        if self.inner.fail_closed() && !missing.is_empty() {
            return Err(SearchError::Index(IndexError::CorruptIndex {
                context: "shard execution failed",
            }));
        }
        crit.topk_ns += cost.price_topk(all.len() as u64);
        let candidates = all.len() as u64;
        // Global docID order is what rank_cmp ties on; sort so to_hits sees
        // the same candidate order as the unsharded evaluation.
        all.sort_by_key(|&(d, _)| d);
        Ok((to_hits(&all, k), candidates, crit, missing))
    }
}

impl SearchEngine for ShardedSearchEngine {
    fn search(&mut self, query: &Query, k: usize) -> Result<SearchResponse, SearchError> {
        self.search_ref(query, k)
    }
}

// ---------------------------------------------------------------------------
// IIU engine
// ---------------------------------------------------------------------------

/// The accelerator behind the [`SearchEngine`] interface: primitive queries
/// run on the cycle-level simulator; deeper expression trees follow §4.5 —
/// subtrees evaluate recursively (in parallel across subtrees) and the set
/// operations over uncompressed intermediate lists bypass the DCUs at one
/// element per cycle through the merge datapath.
#[derive(Debug)]
pub struct IiuSearchEngine<'a> {
    machine: IiuMachine<'a>,
    host: HostModel,
    cores: usize,
    positions: Option<&'a PositionIndex>,
}

impl<'a> IiuSearchEngine<'a> {
    /// Creates an engine with the default configuration, allocating all
    /// cores to each query (minimum-latency intra-query mode, Fig. 12a).
    pub fn new(index: &'a InvertedIndex) -> Self {
        let cfg = SimConfig::default();
        IiuSearchEngine {
            machine: IiuMachine::new(index, cfg),
            host: HostModel::default(),
            cores: cfg.n_cores,
            positions: None,
        }
    }

    /// Attaches a positional sidecar, enabling [`Query::Phrase`] queries
    /// (intersection on the accelerator, verification on the host).
    pub fn with_position_index(mut self, positions: &'a PositionIndex) -> Self {
        self.positions = Some(positions);
        self
    }

    /// Creates an engine with explicit configuration and per-query core
    /// allocation (the `numCores` argument of the paper's `search()` API).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is 0 or exceeds `cfg.n_cores`.
    pub fn with_config(index: &'a InvertedIndex, cfg: SimConfig, cores: usize) -> Self {
        assert!(cores >= 1 && cores <= cfg.n_cores, "core allocation out of range");
        IiuSearchEngine {
            machine: IiuMachine::new(index, cfg),
            host: HostModel::default(),
            cores,
            positions: None,
        }
    }

    /// The underlying machine (for detailed statistics).
    pub fn machine(&self) -> &IiuMachine<'a> {
        &self.machine
    }

    /// The host model used for dispatch/top-k pricing.
    pub fn host(&self) -> HostModel {
        self.host
    }

    fn index(&self) -> &'a InvertedIndex {
        self.machine.index()
    }

    /// Recursively evaluates an expression tree: leaves are full
    /// single-term accelerator runs; internal nodes merge at one element
    /// per cycle (set operations on uncompressed lists, DCU bypassed).
    /// Sibling subtrees run concurrently (inter-query parallelism), so a
    /// node's start time is the max of its children.
    /// Returns `(results, accelerator cycles, host phrase verifications)`.
    fn eval_iiu(&self, q: &Query) -> Result<EvalOutcome, SearchError> {
        match q {
            Query::Term(t) => {
                let id = t_id(self.index(), t)?;
                let run = self.machine.run_query(SimQuery::Single(id), self.cores)?;
                Ok((run.results, run.cycles, 0))
            }
            // Two-term set operations map straight onto the accelerator.
            Query::And(a, b) if leaf_pair(a, b) => {
                let (x, y) = leaf_ids(self.index(), a, b)?;
                let run = self.machine.run_query(SimQuery::Intersect(x, y), self.cores)?;
                Ok((run.results, run.cycles, 0))
            }
            Query::Or(a, b) if leaf_pair(a, b) => {
                let (x, y) = leaf_ids(self.index(), a, b)?;
                let run = self.machine.run_query(SimQuery::Union(x, y), self.cores)?;
                Ok((run.results, run.cycles, 0))
            }
            Query::Phrase(terms) => {
                let pos_index = self.positions.ok_or(IndexError::PositionsUnavailable)?;
                // Chain the terms into intersections (accelerated), then
                // verify consecutive positions on the host.
                let chain = terms
                    .iter()
                    .map(|t| Query::term(t.clone()))
                    .reduce(Query::and)
                    .ok_or(IndexError::PositionsUnavailable)?;
                let (candidates, cycles, _) = self.eval_iiu(&chain)?;
                let checks = candidates.len() as u64;
                let verified = candidates
                    .into_iter()
                    .filter(|&(d, _)| pos_index.phrase_in_doc(terms, d))
                    .collect();
                Ok((verified, cycles, checks))
            }
            Query::And(a, b) | Query::Or(a, b) => {
                let (la, ca, va) = self.eval_iiu(a)?;
                let (lb, cb, vb) = self.eval_iiu(b)?;
                let mut counts = OpCounts::default();
                let merged = merge_lists(&la, &lb, matches!(q, Query::And(_, _)), &mut counts);
                // One comparison per cycle through the merge unit.
                let cycles = ca.max(cb) + counts.comparisons;
                Ok((merged, cycles, va + vb))
            }
        }
    }
}

/// `(scored results, accelerator cycles, host phrase verifications)`.
type EvalOutcome = (Vec<(DocId, Fixed)>, u64, u64);

fn leaf_pair(a: &Query, b: &Query) -> bool {
    matches!(a, Query::Term(_)) && matches!(b, Query::Term(_))
}

fn leaf_ids(index: &InvertedIndex, a: &Query, b: &Query) -> Result<(u32, u32), IndexError> {
    match (a, b) {
        (Query::Term(x), Query::Term(y)) => Ok((t_id(index, x)?, t_id(index, y)?)),
        _ => unreachable!("guarded by leaf_pair"),
    }
}

/// Linear merge of two scored lists; `intersect` keeps only matches.
pub(crate) fn merge_lists(
    la: &[(DocId, Fixed)],
    lb: &[(DocId, Fixed)],
    intersect: bool,
    counts: &mut OpCounts,
) -> Vec<(DocId, Fixed)> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < la.len() && j < lb.len() {
        counts.comparisons += 1;
        match la[i].0.cmp(&lb[j].0) {
            std::cmp::Ordering::Less => {
                if !intersect {
                    out.push(la[i]);
                }
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                if !intersect {
                    out.push(lb[j]);
                }
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((la[i].0, la[i].1.saturating_add(lb[j].1)));
                i += 1;
                j += 1;
            }
        }
    }
    if !intersect {
        out.extend_from_slice(&la[i..]);
        out.extend_from_slice(&lb[j..]);
        counts.comparisons += (la.len() - i + lb.len() - j) as u64;
    }
    out
}

impl SearchEngine for IiuSearchEngine<'_> {
    fn search(&mut self, query: &Query, k: usize) -> Result<SearchResponse, SearchError> {
        let index = self.index();
        let mut degraded = Vec::new();
        let Some(query) = prune_query(index, query, &mut degraded) else {
            return Ok(SearchResponse::empty(degraded));
        };
        let query = &query;
        // Primitive shapes run directly on the simulator.
        let direct = match query {
            Query::Term(t) => Some(SimQuery::Single(t_id(index, t)?)),
            Query::Phrase(_) => None,
            Query::And(a, b) => match (&**a, &**b) {
                (Query::Term(x), Query::Term(y)) => {
                    Some(SimQuery::Intersect(t_id(index, x)?, t_id(index, y)?))
                }
                _ => None,
            },
            Query::Or(a, b) => match (&**a, &**b) {
                (Query::Term(x), Query::Term(y)) => {
                    Some(SimQuery::Union(t_id(index, x)?, t_id(index, y)?))
                }
                _ => None,
            },
        };

        let (results, cycles, phrase_checks) = if let Some(sq) = direct {
            let run = self.machine.run_query(sq, self.cores)?;
            (run.results, run.cycles, 0)
        } else {
            self.eval_iiu(query)?
        };

        let candidates = results.len() as u64;
        let clock = self.machine.config().clock_ghz;
        // Phrase verification runs on the host, alongside top-k.
        let verify_ns = phrase_checks as f64 * 40.0 / (self.host.freq_ghz * self.host.ipc);
        Ok(SearchResponse {
            hits: to_hits(&results, k),
            candidates,
            breakdown: LatencyBreakdown {
                dispatch_ns: self.host.dispatch_ns,
                device_ns: cycles as f64 / clock,
                topk_ns: self.host.topk_ns(candidates) + verify_ns,
            },
            degraded,
        })
    }
}
