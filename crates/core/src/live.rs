//! Live search over the crash-safe incremental index.
//!
//! [`LiveIndex`] wraps an [`IncrementalIndex`] in a lock so one handle
//! can both **ingest** (write path: WAL append + fsync, buffer apply,
//! auto-seal/merge) and **search** (read path: sealed segments unioned
//! with the in-memory buffer) — the shape `iiu-serve` needs to answer
//! queries while documents stream in.
//!
//! Search semantics are identical to [`crate::CpuSearchEngine`] over a
//! one-shot index of the same documents: unknown-term pruning uses the
//! same degradation rules (via the shared predicate-generalized pruner),
//! scoring goes through the same Q16.16 datapath on globally recomputed
//! statistics, boolean operators use the same linear merge, and top-k
//! uses the same rank order. Hits are bit-identical — the recovery chaos
//! campaign and the incremental-equivalence gate both assert exactly
//! that.
//!
//! Lock poisoning is survived, matching the serving layer's convention: a
//! panicking writer cannot take down subsequent readers.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::ops::Range;
use std::path::Path;
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use iiu_baseline::{CpuCostModel, OpCounts};
use iiu_index::incremental::{IncrementalIndex, IncrementalOptions};
use iiu_index::recovery::RecoveryReport;
use iiu_index::wal::IngestDoc;
use iiu_index::{DocId, Fixed, IndexError, InvertedIndex};

use crate::engine::{
    merge_lists, prune_query_with, to_hits, LatencyBreakdown, SearchResponse,
};
use crate::error::SearchError;
use crate::query::Query;

/// A searchable, ingestable, crash-safe index handle.
#[derive(Debug)]
pub struct LiveIndex {
    inner: RwLock<IncrementalIndex>,
    cost: CpuCostModel,
}

impl LiveIndex {
    /// Opens (or initializes) the incremental index at `dir`, running full
    /// crash recovery. See [`IncrementalIndex::open`] for the error
    /// contract.
    pub fn open(dir: &Path, opts: IncrementalOptions) -> Result<Self, IndexError> {
        Ok(LiveIndex {
            inner: RwLock::new(IncrementalIndex::open(dir, opts)?),
            cost: CpuCostModel::default(),
        })
    }

    fn read(&self) -> RwLockReadGuard<'_, IncrementalIndex> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, IncrementalIndex> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Ingests one document; durable when this returns. Returns its
    /// global doc id.
    pub fn ingest(&self, doc: &IngestDoc) -> Result<u64, IndexError> {
        self.write().ingest(doc)
    }

    /// Ingests a batch with a single fsync barrier; durable when this
    /// returns. Returns the assigned global doc-id range.
    pub fn ingest_batch(&self, docs: &[IngestDoc]) -> Result<Range<u64>, IndexError> {
        self.write().ingest_batch(docs)
    }

    /// Seals the in-memory buffer into an on-disk segment.
    pub fn seal(&self) -> Result<bool, IndexError> {
        self.write().seal()
    }

    /// Merges all sealed segments into one.
    pub fn compact(&self) -> Result<bool, IndexError> {
        self.write().compact()
    }

    /// Total acknowledged documents.
    pub fn num_docs(&self) -> u64 {
        self.read().num_docs()
    }

    /// `(sealed, buffered)` document counts.
    pub fn doc_counts(&self) -> (u64, u64) {
        let idx = self.read();
        (idx.sealed_docs(), idx.buffered_docs())
    }

    /// What recovery found when this handle was opened.
    pub fn recovery_report(&self) -> RecoveryReport {
        self.read().recovery_report().clone()
    }

    /// Materializes a one-shot [`InvertedIndex`] over every acknowledged
    /// document (the static-format bridge).
    pub fn snapshot(&self) -> Result<InvertedIndex, IndexError> {
        self.read().to_one_shot()
    }

    /// Runs `query` over sealed segments unioned with the live buffer.
    /// Hits are bit-identical to [`crate::CpuSearchEngine`] over a
    /// one-shot index of the same documents. Phrase queries are not
    /// supported live ([`IndexError::PositionsUnavailable`]).
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::Index`] for index-plane failures (decode
    /// errors, phrase queries).
    pub fn search(&self, query: &Query, k: usize) -> Result<SearchResponse, SearchError> {
        let idx = self.read();
        let mut degraded = Vec::new();
        let Some(query) = prune_query_with(&|t| idx.has_term(t), query, &mut degraded) else {
            return Ok(SearchResponse::empty(degraded));
        };
        let mut counts = OpCounts::default();
        let scored = eval_live(&idx, &query, &mut counts)?;
        counts.topk_candidates = scored.len() as u64;
        let phases = self.cost.price(&counts);
        Ok(SearchResponse {
            hits: to_hits(&scored, k),
            candidates: scored.len() as u64,
            breakdown: LatencyBreakdown {
                dispatch_ns: 0.0,
                device_ns: phases.total_ns() - phases.topk_ns,
                topk_ns: phases.topk_ns,
            },
            degraded,
        })
    }
}

/// Mirrors the engine's `eval_tree` over the live index's globally scored
/// postings. The pruner has already removed unknown terms, so a missing
/// term here is an internal inconsistency reported as a typed error.
fn eval_live(
    idx: &IncrementalIndex,
    q: &Query,
    counts: &mut OpCounts,
) -> Result<Vec<(DocId, Fixed)>, IndexError> {
    match q {
        Query::Term(t) => {
            let scored = idx
                .scored_postings(t)?
                .ok_or_else(|| IndexError::UnknownTerm { term: t.clone() })?;
            counts.postings_decoded += scored.len() as u64;
            counts.docs_scored += scored.len() as u64;
            Ok(scored)
        }
        Query::Phrase(_) => Err(IndexError::PositionsUnavailable),
        Query::And(a, b) => {
            let la = eval_live(idx, a, counts)?;
            let lb = eval_live(idx, b, counts)?;
            Ok(merge_lists(&la, &lb, true, counts))
        }
        Query::Or(a, b) => {
            let la = eval_live(idx, a, counts)?;
            let lb = eval_live(idx, b, counts)?;
            Ok(merge_lists(&la, &lb, false, counts))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CpuSearchEngine, SearchEngine};

    fn doc(len: u32, terms: &[(&str, u32)]) -> IngestDoc {
        IngestDoc::new(len, terms.iter().map(|(t, f)| ((*t).to_owned(), *f)).collect())
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("iiu-live-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn seeded(dir: &Path) -> LiveIndex {
        let opts =
            IncrementalOptions { seal_threshold: 3, merge_threshold: 0, ..Default::default() };
        let live = LiveIndex::open(dir, opts).unwrap();
        // First batch trips the seal threshold; the second stays buffered,
        // so queries exercise the segment ∪ buffer union.
        live.ingest_batch(&[
            doc(12, &[("alpha", 2), ("beta", 1)]),
            doc(40, &[("beta", 5), ("gamma", 1)]),
            doc(8, &[("alpha", 1)]),
        ])
        .unwrap();
        live.ingest_batch(&[
            doc(25, &[("alpha", 3), ("gamma", 2)]),
            doc(16, &[("beta", 2), ("alpha", 1)]),
        ])
        .unwrap();
        live
    }

    #[test]
    fn live_hits_match_cpu_engine_on_snapshot() {
        let dir = tmp_dir("equiv");
        let live = seeded(&dir);
        let (sealed, buffered) = live.doc_counts();
        assert!(sealed > 0 && buffered > 0, "want a segment AND live-buffer union");
        let snap = live.snapshot().unwrap();
        let mut cpu = CpuSearchEngine::new(&snap);
        for q in ["alpha", "beta AND gamma", "alpha OR gamma", "alpha AND beta"] {
            let query = Query::parse(q).unwrap();
            let l = live.search(&query, 10).unwrap();
            let c = cpu.search(&query, 10).unwrap();
            assert_eq!(l.hits, c.hits, "{q}");
            assert_eq!(l.candidates, c.candidates, "{q}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_terms_degrade_not_error() {
        let dir = tmp_dir("degrade");
        let live = seeded(&dir);
        let r = live.search(&Query::parse("alpha OR zzz").unwrap(), 10).unwrap();
        assert!(r.is_degraded());
        assert!(!r.hits.is_empty());
        let r = live.search(&Query::parse("alpha AND zzz").unwrap(), 10).unwrap();
        assert!(r.is_degraded());
        assert!(r.hits.is_empty());
        let r = live.search(&Query::parse("zzz").unwrap(), 10).unwrap();
        assert!(r.is_degraded() && r.hits.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn search_reflects_ingest_immediately() {
        let dir = tmp_dir("fresh");
        let live = LiveIndex::open(
            &dir,
            IncrementalOptions { seal_threshold: 0, merge_threshold: 0, ..Default::default() },
        )
        .unwrap();
        let q = Query::parse("newterm").unwrap();
        assert!(live.search(&q, 5).unwrap().hits.is_empty());
        live.ingest(&doc(4, &[("newterm", 2)])).unwrap();
        let r = live.search(&q, 5).unwrap();
        assert_eq!(r.hits.len(), 1);
        assert_eq!(r.hits[0].doc_id, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
