//! Public API of the IIU reproduction (Heo et al., ASPLOS 2020).
//!
//! This crate ties the substrates together behind the interface a search
//! application would use:
//!
//! * build or load an [`InvertedIndex`] (re-exported from [`iiu_index`]);
//! * express queries as boolean [`Query`] trees (`AND`/`OR` over terms);
//! * run them on either engine — the Lucene-like [`CpuSearchEngine`]
//!   baseline or the cycle-level [`IiuSearchEngine`] accelerator — and get
//!   ranked hits plus a modeled latency breakdown.
//!
//! Both engines share the Q16.16 BM25 scoring datapath, so they return
//! bit-identical hits; all comparisons between them are about time and
//! energy, mirroring the paper's evaluation.
//!
//! # Example
//!
//! ```
//! use iiu_core::{CpuSearchEngine, IiuSearchEngine, Query, SearchEngine};
//! use iiu_index::{BuildOptions, IndexBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = IndexBuilder::new(BuildOptions::default());
//! b.add_document("the inverted index is a key value data structure");
//! b.add_document("the accelerator processes the inverted index");
//! b.add_document("a key value store");
//! let index = b.build();
//!
//! let q = Query::parse("inverted AND index")?;
//! let mut cpu = CpuSearchEngine::new(&index);
//! let mut iiu = IiuSearchEngine::new(&index);
//! let r_cpu = cpu.search(&q, 10)?;
//! let r_iiu = iiu.search(&q, 10)?;
//! assert_eq!(r_cpu.hits, r_iiu.hits);
//! # Ok(())
//! # }
//! ```

pub mod engine;
pub mod error;
pub mod live;
pub mod query;

pub use engine::{
    CpuSearchEngine, IiuSearchEngine, LatencyBreakdown, SearchEngine, SearchResponse,
    ShardedSearchEngine,
};
pub use error::{Degradation, SearchError};
pub use iiu_baseline::topk::Hit;
pub use iiu_baseline::{
    estimate_query_cost, PoolWorkerReport, QueryCostEstimate, ShardHealth, ShardHealthReport,
    ShardPoolConfig, HEAVY_DF_THRESHOLD,
};
pub use iiu_index::shard::{ShardBalance, ShardedIndex};
pub use iiu_index::{
    Bm25Params, DocId, IncrementalIndex, IncrementalOptions, IndexError, IngestDoc,
    InvertedIndex, Partitioner, RecoveryReport, ShardChaosPlan,
};
pub use iiu_sim::SimError;
pub use live::LiveIndex;
pub use query::{ParseQueryError, Query};
