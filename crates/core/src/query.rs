//! Boolean query expression trees (paper §2.2, §4.5).
//!
//! Queries combine single terms with intersection (`AND`) and union
//! (`OR`): the paper's "complex queries with multiple terms and set
//! operators like `(L0 ∪ L1) ∩ (L2 ∪ L3)`" are binary expression trees
//! whose leaves are terms. A small recursive-descent parser accepts the
//! conventional textual form with `AND` binding tighter than `OR`.

use std::error::Error;
use std::fmt;

/// A boolean search query.
///
/// # Example
///
/// ```
/// use iiu_core::Query;
/// let q = Query::parse("business AND (cameo OR lausanne)").unwrap();
/// assert_eq!(q.terms(), vec!["business", "cameo", "lausanne"]);
/// assert!(!q.is_primitive());
/// assert!(Query::parse("business AND cameo").unwrap().is_primitive());
/// let p = Query::parse("\"new york times\"").unwrap();
/// assert_eq!(p.terms(), vec!["new", "york", "times"]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Query {
    /// A single-term query.
    Term(String),
    /// An exact-phrase query: consecutive terms in order (paper §2.2 —
    /// implemented as an intersection plus a positional check).
    Phrase(Vec<String>),
    /// Intersection of the two subqueries' results.
    And(Box<Query>, Box<Query>),
    /// Union of the two subqueries' results.
    Or(Box<Query>, Box<Query>),
}

impl Query {
    /// Builds a term leaf.
    pub fn term(t: impl Into<String>) -> Self {
        Query::Term(t.into())
    }

    /// Builds an intersection node.
    pub fn and(a: Query, b: Query) -> Self {
        Query::And(Box::new(a), Box::new(b))
    }

    /// Builds a union node.
    pub fn or(a: Query, b: Query) -> Self {
        Query::Or(Box::new(a), Box::new(b))
    }

    /// Builds an exact-phrase leaf.
    pub fn phrase<T: Into<String>>(terms: impl IntoIterator<Item = T>) -> Self {
        Query::Phrase(terms.into_iter().map(Into::into).collect())
    }

    /// Parses `a AND (b OR c)` syntax, with double-quoted exact phrases
    /// (`"new york" AND times`). `AND` binds tighter than `OR`; terms are
    /// lowercased.
    ///
    /// # Errors
    ///
    /// Returns [`ParseQueryError`] on empty input, unbalanced parentheses,
    /// or dangling operators.
    pub fn parse(input: &str) -> Result<Self, ParseQueryError> {
        let tokens = lex(input)?;
        let mut pos = 0usize;
        let q = parse_or(&tokens, &mut pos)?;
        if pos != tokens.len() {
            return Err(ParseQueryError {
                message: format!("unexpected trailing input at token {pos}"),
            });
        }
        Ok(q)
    }

    /// All distinct terms, in first-appearance order.
    pub fn terms(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_terms(&mut out);
        out
    }

    fn collect_terms<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Query::Term(t) => {
                if !out.contains(&t.as_str()) {
                    out.push(t);
                }
            }
            Query::Phrase(ts) => {
                for t in ts {
                    if !out.contains(&t.as_str()) {
                        out.push(t);
                    }
                }
            }
            Query::And(a, b) | Query::Or(a, b) => {
                a.collect_terms(out);
                b.collect_terms(out);
            }
        }
    }

    /// Whether the query maps directly onto one accelerator operation: a
    /// single term, or one set operator over two terms (the three query
    /// types of §4.2). Anything else takes the recursive §4.5 path.
    pub fn is_primitive(&self) -> bool {
        match self {
            Query::Term(_) => true,
            Query::Phrase(_) => false,
            Query::And(a, b) | Query::Or(a, b) => {
                matches!(**a, Query::Term(_)) && matches!(**b, Query::Term(_))
            }
        }
    }

    /// Number of nodes in the expression tree.
    pub fn size(&self) -> usize {
        match self {
            Query::Term(_) | Query::Phrase(_) => 1,
            Query::And(a, b) | Query::Or(a, b) => 1 + a.size() + b.size(),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Term(t) => write!(f, "{t}"),
            Query::Phrase(ts) => write!(f, "\"{}\"", ts.join(" ")),
            Query::And(a, b) => write!(f, "({a} AND {b})"),
            Query::Or(a, b) => write!(f, "({a} OR {b})"),
        }
    }
}

/// Error from [`Query::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQueryError {
    message: String,
}

impl fmt::Display for ParseQueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid query: {}", self.message)
    }
}

impl Error for ParseQueryError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Term(String),
    Phrase(Vec<String>),
    And,
    Or,
    LParen,
    RParen,
}

fn lex_term(term: &str) -> Result<String, ParseQueryError> {
    let t = term.to_lowercase();
    if t.chars().any(|c| !c.is_alphanumeric()) {
        return Err(ParseQueryError {
            message: format!("term {term:?} contains non-alphanumeric characters"),
        });
    }
    Ok(t)
}

fn lex(input: &str) -> Result<Vec<Token>, ParseQueryError> {
    // Split out double-quoted phrases first, then tokenize the rest.
    let mut tokens = Vec::new();
    for (i, segment) in input.split('"').enumerate() {
        if i % 2 == 1 {
            // Inside quotes: an exact phrase.
            let words: Result<Vec<String>, _> =
                segment.split_whitespace().map(lex_term).collect();
            let words = words?;
            if words.is_empty() {
                return Err(ParseQueryError { message: "empty phrase".into() });
            }
            tokens.push(Token::Phrase(words));
            continue;
        }
        for raw in segment.replace('(', " ( ").replace(')', " ) ").split_whitespace() {
            tokens.push(match raw {
                "(" => Token::LParen,
                ")" => Token::RParen,
                "AND" => Token::And,
                "OR" => Token::Or,
                term => Token::Term(lex_term(term)?),
            });
        }
    }
    if input.matches('"').count() % 2 == 1 {
        return Err(ParseQueryError { message: "unbalanced quotes".into() });
    }
    if tokens.is_empty() {
        return Err(ParseQueryError { message: "empty query".into() });
    }
    Ok(tokens)
}

fn parse_or(tokens: &[Token], pos: &mut usize) -> Result<Query, ParseQueryError> {
    let mut left = parse_and(tokens, pos)?;
    while matches!(tokens.get(*pos), Some(Token::Or)) {
        *pos += 1;
        let right = parse_and(tokens, pos)?;
        left = Query::or(left, right);
    }
    Ok(left)
}

fn parse_and(tokens: &[Token], pos: &mut usize) -> Result<Query, ParseQueryError> {
    let mut left = parse_atom(tokens, pos)?;
    while matches!(tokens.get(*pos), Some(Token::And)) {
        *pos += 1;
        let right = parse_atom(tokens, pos)?;
        left = Query::and(left, right);
    }
    Ok(left)
}

fn parse_atom(tokens: &[Token], pos: &mut usize) -> Result<Query, ParseQueryError> {
    match tokens.get(*pos) {
        Some(Token::Term(t)) => {
            *pos += 1;
            Ok(Query::Term(t.clone()))
        }
        Some(Token::Phrase(ts)) => {
            *pos += 1;
            Ok(if ts.len() == 1 {
                Query::Term(ts[0].clone())
            } else {
                Query::Phrase(ts.clone())
            })
        }
        Some(Token::LParen) => {
            *pos += 1;
            let q = parse_or(tokens, pos)?;
            if !matches!(tokens.get(*pos), Some(Token::RParen)) {
                return Err(ParseQueryError { message: "missing closing parenthesis".into() });
            }
            *pos += 1;
            Ok(q)
        }
        other => {
            Err(ParseQueryError { message: format!("expected term or '(', got {other:?}") })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_term() {
        assert_eq!(Query::parse("Business").unwrap(), Query::term("business"));
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let q = Query::parse("a OR b AND c").unwrap();
        assert_eq!(
            q,
            Query::or(Query::term("a"), Query::and(Query::term("b"), Query::term("c")))
        );
    }

    #[test]
    fn parentheses_override_precedence() {
        let q = Query::parse("(a OR b) AND c").unwrap();
        assert_eq!(
            q,
            Query::and(Query::or(Query::term("a"), Query::term("b")), Query::term("c"))
        );
    }

    #[test]
    fn left_associative_chains() {
        let q = Query::parse("a AND b AND c").unwrap();
        assert_eq!(
            q,
            Query::and(Query::and(Query::term("a"), Query::term("b")), Query::term("c"))
        );
    }

    #[test]
    fn paper_example_shape() {
        // (L0 ∪ L1) ∩ (L2 ∪ L3) from §4.5.
        let q = Query::parse("(l0 OR l1) AND (l2 OR l3)").unwrap();
        assert_eq!(q.size(), 7);
        assert_eq!(q.terms(), vec!["l0", "l1", "l2", "l3"]);
        assert!(!q.is_primitive());
    }

    #[test]
    fn primitive_detection() {
        assert!(Query::parse("a").unwrap().is_primitive());
        assert!(Query::parse("a AND b").unwrap().is_primitive());
        assert!(Query::parse("a OR b").unwrap().is_primitive());
        assert!(!Query::parse("a AND b AND c").unwrap().is_primitive());
    }

    #[test]
    fn rejects_bad_syntax() {
        assert!(Query::parse("").is_err());
        assert!(Query::parse("a AND").is_err());
        assert!(Query::parse("AND a").is_err());
        assert!(Query::parse("(a OR b").is_err());
        assert!(Query::parse("a b").is_err());
        assert!(Query::parse("a&b").is_err());
    }

    #[test]
    fn terms_deduplicate() {
        let q = Query::parse("a AND (a OR b)").unwrap();
        assert_eq!(q.terms(), vec!["a", "b"]);
    }

    #[test]
    fn parses_phrases() {
        let q = Query::parse("\"New York Times\"").unwrap();
        assert_eq!(q, Query::phrase(["new", "york", "times"]));
        let q = Query::parse("\"new york\" AND times").unwrap();
        assert_eq!(q, Query::and(Query::phrase(["new", "york"]), Query::term("times")));
        // A one-word phrase degrades to a term.
        assert_eq!(Query::parse("\"solo\"").unwrap(), Query::term("solo"));
    }

    #[test]
    fn phrase_parse_errors() {
        assert!(Query::parse("\"unbalanced").is_err());
        assert!(Query::parse("\"\"").is_err());
        assert!(Query::parse("\"a&b\"").is_err());
    }

    #[test]
    fn phrase_display_roundtrips() {
        let q = Query::parse("\"quick brown fox\" OR dog").unwrap();
        assert_eq!(Query::parse(&q.to_string()).unwrap(), q);
        assert!(!q.is_primitive());
    }

    #[test]
    fn display_roundtrips_through_parse() {
        let q = Query::parse("(a OR b) AND c").unwrap();
        let q2 = Query::parse(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Strategy generating arbitrary query trees.
    fn arb_query() -> impl Strategy<Value = Query> {
        let leaf = prop_oneof![
            "[a-z][a-z0-9]{0,6}".prop_map(Query::term),
            proptest::collection::vec("[a-z][a-z0-9]{0,5}", 2..4).prop_map(Query::phrase),
        ];
        leaf.prop_recursive(4, 24, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| Query::and(a, b)),
                (inner.clone(), inner).prop_map(|(a, b)| Query::or(a, b)),
            ]
        })
    }

    proptest! {
        #[test]
        fn prop_display_parse_roundtrip(q in arb_query()) {
            let reparsed = Query::parse(&q.to_string()).expect("display must reparse");
            prop_assert_eq!(reparsed, q);
        }

        #[test]
        fn prop_terms_are_lowercase_alnum(q in arb_query()) {
            for t in q.terms() {
                prop_assert!(t.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            }
        }

        #[test]
        fn prop_parser_never_panics(input in ".{0,80}") {
            let _ = Query::parse(&input);
        }

        #[test]
        fn prop_size_counts_nodes(q in arb_query()) {
            // size >= number of distinct terms grouped into leaves.
            prop_assert!(q.size() >= 1);
            prop_assert!(q.size() <= 64);
        }
    }
}
