//! Cycle-level simulator of the IIU accelerator (Heo et al., ASPLOS 2020,
//! §4–§5).
//!
//! This crate is the evaluation vehicle of the reproduction: a
//! tick-accurate model of the accelerator's microarchitecture over a
//! DDR4/HBM timing model, driven by real compressed indexes from
//! [`iiu_index`]. It is *execution-driven*: the decompression units emit
//! functionally correct postings (pre-decoded from the index) while every
//! data movement — Block Reader stream lines, candidate-block fetches,
//! skip-list probes, `dl̄` table reads, result write-backs — flows through
//! the MAI and the DRAM timing model, so timing and bandwidth are earned,
//! not assumed.
//!
//! Modules:
//!
//! * [`dram`] — DDR4-2400 / HBM-like channel/bank timing (the DRAMSim2
//!   substitute), FR-FCFS scheduling;
//! * [`mai`] — the 128-entry Memory Address Interface with coalescing;
//! * [`layout`] — index → address-space mapping;
//! * [`frontend`] — Block Reader stream buffers with fetch counters, and
//!   the Block Scheduler;
//! * [`core`] — DCU, SU (18-stage BM25), BSU (32-entry traversal cache),
//!   write-back;
//! * [`machine`] — the full accelerator with intra-/inter-query
//!   configurations;
//! * [`error`] — typed [`SimError`] and the watchdog's stall snapshots;
//! * [`host`] — the host-CPU top-k model (Fig. 13/17);
//! * [`power`] — Table 3 area/power constants and the Fig. 20 energy
//!   model.
//!
//! # Example
//!
//! ```
//! use iiu_index::{BuildOptions, IndexBuilder};
//! use iiu_sim::{IiuMachine, SimConfig, SimQuery};
//!
//! let mut b = IndexBuilder::new(BuildOptions::default());
//! b.add_document("business lausanne");
//! b.add_document("cameo business");
//! let index = b.build();
//!
//! let machine = IiuMachine::new(&index, SimConfig::default());
//! let term = index.term_id("business").unwrap();
//! let run = machine.run_query(SimQuery::Single(term), 1).unwrap();
//! assert_eq!(run.results.len(), 2);
//! assert!(run.cycles > 0);
//! ```

// Internal queue plumbing relies on checked-elsewhere pops; the hardened
// surfaces are the run-method results. verify.sh lints the workspace with
// -D clippy::unwrap_used/expect_used, which source-level allows override.
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod core;
pub mod dram;
pub mod error;
pub mod frontend;
pub mod host;
pub mod layout;
pub mod machine;
pub mod mai;
pub mod power;

pub use dram::DramConfig;
pub use error::{
    CoreSnapshot, ExecSnapshot, SchedulerSnapshot, SimError, StallSnapshot, StreamSnapshot,
};
pub use host::HostModel;
pub use layout::MemoryLayout;
pub use machine::{
    BatchRun, ExecStats, HybridRun, IiuMachine, MemStats, QueryRun, SimConfig, SimQuery,
};
pub use power::{table3_total_area_mm2, table3_total_power_w, PowerModel, TABLE3};
