//! Frontend of the IIU: Block Reader and Block Scheduler (paper §4.3,
//! Fig. 8).
//!
//! The Block Reader (BR) streams a compressed posting list through a small
//! window of 64-byte stream-buffer entries. Every entry carries a fetch
//! counter: it is evicted — and the next line eagerly prefetched — only
//! once every block overlapping the entry has fetched it. The Block
//! Scheduler (B-SCH) streams the per-block metadata and skip values and
//! dispatches blocks to free decompression units.

use iiu_index::block::BlockMeta;

use crate::dram::LINE_BYTES;

/// A sliding-window stream over one contiguous memory region.
///
/// Lines are requested in order (bounded by the window), arrive possibly
/// out of order, and are consumed by `fetch`; a line's slot is recycled
/// once its precomputed consumer count reaches zero.
#[derive(Debug)]
pub struct StreamBuffer {
    base_addr: u64,
    total_lines: usize,
    window: usize,
    /// First line whose consumers are not all done.
    head: usize,
    /// Next line to request.
    next_issue: usize,
    valid: Vec<bool>,
    consumers_left: Vec<u32>,
    /// Stalled cycles where a consumer wanted a line that was not valid.
    pub stall_cycles: u64,
}

impl StreamBuffer {
    /// Creates a stream over `[base_addr, base_addr + len_bytes)` with the
    /// given per-line consumer counts (one count per 64-byte line).
    ///
    /// # Panics
    ///
    /// Panics if `consumers` does not cover the region or the window is 0.
    pub fn new(base_addr: u64, len_bytes: u64, consumers: Vec<u32>, window: usize) -> Self {
        assert!(window > 0, "stream window must be positive");
        assert_eq!(base_addr % LINE_BYTES, 0, "stream base must be line-aligned");
        let total_lines = len_bytes.div_ceil(LINE_BYTES) as usize;
        assert_eq!(consumers.len(), total_lines, "one consumer count per line");
        StreamBuffer {
            base_addr,
            total_lines,
            window,
            head: 0,
            next_issue: 0,
            valid: vec![false; total_lines],
            consumers_left: consumers,
            stall_cycles: 0,
        }
    }

    /// An empty stream (no lines).
    pub fn empty() -> Self {
        StreamBuffer {
            base_addr: 0,
            total_lines: 0,
            window: 1,
            head: 0,
            next_issue: 0,
            valid: Vec::new(),
            consumers_left: Vec::new(),
            stall_cycles: 0,
        }
    }

    /// Address of the next line to request, if the window has room.
    pub fn want_issue(&self) -> Option<u64> {
        if self.next_issue < self.total_lines && self.next_issue < self.head + self.window {
            Some(self.base_addr + self.next_issue as u64 * LINE_BYTES)
        } else {
            None
        }
    }

    /// Marks the line returned by [`StreamBuffer::want_issue`] as issued.
    pub fn mark_issued(&mut self) {
        self.next_issue += 1;
    }

    /// Records the arrival of the line at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the stream.
    pub fn deliver(&mut self, addr: u64) {
        let rel = ((addr - self.base_addr) / LINE_BYTES) as usize;
        assert!(rel < self.total_lines, "delivery outside stream");
        self.valid[rel] = true;
    }

    /// A consumer attempts to fetch line `rel`; returns true on success
    /// (counts one consumption), false if the line has not arrived yet or
    /// is beyond the current window.
    ///
    /// # Panics
    ///
    /// Panics if the line was already fully consumed (caller accounting
    /// bug).
    pub fn fetch(&mut self, rel: usize) -> bool {
        if rel >= self.next_issue || !self.valid[rel] {
            self.stall_cycles += 1;
            return false;
        }
        assert!(
            self.consumers_left[rel] > 0,
            "line {rel} fetched more times than its consumer count"
        );
        self.consumers_left[rel] -= 1;
        while self.head < self.total_lines && self.consumers_left[self.head] == 0 {
            self.head += 1;
        }
        true
    }

    /// Relative line index for an absolute address within the stream.
    pub fn rel_line(&self, addr: u64) -> usize {
        ((addr - self.base_addr) / LINE_BYTES) as usize
    }

    /// Whether every line has been issued and consumed.
    pub fn is_done(&self) -> bool {
        self.head >= self.total_lines
    }

    /// Total lines in the stream.
    pub fn total_lines(&self) -> usize {
        self.total_lines
    }
}

/// Computes per-line consumer counts for a payload region: each block
/// consumes every line its byte range overlaps.
pub fn payload_consumers(metas: &[BlockMeta], payload_len: u64) -> Vec<u32> {
    let total_lines = payload_len.div_ceil(LINE_BYTES) as usize;
    let mut counts = vec![0u32; total_lines];
    for meta in metas {
        let start = meta.offset;
        let end = meta.offset + meta.payload_bytes().max(1);
        let first = (start / LINE_BYTES) as usize;
        let last = ((end - 1) / LINE_BYTES) as usize;
        for c in counts.iter_mut().take(last + 1).skip(first) {
            *c += 1;
        }
    }
    counts
}

/// The Block Scheduler's view of one list: it streams metadata words and
/// skip values and exposes how many *complete* block descriptors have
/// arrived.
#[derive(Debug)]
pub struct BlockScheduler {
    /// Metadata stream (8 bytes per block).
    pub meta_stream: StreamBuffer,
    /// Skip-value stream (4 bytes per block).
    pub skip_stream: StreamBuffer,
    num_blocks: usize,
    meta_lines_fetched: usize,
    skip_lines_fetched: usize,
    /// Next block index to dispatch.
    pub next_block: usize,
    /// Max blocks buffered ahead of dispatch; beyond it, reads stall
    /// (the paper's "B-SCH buffer is full, future reads are stalled").
    backlog_cap: usize,
}

impl BlockScheduler {
    /// Creates a scheduler for a list with `num_blocks` blocks whose
    /// metadata and skip arrays live at the given bases.
    pub fn new(meta_base: u64, skip_base: u64, num_blocks: usize, window: usize) -> Self {
        let meta_lines = (num_blocks as u64 * 8).div_ceil(LINE_BYTES);
        let skip_lines = (num_blocks as u64 * 4).div_ceil(LINE_BYTES);
        BlockScheduler {
            meta_stream: StreamBuffer::new(
                meta_base,
                num_blocks as u64 * 8,
                vec![1; meta_lines as usize],
                window,
            ),
            skip_stream: StreamBuffer::new(
                skip_base,
                num_blocks as u64 * 4,
                vec![1; skip_lines as usize],
                window,
            ),
            num_blocks,
            meta_lines_fetched: 0,
            skip_lines_fetched: 0,
            next_block: 0,
            backlog_cap: window * 16,
        }
    }

    /// Consumes arrived lines into the fetched prefix (the B-SCH reads its
    /// own streams; one line per stream per cycle). Stalls once the
    /// undispatched backlog reaches the buffer capacity.
    pub fn absorb(&mut self) {
        if self.blocks_ready().saturating_sub(self.next_block) >= self.backlog_cap {
            return;
        }
        if self.meta_lines_fetched < self.meta_stream.total_lines()
            && self.meta_stream.fetch(self.meta_lines_fetched)
        {
            self.meta_lines_fetched += 1;
        }
        if self.skip_lines_fetched < self.skip_stream.total_lines()
            && self.skip_stream.fetch(self.skip_lines_fetched)
        {
            self.skip_lines_fetched += 1;
        }
    }

    /// Number of blocks whose metadata *and* skip value have arrived.
    pub fn blocks_ready(&self) -> usize {
        let by_meta = (self.meta_lines_fetched * LINE_BYTES as usize) / 8;
        let by_skip = (self.skip_lines_fetched * LINE_BYTES as usize) / 4;
        by_meta.min(by_skip).min(self.num_blocks)
    }

    /// Whether every block has been dispatched.
    pub fn all_dispatched(&self) -> bool {
        self.next_block >= self.num_blocks
    }

    /// Takes the next ready block index for dispatch, if one is available.
    pub fn pop_ready_block(&mut self) -> Option<usize> {
        if !self.all_dispatched() && self.next_block < self.blocks_ready() {
            let b = self.next_block;
            self.next_block += 1;
            Some(b)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_window_limits_issue() {
        let mut s = StreamBuffer::new(0, 64 * 10, vec![1; 10], 2);
        assert_eq!(s.want_issue(), Some(0));
        s.mark_issued();
        assert_eq!(s.want_issue(), Some(64));
        s.mark_issued();
        // Window of 2: third line must wait until the head advances.
        assert_eq!(s.want_issue(), None);
        s.deliver(0);
        assert!(s.fetch(0));
        assert_eq!(s.want_issue(), Some(128));
    }

    #[test]
    fn fetch_requires_delivery() {
        let mut s = StreamBuffer::new(0, 64, vec![1], 4);
        s.mark_issued();
        assert!(!s.fetch(0));
        assert_eq!(s.stall_cycles, 1);
        s.deliver(0);
        assert!(s.fetch(0));
        assert!(s.is_done());
    }

    #[test]
    fn multi_consumer_line_freed_after_all_fetches() {
        let mut s = StreamBuffer::new(0, 64, vec![2], 1);
        s.mark_issued();
        s.deliver(0);
        assert!(s.fetch(0));
        assert!(!s.is_done());
        assert!(s.fetch(0));
        assert!(s.is_done());
    }

    #[test]
    #[should_panic(expected = "more times than")]
    fn over_fetch_panics() {
        let mut s = StreamBuffer::new(0, 64, vec![1], 1);
        s.mark_issued();
        s.deliver(0);
        assert!(s.fetch(0));
        let _ = s.fetch(0);
    }

    #[test]
    fn payload_consumer_counts_overlap() {
        // Block 0: bytes [0, 100) -> lines 0, 1. Block 1: [100, 120) -> line 1.
        let metas = vec![
            BlockMeta { dn_bits: 4, tf_bits: 4, count: 100, offset: 0 },
            BlockMeta { dn_bits: 4, tf_bits: 4, count: 20, offset: 100 },
        ];
        let counts = payload_consumers(&metas, 120);
        assert_eq!(counts, vec![1, 2]);
    }

    #[test]
    fn scheduler_blocks_ready_needs_meta_and_skip() {
        let mut sch = BlockScheduler::new(0, 1024, 20, 4);
        assert_eq!(sch.blocks_ready(), 0);
        // Deliver first meta line (8 blocks' metadata) but no skips.
        sch.meta_stream.mark_issued();
        sch.meta_stream.deliver(0);
        sch.absorb();
        assert_eq!(sch.blocks_ready(), 0);
        // Deliver first skip line (16 blocks' skips).
        sch.skip_stream.mark_issued();
        sch.skip_stream.deliver(1024);
        sch.absorb();
        assert_eq!(sch.blocks_ready(), 8);
        assert_eq!(sch.pop_ready_block(), Some(0));
        assert_eq!(sch.pop_ready_block(), Some(1));
    }

    #[test]
    fn scheduler_dispatches_all_blocks() {
        let mut sch = BlockScheduler::new(0, 1024, 3, 4);
        while sch.meta_stream.want_issue().is_some() {
            let a = sch.meta_stream.want_issue().unwrap();
            sch.meta_stream.mark_issued();
            sch.meta_stream.deliver(a);
        }
        while sch.skip_stream.want_issue().is_some() {
            let a = sch.skip_stream.want_issue().unwrap();
            sch.skip_stream.mark_issued();
            sch.skip_stream.deliver(a);
        }
        for _ in 0..4 {
            sch.absorb();
        }
        let mut got = Vec::new();
        while let Some(b) = sch.pop_ready_block() {
            got.push(b);
        }
        assert_eq!(got, vec![0, 1, 2]);
        assert!(sch.all_dispatched());
    }

    #[test]
    fn empty_stream_is_done() {
        let s = StreamBuffer::new(0, 0, Vec::new(), 1);
        assert!(s.is_done());
        assert_eq!(s.want_issue(), None);
    }
}
