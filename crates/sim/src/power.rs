//! Area, power and energy model (paper §5.4, Table 3, Fig. 20).
//!
//! The paper's area/power numbers come from synthesizing the Chisel RTL
//! with a TSMC 40 nm library — something a software reproduction cannot
//! re-run. Table 3's published per-component values are therefore used as
//! model constants (see DESIGN.md §2): they are *inputs* to the energy
//! study, not outputs of the workload, so the energy math of Fig. 20 is
//! preserved exactly.

/// One row of Table 3 (the published "Total" columns; the paper's
/// per-instance numbers are rounded, so totals are authoritative).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentBudget {
    /// Component name.
    pub name: &'static str,
    /// Total area across instances in mm².
    pub total_area_mm2: f64,
    /// Total power across instances in mW.
    pub total_power_mw: f64,
    /// Instances in the 8-core IIU.
    pub count: u32,
}

impl ComponentBudget {
    /// Total area across instances (mm²).
    pub fn total_area_mm2(&self) -> f64 {
        self.total_area_mm2
    }

    /// Total power across instances (mW).
    pub fn total_power_mw(&self) -> f64 {
        self.total_power_mw
    }

    /// Area per instance (mm²).
    pub fn area_per_instance_mm2(&self) -> f64 {
        self.total_area_mm2 / f64::from(self.count)
    }

    /// Power per instance (mW).
    pub fn power_per_instance_mw(&self) -> f64 {
        self.total_power_mw / f64::from(self.count)
    }
}

/// Table 3, verbatim (Total Area / Total Power columns).
pub const TABLE3: &[ComponentBudget] = &[
    ComponentBudget {
        name: "Block Reader",
        total_area_mm2: 0.160,
        total_power_mw: 111.7,
        count: 8,
    },
    ComponentBudget {
        name: "Block Scheduler",
        total_area_mm2: 0.143,
        total_power_mw: 88.3,
        count: 8,
    },
    ComponentBudget {
        name: "IIU Core",
        total_area_mm2: 2.687,
        total_power_mw: 925.4,
        count: 8,
    },
    ComponentBudget {
        name: "Command Queue",
        total_area_mm2: 0.004,
        total_power_mw: 2.7,
        count: 1,
    },
    ComponentBudget {
        name: "Query Scheduler",
        total_area_mm2: 0.009,
        total_power_mw: 6.4,
        count: 1,
    },
    ComponentBudget { name: "MAI", total_area_mm2: 0.101, total_power_mw: 9.6, count: 1 },
];

/// Whole-accelerator power/energy model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// IIU average power in watts (Table 3 total: 1.144 W for 8 cores).
    pub iiu_w: f64,
    /// Host-CPU active power for the single-threaded phases (top-k, or a
    /// single-core Lucene query). The i7-7820X's TDP is 140 W across 8
    /// cores; one active core with shared uncore draws roughly half.
    pub cpu_core_w: f64,
    /// Full-chip CPU power when all cores run (multi-core Lucene
    /// throughput runs).
    pub cpu_tdp_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel { iiu_w: table3_total_power_w(), cpu_core_w: 70.0, cpu_tdp_w: 140.0 }
    }
}

impl PowerModel {
    /// Energy in joules of `ns` nanoseconds of IIU activity.
    pub fn iiu_energy_j(&self, ns: f64) -> f64 {
        self.iiu_w * ns * 1e-9
    }

    /// Energy of single-core CPU activity (baseline query, or host top-k).
    pub fn cpu_core_energy_j(&self, ns: f64) -> f64 {
        self.cpu_core_w * ns * 1e-9
    }

    /// Energy of one IIU query end to end: accelerator time plus the host
    /// top-k pass (Fig. 20's IIU bars are dominated by the latter).
    pub fn iiu_query_energy_j(&self, iiu_ns: f64, topk_ns: f64) -> f64 {
        self.iiu_energy_j(iiu_ns) + self.cpu_core_energy_j(topk_ns)
    }
}

/// Total IIU area (Table 3: 3.106 mm²).
pub fn table3_total_area_mm2() -> f64 {
    TABLE3.iter().map(ComponentBudget::total_area_mm2).sum()
}

/// Total IIU average power in watts (Table 3: 1.144 W).
pub fn table3_total_power_w() -> f64 {
    TABLE3.iter().map(ComponentBudget::total_power_mw).sum::<f64>() / 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_published_table3() {
        assert!((table3_total_area_mm2() - 3.106).abs() < 0.01);
        assert!((table3_total_power_w() - 1.144).abs() < 0.002);
    }

    #[test]
    fn iiu_core_dominates_area_and_power() {
        let core = TABLE3.iter().find(|c| c.name == "IIU Core").unwrap();
        assert!(core.total_area_mm2() > 0.8 * table3_total_area_mm2() * 0.8);
        assert!(core.total_power_mw() / 1e3 > 0.8 * table3_total_power_w());
    }

    #[test]
    fn power_gap_to_cpu_matches_paper() {
        // §5.4: "IIU consumes 122.4× less power" than the 140 W TDP.
        let ratio = PowerModel::default().cpu_tdp_w / table3_total_power_w();
        assert!((ratio - 122.4).abs() < 1.0, "power ratio {ratio}");
    }

    #[test]
    fn energy_math() {
        let p = PowerModel::default();
        // 1 ms of IIU = 1.144 mJ.
        assert!((p.iiu_energy_j(1e6) - 1.144e-3).abs() < 1e-5);
        // Combined query energy adds host top-k at single-core power.
        let e = p.iiu_query_energy_j(1e6, 1e6);
        assert!((e - (1.144e-3 + 70.0e-3)).abs() < 1e-5);
    }
}
