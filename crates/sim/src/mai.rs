//! Memory Address Interface (paper §4.1).
//!
//! All memory requests from the IIU go through the MAI at the memory
//! controller. It keeps a 128-entry table of outstanding reads — the
//! accelerator-side analogue of the CPU's MSHRs — pairing each pending line
//! with the requestor IDs waiting on it, and relays DRAM responses back.
//! Requests to a line that is already outstanding coalesce into the
//! existing entry.

use std::collections::HashMap;
use std::collections::VecDeque;

use crate::dram::{MemRequest, MemResponse, MemorySystem, LINE_BYTES, TICKS_PER_CYCLE};

/// Identifies the unit waiting on a read (opaque to the MAI).
pub type Requestor = u64;

/// The MAI: outstanding-request table in front of the DRAM system.
#[derive(Debug)]
pub struct Mai {
    capacity: usize,
    /// line address -> waiting requestors (entry exists while outstanding).
    outstanding: HashMap<u64, Vec<Requestor>>,
    /// Reads accepted but not yet pushed into a channel queue.
    read_backlog: VecDeque<u64>,
    /// Writes accepted but not yet pushed into a channel queue.
    write_backlog: VecDeque<u64>,
    /// Responses ready for the machine to route.
    ready: VecDeque<(u64, Vec<Requestor>)>,
    /// Reads issued (for stats).
    pub reads_issued: u64,
    /// Writes issued.
    pub writes_issued: u64,
    /// Requests rejected because the table was full.
    pub rejects: u64,
    /// Peak table occupancy observed.
    pub peak_occupancy: usize,
}

impl Mai {
    /// The paper's table size.
    pub const DEFAULT_CAPACITY: usize = 128;

    /// Creates an MAI with the given table capacity.
    pub fn new(capacity: usize) -> Self {
        Mai {
            capacity,
            outstanding: HashMap::new(),
            read_backlog: VecDeque::new(),
            write_backlog: VecDeque::new(),
            ready: VecDeque::new(),
            reads_issued: 0,
            writes_issued: 0,
            rejects: 0,
            peak_occupancy: 0,
        }
    }

    /// Requests the 64-byte line containing `addr` for `requestor`.
    /// Returns false if the table is full (caller retries next cycle).
    /// Coalesces with an existing outstanding entry for the same line.
    pub fn request_read(&mut self, addr: u64, requestor: Requestor) -> bool {
        let line = addr / LINE_BYTES * LINE_BYTES;
        if let Some(waiters) = self.outstanding.get_mut(&line) {
            waiters.push(requestor);
            return true;
        }
        if self.outstanding.len() >= self.capacity {
            self.rejects += 1;
            return false;
        }
        self.outstanding.insert(line, vec![requestor]);
        self.read_backlog.push_back(line);
        self.reads_issued += 1;
        self.peak_occupancy = self.peak_occupancy.max(self.outstanding.len());
        true
    }

    /// Enqueues a 64-byte write (fire-and-forget; bounded by an internal
    /// backlog so writes still consume bandwidth in order).
    pub fn request_write(&mut self, addr: u64) {
        let line = addr / LINE_BYTES * LINE_BYTES;
        self.write_backlog.push_back(line);
        self.writes_issued += 1;
    }

    /// Advances the DRAM to IIU cycle `cycle`, draining backlogs into the
    /// channel queues and collecting completed reads.
    pub fn tick(&mut self, cycle: u64, mem: &mut MemorySystem) {
        // Push backlogged requests (reads first: they block compute).
        while let Some(&line) = self.read_backlog.front() {
            if mem.try_enqueue(MemRequest { addr: line, is_write: false, tag: 0 }) {
                self.read_backlog.pop_front();
            } else {
                break;
            }
        }
        while let Some(&line) = self.write_backlog.front() {
            if mem.try_enqueue(MemRequest { addr: line, is_write: true, tag: 0 }) {
                self.write_backlog.pop_front();
            } else {
                break;
            }
        }
        mem.tick_to(cycle * TICKS_PER_CYCLE);
        while let Some(MemResponse { addr, .. }) = mem.pop_ready() {
            let waiters = self.outstanding.remove(&addr).expect("response for unknown line");
            self.ready.push_back((addr, waiters));
        }
    }

    /// Pops one completed read with its waiting requestors.
    pub fn pop_response(&mut self) -> Option<(u64, Vec<Requestor>)> {
        self.ready.pop_front()
    }

    /// Whether the MAI has no outstanding or backlogged work.
    pub fn is_idle(&self) -> bool {
        self.outstanding.is_empty()
            && self.read_backlog.is_empty()
            && self.write_backlog.is_empty()
            && self.ready.is_empty()
    }

    /// Current table occupancy.
    pub fn occupancy(&self) -> usize {
        self.outstanding.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::DramConfig;

    #[test]
    fn coalesces_same_line_requests() {
        let mut mai = Mai::new(4);
        let mut mem = MemorySystem::new(DramConfig::ddr4_2400());
        assert!(mai.request_read(0, 1));
        assert!(mai.request_read(32, 2)); // same 64-byte line
        assert_eq!(mai.occupancy(), 1);
        for c in 1..200 {
            mai.tick(c, &mut mem);
        }
        let (addr, waiters) = mai.pop_response().expect("read completes");
        assert_eq!(addr, 0);
        assert_eq!(waiters, vec![1, 2]);
        assert!(mai.is_idle());
        // Only one DRAM access was made for the coalesced pair.
        assert_eq!(mem.bytes_read, 64);
    }

    #[test]
    fn rejects_when_table_full() {
        let mut mai = Mai::new(2);
        assert!(mai.request_read(0, 1));
        assert!(mai.request_read(64, 2));
        assert!(!mai.request_read(128, 3));
        assert_eq!(mai.rejects, 1);
        // Same-line coalescing still succeeds when full.
        assert!(mai.request_read(0, 4));
    }

    #[test]
    fn writes_drain_without_responses() {
        let mut mai = Mai::new(8);
        let mut mem = MemorySystem::new(DramConfig::ddr4_2400());
        mai.request_write(192);
        for c in 1..200 {
            mai.tick(c, &mut mem);
        }
        assert!(mai.pop_response().is_none());
        assert!(mai.is_idle());
        assert_eq!(mem.bytes_written, 64);
        assert_eq!(mai.writes_issued, 1);
    }

    #[test]
    fn peak_occupancy_tracks_high_water_mark() {
        let mut mai = Mai::new(128);
        for i in 0..50u64 {
            mai.request_read(i * 64, i);
        }
        assert_eq!(mai.peak_occupancy, 50);
    }
}
