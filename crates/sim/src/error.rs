//! Typed simulator errors and the watchdog's stall snapshot.
//!
//! The run methods on [`crate::IiuMachine`] used to `assert!` on invalid
//! allocations and wedge diagnostics; they now return [`SimError`] so a
//! serving layer can degrade gracefully instead of crashing. A stall
//! carries a structured [`StallSnapshot`] of every in-flight execution —
//! queue depths and fetch counters per unit — so the failure is
//! diagnosable after the fact.

use std::error::Error;
use std::fmt;

use crate::machine::SimQuery;

/// Progress counters for one Block Reader payload stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSnapshot {
    /// Every line has been fetched and consumed.
    pub done: bool,
    /// Lines the stream must fetch in total.
    pub total_lines: usize,
    /// Cycles the stream window was full while a consumer waited.
    pub stall_cycles: u64,
}

/// Progress counters for one Block Scheduler (metadata + skip streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerSnapshot {
    /// Blocks whose metadata and skip entries have both arrived.
    pub blocks_ready: usize,
    /// Next block index to dispatch.
    pub next_block: usize,
    /// All blocks have been handed to DCUs.
    pub all_dispatched: bool,
}

/// Queue depths and counters for one IIU core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreSnapshot {
    /// DCU0/DCU1 idle flags.
    pub dcu_idle: [bool; 2],
    /// DCU0/DCU1 output-queue depths.
    pub dcu_out_depth: [usize; 2],
    /// Postings decoded so far per DCU.
    pub dcu_postings_decoded: [u64; 2],
    /// DCU1 has a candidate-block load waiting to materialize.
    pub dcu1_pending_job: bool,
    /// SU0/SU1 fully drained flags.
    pub su_drained: [bool; 2],
    /// SU0/SU1 output-queue depths.
    pub su_out_depth: [usize; 2],
    /// Matched-posting queue depths feeding SU0/SU1 (intersection).
    pub match_queue_depth: [usize; 2],
    /// The Block Search Unit is idle.
    pub bsu_idle: bool,
    /// A BSU probe is outstanding.
    pub bsu_pending: bool,
    /// BSU probes issued so far.
    pub bsu_probes: u64,
    /// Candidate L1 block currently loaded (intersection).
    pub cur_block: Option<usize>,
}

/// One wedged query execution: which query, and where every unit stood.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecSnapshot {
    /// The query being executed (terms as resolved; an intersection may
    /// show its operands swapped, since the shorter list drives).
    pub query: SimQuery,
    /// One entry per Block Scheduler (two for union).
    pub schedulers: Vec<SchedulerSnapshot>,
    /// One entry per payload stream (two for union).
    pub streams: Vec<StreamSnapshot>,
    /// One entry per allocated core.
    pub cores: Vec<CoreSnapshot>,
}

/// Machine-wide progress snapshot taken when the watchdog fires.
#[derive(Debug, Clone, PartialEq)]
pub struct StallSnapshot {
    /// Cycle at which the watchdog gave up.
    pub cycle: u64,
    /// Cycle of the last observed forward progress.
    pub last_progress_cycle: u64,
    /// Every execution that was in flight.
    pub execs: Vec<ExecSnapshot>,
}

impl fmt::Display for ExecSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "query {:?}", self.query)?;
        for (i, s) in self.schedulers.iter().enumerate() {
            writeln!(
                f,
                "bsch{i}: ready={} next={} dispatched_all={}",
                s.blocks_ready, s.next_block, s.all_dispatched
            )?;
        }
        for (i, s) in self.streams.iter().enumerate() {
            writeln!(
                f,
                "stream{i}: done={} total={} stalls={}",
                s.done, s.total_lines, s.stall_cycles
            )?;
        }
        for (i, c) in self.cores.iter().enumerate() {
            writeln!(
                f,
                "core{i}: dcu0(idle={} out={} dec={}) dcu1(idle={} pend={} out={} dec={}) \
                 su(drained={:?} out={:?}) mq={:?} bsu(idle={} pending={} probes={}) \
                 cur_block={:?}",
                c.dcu_idle[0],
                c.dcu_out_depth[0],
                c.dcu_postings_decoded[0],
                c.dcu_idle[1],
                c.dcu1_pending_job,
                c.dcu_out_depth[1],
                c.dcu_postings_decoded[1],
                c.su_drained,
                c.su_out_depth,
                c.match_queue_depth,
                c.bsu_idle,
                c.bsu_pending,
                c.bsu_probes,
                c.cur_block,
            )?;
        }
        Ok(())
    }
}

impl fmt::Display for StallSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "stalled at cycle {} (last progress at cycle {}), {} execution(s) in flight",
            self.cycle,
            self.last_progress_cycle,
            self.execs.len()
        )?;
        for e in &self.execs {
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

/// Errors returned by the [`crate::IiuMachine`] run methods.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The simulation stopped making forward progress (or exceeded its
    /// cycle budget) and was aborted by the watchdog. The snapshot records
    /// where every unit stood.
    Stalled {
        /// Per-unit progress at the moment the watchdog fired.
        snapshot: StallSnapshot,
    },
    /// The request itself was invalid (zero cores, an allocation larger
    /// than the machine, unsorted arrivals, ...).
    BadRequest {
        /// Which invariant the request violates.
        what: &'static str,
    },
    /// A query term failed its index integrity check at admission.
    /// Mmap-backed indexes defer each term record's CRC to first touch;
    /// the machine checks every term before simulating so late-detected
    /// corruption surfaces here as a typed error, not a panic mid-tick.
    Index {
        /// The underlying index error.
        source: iiu_index::IndexError,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Stalled { snapshot } => write!(f, "simulation {snapshot}"),
            SimError::BadRequest { what } => write!(f, "bad simulation request: {what}"),
            SimError::Index { source } => write!(f, "index integrity: {source}"),
        }
    }
}

impl SimError {
    /// Whether retrying the same request on a fresh machine could succeed.
    /// Stalls are transient (watchdogs fire on contention and tight cycle
    /// budgets); a `BadRequest` or `Index` error will fail identically
    /// every time.
    pub fn is_transient(&self) -> bool {
        matches!(self, SimError::Stalled { .. })
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        // The full bound callers need to box and send across threads.
        fn assert_error<T: Error + Send + Sync + 'static>() {}
        fn assert_send_sync<T: Send + Sync>() {}
        assert_error::<SimError>();
        assert_send_sync::<StallSnapshot>();
    }

    #[test]
    fn display_is_informative() {
        let e = SimError::BadRequest { what: "core allocation out of range" };
        assert!(e.to_string().contains("core allocation"));

        let snapshot = StallSnapshot {
            cycle: 2_000_000,
            last_progress_cycle: 17,
            execs: vec![ExecSnapshot {
                query: SimQuery::Single(3),
                schedulers: vec![SchedulerSnapshot {
                    blocks_ready: 0,
                    next_block: 1,
                    all_dispatched: false,
                }],
                streams: vec![StreamSnapshot { done: false, total_lines: 9, stall_cycles: 4 }],
                cores: vec![CoreSnapshot {
                    dcu_idle: [true, true],
                    dcu_out_depth: [0, 0],
                    dcu_postings_decoded: [0, 0],
                    dcu1_pending_job: false,
                    su_drained: [true, true],
                    su_out_depth: [0, 0],
                    match_queue_depth: [0, 0],
                    bsu_idle: true,
                    bsu_pending: false,
                    bsu_probes: 0,
                    cur_block: None,
                }],
            }],
        };
        let e = SimError::Stalled { snapshot };
        let s = e.to_string();
        assert!(s.contains("cycle 2000000"), "{s}");
        assert!(s.contains("bsch0") && s.contains("stream0") && s.contains("core0"), "{s}");
    }
}
