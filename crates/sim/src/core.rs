//! The IIU Core's processing units (paper §4.3, Figs. 9–11).
//!
//! Each core couples two decompression units (DCU, 1 posting/cycle), two
//! scoring units (SU, 18-cycle fully-pipelined BM25), one binary search
//! unit (BSU, with a 32-entry traversal cache over the skip list) and a
//! merge/intersect stage, wired by query type:
//!
//! * single term: `DCUi → SUi → write-back`;
//! * intersection: `DCU0 → [BSU steers DCU1 block loads] → match → SU0+SU1
//!   → add → write-back`;
//! * union: `DCUi → SUi → 2-way merge → write-back`.

use std::collections::VecDeque;

use iiu_index::score::term_score_fixed;
use iiu_index::{DocId, Fixed, Posting};

use crate::dram::LINE_BYTES;
use crate::frontend::StreamBuffer;
use crate::mai::Mai;

/// One decoded result before write-back.
pub type Scored = (DocId, Fixed);

// ---------------------------------------------------------------------------
// Decompression Unit
// ---------------------------------------------------------------------------

/// A block being decoded out of a Block Reader stream.
#[derive(Debug)]
pub struct StreamJob {
    /// Which BR stream the block lives in.
    pub stream_idx: usize,
    /// Functionally pre-decoded postings of the block.
    pub postings: Vec<Posting>,
    /// Bit offset of the block within the stream region.
    pub start_bit: u64,
    /// Bits per posting.
    pub pair_bits: u64,
    /// Stream-relative lines the block spans (inclusive).
    pub first_line: usize,
    /// Last stream-relative line (inclusive).
    pub last_line: usize,
}

/// A candidate block being fetched directly from memory (intersection's
/// DCU1 path).
#[derive(Debug)]
pub struct FetchJob {
    /// Functionally pre-decoded postings of the block.
    pub postings: Vec<Posting>,
    /// Bits per posting.
    pub pair_bits: u64,
    /// Line-aligned base address of the first line.
    pub base_addr: u64,
    /// Bit offset of the block within the first line.
    pub start_bit: u64,
    /// Total lines to fetch.
    pub lines_total: usize,
}

#[derive(Debug)]
enum DcuState {
    Idle,
    Stream {
        job: StreamJob,
        emitted: usize,
        next_fetch_line: usize,
        avail_bits: u64,
    },
    Fetch {
        job: FetchJob,
        emitted: usize,
        lines_issued: usize,
        arrived: Vec<bool>,
        avail_lines: usize,
    },
}

/// A decompression unit: extracts one `(d-gap, tf)` pair per cycle from
/// bit-packed block data, gated by data arrival from the Block Reader or
/// memory (Fig. 10).
#[derive(Debug)]
pub struct Dcu {
    state: DcuState,
    /// Decoded postings awaiting the next stage.
    pub out: VecDeque<Posting>,
    cap: usize,
    /// Max lines in flight for direct fetches.
    fetch_outstanding: usize,
    /// Cycles spent decoding or fetching.
    pub busy_cycles: u64,
    /// Postings decoded.
    pub postings_decoded: u64,
    /// Blocks completed.
    pub blocks_done: u64,
    /// A block load has been requested but not yet materialized (used by
    /// the intersection control to defer job construction).
    pending_job: bool,
    /// Recycled postings buffer from the last finished/aborted job, handed
    /// back out via [`Dcu::take_spare`] so block loads do not allocate.
    spare: Vec<Posting>,
}

impl Dcu {
    /// Creates a DCU with the given output-queue capacity.
    pub fn new(queue_cap: usize, fetch_outstanding: usize) -> Self {
        Dcu {
            state: DcuState::Idle,
            out: VecDeque::with_capacity(queue_cap),
            cap: queue_cap,
            fetch_outstanding,
            busy_cycles: 0,
            postings_decoded: 0,
            blocks_done: 0,
            pending_job: false,
            spare: Vec::new(),
        }
    }

    /// Takes the recycled postings buffer (cleared) for the next block
    /// load; empty on the first use, warm afterwards.
    pub fn take_spare(&mut self) -> Vec<Posting> {
        let mut buf = std::mem::take(&mut self.spare);
        buf.clear();
        buf
    }

    /// Keeps the larger of the current spare and a retired job's buffer.
    fn recycle(&mut self, mut buf: Vec<Posting>) {
        buf.clear();
        if buf.capacity() > self.spare.capacity() {
            self.spare = buf;
        }
    }

    /// Retires the current job (if any), reclaiming its buffer.
    fn retire(&mut self) {
        match std::mem::replace(&mut self.state, DcuState::Idle) {
            DcuState::Idle => {}
            DcuState::Stream { job, .. } => self.recycle(job.postings),
            DcuState::Fetch { job, .. } => self.recycle(job.postings),
        }
    }

    /// Marks that a block load will be supplied by the controller.
    pub fn set_pending_job(&mut self) {
        self.pending_job = true;
    }

    /// Whether a block load has been requested but not yet started.
    pub fn has_pending_job(&self) -> bool {
        self.pending_job
    }

    /// Whether the unit is idle with a requested-but-unstarted block load.
    pub fn wants_job(&self) -> bool {
        self.pending_job && self.is_idle()
    }

    /// Whether the unit can accept a new block.
    pub fn is_idle(&self) -> bool {
        matches!(self.state, DcuState::Idle)
    }

    /// Starts decoding a block out of a BR stream.
    ///
    /// # Panics
    ///
    /// Panics if the unit is busy.
    pub fn start_stream(&mut self, job: StreamJob) {
        assert!(self.is_idle(), "DCU busy");
        let next_fetch_line = job.first_line;
        self.state = DcuState::Stream { job, emitted: 0, next_fetch_line, avail_bits: 0 };
    }

    /// Starts a direct-fetch block decode (intersection DCU1).
    ///
    /// # Panics
    ///
    /// Panics if the unit is busy.
    pub fn start_fetch(&mut self, job: FetchJob) {
        assert!(self.is_idle(), "DCU busy");
        self.pending_job = false;
        let lines = job.lines_total;
        self.state = DcuState::Fetch {
            job,
            emitted: 0,
            lines_issued: 0,
            arrived: vec![false; lines],
            avail_lines: 0,
        };
    }

    /// Discards the in-flight block and output queue (used when the
    /// intersection moves to a new candidate block).
    pub fn abort(&mut self) {
        self.retire();
        self.out.clear();
        self.pending_job = false;
    }

    /// Records the arrival of a directly fetched line. Lines that fall
    /// outside the current job's window — on either side — are stale
    /// deliveries for a block that already finished (or was aborted) while
    /// its last fetches were still in flight, and are ignored.
    pub fn deliver_fetch_line(&mut self, addr: u64) {
        if let DcuState::Fetch { job, arrived, avail_lines, .. } = &mut self.state {
            let Some(off) = addr.checked_sub(job.base_addr) else {
                return;
            };
            let rel = (off / LINE_BYTES) as usize;
            if rel < arrived.len() {
                arrived[rel] = true;
                while *avail_lines < arrived.len() && arrived[*avail_lines] {
                    *avail_lines += 1;
                }
            }
        }
    }

    /// One cycle of work. `streams` are the Block Reader's stream buffers;
    /// `mai`/`token_base` serve direct fetches (the line index is added to
    /// the token).
    pub fn tick(&mut self, streams: &mut [StreamBuffer], mai: &mut Mai, token_base: u64) {
        if self.out.len() >= self.cap {
            return; // backpressure from the next stage
        }
        let mut done = false;
        match &mut self.state {
            DcuState::Idle => {}
            DcuState::Stream { job, emitted, next_fetch_line, avail_bits } => {
                if *emitted < job.postings.len() {
                    let needed = (*emitted as u64 + 1) * job.pair_bits;
                    if *avail_bits >= needed {
                        self.out.push_back(job.postings[*emitted]);
                        *emitted += 1;
                        self.busy_cycles += 1;
                        self.postings_decoded += 1;
                    } else if *next_fetch_line <= job.last_line
                        && streams[job.stream_idx].fetch(*next_fetch_line)
                    {
                        *avail_bits = ((*next_fetch_line as u64 + 1) * LINE_BYTES * 8)
                            .saturating_sub(job.start_bit);
                        *next_fetch_line += 1;
                        self.busy_cycles += 1;
                    }
                }
                if *emitted == job.postings.len() {
                    // Consume any trailing lines so the stream's consumer
                    // counts balance (cannot normally trigger: the last
                    // posting's bits end in the last spanned line).
                    while *next_fetch_line <= job.last_line {
                        if !streams[job.stream_idx].fetch(*next_fetch_line) {
                            return; // retry next cycle
                        }
                        *next_fetch_line += 1;
                    }
                    self.blocks_done += 1;
                    done = true;
                }
            }
            DcuState::Fetch { job, emitted, lines_issued, arrived, avail_lines } => {
                // Keep requests in flight.
                while *lines_issued < job.lines_total
                    && *lines_issued < *avail_lines + self.fetch_outstanding
                {
                    let addr = job.base_addr + *lines_issued as u64 * LINE_BYTES;
                    if mai.request_read(addr, token_base + *lines_issued as u64) {
                        *lines_issued += 1;
                    } else {
                        break;
                    }
                }
                let avail_bits =
                    (*avail_lines as u64 * LINE_BYTES * 8).saturating_sub(job.start_bit);
                let needed = (*emitted as u64 + 1) * job.pair_bits;
                if avail_bits >= needed {
                    self.out.push_back(job.postings[*emitted]);
                    *emitted += 1;
                    self.busy_cycles += 1;
                    self.postings_decoded += 1;
                    if *emitted == job.postings.len() {
                        self.blocks_done += 1;
                        done = true;
                    }
                }
                let _ = arrived;
            }
        }
        if done {
            self.retire();
        }
    }
}

// ---------------------------------------------------------------------------
// Scoring Unit
// ---------------------------------------------------------------------------

/// A scoring unit: a fully-pipelined 18-cycle BM25 datapath that loads the
/// per-document `dl̄` constant from memory and computes
/// `s = idf̄ · tf / (tf + dl̄)` in Q16.16.
///
/// The pipeline is the unit of memory-level parallelism: each of the up to
/// 18 in-flight entries may have its own outstanding dl-table read ("18
/// inputs can be simultaneously in flight", §4.3). A small line buffer
/// exploits the ascending-docID locality of the table.
#[derive(Debug)]
pub struct ScoringUnit {
    latency: u64,
    /// In-flight entries, in input order.
    pipe: VecDeque<SuEntry>,
    /// Completed scores awaiting the next stage.
    pub out: VecDeque<Scored>,
    cap: usize,
    idf_bar: Fixed,
    /// Recently fetched dl-table lines (tiny LRU).
    cached_lines: VecDeque<u64>,
    /// Outstanding dl-line reads.
    pending_lines: Vec<u64>,
    /// Documents scored.
    pub scored: u64,
    /// dl-table line misses (each costs a memory read).
    pub dl_misses: u64,
    /// Cycles a new input was accepted.
    pub busy_cycles: u64,
}

#[derive(Debug)]
struct SuEntry {
    ready_cycle: u64,
    doc: DocId,
    tf: u32,
    line: u64,
    dl_arrived: bool,
}

impl ScoringUnit {
    /// dl-line buffer entries.
    const LINE_BUF: usize = 16;
    /// Max outstanding dl-line reads (input-queue lookahead included).
    const MAX_PENDING: usize = 8;
    /// Prefetch issues per cycle from the input queue.
    const PREFETCH_PER_CYCLE: usize = 2;

    /// Creates a scoring unit for a term with the given precomputed
    /// `idf̄` and pipeline latency.
    pub fn new(idf_bar: Fixed, latency: u64, queue_cap: usize) -> Self {
        ScoringUnit {
            latency,
            pipe: VecDeque::new(),
            out: VecDeque::with_capacity(queue_cap),
            cap: queue_cap,
            idf_bar,
            cached_lines: VecDeque::new(),
            pending_lines: Vec::new(),
            scored: 0,
            dl_misses: 0,
            busy_cycles: 0,
        }
    }

    /// Records the arrival of a requested dl-table line: resolves every
    /// pipeline entry waiting on it and refreshes the line buffer.
    pub fn deliver_dl_line(&mut self, line_addr: u64) {
        if let Some(pos) = self.pending_lines.iter().position(|&l| l == line_addr) {
            self.pending_lines.swap_remove(pos);
        }
        self.remember_line(line_addr);
        for e in &mut self.pipe {
            if e.line == line_addr {
                e.dl_arrived = true;
            }
        }
    }

    fn remember_line(&mut self, line_addr: u64) {
        if let Some(pos) = self.cached_lines.iter().position(|&l| l == line_addr) {
            self.cached_lines.remove(pos);
        }
        self.cached_lines.push_back(line_addr);
        while self.cached_lines.len() > Self::LINE_BUF {
            self.cached_lines.pop_front();
        }
    }

    /// One cycle: retire the pipeline head if its latency elapsed and its
    /// dl value arrived, then accept one input from `input`, issuing its
    /// dl-line read if needed. `dl_of` maps a docID to its `dl̄` value;
    /// `dl_addr_of` to the table address.
    pub fn tick(
        &mut self,
        cycle: u64,
        input: &mut VecDeque<Posting>,
        mai: &mut Mai,
        token: u64,
        dl_of: &dyn Fn(DocId) -> Fixed,
        dl_addr_of: &dyn Fn(DocId) -> u64,
    ) {
        // Retire (in order; one per cycle).
        if let Some(head) = self.pipe.front() {
            if head.ready_cycle <= cycle && head.dl_arrived && self.out.len() < self.cap {
                let head = self.pipe.pop_front().expect("checked");
                let score = term_score_fixed(self.idf_bar, dl_of(head.doc), head.tf);
                self.out.push_back((head.doc, score));
            }
        }
        // Accept.
        if self.pipe.len() >= self.latency as usize {
            return; // pipeline full
        }
        // Decoupled dl prefetch: docIDs are known as soon as the DCU
        // decodes them, so line reads for queued inputs issue ahead of the
        // pipeline (this is what lets the unit sustain one pair per cycle
        // despite per-document memory reads).
        let mut issued = 0usize;
        for p in input.iter() {
            if issued >= Self::PREFETCH_PER_CYCLE
                || self.pending_lines.len() >= Self::MAX_PENDING
            {
                break;
            }
            let line = dl_addr_of(p.doc_id) / LINE_BYTES * LINE_BYTES;
            if !self.cached_lines.contains(&line) && !self.pending_lines.contains(&line) {
                if !mai.request_read(line, token) {
                    break; // MAI full
                }
                self.pending_lines.push(line);
                self.dl_misses += 1;
                issued += 1;
            }
        }

        let Some(&p) = input.front() else { return };
        let line = dl_addr_of(p.doc_id) / LINE_BYTES * LINE_BYTES;
        let cached = self.cached_lines.contains(&line);
        if !cached && !self.pending_lines.contains(&line) {
            return; // prefetch could not issue (MAI full): retry
        }
        self.pipe.push_back(SuEntry {
            ready_cycle: cycle + self.latency,
            doc: p.doc_id,
            tf: p.tf,
            line,
            dl_arrived: cached,
        });
        input.pop_front();
        self.scored += 1;
        self.busy_cycles += 1;
    }

    /// Whether nothing is in flight or buffered.
    pub fn is_drained(&self) -> bool {
        self.pipe.is_empty() && self.out.is_empty()
    }

    /// Whether the internal pipeline is empty (outputs may still be
    /// queued).
    pub fn is_pipe_empty(&self) -> bool {
        self.pipe.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Binary Search Unit
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum BsuState {
    Idle,
    Searching { target: DocId, lo: usize, hi: usize, waiting: Option<(usize, u64)> },
    Done(Option<usize>),
}

/// The binary search unit: finds the candidate block of a docID by binary
/// search over the longer list's skip list, caching the most recent
/// traversal path in a small *traversal cache* (Fig. 11) so ascending
/// searches reuse the common prefix without memory traffic.
#[derive(Debug)]
pub struct Bsu {
    skip_base: u64,
    /// LRU of `(node index, cached)` — values come functionally from the
    /// skip array; the cache models which probes avoid memory.
    cache: VecDeque<usize>,
    cache_cap: usize,
    state: BsuState,
    /// Total probes (tree nodes visited).
    pub probes: u64,
    /// Probes served by the traversal cache.
    pub cache_hits: u64,
    /// Cycles doing useful work.
    pub busy_cycles: u64,
}

impl Bsu {
    /// Creates a BSU over a skip array at `skip_base` with a traversal
    /// cache of `cache_cap` entries (the paper uses 32).
    pub fn new(skip_base: u64, cache_cap: usize) -> Self {
        Bsu {
            skip_base,
            cache: VecDeque::new(),
            cache_cap,
            state: BsuState::Idle,
            probes: 0,
            cache_hits: 0,
            busy_cycles: 0,
        }
    }

    /// Whether a search can be started.
    pub fn is_idle(&self) -> bool {
        matches!(self.state, BsuState::Idle)
    }

    /// Begins a candidate-block search for `target` over `num_skips` skip
    /// values.
    ///
    /// # Panics
    ///
    /// Panics if a search is in progress.
    pub fn start(&mut self, target: DocId, num_skips: usize) {
        assert!(self.is_idle(), "BSU busy");
        self.state = BsuState::Searching { target, lo: 0, hi: num_skips, waiting: None };
    }

    /// Records the arrival of a skip-list line.
    pub fn deliver_line(&mut self, line_addr: u64) {
        let arrived_node = match &mut self.state {
            BsuState::Searching { waiting, .. } => match *waiting {
                Some((node, addr)) if addr == line_addr => {
                    *waiting = None;
                    Some(node)
                }
                _ => None,
            },
            _ => None,
        };
        if let Some(node) = arrived_node {
            self.touch_cache(node);
        }
    }

    fn touch_cache(&mut self, node: usize) {
        if let Some(pos) = self.cache.iter().position(|&n| n == node) {
            self.cache.remove(pos);
        }
        self.cache.push_back(node);
        while self.cache.len() > self.cache_cap {
            self.cache.pop_front();
        }
    }

    /// One cycle of search; `skips` provides functional values.
    pub fn tick(&mut self, skips: &[u32], mai: &mut Mai, token: u64) {
        let (target, lo, hi, waiting) = match &self.state {
            BsuState::Searching { target, lo, hi, waiting } => {
                (*target, *lo, *hi, waiting.is_some())
            }
            _ => return,
        };
        if waiting {
            return; // memory read outstanding
        }
        if lo >= hi {
            self.state = BsuState::Done(lo.checked_sub(1));
            return;
        }
        let mid = (lo + hi) / 2;
        self.busy_cycles += 1;
        let cached = self.cache.iter().any(|&n| n == mid);
        if !cached {
            let addr = (self.skip_base + mid as u64 * 4) / LINE_BYTES * LINE_BYTES;
            if mai.request_read(addr, token) {
                self.probes += 1;
                if let BsuState::Searching { waiting, .. } = &mut self.state {
                    *waiting = Some((mid, addr));
                }
            }
            return; // compare happens after arrival
        }
        self.probes += 1;
        self.cache_hits += 1;
        self.touch_cache(mid);
        let (new_lo, new_hi) = if skips[mid] <= target { (mid + 1, hi) } else { (lo, mid) };
        if let BsuState::Searching { lo, hi, .. } = &mut self.state {
            *lo = new_lo;
            *hi = new_hi;
        }
    }

    /// After a probe's line arrives, the comparison proceeds on the next
    /// tick; this helper applies it when the wait has cleared.
    pub fn resolve_after_delivery(&mut self, skips: &[u32]) {
        let back = self.cache.back().copied();
        if let BsuState::Searching { target, lo, hi, waiting } = &mut self.state {
            if waiting.is_none() && *lo < *hi {
                // The just-delivered mid is the back of the cache.
                if let Some(mid) = back {
                    if mid == (*lo + *hi) / 2 {
                        if skips[mid] <= *target {
                            *lo = mid + 1;
                        } else {
                            *hi = mid;
                        }
                    }
                }
            }
        }
    }

    /// Takes the finished search's result: `Some(block)` or `None` when
    /// the target precedes every skip value.
    pub fn take_result(&mut self) -> Option<Option<usize>> {
        if let BsuState::Done(r) = self.state {
            self.state = BsuState::Idle;
            Some(r)
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Write-back
// ---------------------------------------------------------------------------

/// Accumulates results into 64-byte lines and writes them to memory (8-byte
/// `(docID, score)` pairs, 8 per line).
///
/// With an optional on-device top-k filter (the extension the paper leaves
/// to the host, §4.5: "Though IIU offloads scoring from the host CPU, we
/// run the top-k selection process on it"), only the k best results survive
/// to memory — one streaming compare per candidate, write traffic reduced
/// to ⌈k/8⌉ lines at flush.
#[derive(Debug)]
pub struct WriteBack {
    base: u64,
    /// All results, in emission order (functional output of the query).
    pub results: Vec<Scored>,
    in_line: usize,
    lines_written: u64,
    /// On-device top-k: `(k, size-k min-heap keyed by score then docID)`.
    topk: Option<(usize, std::collections::BinaryHeap<std::cmp::Reverse<(Fixed, DocId)>>)>,
    /// Candidates seen (pre-filter), for host-model accounting.
    pub candidates_seen: u64,
}

impl WriteBack {
    /// Results per 64-byte line.
    const PER_LINE: usize = 8;

    /// Creates a write-back unit targeting the result region at `base`.
    pub fn new(base: u64) -> Self {
        WriteBack {
            base,
            results: Vec::new(),
            in_line: 0,
            lines_written: 0,
            topk: None,
            candidates_seen: 0,
        }
    }

    /// Creates a write-back unit with an on-device top-k filter of size
    /// `k` (0 disables the filter).
    pub fn with_device_topk(base: u64, k: usize) -> Self {
        let mut wb = WriteBack::new(base);
        if k > 0 {
            wb.topk = Some((k, std::collections::BinaryHeap::with_capacity(k + 1)));
        }
        wb
    }

    /// Accepts one result; issues a memory write when a line fills (or
    /// streams it through the top-k filter when enabled).
    pub fn push(&mut self, r: Scored, mai: &mut Mai) {
        self.candidates_seen += 1;
        if let Some((k, heap)) = &mut self.topk {
            // Streaming size-k min-heap, strict admission (paper Fig. 13).
            let entry = std::cmp::Reverse((r.1, r.0));
            if heap.len() < *k {
                heap.push(entry);
            } else if let Some(min) = heap.peek() {
                if min.0 .0 < r.1 {
                    heap.pop();
                    heap.push(entry);
                }
            }
            return; // nothing reaches memory until flush
        }
        self.results.push(r);
        self.in_line += 1;
        if self.in_line == Self::PER_LINE {
            mai.request_write(self.base + self.lines_written * LINE_BYTES);
            self.lines_written += 1;
            self.in_line = 0;
        }
    }

    /// Flushes a partial final line (and, with device top-k, spills the
    /// surviving k results).
    pub fn flush(&mut self, mai: &mut Mai) {
        if let Some((_, heap)) = &mut self.topk {
            let mut survivors: Vec<Scored> =
                heap.drain().map(|std::cmp::Reverse((s, d))| (d, s)).collect();
            survivors.sort_unstable_by_key(|&(d, _)| d);
            for r in survivors {
                self.results.push(r);
                self.in_line += 1;
                if self.in_line == Self::PER_LINE {
                    mai.request_write(self.base + self.lines_written * LINE_BYTES);
                    self.lines_written += 1;
                    self.in_line = 0;
                }
            }
        }
        if self.in_line > 0 {
            mai.request_write(self.base + self.lines_written * LINE_BYTES);
            self.lines_written += 1;
            self.in_line = 0;
        }
    }

    /// Lines written so far.
    pub fn lines_written(&self) -> u64 {
        self.lines_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::{DramConfig, MemorySystem};
    use crate::frontend::StreamBuffer;

    fn mai_and_mem() -> (Mai, MemorySystem) {
        (Mai::new(128), MemorySystem::new(DramConfig::ddr4_2400()))
    }

    fn drive(mai: &mut Mai, mem: &mut MemorySystem, cycle: &mut u64) -> Vec<(u64, Vec<u64>)> {
        *cycle += 1;
        mai.tick(*cycle, mem);
        let mut out = Vec::new();
        while let Some(r) = mai.pop_response() {
            out.push(r);
        }
        out
    }

    #[test]
    fn dcu_stream_decodes_one_posting_per_cycle_when_data_ready() {
        let postings: Vec<Posting> = (0..16).map(|i| Posting::new(i * 3, 1)).collect();
        // One line holds the whole block: pair_bits 8, 16 postings = 128 bits.
        let mut streams = vec![StreamBuffer::new(0, 64, vec![1], 4)];
        streams[0].mark_issued();
        streams[0].deliver(0);
        let mut dcu = Dcu::new(32, 4);
        dcu.start_stream(StreamJob {
            stream_idx: 0,
            postings: postings.clone(),
            start_bit: 0,
            pair_bits: 8,
            first_line: 0,
            last_line: 0,
        });
        let (mut mai, _mem) = mai_and_mem();
        // Cycle 1 fetches the line; cycles 2..=17 decode.
        for _ in 0..17 {
            dcu.tick(&mut streams, &mut mai, 0);
        }
        assert_eq!(dcu.out.len(), 16);
        assert!(dcu.is_idle());
        assert_eq!(dcu.postings_decoded, 16);
        assert_eq!(dcu.blocks_done, 1);
        assert_eq!(
            dcu.out.iter().map(|p| p.doc_id).collect::<Vec<_>>(),
            postings.iter().map(|p| p.doc_id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn dcu_stalls_without_data() {
        let mut streams = vec![StreamBuffer::new(0, 64, vec![1], 4)];
        streams[0].mark_issued(); // issued but never delivered
        let mut dcu = Dcu::new(8, 4);
        dcu.start_stream(StreamJob {
            stream_idx: 0,
            postings: vec![Posting::new(1, 1)],
            start_bit: 0,
            pair_bits: 8,
            first_line: 0,
            last_line: 0,
        });
        let (mut mai, _mem) = mai_and_mem();
        for _ in 0..10 {
            dcu.tick(&mut streams, &mut mai, 0);
        }
        assert!(dcu.out.is_empty());
        assert!(!dcu.is_idle());
    }

    #[test]
    fn dcu_backpressure_blocks_decode() {
        let mut streams = vec![StreamBuffer::new(0, 64, vec![1], 4)];
        streams[0].mark_issued();
        streams[0].deliver(0);
        let mut dcu = Dcu::new(2, 4); // tiny output queue
        dcu.start_stream(StreamJob {
            stream_idx: 0,
            postings: (0..8).map(|i| Posting::new(i, 1)).collect(),
            start_bit: 0,
            pair_bits: 8,
            first_line: 0,
            last_line: 0,
        });
        let (mut mai, _mem) = mai_and_mem();
        for _ in 0..20 {
            dcu.tick(&mut streams, &mut mai, 0);
        }
        assert_eq!(dcu.out.len(), 2, "output queue capacity must gate decode");
        let mut drained = dcu.out.len();
        dcu.out.clear();
        for _ in 0..40 {
            dcu.tick(&mut streams, &mut mai, 0);
            drained += dcu.out.len();
            dcu.out.clear();
        }
        assert!(dcu.is_idle());
        assert_eq!(drained, 8);
    }

    #[test]
    fn dcu_fetch_issues_and_decodes() {
        let (mut mai, mut mem) = mai_and_mem();
        let mut dcu = Dcu::new(64, 4);
        dcu.start_fetch(FetchJob {
            postings: (0..32).map(|i| Posting::new(i * 2, 1)).collect(),
            pair_bits: 16,
            base_addr: 1024,
            start_bit: 0,
            lines_total: 1,
        });
        let mut streams: Vec<StreamBuffer> = Vec::new();
        let mut cycle = 0u64;
        for _ in 0..300 {
            dcu.tick(&mut streams, &mut mai, 100);
            for (addr, tags) in drive(&mut mai, &mut mem, &mut cycle) {
                for _t in tags {
                    dcu.deliver_fetch_line(addr);
                }
            }
            if dcu.is_idle() && dcu.out.len() == 32 {
                break;
            }
        }
        assert_eq!(dcu.out.len(), 32);
        assert_eq!(dcu.blocks_done, 1);
    }

    #[test]
    fn su_pipeline_latency_and_throughput() {
        let (mut mai, mut mem) = mai_and_mem();
        let mut su = ScoringUnit::new(Fixed::from_f64(4.0), 18, 64);
        let mut input: VecDeque<Posting> = (0..32).map(|i| Posting::new(i, 2)).collect();
        let dl = |_d: DocId| Fixed::from_f64(1.2);
        let dl_addr = |d: DocId| u64::from(d) * 4;
        let mut cycle = 0u64;
        let mut first_out_cycle = None;
        for _ in 0..400 {
            cycle += 1;
            su.tick(cycle, &mut input, &mut mai, 7, &dl, &dl_addr);
            mai.tick(cycle, &mut mem);
            while let Some((addr, _)) = mai.pop_response() {
                su.deliver_dl_line(addr);
            }
            if first_out_cycle.is_none() && !su.out.is_empty() {
                first_out_cycle = Some(cycle);
            }
            if su.out.len() == 32 {
                break;
            }
        }
        assert_eq!(su.out.len(), 32);
        assert_eq!(su.scored, 32);
        // One dl line covers docIDs 0..16, the next covers 16..32.
        assert_eq!(su.dl_misses, 2);
        let first = first_out_cycle.expect("produced output");
        // Memory latency (~32 cycles) + 18-cycle pipeline.
        assert!(first > 18, "first output at {first} ignores pipeline latency");
        // Scores are the fixed-point BM25 values.
        let expected = term_score_fixed(Fixed::from_f64(4.0), Fixed::from_f64(1.2), 2);
        assert!(su.out.iter().all(|&(_, s)| s == expected));
    }

    #[test]
    fn bsu_search_with_cold_and_warm_cache() {
        // Fig. 11: skips {1, 8, 19, 37, 48, 54, 76}; search 40 then 64.
        let skips = [1u32, 8, 19, 37, 48, 54, 76];
        let (mut mai, mut mem) = mai_and_mem();
        let mut bsu = Bsu::new(4096, 32);
        let mut cycle = 0u64;
        let mut run = |bsu: &mut Bsu, target: u32, mai: &mut Mai, mem: &mut MemorySystem| {
            bsu.start(target, skips.len());
            for _ in 0..2000 {
                bsu.tick(&skips, mai, 1);
                cycle += 1;
                mai.tick(cycle, mem);
                while let Some((addr, _)) = mai.pop_response() {
                    bsu.deliver_line(addr);
                    bsu.resolve_after_delivery(&skips);
                }
                if let Some(r) = bsu.take_result() {
                    return r;
                }
            }
            panic!("BSU did not finish");
        };
        let r40 = run(&mut bsu, 40, &mut mai, &mut mem);
        assert_eq!(r40, Some(3)); // block with skip 37
        let cold_hits = bsu.cache_hits;
        let r64 = run(&mut bsu, 64, &mut mai, &mut mem);
        assert_eq!(r64, Some(5)); // block with skip 54
        assert!(
            bsu.cache_hits > cold_hits,
            "second ascending search must reuse the traversal cache"
        );
        let r0 = run(&mut bsu, 0, &mut mai, &mut mem);
        assert_eq!(r0, None); // precedes every skip
    }

    #[test]
    fn writeback_device_topk_keeps_best_k() {
        let (mut mai, _mem) = mai_and_mem();
        let mut wb = WriteBack::with_device_topk(0, 3);
        for i in 0..100u32 {
            wb.push((i, Fixed::from_raw((i * 37) % 91)), &mut mai);
        }
        assert_eq!(mai.writes_issued, 0, "nothing reaches memory pre-flush");
        wb.flush(&mut mai);
        assert_eq!(wb.results.len(), 3);
        assert_eq!(wb.candidates_seen, 100);
        assert_eq!(mai.writes_issued, 1);
        // The kept scores are the global top 3.
        let mut all: Vec<u32> = (0..100u32).map(|i| (i * 37) % 91).collect();
        all.sort_unstable_by(|a, b| b.cmp(a));
        let mut kept: Vec<u32> = wb.results.iter().map(|&(_, s)| s.raw()).collect();
        kept.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(kept, all[..3].to_vec());
    }

    #[test]
    fn writeback_batches_lines() {
        let (mut mai, _mem) = mai_and_mem();
        let mut wb = WriteBack::new(1 << 20);
        for i in 0..20u32 {
            wb.push((i, Fixed::ONE), &mut mai);
        }
        assert_eq!(wb.lines_written(), 2); // 16 of 20 results flushed
        wb.flush(&mut mai);
        assert_eq!(wb.lines_written(), 3);
        assert_eq!(wb.results.len(), 20);
        assert_eq!(mai.writes_issued, 3);
    }
}
