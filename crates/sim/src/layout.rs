//! Memory layout of the inverted index in the accelerator's address space.
//!
//! The host's `init` call (paper §4.1) loads the index into a non-cacheable
//! region; the simulator gives every structure a line-aligned address range
//! so the timing model sees realistic access streams:
//!
//! * the per-document `dl̄` table read by the scoring units,
//! * per term: the compressed payload, the metadata words and the skip
//!   list,
//! * a result region per query for the write-back units.

use iiu_index::{InvertedIndex, TermId};

use crate::dram::LINE_BYTES;

/// Address ranges of one term's structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TermRegion {
    /// Base of the compressed payload.
    pub payload_base: u64,
    /// Payload size in bytes.
    pub payload_len: u64,
    /// Base of the packed 64-bit metadata words.
    pub meta_base: u64,
    /// Base of the 32-bit skip values.
    pub skip_base: u64,
    /// Number of blocks (metadata words / skip values).
    pub num_blocks: u64,
}

/// Memory map of an index plus a result-output arena.
#[derive(Debug, Clone)]
pub struct MemoryLayout {
    dl_base: u64,
    terms: Vec<TermRegion>,
    result_base: u64,
}

fn align_line(x: u64) -> u64 {
    x.div_ceil(LINE_BYTES) * LINE_BYTES
}

impl MemoryLayout {
    /// Lays out `index` starting at address 0.
    pub fn new(index: &InvertedIndex) -> Self {
        let mut cursor = 0u64;
        let dl_base = cursor;
        cursor = align_line(cursor + index.num_docs() * 4);

        let mut terms = Vec::with_capacity(index.num_terms());
        for id in 0..index.num_terms() as u32 {
            let list = index.encoded_list(id);
            let payload_base = cursor;
            let payload_len = list.payload().len() as u64;
            cursor = align_line(cursor + payload_len);
            let meta_base = cursor;
            cursor = align_line(cursor + list.num_blocks() as u64 * 8);
            let skip_base = cursor;
            cursor = align_line(cursor + list.num_blocks() as u64 * 4);
            terms.push(TermRegion {
                payload_base,
                payload_len,
                meta_base,
                skip_base,
                num_blocks: list.num_blocks() as u64,
            });
        }
        let result_base = align_line(cursor);
        MemoryLayout { dl_base, terms, result_base }
    }

    /// Region of a term's structures.
    ///
    /// # Panics
    ///
    /// Panics if `term` is out of range.
    pub fn term(&self, term: TermId) -> TermRegion {
        self.terms[term as usize]
    }

    /// Address of document `d`'s 4-byte `dl̄` entry.
    pub fn dl_addr(&self, d: u32) -> u64 {
        self.dl_base + u64::from(d) * 4
    }

    /// Base address of the result arena; each query gets a disjoint slice
    /// at runtime.
    pub fn result_base(&self) -> u64 {
        self.result_base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iiu_index::{BuildOptions, IndexBuilder};

    fn layout_for_small_index() -> (InvertedIndex, MemoryLayout) {
        let mut b = IndexBuilder::new(BuildOptions::default());
        b.add_document("alpha beta gamma");
        b.add_document("beta gamma delta");
        b.add_document("gamma delta alpha");
        let idx = b.build();
        let layout = MemoryLayout::new(&idx);
        (idx, layout)
    }

    #[test]
    fn regions_are_line_aligned_and_disjoint() {
        let (idx, layout) = layout_for_small_index();
        let mut prev_end = idx.num_docs() * 4;
        for id in 0..idx.num_terms() as u32 {
            let r = layout.term(id);
            assert_eq!(r.payload_base % LINE_BYTES, 0);
            assert_eq!(r.meta_base % LINE_BYTES, 0);
            assert_eq!(r.skip_base % LINE_BYTES, 0);
            assert!(r.payload_base >= prev_end);
            assert!(r.meta_base >= r.payload_base + r.payload_len);
            assert!(r.skip_base >= r.meta_base + r.num_blocks * 8);
            prev_end = r.skip_base + r.num_blocks * 4;
        }
        assert!(layout.result_base() >= prev_end);
    }

    #[test]
    fn dl_addresses_are_dense() {
        let (_, layout) = layout_for_small_index();
        assert_eq!(layout.dl_addr(0), 0);
        assert_eq!(layout.dl_addr(1), 4);
        assert_eq!(layout.dl_addr(16), 64);
    }
}
