//! Host-CPU side of an IIU query (paper §4.5, Fig. 13, Fig. 17).
//!
//! IIU offloads decompression, set operations and scoring, but the final
//! top-k selection runs on the host: the CPU scans the `(docID, score)`
//! pairs the accelerator wrote to memory through a size-k min-heap. This
//! model prices that pass — the term that comes to dominate single-term
//! query latency under intra-query parallelism (Amdahl's law, Fig. 17).

/// Host-side timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostModel {
    /// CPU frequency in GHz (Table 1: 3.6).
    pub freq_ghz: f64,
    /// Sustained IPC of the top-k scan loop.
    pub ipc: f64,
    /// Instructions per candidate (compare against the heap minimum and
    /// rarely replace: a handful of instructions in the common case).
    pub insts_per_candidate: f64,
    /// Fixed per-query software overhead in ns (command-queue write,
    /// result pointer handling).
    pub dispatch_ns: f64,
}

impl Default for HostModel {
    fn default() -> Self {
        HostModel { freq_ghz: 3.6, ipc: 2.0, insts_per_candidate: 4.0, dispatch_ns: 200.0 }
    }
}

impl HostModel {
    /// Time for the host to run top-k over `candidates` results.
    pub fn topk_ns(&self, candidates: u64) -> f64 {
        candidates as f64 * self.insts_per_candidate / (self.freq_ghz * self.ipc)
    }

    /// End-to-end latency of one IIU query: dispatch + accelerator time +
    /// host top-k.
    pub fn query_latency_ns(&self, iiu_cycles: u64, clock_ghz: f64, candidates: u64) -> f64 {
        self.dispatch_ns + iiu_cycles as f64 / clock_ghz + self.topk_ns(candidates)
    }

    /// Fraction of the end-to-end latency spent in host top-k (the Fig. 17
    /// quantity).
    pub fn topk_fraction(&self, iiu_cycles: u64, clock_ghz: f64, candidates: u64) -> f64 {
        let total = self.query_latency_ns(iiu_cycles, clock_ghz, candidates);
        if total == 0.0 {
            return 0.0;
        }
        self.topk_ns(candidates) / total
    }

    /// Makespan of the host top-k work for a query batch spread over
    /// `host_cores` CPU cores (inter-query throughput runs overlap top-k
    /// with accelerator processing of other queries).
    pub fn batch_topk_ns(&self, candidates_per_query: &[u64], host_cores: usize) -> f64 {
        let total: f64 = candidates_per_query.iter().map(|&c| self.topk_ns(c)).sum();
        total / host_cores.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_is_linear_in_candidates() {
        let h = HostModel::default();
        assert_eq!(h.topk_ns(0), 0.0);
        assert!((h.topk_ns(2_000_000) - 2.0 * h.topk_ns(1_000_000)).abs() < 1e-6);
    }

    #[test]
    fn single_term_latency_dominated_by_topk_at_scale() {
        // Fig. 17's headline: with 8 cores (16 DCUs) the accelerator time
        // shrinks but the host top-k does not.
        let h = HostModel::default();
        let candidates = 1_000_000u64;
        let iiu_cycles = candidates / 16 + 10_000; // ~16 postings/cycle
        let frac = h.topk_fraction(iiu_cycles, 1.0, candidates);
        assert!(frac > 0.5, "top-k fraction {frac} should dominate");
    }

    #[test]
    fn batch_topk_parallelizes_over_host_cores() {
        let h = HostModel::default();
        let cands = vec![100_000u64; 8];
        let one = h.batch_topk_ns(&cands, 1);
        let eight = h.batch_topk_ns(&cands, 8);
        assert!((one / eight - 8.0).abs() < 1e-9);
    }

    #[test]
    fn latency_includes_dispatch_overhead() {
        let h = HostModel::default();
        assert!(h.query_latency_ns(0, 1.0, 0) >= h.dispatch_ns);
    }
}
