//! Cycle-level DRAM timing model (the DRAMSim2 substitute; DESIGN.md §2).
//!
//! Models channels, banks, row buffers and the Table 1 timing parameters
//! (DDR4-2400, 4 channels, 19.2 GB/s each) with FR-FCFS scheduling: row
//! hits are issued ahead of older row misses. An HBM-like preset backs the
//! Fig. 19 scalability study.
//!
//! Internally time advances in *ticks* of 1/3 ns (3 ticks per 1 GHz IIU
//! cycle) so the 3.33 ns data burst of a 64-byte access is exactly 10
//! ticks.

use std::collections::VecDeque;

/// Ticks per IIU cycle (1 ns at the paper's 1 GHz accelerator clock).
pub const TICKS_PER_CYCLE: u64 = 3;

/// Bytes per memory access (one 64-byte burst, the granularity every IIU
/// unit uses).
pub const LINE_BYTES: u64 = 64;

/// DRAM organization and timing, in ticks (1 tick = 1/3 ns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Independent channels.
    pub channels: usize,
    /// Banks per channel.
    pub banks_per_channel: usize,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// Data-bus occupancy of one 64-byte burst.
    pub t_burst: u64,
    /// Activate-to-CAS delay.
    pub t_rcd: u64,
    /// CAS-to-data latency.
    pub t_cas: u64,
    /// Precharge latency.
    pub t_rp: u64,
    /// Minimum row-open time before precharge.
    pub t_ras: u64,
    /// Write recovery time.
    pub t_wr: u64,
    /// Refresh interval (all banks of a channel refresh together).
    pub t_refi: u64,
    /// Refresh cycle time (channel blocked, rows closed).
    pub t_rfc: u64,
    /// Per-channel request queue depth.
    pub queue_depth: usize,
}

impl DramConfig {
    /// The paper's DDR4-2400 system (Table 1): 4 channels, 76.8 GB/s
    /// aggregate, tRCD = tCAS = tRP ≈ 14.16 ns, tRAS = 32 ns, tWR = 15 ns.
    pub fn ddr4_2400() -> Self {
        DramConfig {
            channels: 4,
            banks_per_channel: 16,
            row_bytes: 8192,
            t_burst: 10, // 3.33 ns per 64 B = 19.2 GB/s per channel
            t_rcd: 42,   // 14 ns
            t_cas: 42,
            t_rp: 42,
            t_ras: 96,      // 32 ns
            t_wr: 45,       // 15 ns
            t_refi: 23_400, // 7.8 us
            t_rfc: 1_050,   // 350 ns
            queue_depth: 32,
        }
    }

    /// An HBM-like stack (Fig. 19): many narrow channels for ~4× aggregate
    /// bandwidth at somewhat higher access latency.
    pub fn hbm_like() -> Self {
        DramConfig {
            channels: 16,
            banks_per_channel: 16,
            row_bytes: 2048,
            t_burst: 10, // 16 ch × 19.2 GB/s = 307 GB/s aggregate
            t_rcd: 55,   // "higher latency" than DDR4 (§5.3)
            t_cas: 55,
            t_rp: 55,
            t_ras: 120,
            t_wr: 55,
            t_refi: 11_700, // HBM refreshes per-channel more often
            t_rfc: 780,
            queue_depth: 32,
        }
    }

    /// Peak aggregate bandwidth in bytes per tick.
    pub fn peak_bytes_per_tick(&self) -> f64 {
        self.channels as f64 * LINE_BYTES as f64 / self.t_burst as f64
    }

    /// Peak aggregate bandwidth in GB/s.
    pub fn peak_gb_per_s(&self) -> f64 {
        // 1 tick = 1/3 ns, so bytes/tick × 3 = bytes/ns = GB/s.
        self.peak_bytes_per_tick() * TICKS_PER_CYCLE as f64
    }
}

/// A memory request: one 64-byte line, identified by the caller's tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Line-aligned byte address.
    pub addr: u64,
    /// True for writes (writes complete silently; only reads produce
    /// responses).
    pub is_write: bool,
    /// Caller tag, returned with the response.
    pub tag: u64,
}

/// A completed read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResponse {
    /// Line-aligned byte address.
    pub addr: u64,
    /// The request's tag.
    pub tag: u64,
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    /// Tick when the bank can accept a new column/activate command.
    ready_at: u64,
    /// Tick of the last activate (for tRAS).
    activated_at: u64,
}

#[derive(Debug)]
struct Channel {
    banks: Vec<Bank>,
    queue: VecDeque<MemRequest>,
    /// Tick when the data bus is next free.
    bus_free_at: u64,
    /// Tick of the next all-bank refresh.
    next_refresh: u64,
}

/// The DRAM memory system.
#[derive(Debug)]
pub struct MemorySystem {
    cfg: DramConfig,
    channels: Vec<Channel>,
    /// Completed reads ready for pickup, with their completion ticks.
    completed: VecDeque<(u64, MemResponse)>,
    now: u64,
    /// Statistics.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses.
    pub row_misses: u64,
    /// All-bank refreshes performed.
    pub refreshes: u64,
}

impl MemorySystem {
    /// Creates a memory system.
    pub fn new(cfg: DramConfig) -> Self {
        let channels = (0..cfg.channels)
            .map(|i| Channel {
                banks: vec![
                    Bank { open_row: None, ready_at: 0, activated_at: 0 };
                    cfg.banks_per_channel
                ],
                queue: VecDeque::new(),
                bus_free_at: 0,
                // Stagger refreshes across channels.
                next_refresh: cfg.t_refi * (i as u64 + 1) / cfg.channels as u64,
            })
            .collect();
        MemorySystem {
            cfg,
            channels,
            completed: VecDeque::new(),
            now: 0,
            bytes_read: 0,
            bytes_written: 0,
            row_hits: 0,
            row_misses: 0,
            refreshes: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> DramConfig {
        self.cfg
    }

    /// Current tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    fn map(&self, addr: u64) -> (usize, usize, u64) {
        let line = addr / LINE_BYTES;
        let channel = (line % self.cfg.channels as u64) as usize;
        let upper = line / self.cfg.channels as u64;
        let bank = (upper % self.cfg.banks_per_channel as u64) as usize;
        let row =
            upper / self.cfg.banks_per_channel as u64 / (self.cfg.row_bytes / LINE_BYTES);
        (channel, bank, row)
    }

    /// Tries to enqueue a request; returns false when the channel queue is
    /// full (the caller retries next cycle).
    pub fn try_enqueue(&mut self, req: MemRequest) -> bool {
        let (ch, _, _) = self.map(req.addr);
        let channel = &mut self.channels[ch];
        if channel.queue.len() >= self.cfg.queue_depth {
            return false;
        }
        channel.queue.push_back(req);
        true
    }

    /// Advances the memory system to `tick`, issuing requests FR-FCFS.
    pub fn tick_to(&mut self, tick: u64) {
        while self.now < tick {
            self.now += 1;
            self.issue_cycle();
        }
    }

    fn issue_cycle(&mut self) {
        let cfg = self.cfg;
        for ch in 0..self.channels.len() {
            // All-bank refresh: block the channel for tRFC, close rows.
            if self.now >= self.channels[ch].next_refresh {
                let channel = &mut self.channels[ch];
                channel.next_refresh += cfg.t_refi;
                for bank in &mut channel.banks {
                    bank.open_row = None;
                    bank.ready_at = bank.ready_at.max(self.now + cfg.t_rfc);
                }
                self.refreshes += 1;
            }
            // FR-FCFS: first ready row hit, else oldest issuable request.
            let pick = {
                let channel = &self.channels[ch];
                let mut pick: Option<usize> = None;
                for (i, req) in channel.queue.iter().enumerate() {
                    let (_, bank_idx, row) = self.map(req.addr);
                    let bank = &channel.banks[bank_idx];
                    if bank.ready_at > self.now {
                        continue;
                    }
                    let hit = bank.open_row == Some(row);
                    if hit {
                        pick = Some(i);
                        break; // first ready row hit wins
                    }
                    if pick.is_none() {
                        pick = Some(i);
                    }
                }
                pick
            };
            let Some(i) = pick else { continue };
            let req = self.channels[ch].queue[i];
            let (_, bank_idx, row) = self.map(req.addr);

            // Compute access latency from bank state.
            let (hit, access_latency, extra_bank_busy) = {
                let bank = &self.channels[ch].banks[bank_idx];
                match bank.open_row {
                    Some(r) if r == row => (true, cfg.t_cas, 0),
                    Some(_) => {
                        // Precharge (respecting tRAS) + activate + CAS.
                        let ras_wait =
                            (bank.activated_at + cfg.t_ras).saturating_sub(self.now);
                        (false, ras_wait + cfg.t_rp + cfg.t_rcd + cfg.t_cas, ras_wait)
                    }
                    None => (false, cfg.t_rcd + cfg.t_cas, 0),
                }
            };
            let _ = extra_bank_busy;

            // Data transfer must win the channel bus.
            let data_start = (self.now + access_latency).max(self.channels[ch].bus_free_at);
            let done = data_start + cfg.t_burst;

            // Commit: update bank, bus, stats; remove from queue.
            {
                let channel = &mut self.channels[ch];
                let bank = &mut channel.banks[bank_idx];
                if hit {
                    self.row_hits += 1;
                } else {
                    self.row_misses += 1;
                    bank.activated_at = self.now;
                }
                bank.open_row = Some(row);
                bank.ready_at = if req.is_write { done + cfg.t_wr } else { done };
                channel.bus_free_at = done;
                channel.queue.remove(i);
            }
            if req.is_write {
                self.bytes_written += LINE_BYTES;
            } else {
                self.bytes_read += LINE_BYTES;
                self.completed.push_back((done, MemResponse { addr: req.addr, tag: req.tag }));
            }
        }
    }

    /// Pops a read response completed by the current tick, if any.
    pub fn pop_ready(&mut self) -> Option<MemResponse> {
        // Responses complete out of order across channels; scan for any due.
        let idx = self.completed.iter().position(|&(done, _)| done <= self.now)?;
        Some(self.completed.remove(idx).expect("index valid").1)
    }

    /// Whether any request or response is still in flight.
    pub fn is_idle(&self) -> bool {
        self.completed.is_empty() && self.channels.iter().all(|c| c.queue.is_empty())
    }

    /// Total bytes moved.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Achieved bandwidth utilization over `elapsed_ticks` (0..=1).
    pub fn bandwidth_utilization(&self, elapsed_ticks: u64) -> f64 {
        if elapsed_ticks == 0 {
            return 0.0;
        }
        self.bytes_total() as f64 / (self.cfg.peak_bytes_per_tick() * elapsed_ticks as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(mem: &mut MemorySystem, horizon: u64) -> Vec<(u64, MemResponse)> {
        let mut out = Vec::new();
        for t in 0..horizon {
            mem.tick_to(t);
            while let Some(r) = mem.pop_ready() {
                out.push((mem.now(), r));
            }
        }
        out
    }

    #[test]
    fn peak_bandwidth_matches_table1() {
        let cfg = DramConfig::ddr4_2400();
        assert!((cfg.peak_gb_per_s() - 76.8).abs() < 0.1);
        assert!(DramConfig::hbm_like().peak_gb_per_s() > 2.0 * cfg.peak_gb_per_s());
    }

    #[test]
    fn single_read_latency_is_miss_latency() {
        let mut mem = MemorySystem::new(DramConfig::ddr4_2400());
        assert!(mem.try_enqueue(MemRequest { addr: 0, is_write: false, tag: 1 }));
        let got = drain_all(&mut mem, 200);
        assert_eq!(got.len(), 1);
        // Closed bank: tRCD + tCAS + burst = 42 + 42 + 10 = 94 ticks; the
        // request issues the tick after enqueue.
        assert_eq!(got[0].0, 95);
        assert_eq!(got[0].1.tag, 1);
    }

    #[test]
    fn row_hit_is_faster_than_miss() {
        let mut mem = MemorySystem::new(DramConfig::ddr4_2400());
        // Same row: second access should be a row hit.
        mem.try_enqueue(MemRequest { addr: 0, is_write: false, tag: 1 });
        mem.tick_to(100);
        while mem.pop_ready().is_some() {}
        let t0 = mem.now();
        // Same channel 0, same bank 0, same row 0: line 64 = upper 16 ->
        // bank 16 % 16 = 0, row 16/16/128 = 0.
        mem.try_enqueue(MemRequest { addr: 64 * 64, is_write: false, tag: 2 });
        let mut got = None;
        for t in 100..300 {
            mem.tick_to(t);
            if let Some(r) = mem.pop_ready() {
                got = Some((mem.now(), r));
                break;
            }
        }
        let (t_done, _) = got.expect("second read completes");
        // Row hit: tCAS + burst = 52 ticks after issue.
        assert!(t_done - t0 <= 54, "row hit took {} ticks", t_done - t0);
        assert_eq!(mem.row_hits, 1);
        assert_eq!(mem.row_misses, 1);
    }

    #[test]
    fn sequential_stream_approaches_peak_bandwidth() {
        let cfg = DramConfig::ddr4_2400();
        let mut mem = MemorySystem::new(cfg);
        let mut issued = 0u64;
        let mut received = 0usize;
        let total = 2_000u64;
        let mut t = 0u64;
        while received < total as usize {
            t += 1;
            mem.tick_to(t);
            // Keep all channel queues topped up with a sequential stream.
            while issued < total
                && mem.try_enqueue(MemRequest {
                    addr: issued * LINE_BYTES,
                    is_write: false,
                    tag: issued,
                })
            {
                issued += 1;
            }
            while mem.pop_ready().is_some() {
                received += 1;
            }
            assert!(t < 500_000, "stream stalled");
        }
        let util = mem.bandwidth_utilization(t);
        assert!(util > 0.8, "sequential stream should near peak, got {util:.2}");
    }

    #[test]
    fn writes_count_bytes_but_produce_no_response() {
        let mut mem = MemorySystem::new(DramConfig::ddr4_2400());
        mem.try_enqueue(MemRequest { addr: 128, is_write: true, tag: 9 });
        mem.tick_to(300);
        assert!(mem.pop_ready().is_none());
        assert_eq!(mem.bytes_written, 64);
        assert_eq!(mem.bytes_read, 0);
    }

    #[test]
    fn queue_depth_backpressure() {
        let cfg = DramConfig::ddr4_2400();
        let mut mem = MemorySystem::new(cfg);
        let mut accepted = 0;
        // All to channel 0 (stride = channels * 64).
        for i in 0..100u64 {
            if mem.try_enqueue(MemRequest {
                addr: i * LINE_BYTES * cfg.channels as u64,
                is_write: false,
                tag: i,
            }) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, cfg.queue_depth);
    }

    #[test]
    fn channel_interleave_by_line() {
        let mem = MemorySystem::new(DramConfig::ddr4_2400());
        let (c0, _, _) = mem.map(0);
        let (c1, _, _) = mem.map(64);
        let (c2, _, _) = mem.map(128);
        let (c4, _, _) = mem.map(256);
        assert_eq!(c0, 0);
        assert_eq!(c1, 1);
        assert_eq!(c2, 2);
        assert_eq!(c4, 0);
    }

    #[test]
    fn refresh_blocks_and_closes_rows() {
        let cfg = DramConfig::ddr4_2400();
        let mut mem = MemorySystem::new(cfg);
        // Warm a row on channel 0 / bank 0 (line 0).
        mem.try_enqueue(MemRequest { addr: 0, is_write: false, tag: 0 });
        mem.tick_to(200);
        while mem.pop_ready().is_some() {}
        assert_eq!(mem.row_misses, 1);
        // Run past every channel's refresh point.
        mem.tick_to(cfg.t_refi + cfg.t_rfc + 10);
        assert!(mem.refreshes >= cfg.channels as u64, "every channel refreshes");
        // The previously open row is closed: the next access misses again.
        mem.try_enqueue(MemRequest { addr: 0, is_write: false, tag: 1 });
        mem.tick_to(cfg.t_refi + cfg.t_rfc + 400);
        assert!(mem.pop_ready().is_some());
        assert_eq!(mem.row_misses, 2, "refresh must close the row buffer");
    }

    #[test]
    fn is_idle_tracks_inflight_work() {
        let mut mem = MemorySystem::new(DramConfig::ddr4_2400());
        assert!(mem.is_idle());
        mem.try_enqueue(MemRequest { addr: 0, is_write: false, tag: 0 });
        assert!(!mem.is_idle());
        mem.tick_to(200);
        while mem.pop_ready().is_some() {}
        assert!(mem.is_idle());
    }
}
