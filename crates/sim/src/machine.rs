//! The whole accelerator: query scheduler, (Block Reader, Block Scheduler)
//! pairs, IIU Cores, the reconfigurable interconnect between them, and the
//! shared MAI/DRAM path (paper §4, Figs. 6, 7, 12).
//!
//! Two interconnect configurations are modeled directly (Fig. 12):
//! [`IiuMachine::run_query`] allocates one BR/B-SCH pair and *n* cores to a
//! single query (intra-query parallelism, minimum latency);
//! [`IiuMachine::run_batch`] allocates *n* independent pair+core units that
//! drain a query backlog (inter-query parallelism, maximum throughput).
//! Hybrid configurations compose the two by splitting the unit count.

use std::collections::VecDeque;

use iiu_index::block::EncodedList;
use iiu_index::{DocId, Fixed, InvertedIndex, Posting, TermId};

use crate::core::{Bsu, Dcu, FetchJob, ScoringUnit, StreamJob, WriteBack};
use crate::dram::{DramConfig, MemorySystem, LINE_BYTES, TICKS_PER_CYCLE};
use crate::error::{
    CoreSnapshot, ExecSnapshot, SchedulerSnapshot, SimError, StallSnapshot, StreamSnapshot,
};
use crate::frontend::{payload_consumers, BlockScheduler, StreamBuffer};
use crate::layout::MemoryLayout;
use crate::mai::Mai;

/// Cycles without any forward progress before the watchdog declares a
/// stall (independent of the absolute [`SimConfig::max_cycles`] budget).
const NO_PROGRESS_WINDOW: u64 = 1_000_000;

/// Accelerator configuration (defaults follow Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Block Reader / Block Scheduler pairs.
    pub n_pairs: usize,
    /// IIU Cores.
    pub n_cores: usize,
    /// Stream-buffer window per BR stream, in 64-byte entries.
    pub br_window: usize,
    /// B-SCH metadata/skip stream window, in lines.
    pub bsch_window: usize,
    /// Inter-stage queue capacity.
    pub queue_cap: usize,
    /// Scoring-unit pipeline depth (paper: 18 cycles).
    pub su_latency: u64,
    /// BSU traversal-cache entries (paper: 32).
    pub bsu_cache_entries: usize,
    /// Outstanding lines per direct block fetch (intersection DCU1).
    pub dcu_fetch_outstanding: usize,
    /// MAI table entries (paper: 128).
    pub mai_entries: usize,
    /// On-device top-k filter size (0 = off, the paper's configuration:
    /// top-k runs on the host). When set, each core's write-back unit
    /// keeps only its k best results, shrinking both write traffic and the
    /// host's top-k pass to `cores × k` candidates.
    pub device_topk: usize,
    /// DRAM configuration.
    pub dram: DramConfig,
    /// Accelerator clock in GHz (paper: 1.0; cycles are nanoseconds).
    pub clock_ghz: f64,
    /// Absolute cycle budget per run. `None` derives a generous budget
    /// from the posting-list sizes involved; the watchdog additionally
    /// aborts any run that makes no forward progress for
    /// 1,000,000 consecutive cycles. When either limit trips, the run
    /// methods return [`SimError::Stalled`] with a per-unit snapshot.
    pub max_cycles: Option<u64>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            n_pairs: 8,
            n_cores: 8,
            br_window: 64,
            bsch_window: 4,
            queue_cap: 16,
            su_latency: 18,
            bsu_cache_entries: 32,
            dcu_fetch_outstanding: 8,
            mai_entries: 128,
            device_topk: 0,
            dram: DramConfig::ddr4_2400(),
            clock_ghz: 1.0,
            max_cycles: None,
        }
    }
}

/// A query in accelerator terms (terms already resolved to ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimQuery {
    /// Decompress and score one term's full posting list.
    Single(TermId),
    /// SvS intersection of two lists.
    Intersect(TermId, TermId),
    /// 2-way merge union of two lists.
    Union(TermId, TermId),
}

/// Aggregated unit statistics for one query execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Postings decompressed by all DCUs.
    pub postings_decoded: u64,
    /// Blocks decoded via the Block Reader stream path.
    pub blocks_decoded: u64,
    /// Candidate L1 blocks fetched by DCU1s (intersection).
    pub l1_blocks_fetched: u64,
    /// L1 blocks never touched (skipped by membership testing).
    pub l1_blocks_skipped: u64,
    /// BSU probes.
    pub bsu_probes: u64,
    /// BSU traversal-cache hits.
    pub bsu_cache_hits: u64,
    /// Scoring-unit dl-line misses (memory reads).
    pub dl_misses: u64,
    /// Documents scored.
    pub docs_scored: u64,
    /// DCU busy cycles (across units).
    pub dcu_busy: u64,
    /// SU input-accept cycles (across units).
    pub su_busy: u64,
    /// Result postings written back (post device-top-k when enabled).
    pub candidates: u64,
    /// Candidates produced before any on-device top-k filtering.
    pub candidates_seen: u64,
}

/// Memory-system statistics for a run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MemStats {
    /// Bytes read from DRAM.
    pub bytes_read: u64,
    /// Bytes written to DRAM.
    pub bytes_written: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses.
    pub row_misses: u64,
    /// Peak MAI occupancy.
    pub peak_mai: usize,
    /// All-bank DRAM refreshes during the run.
    pub refreshes: u64,
    /// Achieved / peak DRAM bandwidth over the run (0..=1).
    pub bandwidth_utilization: f64,
}

/// Result of one query on the accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRun {
    /// `(docID, score)` results sorted by docID (what the write-back units
    /// leave in memory for the host's top-k pass).
    pub results: Vec<(DocId, Fixed)>,
    /// IIU cycles from dispatch to completion (at 1 GHz: nanoseconds).
    pub cycles: u64,
    /// Unit statistics.
    pub stats: ExecStats,
    /// Memory statistics (whole-machine; meaningful for single-query runs).
    pub mem: MemStats,
}

/// Result of a batched (inter-query) run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRun {
    /// Total cycles from first dispatch to full drain.
    pub cycles: u64,
    /// Per-query results and stats, in input order.
    pub queries: Vec<QueryRun>,
    /// Whole-run memory statistics.
    pub mem: MemStats,
}

/// Result of a hybrid run (Fig. 12c): one latency-critical query with a
/// dedicated multi-core allocation, sharing the machine with a throughput
/// backlog.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridRun {
    /// The latency-critical query's run (its `cycles` include contention
    /// from the co-running backlog).
    pub latency_query: QueryRun,
    /// The backlog's runs, in input order.
    pub batch: Vec<QueryRun>,
    /// Cycles until the backlog fully drained.
    pub batch_cycles: u64,
    /// Whole-run memory statistics.
    pub mem: MemStats,
}

// ---------------------------------------------------------------------------
// Token encoding: exec(16b) | kind(8b) | unit(8b) | sub(8b) | payload(24b)
// ---------------------------------------------------------------------------

const KIND_BR: u64 = 0;
const KIND_META: u64 = 1;
const KIND_SKIP: u64 = 2;
const KIND_DCU_FETCH: u64 = 3;
const KIND_SU_DL: u64 = 4;
const KIND_BSU: u64 = 5;

fn token(exec: usize, kind: u64, unit: usize, sub: usize) -> u64 {
    (exec as u64) << 48 | kind << 40 | (unit as u64) << 32 | (sub as u64) << 24
}

fn token_exec(t: u64) -> usize {
    (t >> 48) as usize
}

fn token_kind(t: u64) -> u64 {
    (t >> 40) & 0xff
}

fn token_unit(t: u64) -> usize {
    ((t >> 32) & 0xff) as usize
}

fn token_sub(t: u64) -> usize {
    ((t >> 24) & 0xff) as usize
}

// ---------------------------------------------------------------------------
// Per-core instance
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Single,
    Intersect,
    Union,
}

#[derive(Debug)]
struct CoreInstance {
    dcu: [Dcu; 2],
    su: [ScoringUnit; 2],
    bsu: Bsu,
    wb: WriteBack,
    /// Matched postings awaiting SU0 (intersection).
    match_q0: VecDeque<Posting>,
    /// Matched postings awaiting SU1 (intersection).
    match_q1: VecDeque<Posting>,
    /// Currently loaded L1 candidate block (intersection).
    cur_block: Option<usize>,
    /// A BSU search is outstanding.
    bsu_pending: bool,
    l1_blocks_fetched: u64,
}

// ---------------------------------------------------------------------------
// Query execution
// ---------------------------------------------------------------------------

struct QueryExec<'a> {
    exec_id: usize,
    role: Role,
    index: &'a InvertedIndex,
    /// Driving list (L0; the shorter one for intersection).
    l0: TermId,
    /// Second list (intersection/union).
    l1: Option<TermId>,
    /// Payload streams: 0 = L0; 1 = L1 (union only).
    streams: Vec<StreamBuffer>,
    /// Block schedulers: 0 = L0; 1 = L1 (union only).
    bschs: Vec<BlockScheduler>,
    cores: Vec<CoreInstance>,
    queue_cap: usize,
    start_cycle: u64,
    flushed: bool,
    done_cycle: Option<u64>,
}

impl<'a> QueryExec<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        exec_id: usize,
        query: SimQuery,
        index: &'a InvertedIndex,
        layout: &MemoryLayout,
        cfg: &SimConfig,
        n_cores: usize,
        result_base: u64,
        start_cycle: u64,
    ) -> Self {
        let (role, l0, l1) = match query {
            SimQuery::Single(t) => (Role::Single, t, None),
            SimQuery::Intersect(a, b) => {
                // SvS: the shorter list drives.
                let (s, l) = if index.encoded_list(a).num_postings()
                    <= index.encoded_list(b).num_postings()
                {
                    (a, b)
                } else {
                    (b, a)
                };
                (Role::Intersect, s, Some(l))
            }
            SimQuery::Union(a, b) => (Role::Union, a, Some(b)),
        };

        let mk_stream = |term: TermId| {
            let region = layout.term(term);
            let list = index.encoded_list(term);
            StreamBuffer::new(
                region.payload_base,
                region.payload_len,
                payload_consumers(list.metas(), region.payload_len),
                cfg.br_window,
            )
        };
        let mk_bsch = |term: TermId| {
            let region = layout.term(term);
            BlockScheduler::new(
                region.meta_base,
                region.skip_base,
                region.num_blocks as usize,
                cfg.bsch_window,
            )
        };

        let mut streams = vec![mk_stream(l0)];
        let mut bschs = vec![mk_bsch(l0)];
        if role == Role::Union {
            let l1 = l1.expect("union has two lists");
            streams.push(mk_stream(l1));
            bschs.push(mk_bsch(l1));
        }

        // Union uses exactly one core: the merge unit is the serial
        // bottleneck and the paper observes no scaling with extra cores.
        let cores_used = if role == Role::Union { 1 } else { n_cores.max(1) };
        let l1_skip_base = l1.map(|t| layout.term(t).skip_base).unwrap_or(0);
        let idf0 = index.term_info(l0).idf_bar;
        let idf1 = l1.map(|t| index.term_info(t).idf_bar).unwrap_or(Fixed::ZERO);
        let cores = (0..cores_used)
            .map(|ci| CoreInstance {
                dcu: [
                    Dcu::new(cfg.queue_cap, cfg.dcu_fetch_outstanding),
                    Dcu::new(cfg.queue_cap, cfg.dcu_fetch_outstanding),
                ],
                su: [
                    ScoringUnit::new(idf0, cfg.su_latency, cfg.queue_cap),
                    ScoringUnit::new(
                        if role == Role::Single { idf0 } else { idf1 },
                        cfg.su_latency,
                        cfg.queue_cap,
                    ),
                ],
                bsu: Bsu::new(l1_skip_base, cfg.bsu_cache_entries),
                // Disjoint result sub-regions per core (1 MiB apart).
                wb: WriteBack::with_device_topk(
                    result_base + ((ci as u64) << 20),
                    cfg.device_topk,
                ),
                match_q0: VecDeque::new(),
                match_q1: VecDeque::new(),
                cur_block: None,
                bsu_pending: false,
                l1_blocks_fetched: 0,
            })
            .collect();

        QueryExec {
            exec_id,
            role,
            index,
            l0,
            l1,
            streams,
            bschs,
            cores,
            queue_cap: cfg.queue_cap,
            start_cycle,
            flushed: false,
            done_cycle: None,
        }
    }

    fn list(&self, term: TermId) -> &'a EncodedList {
        self.index.encoded_list(term)
    }

    /// Builds a stream-decode job for block `b` of `term` (fed through
    /// `stream_idx`). `postings` is the target DCU's recycled buffer —
    /// the functional decode lands there without allocating.
    fn stream_job(
        &self,
        term: TermId,
        stream_idx: usize,
        b: usize,
        mut postings: Vec<Posting>,
    ) -> StreamJob {
        let list = self.list(term);
        let meta = list.metas()[b];
        let bytes = meta.payload_bytes();
        let (first_line, last_line) = if bytes == 0 {
            (1, 0) // empty range: nothing to fetch
        } else {
            (
                (meta.offset / LINE_BYTES) as usize,
                ((meta.offset + bytes - 1) / LINE_BYTES) as usize,
            )
        };
        postings.clear();
        list.decode_block_into(b, &mut postings);
        StreamJob {
            stream_idx,
            postings,
            start_bit: meta.offset * 8,
            pair_bits: u64::from(meta.pair_bits()),
            first_line,
            last_line,
        }
    }

    /// Builds a direct-fetch job for candidate block `b` of L1
    /// (intersection), decoding into the recycled `postings` buffer.
    fn fetch_job(
        &self,
        l1_payload_base: u64,
        b: usize,
        mut postings: Vec<Posting>,
    ) -> FetchJob {
        let list = self.list(self.l1.expect("intersection has L1"));
        let meta = list.metas()[b];
        let bytes = meta.payload_bytes();
        let abs_start = l1_payload_base + meta.offset;
        let base_addr = abs_start / LINE_BYTES * LINE_BYTES;
        let lines_total = if bytes == 0 {
            0
        } else {
            ((abs_start + bytes - 1) / LINE_BYTES - base_addr / LINE_BYTES + 1) as usize
        };
        postings.clear();
        list.decode_block_into(b, &mut postings);
        FetchJob {
            postings,
            pair_bits: u64::from(meta.pair_bits()),
            base_addr,
            start_bit: (abs_start - base_addr) * 8,
            lines_total,
        }
    }

    fn deliver(&mut self, tok: u64, addr: u64) {
        match token_kind(tok) {
            KIND_BR => self.streams[token_unit(tok)].deliver(addr),
            KIND_META => self.bschs[token_unit(tok)].meta_stream.deliver(addr),
            KIND_SKIP => self.bschs[token_unit(tok)].skip_stream.deliver(addr),
            KIND_DCU_FETCH => self.cores[token_unit(tok)].dcu[1].deliver_fetch_line(addr),
            KIND_SU_DL => self.cores[token_unit(tok)].su[token_sub(tok)].deliver_dl_line(addr),
            KIND_BSU => {
                let l1 = self.l1.expect("BSU only used for intersection");
                let skips = self.index.encoded_list(l1).skips();
                let core = &mut self.cores[token_unit(tok)];
                core.bsu.deliver_line(addr);
                core.bsu.resolve_after_delivery(skips);
            }
            k => unreachable!("unknown token kind {k}"),
        }
    }

    fn is_done(&self) -> bool {
        self.done_cycle.is_some()
    }

    /// The query this execution serves (an intersection may report its
    /// operands swapped: the shorter list drives).
    fn query(&self) -> SimQuery {
        match (self.role, self.l1) {
            (Role::Single, _) => SimQuery::Single(self.l0),
            (Role::Intersect, Some(l1)) => SimQuery::Intersect(self.l0, l1),
            (Role::Union, Some(l1)) => SimQuery::Union(self.l0, l1),
            // l1 is always present for two-list roles; fall back rather
            // than panic inside diagnostics code.
            _ => SimQuery::Single(self.l0),
        }
    }

    /// Structured per-unit state dump for the watchdog's stall report.
    fn stall_snapshot(&self) -> ExecSnapshot {
        ExecSnapshot {
            query: self.query(),
            schedulers: self
                .bschs
                .iter()
                .map(|b| SchedulerSnapshot {
                    blocks_ready: b.blocks_ready(),
                    next_block: b.next_block,
                    all_dispatched: b.all_dispatched(),
                })
                .collect(),
            streams: self
                .streams
                .iter()
                .map(|st| StreamSnapshot {
                    done: st.is_done(),
                    total_lines: st.total_lines(),
                    stall_cycles: st.stall_cycles,
                })
                .collect(),
            cores: self
                .cores
                .iter()
                .map(|c| CoreSnapshot {
                    dcu_idle: [c.dcu[0].is_idle(), c.dcu[1].is_idle()],
                    dcu_out_depth: [c.dcu[0].out.len(), c.dcu[1].out.len()],
                    dcu_postings_decoded: [
                        c.dcu[0].postings_decoded,
                        c.dcu[1].postings_decoded,
                    ],
                    dcu1_pending_job: c.dcu[1].has_pending_job(),
                    su_drained: [c.su[0].is_drained(), c.su[1].is_drained()],
                    su_out_depth: [c.su[0].out.len(), c.su[1].out.len()],
                    match_queue_depth: [c.match_q0.len(), c.match_q1.len()],
                    bsu_idle: c.bsu.is_idle(),
                    bsu_pending: c.bsu_pending,
                    bsu_probes: c.bsu.probes,
                    cur_block: c.cur_block,
                })
                .collect(),
        }
    }

    /// One cycle for the whole query execution.
    fn tick(&mut self, cycle: u64, mai: &mut Mai, layout: &MemoryLayout, dl_bars: &[Fixed]) {
        if self.is_done() {
            return;
        }
        let exec = self.exec_id;
        let l0 = self.l0;
        let l1 = self.l1;
        let role = self.role;
        let l1_payload_base = l1.map(|t| layout.term(t).payload_base).unwrap_or(0);
        let l1_skips: &[u32] = match (role, l1) {
            (Role::Intersect, Some(t)) => self.index.encoded_list(t).skips(),
            _ => &[],
        };
        let dl_of = |d: DocId| dl_bars[d as usize];
        let dl_base = layout.dl_addr(0);
        let dl_addr_of = |d: DocId| dl_base + u64::from(d) * 4;

        // --- Cores (downstream stages first) -------------------------------
        let queue_cap = self.queue_cap;
        let mut pending_fetches: Vec<(usize, usize)> = Vec::new();
        let bsch0_done = self.bschs[0].all_dispatched();
        let bsch1_done = self.bschs.get(1).map(|b| b.all_dispatched()).unwrap_or(true);
        for (ci, core) in self.cores.iter_mut().enumerate() {
            match role {
                Role::Single => {
                    for s in 0..2 {
                        if let Some(r) = core.su[s].out.pop_front() {
                            core.wb.push(r, mai);
                        }
                    }
                    for s in 0..2 {
                        let (dcus, sus) = (&mut core.dcu, &mut core.su);
                        sus[s].tick(
                            cycle,
                            &mut dcus[s].out,
                            mai,
                            token(exec, KIND_SU_DL, ci, s),
                            &dl_of,
                            &dl_addr_of,
                        );
                    }
                }
                Role::Intersect => {
                    // Adder: combine paired SU outputs.
                    if !core.su[0].out.is_empty() && !core.su[1].out.is_empty() {
                        let (d0, s0) = core.su[0].out.pop_front().expect("checked");
                        let (d1, s1) = core.su[1].out.pop_front().expect("checked");
                        debug_assert_eq!(d0, d1, "intersection SUs must stay paired");
                        core.wb.push((d0, s0.saturating_add(s1)), mai);
                    }
                    core.su[0].tick(
                        cycle,
                        &mut core.match_q0,
                        mai,
                        token(exec, KIND_SU_DL, ci, 0),
                        &dl_of,
                        &dl_addr_of,
                    );
                    core.su[1].tick(
                        cycle,
                        &mut core.match_q1,
                        mai,
                        token(exec, KIND_SU_DL, ci, 1),
                        &dl_of,
                        &dl_addr_of,
                    );
                }
                Role::Union => {
                    let no_more0 = bsch0_done
                        && core.dcu[0].is_idle()
                        && core.dcu[0].out.is_empty()
                        && core.su[0].is_pipe_empty();
                    let no_more1 = bsch1_done
                        && core.dcu[1].is_idle()
                        && core.dcu[1].out.is_empty()
                        && core.su[1].is_pipe_empty();
                    let h0 = core.su[0].out.front().copied();
                    let h1 = core.su[1].out.front().copied();
                    match (h0, h1) {
                        (Some((da, sa)), Some((db, sb))) => {
                            if da < db {
                                core.wb.push((da, sa), mai);
                                core.su[0].out.pop_front();
                            } else if db < da {
                                core.wb.push((db, sb), mai);
                                core.su[1].out.pop_front();
                            } else {
                                core.wb.push((da, sa.saturating_add(sb)), mai);
                                core.su[0].out.pop_front();
                                core.su[1].out.pop_front();
                            }
                        }
                        (Some((da, sa)), None) if no_more1 => {
                            core.wb.push((da, sa), mai);
                            core.su[0].out.pop_front();
                        }
                        (None, Some((db, sb))) if no_more0 => {
                            core.wb.push((db, sb), mai);
                            core.su[1].out.pop_front();
                        }
                        _ => {}
                    }
                    for s in 0..2 {
                        let (dcus, sus) = (&mut core.dcu, &mut core.su);
                        sus[s].tick(
                            cycle,
                            &mut dcus[s].out,
                            mai,
                            token(exec, KIND_SU_DL, ci, s),
                            &dl_of,
                            &dl_addr_of,
                        );
                    }
                }
            }

            if role == Role::Intersect {
                intersect_step(core, l1_skips, queue_cap);
                if core.dcu[1].wants_job() {
                    if let Some(b) = core.cur_block {
                        pending_fetches.push((ci, b));
                    }
                }
                // Once this core's share of L0 is exhausted, the remains of
                // the last candidate block are flushed.
                if bsch0_done
                    && core.dcu[0].is_idle()
                    && core.dcu[0].out.is_empty()
                    && !core.bsu_pending
                    && !(core.dcu[1].is_idle() && core.dcu[1].out.is_empty())
                {
                    core.dcu[1].abort();
                }
            }

            core.dcu[0].tick(&mut self.streams, mai, token(exec, KIND_DCU_FETCH, ci, 0));
            core.dcu[1].tick(&mut self.streams, mai, token(exec, KIND_DCU_FETCH, ci, 0));

            if role == Role::Intersect {
                core.bsu.tick(l1_skips, mai, token(exec, KIND_BSU, ci, 0));
            }
        }

        // Materialize deferred candidate-block loads (needs &self access).
        for (ci, b) in pending_fetches {
            let spare = self.cores[ci].dcu[1].take_spare();
            let job = self.fetch_job(l1_payload_base, b, spare);
            self.cores[ci].dcu[1].start_fetch(job);
            self.cores[ci].l1_blocks_fetched += 1;
        }

        // --- Block schedulers: absorb + dispatch ---------------------------
        for bsch in &mut self.bschs {
            bsch.absorb();
        }
        match role {
            Role::Single => {
                if let Some(b) = self.bschs[0].pop_ready_block() {
                    if let Some((ci, di)) = self.find_idle_dcu(2) {
                        let spare = self.cores[ci].dcu[di].take_spare();
                        let job = self.stream_job(l0, 0, b, spare);
                        self.cores[ci].dcu[di].start_stream(job);
                    } else {
                        self.bschs[0].next_block -= 1; // no free DCU: retry
                    }
                }
            }
            Role::Intersect => {
                if let Some(b) = self.bschs[0].pop_ready_block() {
                    if let Some((ci, _)) = self.find_idle_dcu(1) {
                        let spare = self.cores[ci].dcu[0].take_spare();
                        let job = self.stream_job(l0, 0, b, spare);
                        self.cores[ci].dcu[0].start_stream(job);
                    } else {
                        self.bschs[0].next_block -= 1;
                    }
                }
            }
            Role::Union => {
                for (si, di) in [(0usize, 0usize), (1, 1)] {
                    if let Some(b) = self.bschs[si].pop_ready_block() {
                        if self.cores[0].dcu[di].is_idle() {
                            let term = if si == 0 { l0 } else { l1.expect("union L1") };
                            let spare = self.cores[0].dcu[di].take_spare();
                            let job = self.stream_job(term, si, b, spare);
                            self.cores[0].dcu[di].start_stream(job);
                        } else {
                            self.bschs[si].next_block -= 1;
                        }
                    }
                }
            }
        }

        // --- Memory issue: BR streams + B-SCH streams ----------------------
        for (si, stream) in self.streams.iter_mut().enumerate() {
            if let Some(addr) = stream.want_issue() {
                if mai.request_read(addr, token(exec, KIND_BR, si, 0)) {
                    stream.mark_issued();
                }
            }
        }
        for (si, bsch) in self.bschs.iter_mut().enumerate() {
            if let Some(addr) = bsch.meta_stream.want_issue() {
                if mai.request_read(addr, token(exec, KIND_META, si, 0)) {
                    bsch.meta_stream.mark_issued();
                }
            }
            if let Some(addr) = bsch.skip_stream.want_issue() {
                if mai.request_read(addr, token(exec, KIND_SKIP, si, 0)) {
                    bsch.skip_stream.mark_issued();
                }
            }
        }

        // --- Completion -----------------------------------------------------
        if self.all_drained() {
            if !self.flushed {
                for core in &mut self.cores {
                    core.wb.flush(mai);
                }
                self.flushed = true;
            }
            self.done_cycle = Some(cycle);
        }
    }

    /// First idle DCU, scanning `dcus_per_core` units per core (1 = DCU0
    /// only).
    fn find_idle_dcu(&self, dcus_per_core: usize) -> Option<(usize, usize)> {
        for (ci, core) in self.cores.iter().enumerate() {
            for di in 0..dcus_per_core {
                if core.dcu[di].is_idle() && !core.dcu[di].has_pending_job() {
                    return Some((ci, di));
                }
            }
        }
        None
    }

    fn all_drained(&self) -> bool {
        let bschs_done = self.bschs.iter().all(|b| b.all_dispatched());
        let cores_done = self.cores.iter().all(|c| {
            c.dcu.iter().all(|d| d.is_idle() && d.out.is_empty() && !d.has_pending_job())
                && c.su.iter().all(|s| s.is_drained())
                && c.match_q0.is_empty()
                && c.match_q1.is_empty()
                && c.bsu.is_idle()
                && !c.bsu_pending
        });
        bschs_done && cores_done
    }

    fn collect(&mut self, end_cycle: u64, mem_stats: MemStats) -> QueryRun {
        let mut results: Vec<(DocId, Fixed)> = Vec::new();
        let mut stats = ExecStats::default();
        for core in &self.cores {
            results.extend(core.wb.results.iter().copied());
            for d in &core.dcu {
                stats.postings_decoded += d.postings_decoded;
                stats.dcu_busy += d.busy_cycles;
            }
            stats.blocks_decoded += match self.role {
                Role::Intersect => core.dcu[0].blocks_done,
                _ => core.dcu[0].blocks_done + core.dcu[1].blocks_done,
            };
            stats.l1_blocks_fetched += core.l1_blocks_fetched;
            for s in &core.su {
                stats.docs_scored += s.scored;
                stats.dl_misses += s.dl_misses;
                stats.su_busy += s.busy_cycles;
            }
            stats.bsu_probes += core.bsu.probes;
            stats.bsu_cache_hits += core.bsu.cache_hits;
            stats.candidates_seen += core.wb.candidates_seen;
        }
        if self.role == Role::Intersect {
            let total = self.list(self.l1.expect("intersection")).num_blocks() as u64;
            stats.l1_blocks_skipped = total.saturating_sub(stats.l1_blocks_fetched);
        }
        results.sort_unstable_by_key(|&(d, _)| d);
        stats.candidates = results.len() as u64;
        QueryRun {
            results,
            cycles: end_cycle.saturating_sub(self.start_cycle),
            stats,
            mem: mem_stats,
        }
    }
}

/// One cycle of the intersection control logic (paper §4.2, Fig. 7b).
///
/// Compares the heads of the two DCU streams, pops the smaller, emits
/// matches to the SU queues, and launches BSU searches / DCU1 block loads
/// when the driving docID leaves the current candidate block.
fn intersect_step(core: &mut CoreInstance, skips1: &[u32], queue_cap: usize) {
    if core.match_q0.len() >= queue_cap || core.match_q1.len() >= queue_cap {
        return;
    }
    if core.bsu_pending {
        if let Some(res) = core.bsu.take_result() {
            core.bsu_pending = false;
            match res {
                None => {
                    // Target precedes every L1 block: no match possible.
                    core.dcu[0].out.pop_front();
                }
                Some(b) => {
                    if core.cur_block != Some(b) {
                        core.dcu[1].abort();
                        core.dcu[1].set_pending_job();
                        core.cur_block = Some(b);
                    }
                }
            }
        }
        return;
    }
    let Some(&h0) = core.dcu[0].out.front() else {
        return;
    };
    let d = h0.doc_id;
    let need_candidate = match core.cur_block {
        None => true,
        Some(b) => b + 1 < skips1.len() && skips1[b + 1] <= d,
    };
    if need_candidate {
        if core.bsu.is_idle() {
            core.bsu.start(d, skips1.len());
            core.bsu_pending = true;
        }
        return;
    }
    if core.dcu[1].has_pending_job() {
        return; // candidate block load not yet materialized
    }
    match core.dcu[1].out.front().copied() {
        None => {
            if core.dcu[1].is_idle() {
                // Candidate block exhausted without a match for d.
                core.dcu[0].out.pop_front();
            }
        }
        Some(p1) => {
            if p1.doc_id < d {
                core.dcu[1].out.pop_front();
            } else if p1.doc_id > d {
                core.dcu[0].out.pop_front();
            } else {
                core.match_q0.push_back(Posting::new(d, h0.tf));
                core.match_q1.push_back(Posting::new(d, p1.tf));
                core.dcu[0].out.pop_front();
                core.dcu[1].out.pop_front();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Machine
// ---------------------------------------------------------------------------

/// The IIU accelerator simulator over one index.
#[derive(Debug)]
pub struct IiuMachine<'a> {
    index: &'a InvertedIndex,
    layout: MemoryLayout,
    cfg: SimConfig,
}

impl<'a> IiuMachine<'a> {
    /// Creates a machine with the given configuration.
    pub fn new(index: &'a InvertedIndex, cfg: SimConfig) -> Self {
        IiuMachine { index, layout: MemoryLayout::new(index), cfg }
    }

    /// The machine's configuration.
    pub fn config(&self) -> SimConfig {
        self.cfg
    }

    /// The index this machine serves.
    pub fn index(&self) -> &'a InvertedIndex {
        self.index
    }

    /// Verifies every term an admitted query touches. Mmap-backed lists
    /// defer their record CRC to first touch; checking here surfaces
    /// corruption as a typed error at admission instead of a panic inside
    /// a DCU tick.
    fn admit(&self, query: &SimQuery) -> Result<(), SimError> {
        let check = |t: TermId| {
            self.index.verify_term(t).map_err(|source| SimError::Index { source })
        };
        match *query {
            SimQuery::Single(t) => check(t),
            SimQuery::Intersect(a, b) | SimQuery::Union(a, b) => {
                check(a)?;
                check(b)
            }
        }
    }

    /// The memory layout in use.
    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// Absolute cycle budget for a run: [`SimConfig::max_cycles`] when
    /// set, otherwise derived generously from the posting-list sizes the
    /// queries touch.
    fn cycle_budget(&self, queries: &[SimQuery]) -> u64 {
        if let Some(m) = self.cfg.max_cycles {
            return m;
        }
        let postings: u64 = queries
            .iter()
            .map(|q| match *q {
                SimQuery::Single(t) => self.index.encoded_list(t).num_postings(),
                SimQuery::Intersect(a, b) | SimQuery::Union(a, b) => {
                    self.index.encoded_list(a).num_postings()
                        + self.index.encoded_list(b).num_postings()
                }
            })
            .sum();
        // Even a fully serialized decode+score pipeline under memory
        // contention stays far below 1,000 cycles per posting; the floor
        // covers DRAM warm-up, refresh and drain.
        NO_PROGRESS_WINDOW.saturating_add(postings.saturating_mul(1_000))
    }

    /// Runs one query with intra-query parallelism over `n_cores` cores
    /// (Fig. 12a): one BR/B-SCH pair feeding all allocated cores.
    ///
    /// # Errors
    ///
    /// [`SimError::BadRequest`] if `n_cores` is 0 or exceeds the
    /// configuration; [`SimError::Stalled`] (with a per-unit progress
    /// snapshot) if the simulation stops making forward progress or
    /// exceeds its cycle budget.
    pub fn run_query(&self, query: SimQuery, n_cores: usize) -> Result<QueryRun, SimError> {
        if n_cores < 1 || n_cores > self.cfg.n_cores {
            return Err(SimError::BadRequest { what: "core allocation out of range" });
        }
        self.admit(&query)?;
        let budget = self.cycle_budget(&[query]);
        let mut mem = MemorySystem::new(self.cfg.dram);
        let mut mai = Mai::new(self.cfg.mai_entries);
        let mut exec = QueryExec::new(
            0,
            query,
            self.index,
            &self.layout,
            &self.cfg,
            n_cores,
            self.layout.result_base(),
            0,
        );
        let dl_bars = self.index.dl_bars();
        let mut cycle = 0u64;
        let mut last_progress = 0u64;
        let mut progress_mark = (u64::MAX, u64::MAX);
        while !exec.is_done() || !mai.is_idle() || !mem.is_idle() {
            cycle += 1;
            exec.tick(cycle, &mut mai, &self.layout, dl_bars);
            mai.tick(cycle, &mut mem);
            while let Some((addr, waiters)) = mai.pop_response() {
                for tok in waiters {
                    debug_assert_eq!(token_exec(tok), 0);
                    exec.deliver(tok, addr);
                }
            }
            let mark = (mem.bytes_total(), total_postings(&exec));
            if mark != progress_mark {
                progress_mark = mark;
                last_progress = cycle;
            }
            if cycle - last_progress >= NO_PROGRESS_WINDOW || cycle >= budget {
                return Err(SimError::Stalled {
                    snapshot: StallSnapshot {
                        cycle,
                        last_progress_cycle: last_progress,
                        execs: vec![exec.stall_snapshot()],
                    },
                });
            }
        }
        let mem_stats = mem_stats_of(&mem, &mai, cycle);
        Ok(exec.collect(cycle, mem_stats))
    }

    /// Runs a backlog of queries with inter-query parallelism over
    /// `n_units` independent (pair, core) units (Fig. 12b).
    ///
    /// # Errors
    ///
    /// [`SimError::BadRequest`] if `n_units` is 0 or exceeds the
    /// configuration; [`SimError::Stalled`] if the simulation wedges.
    pub fn run_batch(
        &self,
        queries: &[SimQuery],
        n_units: usize,
    ) -> Result<BatchRun, SimError> {
        if n_units < 1 || n_units > self.cfg.n_pairs.min(self.cfg.n_cores) {
            return Err(SimError::BadRequest { what: "unit allocation out of range" });
        }
        for q in queries {
            self.admit(q)?;
        }
        let budget = self.cycle_budget(queries);
        let mut mem = MemorySystem::new(self.cfg.dram);
        let mut mai = Mai::new(self.cfg.mai_entries);
        let dl_bars = self.index.dl_bars();

        let mut pending: VecDeque<usize> = (0..queries.len()).collect();
        let mut slots: Vec<Option<(usize, QueryExec<'a>)>> =
            (0..n_units).map(|_| None).collect();
        let mut finished: Vec<Option<QueryRun>> = vec![None; queries.len()];
        let mut cycle = 0u64;
        let mut done = 0usize;
        let mut last_progress = 0u64;
        let mut progress_mark = u64::MAX;

        while done < queries.len() || !mai.is_idle() || !mem.is_idle() {
            // Dispatch pending queries to free units (scheduling phase).
            for (unit, slot) in slots.iter_mut().enumerate() {
                if slot.is_none() {
                    if let Some(qi) = pending.pop_front() {
                        let base = self.layout.result_base() + ((unit as u64) << 24);
                        *slot = Some((
                            qi,
                            QueryExec::new(
                                unit,
                                queries[qi],
                                self.index,
                                &self.layout,
                                &self.cfg,
                                1,
                                base,
                                cycle,
                            ),
                        ));
                    }
                }
            }

            cycle += 1;
            for (_, exec) in slots.iter_mut().flatten() {
                exec.tick(cycle, &mut mai, &self.layout, dl_bars);
            }
            mai.tick(cycle, &mut mem);
            while let Some((addr, waiters)) = mai.pop_response() {
                for tok in waiters {
                    let unit = token_exec(tok);
                    if let Some((_, exec)) = &mut slots[unit] {
                        exec.deliver(tok, addr);
                    }
                }
            }
            // Retire finished executions.
            for slot in slots.iter_mut() {
                let finished_now = matches!(slot, Some((_, e)) if e.is_done());
                if finished_now {
                    let (qi, mut exec) = slot.take().expect("checked");
                    finished[qi] = Some(exec.collect(cycle, MemStats::default()));
                    done += 1;
                }
            }

            let mark = mem.bytes_total() + mai.reads_issued + done as u64 * 1000;
            if mark != progress_mark {
                progress_mark = mark;
                last_progress = cycle;
            }
            if cycle - last_progress >= NO_PROGRESS_WINDOW || cycle >= budget {
                return Err(SimError::Stalled {
                    snapshot: StallSnapshot {
                        cycle,
                        last_progress_cycle: last_progress,
                        execs: slots
                            .iter()
                            .flatten()
                            .map(|(_, e)| e.stall_snapshot())
                            .collect(),
                    },
                });
            }
        }

        let mem_stats = mem_stats_of(&mem, &mai, cycle);
        Ok(BatchRun {
            cycles: cycle,
            queries: finished.into_iter().map(|q| q.expect("all queries finished")).collect(),
            mem: mem_stats,
        })
    }

    /// Runs an open-loop arrival process: query `i` may not start before
    /// `arrivals[i]` (cycles). Returns per-query *sojourn* times (finish −
    /// arrival), the quantity a latency-vs-offered-load curve plots.
    /// Queries are served FCFS by `n_units` independent (pair, core) units.
    ///
    /// # Errors
    ///
    /// [`SimError::BadRequest`] if `arrivals` is not sorted or sized like
    /// `queries`, or if `n_units` is out of range;
    /// [`SimError::Stalled`] if the simulation wedges.
    pub fn run_arrivals(
        &self,
        queries: &[SimQuery],
        arrivals: &[u64],
        n_units: usize,
    ) -> Result<BatchRun, SimError> {
        if queries.len() != arrivals.len() {
            return Err(SimError::BadRequest { what: "one arrival per query" });
        }
        if !arrivals.windows(2).all(|w| w[0] <= w[1]) {
            return Err(SimError::BadRequest { what: "arrivals must be sorted" });
        }
        if n_units < 1 || n_units > self.cfg.n_pairs.min(self.cfg.n_cores) {
            return Err(SimError::BadRequest { what: "unit allocation out of range" });
        }
        for q in queries {
            self.admit(q)?;
        }
        // The run cannot legitimately end before the last arrival, so the
        // absolute budget gets that much headroom on top.
        let budget =
            self.cycle_budget(queries).saturating_add(arrivals.last().copied().unwrap_or(0));
        let mut mem = MemorySystem::new(self.cfg.dram);
        let mut mai = Mai::new(self.cfg.mai_entries);
        let dl_bars = self.index.dl_bars();

        let mut next_arrival = 0usize;
        let mut waiting: VecDeque<usize> = VecDeque::new();
        let mut slots: Vec<Option<(usize, QueryExec<'a>)>> =
            (0..n_units).map(|_| None).collect();
        let mut finished: Vec<Option<QueryRun>> = vec![None; queries.len()];
        let mut cycle = 0u64;
        let mut done = 0usize;
        let mut last_progress = 0u64;
        let mut progress_mark = u64::MAX;

        while done < queries.len() || !mai.is_idle() || !mem.is_idle() {
            while next_arrival < queries.len() && arrivals[next_arrival] <= cycle {
                waiting.push_back(next_arrival);
                next_arrival += 1;
            }
            for (unit, slot) in slots.iter_mut().enumerate() {
                if slot.is_none() {
                    if let Some(qi) = waiting.pop_front() {
                        let base = self.layout.result_base() + ((unit as u64) << 24);
                        *slot = Some((
                            qi,
                            QueryExec::new(
                                unit,
                                queries[qi],
                                self.index,
                                &self.layout,
                                &self.cfg,
                                1,
                                base,
                                arrivals[qi], // sojourn starts at arrival
                            ),
                        ));
                    }
                }
            }

            cycle += 1;
            for slot in slots.iter_mut() {
                if let Some((_, exec)) = slot {
                    exec.tick(cycle, &mut mai, &self.layout, dl_bars);
                }
            }
            mai.tick(cycle, &mut mem);
            while let Some((addr, waiters)) = mai.pop_response() {
                for tok in waiters {
                    let unit = token_exec(tok);
                    if let Some((_, exec)) = &mut slots[unit] {
                        exec.deliver(tok, addr);
                    }
                }
            }
            for slot in slots.iter_mut() {
                let finished_now = matches!(slot, Some((_, e)) if e.is_done());
                if finished_now {
                    let (qi, mut exec) = slot.take().expect("checked");
                    finished[qi] = Some(exec.collect(cycle, MemStats::default()));
                    done += 1;
                }
            }

            let mark = mem.bytes_total()
                + mai.reads_issued
                + done as u64 * 1000
                + next_arrival as u64;
            if mark != progress_mark {
                progress_mark = mark;
                last_progress = cycle;
            }
            // The idle gap between sparse arrivals is legitimate noprogress.
            let idle_ok = done == next_arrival && next_arrival < queries.len();
            if idle_ok {
                last_progress = cycle;
            }
            if cycle - last_progress >= NO_PROGRESS_WINDOW || cycle >= budget {
                return Err(SimError::Stalled {
                    snapshot: StallSnapshot {
                        cycle,
                        last_progress_cycle: last_progress,
                        execs: slots
                            .iter()
                            .flatten()
                            .map(|(_, e)| e.stall_snapshot())
                            .collect(),
                    },
                });
            }
        }

        let mem_stats = mem_stats_of(&mem, &mai, cycle);
        Ok(BatchRun {
            cycles: cycle,
            queries: finished.into_iter().map(|q| q.expect("all queries finished")).collect(),
            mem: mem_stats,
        })
    }

    /// Runs a hybrid configuration (Fig. 12c): `latency_query` gets one
    /// BR/B-SCH pair with `latency_cores` cores for intra-query
    /// parallelism, while `batch` drains over `batch_units` independent
    /// (pair, core) units on the same MAI/DRAM path. Models serving a
    /// low-latency query alongside a high-throughput stream.
    ///
    /// # Errors
    ///
    /// [`SimError::BadRequest`] if the allocation exceeds the configuration
    /// (`latency_cores + batch_units <= n_cores` and
    /// `1 + batch_units <= n_pairs`);
    /// [`SimError::Stalled`] if the simulation wedges.
    pub fn run_hybrid(
        &self,
        latency_query: SimQuery,
        batch: &[SimQuery],
        latency_cores: usize,
        batch_units: usize,
    ) -> Result<HybridRun, SimError> {
        if latency_cores < 1 || batch_units < 1 {
            return Err(SimError::BadRequest { what: "both sides need resources" });
        }
        if latency_cores + batch_units > self.cfg.n_cores || batch_units >= self.cfg.n_pairs {
            return Err(SimError::BadRequest {
                what: "hybrid allocation exceeds the machine",
            });
        }
        self.admit(&latency_query)?;
        for q in batch {
            self.admit(q)?;
        }
        let mut all_queries = vec![latency_query];
        all_queries.extend_from_slice(batch);
        let budget = self.cycle_budget(&all_queries);
        let mut mem = MemorySystem::new(self.cfg.dram);
        let mut mai = Mai::new(self.cfg.mai_entries);
        let dl_bars = self.index.dl_bars();

        // Slot 0 is the latency query; slots 1..=batch_units the backlog.
        let mut latency_exec = Some(QueryExec::new(
            0,
            latency_query,
            self.index,
            &self.layout,
            &self.cfg,
            latency_cores,
            self.layout.result_base(),
            0,
        ));
        let mut latency_run: Option<QueryRun> = None;
        let mut pending: VecDeque<usize> = (0..batch.len()).collect();
        let mut slots: Vec<Option<(usize, QueryExec<'_>)>> =
            (0..batch_units).map(|_| None).collect();
        let mut finished: Vec<Option<QueryRun>> = vec![None; batch.len()];
        let mut cycle = 0u64;
        let mut done = 0usize;
        let mut batch_cycles = 0u64;
        let mut last_progress = 0u64;
        let mut progress_mark = u64::MAX;

        while latency_run.is_none() || done < batch.len() || !mai.is_idle() || !mem.is_idle() {
            for (unit, slot) in slots.iter_mut().enumerate() {
                if slot.is_none() {
                    if let Some(qi) = pending.pop_front() {
                        let base = self.layout.result_base() + (((unit + 1) as u64) << 24);
                        *slot = Some((
                            qi,
                            QueryExec::new(
                                unit + 1,
                                batch[qi],
                                self.index,
                                &self.layout,
                                &self.cfg,
                                1,
                                base,
                                cycle,
                            ),
                        ));
                    }
                }
            }

            cycle += 1;
            if let Some(exec) = &mut latency_exec {
                exec.tick(cycle, &mut mai, &self.layout, dl_bars);
            }
            for (_, exec) in slots.iter_mut().flatten() {
                exec.tick(cycle, &mut mai, &self.layout, dl_bars);
            }
            mai.tick(cycle, &mut mem);
            while let Some((addr, waiters)) = mai.pop_response() {
                for tok in waiters {
                    match token_exec(tok) {
                        0 => {
                            if let Some(exec) = &mut latency_exec {
                                exec.deliver(tok, addr);
                            }
                        }
                        unit => {
                            if let Some((_, exec)) = &mut slots[unit - 1] {
                                exec.deliver(tok, addr);
                            }
                        }
                    }
                }
            }

            if matches!(&latency_exec, Some(e) if e.is_done()) {
                let mut exec = latency_exec.take().expect("checked");
                latency_run = Some(exec.collect(cycle, MemStats::default()));
            }
            for slot in slots.iter_mut() {
                let finished_now = matches!(slot, Some((_, e)) if e.is_done());
                if finished_now {
                    let (qi, mut exec) = slot.take().expect("checked");
                    finished[qi] = Some(exec.collect(cycle, MemStats::default()));
                    done += 1;
                    if done == batch.len() {
                        batch_cycles = cycle;
                    }
                }
            }

            let mark = mem.bytes_total() + mai.reads_issued + done as u64 * 1000;
            if mark != progress_mark {
                progress_mark = mark;
                last_progress = cycle;
            }
            if cycle - last_progress >= NO_PROGRESS_WINDOW || cycle >= budget {
                let execs = latency_exec
                    .iter()
                    .map(QueryExec::stall_snapshot)
                    .chain(slots.iter().flatten().map(|(_, e)| e.stall_snapshot()))
                    .collect();
                return Err(SimError::Stalled {
                    snapshot: StallSnapshot {
                        cycle,
                        last_progress_cycle: last_progress,
                        execs,
                    },
                });
            }
        }

        Ok(HybridRun {
            latency_query: latency_run.expect("latency query finished"),
            batch: finished
                .into_iter()
                .map(|q| q.expect("all batch queries finished"))
                .collect(),
            batch_cycles,
            mem: mem_stats_of(&mem, &mai, cycle),
        })
    }
}

fn total_postings(exec: &QueryExec<'_>) -> u64 {
    exec.cores.iter().map(|c| c.dcu.iter().map(|d| d.postings_decoded).sum::<u64>()).sum()
}

fn mem_stats_of(mem: &MemorySystem, mai: &Mai, cycles: u64) -> MemStats {
    MemStats {
        bytes_read: mem.bytes_read,
        bytes_written: mem.bytes_written,
        row_hits: mem.row_hits,
        row_misses: mem.row_misses,
        peak_mai: mai.peak_occupancy,
        refreshes: mem.refreshes,
        bandwidth_utilization: mem.bandwidth_utilization(cycles * TICKS_PER_CYCLE),
    }
}
