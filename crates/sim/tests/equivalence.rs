//! Randomized equivalence: the cycle-level machine must produce exactly
//! the postings/scores that direct functional evaluation of the index
//! produces, across random corpora, query types, and machine shapes.

use std::collections::BTreeMap;

use iiu_index::score::term_score_fixed;
use iiu_index::{DocId, Fixed};
use iiu_sim::{IiuMachine, SimConfig, SimQuery};
use iiu_workloads::CorpusConfig;
use proptest::prelude::*;

fn reference(index: &iiu_index::InvertedIndex, query: SimQuery) -> Vec<(DocId, Fixed)> {
    let scored = |t: u32| -> BTreeMap<DocId, Fixed> {
        let idf = index.term_info(t).idf_bar;
        index
            .encoded_list(t)
            .iter()
            .map(|p| (p.doc_id, term_score_fixed(idf, index.dl_bar(p.doc_id), p.tf)))
            .collect()
    };
    match query {
        SimQuery::Single(t) => scored(t).into_iter().collect(),
        SimQuery::Intersect(a, b) => {
            let (sa, sb) = (scored(a), scored(b));
            sa.into_iter()
                .filter_map(|(d, x)| sb.get(&d).map(|&y| (d, x.saturating_add(y))))
                .collect()
        }
        SimQuery::Union(a, b) => {
            let (sa, sb) = (scored(a), scored(b));
            let mut out = sa;
            for (d, y) in sb {
                out.entry(d).and_modify(|x| *x = x.saturating_add(y)).or_insert(y);
            }
            out.into_iter().collect()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_machine_matches_functional_reference(
        seed in 0u64..1000,
        cores in 1usize..=8,
        ta in 0u32..60,
        tb in 0u32..60,
        br_window in prop_oneof![Just(4usize), Just(16), Just(64)],
        queue_cap in prop_oneof![Just(4usize), Just(16)],
    ) {
        let cfg = CorpusConfig {
            n_docs: 1_500,
            n_terms: 120,
            ..CorpusConfig::tiny(seed)
        };
        let index = cfg.generate().into_default_index();
        let machine = IiuMachine::new(
            &index,
            SimConfig { br_window, queue_cap, ..SimConfig::default() },
        );
        let queries = [
            SimQuery::Single(ta % index.num_terms() as u32),
            SimQuery::Intersect(ta % index.num_terms() as u32, tb % index.num_terms() as u32),
            SimQuery::Union(ta % index.num_terms() as u32, tb % index.num_terms() as u32),
        ];
        for q in queries {
            let run = machine.run_query(q, cores).expect("sim completes");
            let want = reference(&index, q);
            prop_assert_eq!(&run.results, &want, "query {:?} cores {} seed {}", q, cores, seed);
        }
    }
}
