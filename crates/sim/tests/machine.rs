//! Integration tests of the full accelerator simulation: functional
//! correctness against direct index decoding, parallelism behaviour, and
//! conservation invariants.

use iiu_index::{DocId, Fixed};
use iiu_sim::{DramConfig, IiuMachine, SimConfig, SimError, SimQuery};
use iiu_workloads::CorpusConfig;

fn test_index() -> iiu_index::InvertedIndex {
    CorpusConfig::tiny(0xBEEF).generate().into_default_index()
}

/// A corpus big enough that head posting lists span many blocks (needed to
/// observe intra-query parallelism and bandwidth-bound behaviour).
fn larger_index() -> iiu_index::InvertedIndex {
    // The CC-News-like preset: clustered postings whose dl-table reads
    // amortize across documents, leaving bandwidth headroom for scaling.
    let cfg = CorpusConfig { n_terms: 1_500, ..CorpusConfig::ccnews_like(30_000) };
    cfg.generate().into_default_index()
}

/// Picks the `n`-th most frequent term with at least `min_df` postings.
fn frequent_term(index: &iiu_index::InvertedIndex, nth: usize, min_df: u64) -> u32 {
    let mut ids: Vec<u32> =
        (0..index.num_terms() as u32).filter(|&t| index.term_info(t).df >= min_df).collect();
    ids.sort_by_key(|&t| std::cmp::Reverse(index.term_info(t).df));
    ids[nth]
}

#[test]
fn single_term_produces_every_posting() {
    let index = test_index();
    let machine = IiuMachine::new(&index, SimConfig::default());
    let t = frequent_term(&index, 0, 50);
    let run = machine.run_query(SimQuery::Single(t), 1).expect("sim completes");
    let expected = index.encoded_list(t).decode_all();
    assert_eq!(run.results.len(), expected.len());
    let docs: Vec<DocId> = run.results.iter().map(|&(d, _)| d).collect();
    assert_eq!(docs, expected.doc_ids());
    assert_eq!(run.stats.postings_decoded, expected.len() as u64);
    assert_eq!(run.stats.docs_scored, expected.len() as u64);
    assert!(run.cycles > 0);
    assert!(run.mem.bytes_read > 0);
    assert!(run.mem.bytes_written > 0);
}

#[test]
fn single_term_scores_match_fixed_point_bm25() {
    let index = test_index();
    let machine = IiuMachine::new(&index, SimConfig::default());
    let t = frequent_term(&index, 3, 30);
    let run = machine.run_query(SimQuery::Single(t), 2).expect("sim completes");
    let idf = index.term_info(t).idf_bar;
    for &(d, s) in &run.results {
        let p = index
            .encoded_list(t)
            .decode_all()
            .iter()
            .find(|p| p.doc_id == d)
            .copied()
            .expect("result docID must be a posting");
        let expected = iiu_index::score::term_score_fixed(idf, index.dl_bar(d), p.tf);
        assert_eq!(s, expected, "score mismatch for doc {d}");
    }
}

#[test]
fn intersection_matches_reference_sets() {
    let index = test_index();
    let machine = IiuMachine::new(&index, SimConfig::default());
    let a = frequent_term(&index, 0, 100);
    let b = frequent_term(&index, 1, 100);
    let run = machine.run_query(SimQuery::Intersect(a, b), 1).expect("sim completes");

    let sa: std::collections::BTreeSet<DocId> =
        index.encoded_list(a).decode_all().doc_ids().into_iter().collect();
    let sb: std::collections::BTreeSet<DocId> =
        index.encoded_list(b).decode_all().doc_ids().into_iter().collect();
    let expected: Vec<DocId> = sa.intersection(&sb).copied().collect();
    let got: Vec<DocId> = run.results.iter().map(|&(d, _)| d).collect();
    assert_eq!(got, expected);
    assert!(!expected.is_empty(), "test terms should overlap");
}

#[test]
fn intersection_skips_blocks_and_uses_traversal_cache() {
    let index = test_index();
    let machine = IiuMachine::new(&index, SimConfig::default());
    // A rare term against the most common one: most L1 blocks are skipped.
    let common = frequent_term(&index, 0, 100);
    let rare = {
        let mut ids: Vec<u32> = (0..index.num_terms() as u32)
            .filter(|&t| {
                let df = index.term_info(t).df;
                (4..=12).contains(&df)
            })
            .collect();
        ids.sort_by_key(|&t| index.term_info(t).df);
        ids[0]
    };
    let run = machine.run_query(SimQuery::Intersect(rare, common), 1).expect("sim completes");
    let total_blocks = index.encoded_list(common).num_blocks() as u64;
    assert!(total_blocks > 2, "common list should have several blocks");
    assert!(
        run.stats.l1_blocks_fetched < total_blocks,
        "membership testing must avoid decompressing every block \
         ({}/{total_blocks} fetched)",
        run.stats.l1_blocks_fetched
    );
    assert_eq!(run.stats.l1_blocks_fetched + run.stats.l1_blocks_skipped, total_blocks);
    assert!(run.stats.bsu_probes > 0);
    if run.stats.bsu_probes > 8 {
        assert!(
            run.stats.bsu_cache_hits > 0,
            "ascending searches should hit the traversal cache"
        );
    }
}

#[test]
fn union_matches_merged_reference() {
    let index = test_index();
    let machine = IiuMachine::new(&index, SimConfig::default());
    let a = frequent_term(&index, 2, 50);
    let b = frequent_term(&index, 5, 30);
    let run = machine.run_query(SimQuery::Union(a, b), 1).expect("sim completes");

    let pa = index.encoded_list(a).decode_all();
    let pb = index.encoded_list(b).decode_all();
    let mut expected: std::collections::BTreeMap<DocId, Fixed> = Default::default();
    let ia = index.term_info(a).idf_bar;
    let ib = index.term_info(b).idf_bar;
    for p in pa.iter() {
        let s = iiu_index::score::term_score_fixed(ia, index.dl_bar(p.doc_id), p.tf);
        expected.entry(p.doc_id).and_modify(|e| *e = e.saturating_add(s)).or_insert(s);
    }
    for p in pb.iter() {
        let s = iiu_index::score::term_score_fixed(ib, index.dl_bar(p.doc_id), p.tf);
        expected.entry(p.doc_id).and_modify(|e| *e = e.saturating_add(s)).or_insert(s);
    }
    let want: Vec<(DocId, Fixed)> = expected.into_iter().collect();
    assert_eq!(run.results, want);
}

#[test]
fn intra_query_parallelism_cuts_single_term_latency() {
    let index = larger_index();
    let machine = IiuMachine::new(&index, SimConfig::default());
    let t = frequent_term(&index, 0, 2_000);
    let one = machine.run_query(SimQuery::Single(t), 1).expect("sim completes");
    let eight = machine.run_query(SimQuery::Single(t), 8).expect("sim completes");
    assert_eq!(one.results, eight.results, "parallelism must not change results");
    assert!(
        (eight.cycles as f64) < 0.6 * one.cycles as f64,
        "8 cores ({}) should be well under 60% of 1 core ({})",
        eight.cycles,
        one.cycles
    );
}

#[test]
fn union_latency_flat_in_core_count() {
    // Paper §5.3: "IIU shows the same latency regardless of the number of
    // IIU Cores allocated as the merge unit becomes the bottleneck".
    let index = test_index();
    let machine = IiuMachine::new(&index, SimConfig::default());
    let a = frequent_term(&index, 0, 100);
    let b = frequent_term(&index, 1, 100);
    let one = machine.run_query(SimQuery::Union(a, b), 1).expect("sim completes");
    let eight = machine.run_query(SimQuery::Union(a, b), 8).expect("sim completes");
    assert_eq!(one.cycles, eight.cycles);
    assert_eq!(one.results, eight.results);
}

#[test]
fn simulation_is_deterministic() {
    let index = test_index();
    let machine = IiuMachine::new(&index, SimConfig::default());
    let a = frequent_term(&index, 0, 100);
    let b = frequent_term(&index, 1, 100);
    for q in [SimQuery::Single(a), SimQuery::Intersect(a, b), SimQuery::Union(a, b)] {
        let r1 = machine.run_query(q, 4).expect("sim completes");
        let r2 = machine.run_query(q, 4).expect("sim completes");
        assert_eq!(r1, r2, "same query must simulate identically");
    }
}

#[test]
fn batch_matches_individual_runs_functionally() {
    let index = test_index();
    let machine = IiuMachine::new(&index, SimConfig::default());
    let t0 = frequent_term(&index, 0, 50);
    let t1 = frequent_term(&index, 1, 50);
    let t2 = frequent_term(&index, 2, 50);
    let queries = vec![
        SimQuery::Single(t0),
        SimQuery::Intersect(t0, t1),
        SimQuery::Union(t1, t2),
        SimQuery::Single(t2),
    ];
    let batch = machine.run_batch(&queries, 2).expect("sim completes");
    assert_eq!(batch.queries.len(), queries.len());
    for (q, run) in queries.iter().zip(&batch.queries) {
        let solo = machine.run_query(*q, 1).expect("sim completes");
        assert_eq!(run.results, solo.results, "batch result differs for {q:?}");
    }
    assert!(batch.cycles > 0);
}

#[test]
fn more_units_raise_batch_throughput() {
    let index = larger_index();
    let machine = IiuMachine::new(&index, SimConfig::default());
    let terms: Vec<u32> = (0..8).map(|i| frequent_term(&index, i, 1_000)).collect();
    let queries: Vec<SimQuery> = terms.iter().map(|&t| SimQuery::Single(t)).collect();
    let one = machine.run_batch(&queries, 1).expect("sim completes");
    let four = machine.run_batch(&queries, 4).expect("sim completes");
    // Scaling is sub-linear because DRAM bandwidth saturates — the paper's
    // own observation ("the speedup is eventually limited by the available
    // memory bandwidth", §5.3) — but must still be substantial.
    assert!(
        (four.cycles as f64) < 0.7 * one.cycles as f64,
        "4 units ({}) should be well under 70% of 1 unit ({})",
        four.cycles,
        one.cycles
    );
    assert!(
        four.mem.bandwidth_utilization > one.mem.bandwidth_utilization,
        "more units must push DRAM utilization up ({} vs {})",
        four.mem.bandwidth_utilization,
        one.mem.bandwidth_utilization
    );
}

#[test]
fn bandwidth_utilization_is_sane() {
    let index = test_index();
    let machine = IiuMachine::new(&index, SimConfig::default());
    let t = frequent_term(&index, 0, 200);
    let run = machine.run_query(SimQuery::Single(t), 8).expect("sim completes");
    assert!(run.mem.bandwidth_utilization > 0.0);
    assert!(run.mem.bandwidth_utilization <= 1.0);
    assert!(run.mem.peak_mai <= 128);
}

#[test]
fn hbm_helps_bandwidth_bound_batches() {
    // Fig. 19's premise: once inter-query parallelism saturates DDR4
    // bandwidth, an HBM-like memory system restores scaling. (On a tiny
    // latency-bound query HBM's higher access latency would actually
    // hurt, which is also what the paper says.)
    let index = larger_index();
    let ddr = IiuMachine::new(&index, SimConfig::default());
    let hbm = IiuMachine::new(
        &index,
        SimConfig { dram: DramConfig::hbm_like(), ..SimConfig::default() },
    );
    let queries: Vec<SimQuery> =
        (0..16).map(|i| SimQuery::Single(frequent_term(&index, i % 8, 1_000))).collect();
    let r_ddr = ddr.run_batch(&queries, 8).expect("sim completes");
    let r_hbm = hbm.run_batch(&queries, 8).expect("sim completes");
    for (a, b) in r_ddr.queries.iter().zip(&r_hbm.queries) {
        assert_eq!(a.results, b.results);
    }
    assert!(
        (r_hbm.cycles as f64) < 1.05 * r_ddr.cycles as f64,
        "HBM batch ({}) should not lose to DDR4 ({}) when bandwidth-bound",
        r_hbm.cycles,
        r_ddr.cycles
    );
}

#[test]
fn read_bytes_cover_compressed_payload() {
    let index = test_index();
    let machine = IiuMachine::new(&index, SimConfig::default());
    let t = frequent_term(&index, 0, 200);
    let run = machine.run_query(SimQuery::Single(t), 1).expect("sim completes");
    let payload = index.encoded_list(t).payload().len() as u64;
    assert!(
        run.mem.bytes_read >= payload,
        "must read at least the compressed payload ({payload} bytes)"
    );
    // Results are 8 bytes each, written in 64-byte lines.
    let result_bytes = run.results.len() as u64 * 8;
    assert!(run.mem.bytes_written >= result_bytes / 8 * 8 / 64 * 64);
}

#[test]
fn hybrid_mode_serves_both_traffic_classes() {
    // Fig. 12c: a latency-critical query co-runs with a throughput backlog.
    let index = larger_index();
    let machine = IiuMachine::new(&index, SimConfig::default());
    let hot = frequent_term(&index, 0, 2_000);
    let backlog: Vec<SimQuery> =
        (1..9).map(|i| SimQuery::Single(frequent_term(&index, i, 500))).collect();

    let hybrid =
        machine.run_hybrid(SimQuery::Single(hot), &backlog, 4, 4).expect("sim completes");
    let solo = machine.run_query(SimQuery::Single(hot), 4).expect("sim completes");

    // Functional results are unaffected by co-running traffic.
    assert_eq!(hybrid.latency_query.results, solo.results);
    for (h, q) in hybrid.batch.iter().zip(&backlog) {
        let alone = machine.run_query(*q, 1).expect("sim completes");
        assert_eq!(h.results, alone.results);
    }
    // Contention can only slow the latency query down, and not absurdly.
    assert!(hybrid.latency_query.cycles >= solo.cycles);
    assert!(
        (hybrid.latency_query.cycles as f64) < 4.0 * solo.cycles as f64,
        "hybrid latency {} should stay within 4x of isolated {}",
        hybrid.latency_query.cycles,
        solo.cycles
    );
    assert!(hybrid.batch_cycles > 0);
}

#[test]
fn hybrid_rejects_oversubscription() {
    let index = test_index();
    let machine = IiuMachine::new(&index, SimConfig::default());
    let t = frequent_term(&index, 0, 50);
    let err = machine
        .run_hybrid(SimQuery::Single(t), &[SimQuery::Single(t)], 8, 8)
        .expect_err("oversubscription must be rejected");
    assert!(matches!(err, SimError::BadRequest { .. }), "{err}");
    assert!(err.to_string().contains("hybrid allocation exceeds the machine"));
}

#[test]
fn open_loop_sojourn_includes_queueing() {
    let index = larger_index();
    let machine = IiuMachine::new(&index, SimConfig::default());
    let t = frequent_term(&index, 0, 1_000);
    let queries = vec![SimQuery::Single(t); 8];

    // Closed-form service time of one query in isolation.
    let service = machine.run_query(SimQuery::Single(t), 1).expect("sim completes").cycles;

    // All arrive at once on one unit: query i queues behind i others.
    let burst = machine.run_arrivals(&queries, &vec![0; 8], 1).expect("sim completes");
    let sojourns: Vec<u64> = burst.queries.iter().map(|q| q.cycles).collect();
    assert!(
        sojourns.windows(2).all(|w| w[0] <= w[1]),
        "FCFS on one unit: sojourns must be non-decreasing ({sojourns:?})"
    );
    assert!(sojourns[7] > 5 * service, "the last query queues behind seven services");

    // Widely spaced arrivals: no queueing, sojourn ~ service time.
    let spaced: Vec<u64> = (0..8).map(|i| i * service * 4).collect();
    let relaxed = machine.run_arrivals(&queries, &spaced, 1).expect("sim completes");
    for q in &relaxed.queries {
        assert!(
            q.cycles < service * 2,
            "unloaded sojourn {} should be near the {service}-cycle service time",
            q.cycles
        );
    }

    // Functional results are identical regardless of arrival pattern.
    for (a, b) in burst.queries.iter().zip(&relaxed.queries) {
        assert_eq!(a.results, b.results);
    }
}

#[test]
fn open_loop_rejects_unsorted_arrivals() {
    let index = test_index();
    let machine = IiuMachine::new(&index, SimConfig::default());
    let t = frequent_term(&index, 0, 50);
    let err = machine
        .run_arrivals(&[SimQuery::Single(t); 2], &[5, 1], 1)
        .expect_err("unsorted arrivals must be rejected");
    assert!(matches!(err, SimError::BadRequest { .. }), "{err}");
    assert!(err.to_string().contains("arrivals must be sorted"));
}

#[test]
fn roofline_bounds_hold() {
    // The simulator can never beat physics: cycles are bounded below by
    // both the compute roof (DCU throughput) and the memory roof (bytes
    // moved at peak bandwidth).
    let index = larger_index();
    let machine = IiuMachine::new(&index, SimConfig::default());
    let peak_bytes_per_cycle = machine.config().dram.peak_gb_per_s(); // GB/s = B/ns = B/cycle @1GHz
    for (q, cores) in [
        (SimQuery::Single(frequent_term(&index, 0, 1_000)), 1usize),
        (SimQuery::Single(frequent_term(&index, 0, 1_000)), 8),
        (
            SimQuery::Intersect(
                frequent_term(&index, 1, 500),
                frequent_term(&index, 0, 1_000),
            ),
            4,
        ),
        (SimQuery::Union(frequent_term(&index, 2, 500), frequent_term(&index, 3, 500)), 8),
    ] {
        let run = machine.run_query(q, cores).expect("sim completes");
        let compute_roof = run.stats.postings_decoded / (2 * cores as u64); // 2 DCUs/core
        let memory_roof = ((run.mem.bytes_read + run.mem.bytes_written) as f64
            / peak_bytes_per_cycle) as u64;
        assert!(
            run.cycles >= compute_roof,
            "{q:?}/{cores}: {} cycles beats the {compute_roof}-cycle compute roof",
            run.cycles
        );
        assert!(
            run.cycles >= memory_roof,
            "{q:?}/{cores}: {} cycles beats the {memory_roof}-cycle memory roof",
            run.cycles
        );
        // And a sanity ceiling: within 200x of the tighter roof (no
        // runaway serialization).
        let roof = compute_roof.max(memory_roof).max(1);
        assert!(
            run.cycles < roof * 200,
            "{q:?}/{cores}: {} cycles is absurdly far above the {roof}-cycle roof",
            run.cycles
        );
    }
}

#[test]
fn device_topk_keeps_global_best_and_cuts_writes() {
    let index = larger_index();
    let t = frequent_term(&index, 0, 1_000);
    let host_machine = IiuMachine::new(&index, SimConfig::default());
    let dev_machine =
        IiuMachine::new(&index, SimConfig { device_topk: 10, ..SimConfig::default() });

    let full = host_machine.run_query(SimQuery::Single(t), 8).expect("sim completes");
    let filtered = dev_machine.run_query(SimQuery::Single(t), 8).expect("sim completes");

    // 8 cores × k = 10 survivors at most.
    assert!(filtered.results.len() <= 80);
    assert_eq!(filtered.stats.candidates_seen, full.results.len() as u64);
    // The global top-10 scores must be among the survivors.
    let mut all_scores: Vec<_> = full.results.iter().map(|&(_, s)| s).collect();
    all_scores.sort_unstable_by(|a, b| b.cmp(a));
    let survivors: std::collections::BTreeSet<_> =
        filtered.results.iter().map(|&(d, s)| (d, s)).collect();
    for &want in &all_scores[..10] {
        assert!(
            survivors.iter().any(|&(_, s)| s >= want),
            "a global top-10 score is missing from the device-filtered set"
        );
    }
    // Write traffic collapses.
    assert!(
        filtered.mem.bytes_written * 4 < full.mem.bytes_written,
        "device top-k should slash write traffic ({} vs {})",
        filtered.mem.bytes_written,
        full.mem.bytes_written
    );
}
