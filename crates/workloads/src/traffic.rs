//! Open-loop traffic generation for the serving layer.
//!
//! An *open-loop* (Poisson) arrival process submits queries at their
//! scheduled times regardless of whether earlier queries have finished —
//! the load model under which queueing delay, shedding and tail latency
//! are actually meaningful (a closed loop self-throttles and can never
//! overload the service). Inter-arrival gaps are exponential with mean
//! `1 / rate_qps`, the standard model for independent user queries.
//!
//! Queries are drawn from the indexed vocabulary through
//! [`QuerySampler`]'s document-frequency-biased distribution, matching
//! how the paper samples TREC queries; a configurable fraction is
//! replaced by terms guaranteed to be out-of-vocabulary so downstream
//! consumers exercise the unknown-term degradation paths.
//!
//! # Zipfian query popularity
//!
//! Real query logs are heavily skewed: a few queries repeat constantly
//! while the tail is long. With [`TrafficConfig::zipf_skew`] `> 0` the
//! generator first draws a fixed pool of distinct queries, then assigns
//! each arrival the pool's rank-`r` query with probability `∝
//! 1/(r+1)^skew` (inverse-CDF over precomputed cumulative weights). At
//! `skew = 0` (the default) every arrival draws a fresh query — the
//! legacy uniform-popularity stream.

use std::time::Duration;

use iiu_index::InvertedIndex;

use crate::queries::QuerySampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of an open-loop query stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Mean offered rate in queries per second (> 0).
    pub rate_qps: f64,
    /// Number of queries in the stream.
    pub n_queries: usize,
    /// Fraction of queries with two terms (the rest are single-term).
    pub pair_fraction: f64,
    /// Of the two-term queries, the fraction joined with `AND`
    /// (intersection); the rest use `OR` (union).
    pub and_fraction: f64,
    /// Fraction of queries in which one term is replaced by an
    /// out-of-vocabulary term, exercising degradation paths.
    pub unknown_term_rate: f64,
    /// Zipf popularity skew `s ≥ 0`: arrival `i` repeats the popularity
    /// pool's rank-`r` query with probability `∝ 1/(r+1)^s`. `0` (the
    /// default) disables pooling — every arrival is an independent draw.
    /// Web query logs are typically fit with `s ≈ 0.6–1.0`.
    pub zipf_skew: f64,
    /// Size of the distinct-query popularity pool when `zipf_skew > 0`
    /// (`0` auto-sizes to [`Self::DEFAULT_ZIPF_POOL`]).
    pub zipf_pool: usize,
    /// Seed for arrivals, sampling, and unknown-term placement.
    pub seed: u64,
}

impl TrafficConfig {
    /// Default popularity-pool size under Zipfian skew.
    pub const DEFAULT_ZIPF_POOL: usize = 1024;
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            rate_qps: 200.0,
            n_queries: 1_000,
            pair_fraction: 0.5,
            and_fraction: 0.5,
            unknown_term_rate: 0.0,
            zipf_skew: 0.0,
            zipf_pool: 0,
            seed: 0x7_EA5,
        }
    }
}

/// One scheduled query: submit `text` at offset `at` from stream start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedQuery {
    /// Arrival offset from the start of the stream.
    pub at: Duration,
    /// Query text in the `iiu_core::Query::parse` grammar
    /// (`a`, `a AND b`, `a OR b`).
    pub text: String,
    /// Whether an out-of-vocabulary term was planted in this query.
    pub has_unknown_term: bool,
}

/// A term that [`crate::corpus::term_name`] can never produce (vocabulary
/// names are `t<digits>`), so it is out-of-vocabulary by construction.
fn unknown_term(rng: &mut StdRng) -> String {
    format!("zzoov{:05}", rng.gen_range(0u32..100_000))
}

/// Generates a Poisson open-loop stream of `cfg.n_queries` queries against
/// `index`'s vocabulary. Deterministic in `cfg.seed`; arrivals are sorted
/// by construction.
///
/// # Panics
///
/// Panics if `cfg.rate_qps` is not strictly positive or the fractions are
/// outside `[0, 1]`.
pub fn open_loop(index: &InvertedIndex, cfg: &TrafficConfig) -> Vec<TimedQuery> {
    assert!(cfg.rate_qps.is_finite() && cfg.rate_qps > 0.0, "rate_qps must be positive");
    for (name, f) in [
        ("pair_fraction", cfg.pair_fraction),
        ("and_fraction", cfg.and_fraction),
        ("unknown_term_rate", cfg.unknown_term_rate),
    ] {
        assert!((0.0..=1.0).contains(&f), "{name} must be in [0, 1], got {f}");
    }
    assert!(
        cfg.zipf_skew.is_finite() && cfg.zipf_skew >= 0.0,
        "zipf_skew must be finite and >= 0, got {}",
        cfg.zipf_skew
    );

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut sampler = QuerySampler::new(index, cfg.seed ^ 0x5EED_CAFE);

    // Zipfian popularity: a fixed pool of distinct queries with
    // cumulative rank weights, sampled by inverse CDF. Drawn up front so
    // the pool (and therefore every arrival) is deterministic in seed.
    let (pool, cumulative) = if cfg.zipf_skew > 0.0 {
        let size =
            if cfg.zipf_pool == 0 { TrafficConfig::DEFAULT_ZIPF_POOL } else { cfg.zipf_pool };
        let pool: Vec<(String, bool)> =
            (0..size).map(|_| draw_query(cfg, &mut rng, &mut sampler)).collect();
        let mut acc = 0.0f64;
        let cumulative: Vec<f64> = (0..size)
            .map(|r| {
                acc += 1.0 / ((r + 1) as f64).powf(cfg.zipf_skew);
                acc
            })
            .collect();
        (pool, cumulative)
    } else {
        (Vec::new(), Vec::new())
    };

    let mut at = 0.0f64;
    (0..cfg.n_queries)
        .map(|_| {
            // Exponential inter-arrival via inverse CDF; 1 - u avoids
            // ln(0) since gen_range's f64 interval is half-open at 1.
            let u: f64 = rng.gen_range(0.0..1.0);
            at += -(1.0 - u).ln() / cfg.rate_qps;

            let (text, unknown) = if pool.is_empty() {
                draw_query(cfg, &mut rng, &mut sampler)
            } else {
                let total = cumulative.last().copied().unwrap_or(1.0);
                let x = rng.gen_range(0.0..total);
                let r = cumulative.partition_point(|&c| c <= x).min(pool.len() - 1);
                pool[r].clone()
            };
            TimedQuery { at: Duration::from_secs_f64(at), text, has_unknown_term: unknown }
        })
        .collect()
}

/// Draws one query's text and unknown-term flag under `cfg`'s shape mix.
fn draw_query(
    cfg: &TrafficConfig,
    rng: &mut StdRng,
    sampler: &mut QuerySampler<'_>,
) -> (String, bool) {
    let pair = rng.gen_bool(cfg.pair_fraction);
    let unknown = cfg.unknown_term_rate > 0.0 && rng.gen_bool(cfg.unknown_term_rate);
    let text = if pair {
        let op = if rng.gen_bool(cfg.and_fraction) { "AND" } else { "OR" };
        let a = sampler.term().to_owned();
        let b = if unknown {
            unknown_term(rng)
        } else {
            // Bounded redraws: a single-term vocabulary yields a
            // duplicate instead of hanging the generator.
            sampler.term_distinct_from(&a).to_owned()
        };
        format!("{a} {op} {b}")
    } else if unknown {
        unknown_term(rng)
    } else {
        sampler.term().to_owned()
    };
    (text, unknown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    fn index() -> InvertedIndex {
        CorpusConfig { n_docs: 300, n_terms: 80, ..CorpusConfig::tiny(0x717) }
            .generate()
            .into_default_index()
    }

    #[test]
    fn stream_is_deterministic_and_sorted() {
        let idx = index();
        let cfg = TrafficConfig { n_queries: 500, ..TrafficConfig::default() };
        let a = open_loop(&idx, &cfg);
        let b = open_loop(&idx, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "arrivals out of order");
    }

    #[test]
    fn mean_rate_is_close_to_configured() {
        let idx = index();
        let cfg =
            TrafficConfig { rate_qps: 1_000.0, n_queries: 4_000, ..TrafficConfig::default() };
        let stream = open_loop(&idx, &cfg);
        let span = stream.last().map(|q| q.at.as_secs_f64()).unwrap_or(0.0);
        let empirical = cfg.n_queries as f64 / span;
        assert!(
            (empirical / cfg.rate_qps - 1.0).abs() < 0.1,
            "offered rate {empirical:.1} qps vs configured {}",
            cfg.rate_qps
        );
    }

    #[test]
    fn unknown_terms_appear_at_configured_rate_and_are_oov() {
        let idx = index();
        let cfg = TrafficConfig {
            n_queries: 2_000,
            unknown_term_rate: 0.25,
            ..TrafficConfig::default()
        };
        let stream = open_loop(&idx, &cfg);
        let unknown = stream.iter().filter(|q| q.has_unknown_term).count();
        assert!((350..650).contains(&unknown), "unknown-term rate off: {unknown}/2000");
        for q in stream.iter().filter(|q| q.has_unknown_term) {
            let oov = q
                .text
                .split_whitespace()
                .find(|t| t.starts_with("zzoov"))
                .unwrap_or_else(|| panic!("no OOV term in {:?}", q.text));
            assert!(idx.term_id(oov).is_none(), "{oov:?} is in vocabulary");
        }
    }

    #[test]
    fn single_term_vocabulary_does_not_hang() {
        // Regression: drawing a second distinct term used to spin forever
        // when the vocabulary had exactly one qualifying term.
        let idx = CorpusConfig { n_terms: 1, ..CorpusConfig::tiny(0x99) }
            .generate()
            .into_default_index();
        let cfg =
            TrafficConfig { n_queries: 50, pair_fraction: 1.0, ..TrafficConfig::default() };
        let stream = open_loop(&idx, &cfg);
        assert_eq!(stream.len(), 50);
        for q in &stream {
            assert!(
                q.has_unknown_term || q.text.contains(" AND ") || q.text.contains(" OR "),
                "pair_fraction=1.0 must produce two-term queries: {:?}",
                q.text
            );
        }
    }

    #[test]
    fn zipf_stream_is_skewed_deterministic_and_in_vocabulary() {
        let idx = index();
        let cfg = TrafficConfig {
            n_queries: 8_000,
            zipf_skew: 1.0,
            zipf_pool: 64,
            pair_fraction: 0.0,
            ..TrafficConfig::default()
        };
        let a = open_loop(&idx, &cfg);
        let b = open_loop(&idx, &cfg);
        assert_eq!(a, b, "zipf stream must be deterministic in the seed");

        let mut counts: std::collections::HashMap<&str, usize> = Default::default();
        for q in &a {
            *counts.entry(q.text.as_str()).or_default() += 1;
        }
        assert!(
            counts.len() <= 64,
            "popularity pool of 64 produced {} distinct queries",
            counts.len()
        );
        let mut by_freq: Vec<usize> = counts.values().copied().collect();
        by_freq.sort_unstable_by(|x, y| y.cmp(x));

        // Under s=1 over 64 ranks the head holds ~21% of the mass and a
        // uniform draw would give ~1.6% per query; require a clear skew
        // with slack for sampling noise.
        let head = by_freq[0] as f64 / a.len() as f64;
        assert!(head > 0.10, "hottest query holds only {head:.3} of the stream");
        let top8: usize = by_freq.iter().take(8).sum();
        let bottom_half: usize = by_freq.iter().skip(by_freq.len() / 2).sum();
        assert!(
            top8 > bottom_half,
            "top-8 queries ({top8}) should out-draw the bottom half ({bottom_half})"
        );

        // Pool queries come from the real vocabulary when no unknown
        // terms were requested.
        for q in &a {
            assert!(!q.has_unknown_term);
            assert!(idx.term_id(&q.text).is_some(), "{:?} not in vocabulary", q.text);
        }
    }

    #[test]
    fn zero_skew_matches_legacy_uniform_stream() {
        let idx = index();
        let legacy = TrafficConfig { n_queries: 300, ..TrafficConfig::default() };
        // zipf_pool without skew is inert: the pool is never built.
        let pooled = TrafficConfig { zipf_pool: 16, ..legacy };
        assert_eq!(open_loop(&idx, &legacy), open_loop(&idx, &pooled));
    }

    #[test]
    fn query_mix_covers_all_shapes() {
        let idx = index();
        let cfg = TrafficConfig {
            n_queries: 400,
            pair_fraction: 0.5,
            and_fraction: 0.5,
            ..TrafficConfig::default()
        };
        let stream = open_loop(&idx, &cfg);
        let ands = stream.iter().filter(|q| q.text.contains(" AND ")).count();
        let ors = stream.iter().filter(|q| q.text.contains(" OR ")).count();
        let singles = stream.len() - ands - ors;
        assert!(
            ands > 0 && ors > 0 && singles > 0,
            "{ands} AND / {ors} OR / {singles} single"
        );
    }
}
