//! Open-loop traffic generation for the serving layer.
//!
//! An *open-loop* (Poisson) arrival process submits queries at their
//! scheduled times regardless of whether earlier queries have finished —
//! the load model under which queueing delay, shedding and tail latency
//! are actually meaningful (a closed loop self-throttles and can never
//! overload the service). Inter-arrival gaps are exponential with mean
//! `1 / rate_qps`, the standard model for independent user queries.
//!
//! Queries are drawn from the indexed vocabulary through
//! [`QuerySampler`]'s document-frequency-biased distribution, matching
//! how the paper samples TREC queries; a configurable fraction is
//! replaced by terms guaranteed to be out-of-vocabulary so downstream
//! consumers exercise the unknown-term degradation paths.

use std::time::Duration;

use iiu_index::InvertedIndex;

use crate::queries::QuerySampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of an open-loop query stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Mean offered rate in queries per second (> 0).
    pub rate_qps: f64,
    /// Number of queries in the stream.
    pub n_queries: usize,
    /// Fraction of queries with two terms (the rest are single-term).
    pub pair_fraction: f64,
    /// Of the two-term queries, the fraction joined with `AND`
    /// (intersection); the rest use `OR` (union).
    pub and_fraction: f64,
    /// Fraction of queries in which one term is replaced by an
    /// out-of-vocabulary term, exercising degradation paths.
    pub unknown_term_rate: f64,
    /// Seed for arrivals, sampling, and unknown-term placement.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            rate_qps: 200.0,
            n_queries: 1_000,
            pair_fraction: 0.5,
            and_fraction: 0.5,
            unknown_term_rate: 0.0,
            seed: 0x7_EA5,
        }
    }
}

/// One scheduled query: submit `text` at offset `at` from stream start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedQuery {
    /// Arrival offset from the start of the stream.
    pub at: Duration,
    /// Query text in the `iiu_core::Query::parse` grammar
    /// (`a`, `a AND b`, `a OR b`).
    pub text: String,
    /// Whether an out-of-vocabulary term was planted in this query.
    pub has_unknown_term: bool,
}

/// A term that [`crate::corpus::term_name`] can never produce (vocabulary
/// names are `t<digits>`), so it is out-of-vocabulary by construction.
fn unknown_term(rng: &mut StdRng) -> String {
    format!("zzoov{:05}", rng.gen_range(0u32..100_000))
}

/// Generates a Poisson open-loop stream of `cfg.n_queries` queries against
/// `index`'s vocabulary. Deterministic in `cfg.seed`; arrivals are sorted
/// by construction.
///
/// # Panics
///
/// Panics if `cfg.rate_qps` is not strictly positive or the fractions are
/// outside `[0, 1]`.
pub fn open_loop(index: &InvertedIndex, cfg: &TrafficConfig) -> Vec<TimedQuery> {
    assert!(cfg.rate_qps.is_finite() && cfg.rate_qps > 0.0, "rate_qps must be positive");
    for (name, f) in [
        ("pair_fraction", cfg.pair_fraction),
        ("and_fraction", cfg.and_fraction),
        ("unknown_term_rate", cfg.unknown_term_rate),
    ] {
        assert!((0.0..=1.0).contains(&f), "{name} must be in [0, 1], got {f}");
    }

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut sampler = QuerySampler::new(index, cfg.seed ^ 0x5EED_CAFE);
    let mut at = 0.0f64;
    (0..cfg.n_queries)
        .map(|_| {
            // Exponential inter-arrival via inverse CDF; 1 - u avoids
            // ln(0) since gen_range's f64 interval is half-open at 1.
            let u: f64 = rng.gen_range(0.0..1.0);
            at += -(1.0 - u).ln() / cfg.rate_qps;

            let pair = rng.gen_bool(cfg.pair_fraction);
            let unknown = cfg.unknown_term_rate > 0.0 && rng.gen_bool(cfg.unknown_term_rate);
            let text = if pair {
                let op = if rng.gen_bool(cfg.and_fraction) { "AND" } else { "OR" };
                let a = sampler.term().to_owned();
                let b = if unknown {
                    unknown_term(&mut rng)
                } else {
                    // Bounded redraws: a single-term vocabulary yields a
                    // duplicate instead of hanging the generator.
                    sampler.term_distinct_from(&a).to_owned()
                };
                format!("{a} {op} {b}")
            } else if unknown {
                unknown_term(&mut rng)
            } else {
                sampler.term().to_owned()
            };
            TimedQuery { at: Duration::from_secs_f64(at), text, has_unknown_term: unknown }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    fn index() -> InvertedIndex {
        CorpusConfig { n_docs: 300, n_terms: 80, ..CorpusConfig::tiny(0x717) }
            .generate()
            .into_default_index()
    }

    #[test]
    fn stream_is_deterministic_and_sorted() {
        let idx = index();
        let cfg = TrafficConfig { n_queries: 500, ..TrafficConfig::default() };
        let a = open_loop(&idx, &cfg);
        let b = open_loop(&idx, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "arrivals out of order");
    }

    #[test]
    fn mean_rate_is_close_to_configured() {
        let idx = index();
        let cfg =
            TrafficConfig { rate_qps: 1_000.0, n_queries: 4_000, ..TrafficConfig::default() };
        let stream = open_loop(&idx, &cfg);
        let span = stream.last().map(|q| q.at.as_secs_f64()).unwrap_or(0.0);
        let empirical = cfg.n_queries as f64 / span;
        assert!(
            (empirical / cfg.rate_qps - 1.0).abs() < 0.1,
            "offered rate {empirical:.1} qps vs configured {}",
            cfg.rate_qps
        );
    }

    #[test]
    fn unknown_terms_appear_at_configured_rate_and_are_oov() {
        let idx = index();
        let cfg = TrafficConfig {
            n_queries: 2_000,
            unknown_term_rate: 0.25,
            ..TrafficConfig::default()
        };
        let stream = open_loop(&idx, &cfg);
        let unknown = stream.iter().filter(|q| q.has_unknown_term).count();
        assert!((350..650).contains(&unknown), "unknown-term rate off: {unknown}/2000");
        for q in stream.iter().filter(|q| q.has_unknown_term) {
            let oov = q
                .text
                .split_whitespace()
                .find(|t| t.starts_with("zzoov"))
                .unwrap_or_else(|| panic!("no OOV term in {:?}", q.text));
            assert!(idx.term_id(oov).is_none(), "{oov:?} is in vocabulary");
        }
    }

    #[test]
    fn single_term_vocabulary_does_not_hang() {
        // Regression: drawing a second distinct term used to spin forever
        // when the vocabulary had exactly one qualifying term.
        let idx = CorpusConfig { n_terms: 1, ..CorpusConfig::tiny(0x99) }
            .generate()
            .into_default_index();
        let cfg =
            TrafficConfig { n_queries: 50, pair_fraction: 1.0, ..TrafficConfig::default() };
        let stream = open_loop(&idx, &cfg);
        assert_eq!(stream.len(), 50);
        for q in &stream {
            assert!(
                q.has_unknown_term || q.text.contains(" AND ") || q.text.contains(" OR "),
                "pair_fraction=1.0 must produce two-term queries: {:?}",
                q.text
            );
        }
    }

    #[test]
    fn query_mix_covers_all_shapes() {
        let idx = index();
        let cfg = TrafficConfig {
            n_queries: 400,
            pair_fraction: 0.5,
            and_fraction: 0.5,
            ..TrafficConfig::default()
        };
        let stream = open_loop(&idx, &cfg);
        let ands = stream.iter().filter(|q| q.text.contains(" AND ")).count();
        let ors = stream.iter().filter(|q| q.text.contains(" OR ")).count();
        let singles = stream.len() - ands - ors;
        assert!(
            ands > 0 && ors > 0 && singles > 0,
            "{ands} AND / {ors} OR / {singles} single"
        );
    }
}
