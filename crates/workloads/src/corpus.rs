//! Synthetic corpus generation.
//!
//! Posting lists are generated directly (rather than by tokenizing fake
//! documents): for term rank `r`, the document frequency follows a
//! truncated Zipf law `df_r ∝ r^{-s}`, and the docIDs are drawn by gap
//! sampling from a two-state (dense/sparse) Markov model that produces the
//! bursty d-gap distributions real postings exhibit. Burstiness is the
//! lever that separates the CC-News-like and ClueWeb12-like presets'
//! compressibility.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use iiu_index::{Bm25Params, IngestDoc, InvertedIndex, Partitioner, PostingList, TermFreq};

/// Parameters of a synthetic corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusConfig {
    /// Number of documents.
    pub n_docs: u32,
    /// Number of distinct terms (posting lists).
    pub n_terms: u32,
    /// Zipf exponent of the document-frequency distribution.
    pub zipf_s: f64,
    /// Document frequency of the most common term, as a fraction of
    /// `n_docs`.
    pub max_df_fraction: f64,
    /// Mean document length (tokens), log-normally distributed.
    pub avg_doc_len: u32,
    /// Mean term frequency (geometric).
    pub mean_tf: f64,
    /// Burstiness in `[0, 1]`: probability that consecutive postings fall
    /// in a dense cluster (small d-gaps). Higher values compress better.
    pub clustering: f64,
    /// RNG seed; equal configs generate identical corpora.
    pub seed: u64,
}

impl CorpusConfig {
    /// A CC-News-like corpus: short news articles with strong temporal
    /// clustering (CC-News is crawled chronologically, and Table 2 shows it
    /// compressing ~2.4× better than ClueWeb12). The vocabulary is half the
    /// document count with a flat-ish Zipf exponent so that — like a real
    /// index — the posting *mass* sits in long mid/head lists rather than
    /// in per-list overheads.
    pub fn ccnews_like(n_docs: u32) -> Self {
        CorpusConfig {
            n_docs,
            n_terms: (n_docs / 2).clamp(16, 400_000),
            zipf_s: 0.65,
            max_df_fraction: 0.30,
            avg_doc_len: 400,
            mean_tf: 1.6,
            clustering: 0.9,
            seed: 0xCC_0001,
        }
    }

    /// A ClueWeb12-like corpus: longer web pages with weak clustering (a
    /// breadth-first web crawl scatters topically related pages across
    /// docIDs), same mass distribution rationale as
    /// [`CorpusConfig::ccnews_like`].
    pub fn clueweb_like(n_docs: u32) -> Self {
        CorpusConfig {
            n_docs,
            n_terms: (n_docs / 2).clamp(16, 400_000),
            zipf_s: 0.65,
            max_df_fraction: 0.40,
            avg_doc_len: 800,
            mean_tf: 3.0,
            clustering: 0.15,
            seed: 0xC1_0002,
        }
    }

    /// A small corpus for unit tests: quick to generate and index.
    pub fn tiny(seed: u64) -> Self {
        CorpusConfig {
            n_docs: 2_000,
            n_terms: 500,
            zipf_s: 0.9,
            max_df_fraction: 0.3,
            avg_doc_len: 100,
            mean_tf: 2.0,
            clustering: 0.6,
            seed,
        }
    }

    /// Generates the corpus.
    ///
    /// # Panics
    ///
    /// Panics if `n_docs == 0` or the fractions are out of range.
    pub fn generate(&self) -> GeneratedCorpus {
        assert!(self.n_docs > 0, "corpus needs at least one document");
        assert!(
            (0.0..=1.0).contains(&self.clustering)
                && (0.0..=1.0).contains(&self.max_df_fraction),
            "fractions must be in [0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);

        let max_df = (f64::from(self.n_docs) * self.max_df_fraction).max(1.0);
        let mut lists = Vec::with_capacity(self.n_terms as usize);
        for rank in 1..=self.n_terms {
            let list = self.generate_list(&mut rng, self.df_for(max_df, rank));
            lists.push((term_name(rank), list));
        }

        let doc_lens = (0..self.n_docs).map(|_| self.sample_doc_len(&mut rng)).collect();

        GeneratedCorpus { lists, doc_lens }
    }

    /// Streams the corpus straight to a v4 index file, byte-identical to
    /// `generate().into_index_codec(..)` + [`iiu_index::io::serialize`]
    /// but with peak memory independent of the total posting count — the
    /// path that lets `iiu gen` write a ≥1M-doc corpus with bounded RSS.
    ///
    /// Generation is term-major and the document-length table is drawn
    /// from the *same* RNG stream after every list, while the file format
    /// needs the doc table before the first term record. Streaming
    /// therefore runs two passes over the same seeded stream: pass one
    /// advances the RNG through every list (keeping only one alive at a
    /// time) to reach and sample the doc lengths; pass two re-seeds and
    /// regenerates each list — identical draws — into the writer.
    ///
    /// Returns the sink (flushed, with the complete file written) and the
    /// generation stats.
    ///
    /// # Errors
    ///
    /// Propagates [`iiu_index::IndexError`] from encoding or sink I/O.
    ///
    /// # Panics
    ///
    /// Panics if `n_docs == 0` or the fractions are out of range, like
    /// [`generate`](Self::generate).
    pub fn generate_streamed<W: std::io::Write>(
        &self,
        sink: W,
        partitioner: Partitioner,
        params: Bm25Params,
        codec: iiu_index::CodecId,
    ) -> Result<(W, StreamStats), iiu_index::IndexError> {
        assert!(self.n_docs > 0, "corpus needs at least one document");
        assert!(
            (0.0..=1.0).contains(&self.clustering)
                && (0.0..=1.0).contains(&self.max_df_fraction),
            "fractions must be in [0, 1]"
        );
        let max_df = (f64::from(self.n_docs) * self.max_df_fraction).max(1.0);

        // Pass 1: advance the RNG past every list to sample the doc table.
        let mut rng = StdRng::seed_from_u64(self.seed);
        for rank in 1..=self.n_terms {
            drop(self.generate_list(&mut rng, self.df_for(max_df, rank)));
        }
        let doc_lens: Vec<u32> =
            (0..self.n_docs).map(|_| self.sample_doc_len(&mut rng)).collect();

        let mut writer = iiu_index::io::StreamingWriter::new(
            sink,
            &doc_lens,
            u64::from(self.n_terms),
            partitioner,
            params,
            codec,
        )?;

        // Pass 2: regenerate each list (same seed, identical draws) and
        // stream it into the writer.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut postings = 0u64;
        for rank in 1..=self.n_terms {
            let list = self.generate_list(&mut rng, self.df_for(max_df, rank));
            postings += list.len() as u64;
            writer.push_term(&term_name(rank), &list)?;
        }
        let sink = writer.finish()?;
        Ok((
            sink,
            StreamStats {
                docs: u64::from(self.n_docs),
                terms: u64::from(self.n_terms),
                postings,
            },
        ))
    }

    /// Target document frequency of the term at Zipf `rank`.
    fn df_for(&self, max_df: f64, rank: u32) -> u32 {
        let df = (max_df / f64::from(rank).powf(self.zipf_s)).round().max(1.0) as u32;
        df.min(self.n_docs)
    }

    /// Gap-samples one posting list with `df` target postings (the realized
    /// length may be smaller if the gap walk exhausts the docID space).
    ///
    /// Gaps come from a two-state Markov chain with *persistent* states:
    /// long dense runs (gaps of mostly 1, as in a chronological news crawl
    /// covering one story) separated by sparse stretches carrying the
    /// slack. Run persistence is what lets width-adaptive codecs (and the
    /// dynamic partitioner) isolate cheap regions — byte-aligned codecs
    /// cannot exploit it, which is exactly the differential Table 2 shows
    /// between the datasets.
    fn generate_list(&self, rng: &mut StdRng, df: u32) -> PostingList {
        let mut list = PostingList::new();
        if df == 0 {
            return list;
        }
        let mean_gap = (f64::from(self.n_docs) / f64::from(df)).max(1.0);
        let dense_mean = 1.1_f64.min(mean_gap);
        let sparse_mean = if self.clustering >= 1.0 {
            mean_gap
        } else {
            ((mean_gap - self.clustering * dense_mean) / (1.0 - self.clustering)).max(1.0)
        };
        // Stationary dense fraction = clustering, with sticky states
        // (P(stay dense) = 0.95) so dense runs average ~20 postings.
        let p_leave_dense = 0.05;
        let p_enter_dense = if self.clustering >= 1.0 {
            1.0
        } else {
            (p_leave_dense * self.clustering / (1.0 - self.clustering)).min(1.0)
        };
        let mut dense = rng.gen_bool(self.clustering);

        let mut doc = rng.gen_range(0..((mean_gap as u32).max(1)));
        for i in 0..df {
            if i > 0 {
                dense = if dense {
                    !rng.gen_bool(p_leave_dense)
                } else {
                    rng.gen_bool(p_enter_dense)
                };
                let mean = if dense { dense_mean } else { sparse_mean };
                // Geometric-ish gap: exponential inverse CDF, min 1.
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let gap = (-u.ln() * mean).ceil().max(1.0);
                let gap = gap.min(f64::from(u32::MAX / 2)) as u32;
                match doc.checked_add(gap) {
                    Some(next) if next < self.n_docs => doc = next,
                    _ => break,
                }
            } else if doc >= self.n_docs {
                doc = 0;
            }
            list.push(doc, self.sample_tf(rng));
        }
        list
    }

    /// Geometric term frequency with mean `mean_tf`, capped at 1000.
    fn sample_tf(&self, rng: &mut StdRng) -> TermFreq {
        let p = 1.0 / self.mean_tf.max(1.0);
        let mut tf = 1u32;
        while tf < 1000 && rng.gen_bool(1.0 - p) {
            tf += 1;
        }
        tf
    }

    /// Log-normal document length around `avg_doc_len`.
    fn sample_doc_len(&self, rng: &mut StdRng) -> u32 {
        let sigma = 0.4f64;
        // Box-Muller from two uniforms.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let mu = f64::from(self.avg_doc_len).ln() - sigma * sigma / 2.0;
        let len = (mu + sigma * z).exp();
        (len.round() as u32).clamp(5, self.avg_doc_len * 20)
    }
}

/// Human-readable synthetic term name for Zipf rank `rank`.
pub fn term_name(rank: u32) -> String {
    format!("t{rank:07}")
}

/// Generation statistics reported by [`CorpusConfig::generate_streamed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Documents in the corpus.
    pub docs: u64,
    /// Distinct terms (posting lists) written.
    pub terms: u64,
    /// Total postings across all lists.
    pub postings: u64,
}

/// A generated corpus: posting lists plus the document-length table.
#[derive(Debug, Clone)]
pub struct GeneratedCorpus {
    /// `(term, posting list)` pairs, most frequent term first.
    pub lists: Vec<(String, PostingList)>,
    /// Token length of each document.
    pub doc_lens: Vec<u32>,
}

impl GeneratedCorpus {
    /// Total postings across all lists.
    pub fn total_postings(&self) -> u64 {
        self.lists.iter().map(|(_, l)| l.len() as u64).sum()
    }

    /// Builds an [`InvertedIndex`] from this corpus.
    ///
    /// # Panics
    ///
    /// Panics if encoding fails (generated lists always stay within the
    /// format's bitwidth limits).
    pub fn into_index(self, partitioner: Partitioner, params: Bm25Params) -> InvertedIndex {
        self.into_index_codec(partitioner, params, iiu_index::CodecId::BitPack)
    }

    /// Builds an [`InvertedIndex`] from this corpus with an explicit block
    /// codec.
    ///
    /// # Panics
    ///
    /// Panics if encoding fails (generated lists always stay within the
    /// format's bitwidth limits).
    pub fn into_index_codec(
        self,
        partitioner: Partitioner,
        params: Bm25Params,
        codec: iiu_index::CodecId,
    ) -> InvertedIndex {
        InvertedIndex::from_lists_codec(self.lists, self.doc_lens, partitioner, params, codec)
            .unwrap_or_else(|e| panic!("generated corpus always encodes: {e}"))
    }

    /// Builds an index with default partitioning and BM25 parameters.
    pub fn into_default_index(self) -> InvertedIndex {
        self.into_index(Partitioner::default(), Bm25Params::default())
    }

    /// Transposes the corpus into per-document [`IngestDoc`]s for the
    /// incremental write path. The generated `doc_lens` are preserved
    /// verbatim (they are sampled independently of the posting lists, so
    /// they must *not* be re-derived from term frequencies) — an index
    /// built one-shot from this corpus and one grown by ingesting the
    /// returned documents in order are bit-identical.
    pub fn to_docs(&self) -> Vec<IngestDoc> {
        let mut per_doc: Vec<Vec<(String, u32)>> = vec![Vec::new(); self.doc_lens.len()];
        for (term, list) in &self.lists {
            for p in list.iter() {
                per_doc[p.doc_id as usize].push((term.clone(), p.tf));
            }
        }
        per_doc
            .into_iter()
            .zip(&self.doc_lens)
            .map(|(terms, &len)| IngestDoc::new(len, terms))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = CorpusConfig::tiny(7).generate();
        let b = CorpusConfig::tiny(7).generate();
        assert_eq!(a.doc_lens, b.doc_lens);
        assert_eq!(a.lists.len(), b.lists.len());
        for ((ta, la), (tb, lb)) in a.lists.iter().zip(&b.lists) {
            assert_eq!(ta, tb);
            assert_eq!(la, lb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = CorpusConfig::tiny(1).generate();
        let b = CorpusConfig::tiny(2).generate();
        assert_ne!(a.lists[0].1, b.lists[0].1);
    }

    #[test]
    fn zipf_skew_in_list_lengths() {
        let c = CorpusConfig::tiny(3).generate();
        let first = c.lists[0].1.len();
        let mid = c.lists[c.lists.len() / 2].1.len();
        let last = c.lists.last().unwrap().1.len();
        assert!(first > mid, "head term ({first}) must outsize mid term ({mid})");
        assert!(mid >= last, "mid term ({mid}) must outsize tail term ({last})");
    }

    #[test]
    fn docids_stay_in_range() {
        let cfg = CorpusConfig::tiny(4);
        let c = cfg.generate();
        for (_, list) in &c.lists {
            if let Some(last) = list.as_slice().last() {
                assert!(last.doc_id < cfg.n_docs);
            }
        }
        assert_eq!(c.doc_lens.len(), cfg.n_docs as usize);
    }

    #[test]
    fn clustering_improves_compression() {
        let mut dense_cfg = CorpusConfig::tiny(5);
        dense_cfg.clustering = 0.95;
        let mut sparse_cfg = CorpusConfig::tiny(5);
        sparse_cfg.clustering = 0.05;
        let dense = dense_cfg.generate().into_default_index();
        let sparse = sparse_cfg.generate().into_default_index();
        assert!(
            dense.size_stats().compression_ratio() > sparse.size_stats().compression_ratio(),
            "clustered corpus must compress better"
        );
    }

    #[test]
    fn presets_have_expected_shape() {
        let cc = CorpusConfig::ccnews_like(10_000);
        let cw = CorpusConfig::clueweb_like(10_000);
        assert_eq!(cc.n_terms, 5_000);
        assert_eq!(cw.n_terms, 5_000);
        assert!(cc.clustering > cw.clustering);
        assert!(cc.avg_doc_len < cw.avg_doc_len);
    }

    #[test]
    fn into_index_roundtrips_lists() {
        let c = CorpusConfig::tiny(6).generate();
        let lists = c.lists.clone();
        let index = c.into_default_index();
        for (term, list) in &lists {
            assert_eq!(&index.decode_term(term).unwrap(), list);
        }
    }

    #[test]
    fn to_docs_transposition_round_trips() {
        let c =
            CorpusConfig { n_docs: 300, n_terms: 60, ..CorpusConfig::tiny(0xD0C5) }.generate();
        let docs = c.to_docs();
        assert_eq!(docs.len(), 300);
        // doc_lens are preserved verbatim, not re-derived.
        for (doc, &len) in docs.iter().zip(&c.doc_lens) {
            assert_eq!(doc.len(), len);
        }
        // Rebuilding lists from the transposition reproduces the corpus.
        let mut rebuilt: std::collections::BTreeMap<String, PostingList> =
            std::collections::BTreeMap::new();
        for (id, doc) in docs.iter().enumerate() {
            for (term, tf) in doc.terms() {
                rebuilt.entry(term.clone()).or_default().push(id as u32, *tf);
            }
        }
        for (term, list) in &c.lists {
            if list.is_empty() {
                continue;
            }
            assert_eq!(rebuilt.get(term), Some(list), "{term}");
        }
    }

    #[test]
    fn streamed_file_is_byte_identical_to_one_shot() {
        let cfg = CorpusConfig::tiny(42);
        let partitioner = Partitioner::default();
        let params = Bm25Params::default();
        for codec in iiu_index::CodecId::ALL {
            let corpus = cfg.generate();
            let postings = corpus.total_postings();
            let one_shot = corpus.into_index_codec(partitioner, params, codec);
            let expected = iiu_index::io::serialize(&one_shot).unwrap();
            let (bytes, stats) =
                cfg.generate_streamed(Vec::new(), partitioner, params, codec).unwrap();
            assert_eq!(bytes, expected, "{codec}: streamed bytes diverge from one-shot");
            assert_eq!(stats.docs, u64::from(cfg.n_docs));
            assert_eq!(stats.terms, u64::from(cfg.n_terms));
            assert_eq!(stats.postings, postings);
        }
    }

    #[test]
    fn doc_lens_are_plausible() {
        let cfg = CorpusConfig::tiny(8);
        let c = cfg.generate();
        let mean: f64 =
            c.doc_lens.iter().map(|&l| f64::from(l)).sum::<f64>() / c.doc_lens.len() as f64;
        let target = f64::from(cfg.avg_doc_len);
        assert!(
            (mean - target).abs() < target * 0.2,
            "mean doc len {mean} should be near {target}"
        );
    }
}
