//! Query sampling (paper §5.1: "we uniformly sample 100 single-term ...
//! and double-term queries from TREC 2006 Terabyte Track with only those
//! terms present in each dataset").
//!
//! TREC query terms are real search terms, which are strongly biased toward
//! mid-to-high document frequency (people rarely search hapax legomena).
//! The sampler therefore draws terms with probability proportional to
//! `df^alpha`, restricted to a minimum document frequency, which mirrors
//! "TREC terms present in the dataset" without the TREC files.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use iiu_index::InvertedIndex;

/// Samples query terms from an index's vocabulary.
#[derive(Debug)]
pub struct QuerySampler<'a> {
    index: &'a InvertedIndex,
    /// Candidate term ids with cumulative weights for sampling.
    candidates: Vec<u32>,
    cumulative: Vec<f64>,
    rng: StdRng,
}

impl<'a> QuerySampler<'a> {
    /// Default df-bias exponent.
    pub const DEFAULT_ALPHA: f64 = 0.35;
    /// Default minimum document frequency for a query term.
    pub const DEFAULT_MIN_DF: u64 = 16;

    /// Creates a sampler over `index` with the default bias.
    ///
    /// # Panics
    ///
    /// Panics if no term in the index meets the minimum document frequency.
    pub fn new(index: &'a InvertedIndex, seed: u64) -> Self {
        Self::with_bias(index, seed, Self::DEFAULT_ALPHA, Self::DEFAULT_MIN_DF)
    }

    /// Creates a sampler drawing terms with probability `∝ df^alpha` among
    /// terms with `df >= min_df`.
    ///
    /// # Panics
    ///
    /// Panics if no term qualifies.
    pub fn with_bias(index: &'a InvertedIndex, seed: u64, alpha: f64, min_df: u64) -> Self {
        let mut candidates = Vec::new();
        let mut cumulative = Vec::new();
        let mut acc = 0.0f64;
        for (id, info) in index.terms().iter().enumerate() {
            if info.df >= min_df {
                acc += (info.df as f64).powf(alpha);
                candidates.push(id as u32);
                cumulative.push(acc);
            }
        }
        assert!(
            !candidates.is_empty(),
            "no term meets the minimum document frequency {min_df}"
        );
        QuerySampler { index, candidates, cumulative, rng: StdRng::seed_from_u64(seed) }
    }

    /// Redraw budget when hunting for a term distinct from a given one.
    const MAX_DISTINCT_DRAWS: usize = 16;

    /// Draws a term, redrawing a bounded number of times until it differs
    /// from `other`. A degenerate candidate set (e.g. a single qualifying
    /// term) exhausts the budget and yields the duplicate instead of
    /// looping forever — `a AND a` is still a valid query.
    pub fn term_distinct_from(&mut self, other: &str) -> &'a str {
        let mut b = self.term();
        for _ in 0..Self::MAX_DISTINCT_DRAWS {
            if b != other {
                break;
            }
            b = self.term();
        }
        b
    }

    /// Draws one term.
    pub fn term(&mut self) -> &'a str {
        // The constructor asserts `candidates` (and so `cumulative`) is
        // non-empty.
        let total = self.cumulative.last().copied().unwrap_or(1.0);
        let x = self.rng.gen_range(0.0..total);
        let i = self.cumulative.partition_point(|&c| c <= x);
        let id = self.candidates[i.min(self.candidates.len() - 1)];
        &self.index.term_info(id).term
    }

    /// Draws `n` single-term queries.
    pub fn single_queries(&mut self, n: usize) -> Vec<String> {
        (0..n).map(|_| self.term().to_owned()).collect()
    }

    /// Draws `n` double-term queries (for intersection and union). Terms
    /// are distinct whenever the candidate set allows it; see
    /// [`Self::term_distinct_from`].
    pub fn pair_queries(&mut self, n: usize) -> Vec<(String, String)> {
        (0..n)
            .map(|_| {
                let a = self.term().to_owned();
                let b = self.term_distinct_from(&a).to_owned();
                (a, b)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    fn test_index() -> InvertedIndex {
        CorpusConfig::tiny(11).generate().into_default_index()
    }

    #[test]
    fn sampled_terms_exist_and_meet_min_df() {
        let idx = test_index();
        let mut s = QuerySampler::new(&idx, 1);
        for q in s.single_queries(50) {
            let id =
                idx.term_id(&q).unwrap_or_else(|| panic!("sampled term {q:?} must exist"));
            assert!(idx.term_info(id).df >= QuerySampler::DEFAULT_MIN_DF);
        }
    }

    #[test]
    fn pairs_have_distinct_terms() {
        let idx = test_index();
        let mut s = QuerySampler::new(&idx, 2);
        for (a, b) in s.pair_queries(50) {
            assert_ne!(a, b);
        }
    }

    #[test]
    fn single_candidate_vocabulary_yields_duplicate_pairs() {
        // Regression: the distinct-term hunt used to loop forever when
        // only one term qualified. It must terminate with a duplicate.
        let idx = CorpusConfig { n_terms: 1, ..CorpusConfig::tiny(0x1) }
            .generate()
            .into_default_index();
        let mut s = QuerySampler::new(&idx, 5);
        for (a, b) in s.pair_queries(5) {
            assert_eq!(a, b, "only one term exists, so pairs must duplicate");
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let idx = test_index();
        let a = QuerySampler::new(&idx, 3).single_queries(20);
        let b = QuerySampler::new(&idx, 3).single_queries(20);
        assert_eq!(a, b);
    }

    #[test]
    fn df_bias_prefers_common_terms() {
        let idx = test_index();
        let mut s = QuerySampler::new(&idx, 4);
        let queries = s.single_queries(300);
        let mean_df: f64 = queries
            .iter()
            .map(|q| idx.term_id(q).map(|id| idx.term_info(id).df as f64).unwrap_or(0.0))
            .sum::<f64>()
            / queries.len() as f64;
        // Unbiased sampling over qualifying terms would give a much lower
        // mean df than df^alpha-weighted sampling.
        let uniform_mean: f64 = idx
            .terms()
            .iter()
            .filter(|t| t.df >= QuerySampler::DEFAULT_MIN_DF)
            .map(|t| t.df as f64)
            .sum::<f64>()
            / idx.terms().iter().filter(|t| t.df >= QuerySampler::DEFAULT_MIN_DF).count()
                as f64;
        assert!(mean_df > uniform_mean * 0.8, "df bias should not under-sample common terms");
    }

    #[test]
    #[should_panic(expected = "minimum document frequency")]
    fn empty_candidate_set_panics() {
        let idx = test_index();
        let _ = QuerySampler::with_bias(&idx, 0, 0.3, u64::MAX);
    }
}
