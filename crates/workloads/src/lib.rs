//! Synthetic workloads for the IIU reproduction.
//!
//! The paper evaluates on CC-News (29.9 M docs, 84.9 M terms) and ClueWeb12
//! (52.3 M docs, 133.2 M terms) with 100 single- and double-term queries
//! sampled from the TREC 2006 Terabyte Track. Neither corpus can ship with
//! this repository, so this crate generates corpora with the same
//! *statistical* levers the evaluation depends on:
//!
//! * Zipfian term document frequencies (list-length skew),
//! * bursty docID clustering (d-gap distribution — the input to every
//!   compression result),
//! * skewed term frequencies and log-normal document lengths (BM25 inputs).
//!
//! Presets [`CorpusConfig::ccnews_like`] and [`CorpusConfig::clueweb_like`]
//! mirror the two datasets' terms-per-document ratios and their relative
//! compressibility (CC-News compresses ~2.4× better than ClueWeb12 in
//! Table 2, which the presets reproduce through different clustering
//! levels). Everything is seeded and deterministic.

// Workload generation feeds the serving soaks, so its non-test code is
// held to the same no-unwrap standard as the serving layer; verify.sh
// runs this crate through the hardened clippy wall.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod corpus;
pub mod queries;
pub mod traffic;

pub use corpus::{CorpusConfig, GeneratedCorpus};
pub use queries::QuerySampler;
pub use traffic::{TimedQuery, TrafficConfig};
