//! Shared experiment context: the two synthetic datasets and their query
//! workloads (paper §5.1).

use iiu_index::{InvertedIndex, Partitioner, TermId};
use iiu_workloads::{CorpusConfig, QuerySampler};

/// Which dataset stand-in an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetName {
    /// CC-News-like preset (strongly clustered, short documents).
    CcNews,
    /// ClueWeb12-like preset (weakly clustered, long documents).
    ClueWeb,
}

impl DatasetName {
    /// Display label matching the paper's dataset names.
    pub fn label(self) -> &'static str {
        match self {
            DatasetName::CcNews => "CC-News",
            DatasetName::ClueWeb => "ClueWeb12",
        }
    }

    /// Both datasets, in the paper's order.
    pub fn all() -> [DatasetName; 2] {
        [DatasetName::CcNews, DatasetName::ClueWeb]
    }
}

/// One dataset with its sampled query workload: 100 single-term and 100
/// double-term queries, following §5.1's TREC-derived methodology.
#[derive(Debug)]
pub struct Dataset {
    /// Which preset this is.
    pub name: DatasetName,
    /// The built index (dynamic partitioning, `maxSize = 256`).
    pub index: InvertedIndex,
    /// Term ids of the single-term queries.
    pub singles: Vec<TermId>,
    /// Term-id pairs of the double-term (intersection/union) queries.
    pub pairs: Vec<(TermId, TermId)>,
}

/// Base document count; multiplied by `IIU_SCALE` (default 1.0).
pub const BASE_DOCS: u32 = 120_000;

/// Number of queries per type (the paper samples 100).
pub const N_QUERIES: usize = 100;

/// Reads the scale factor from `IIU_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("IIU_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

/// Experiment context holding both datasets.
#[derive(Debug)]
pub struct Ctx {
    /// The datasets, indexed by [`DatasetName`].
    datasets: Vec<Dataset>,
}

impl Ctx {
    /// Builds both datasets at the configured scale. Takes a few seconds.
    pub fn new() -> Self {
        Ctx { datasets: DatasetName::all().into_iter().map(build_dataset).collect() }
    }

    /// Builds only the CC-News-like dataset (for cheaper experiments).
    pub fn ccnews_only() -> Self {
        Ctx { datasets: vec![build_dataset(DatasetName::CcNews)] }
    }

    /// Accesses a dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset was not built in this context.
    pub fn dataset(&self, name: DatasetName) -> &Dataset {
        self.datasets
            .iter()
            .find(|d| d.name == name)
            .unwrap_or_else(|| panic!("dataset not built in this context"))
    }

    /// All datasets in this context.
    pub fn datasets(&self) -> &[Dataset] {
        &self.datasets
    }
}

impl Default for Ctx {
    fn default() -> Self {
        Ctx::new()
    }
}

fn build_dataset(name: DatasetName) -> Dataset {
    let n_docs = (f64::from(BASE_DOCS) * scale()) as u32;
    let cfg = match name {
        DatasetName::CcNews => CorpusConfig::ccnews_like(n_docs),
        DatasetName::ClueWeb => CorpusConfig::clueweb_like(n_docs),
    };
    let index = cfg.generate().into_default_index();
    // TREC query terms skew to common words; bias harder than the test
    // default, with a document-frequency floor that scales with the corpus
    // (real query terms appear in a sizable fraction of documents).
    let min_df = 64.max(n_docs as u64 / 100);
    let mut sampler = QuerySampler::with_bias(&index, 0x7EC + n_docs as u64, 0.5, min_df);
    let singles = sampler
        .single_queries(N_QUERIES)
        .iter()
        .map(|t| index.term_id(t).unwrap_or_else(|| panic!("sampled term exists")))
        .collect();
    let pairs = sampler
        .pair_queries(N_QUERIES)
        .iter()
        .map(|(a, b)| {
            (
                index.term_id(a).unwrap_or_else(|| panic!("sampled term exists")),
                index.term_id(b).unwrap_or_else(|| panic!("sampled term exists")),
            )
        })
        .collect();
    Dataset { name, index, singles, pairs }
}

/// Rebuilds a dataset's index with a different partitioner (Fig. 14,
/// ablations). Queries keep their term *names*, so ids are re-resolved.
pub fn rebuild_with_partitioner(d: &Dataset, partitioner: Partitioner) -> Dataset {
    let names: Vec<String> =
        d.singles.iter().map(|&t| d.index.term_info(t).term.clone()).collect();
    let pair_names: Vec<(String, String)> = d
        .pairs
        .iter()
        .map(|&(a, b)| (d.index.term_info(a).term.clone(), d.index.term_info(b).term.clone()))
        .collect();

    let n_docs = d.index.num_docs() as u32;
    let cfg = match d.name {
        DatasetName::CcNews => CorpusConfig::ccnews_like(n_docs),
        DatasetName::ClueWeb => CorpusConfig::clueweb_like(n_docs),
    };
    let index = cfg.generate().into_index(partitioner, d.index.params());
    let singles = names
        .iter()
        .map(|t| index.term_id(t).unwrap_or_else(|| panic!("same corpus, same terms")))
        .collect();
    let pairs = pair_names
        .iter()
        .map(|(a, b)| {
            (
                index.term_id(a).unwrap_or_else(|| panic!("same corpus")),
                index.term_id(b).unwrap_or_else(|| panic!("same corpus")),
            )
        })
        .collect();
    Dataset { name: d.name, index, singles, pairs }
}
