//! Result emission: aligned text tables on stdout, JSON under `results/`.

use std::fs;
use std::path::PathBuf;

/// Prints an aligned table with a title, header row and data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Writes an experiment's JSON to `results/<name>.json` (created under the
/// workspace root or the current directory).
pub fn write_json(name: &str, value: &serde_json::Value) {
    let dir = results_dir();
    let _ = fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.json"));
    match fs::write(
        &path,
        serde_json::to_string_pretty(value).unwrap_or_else(|e| panic!("serializable: {e:?}")),
    ) {
        Ok(()) => println!("[wrote {}]", path.display()),
        Err(e) => eprintln!("[could not write {}: {e}]", path.display()),
    }
}

fn results_dir() -> PathBuf {
    workspace_root().map_or_else(|| PathBuf::from("results"), |r| r.join("results"))
}

/// Walks up from the current directory to the workspace root (the
/// directory whose Cargo.toml has a `[workspace]` section).
pub fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").exists()
            && fs::read_to_string(dir.join("Cargo.toml"))
                .map(|s| s.contains("[workspace]"))
                .unwrap_or(false)
        {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Formats a nanosecond quantity with a readable unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}
