//! Minimal microbenchmark runner used by the `benches/` targets.
//!
//! The build environment has no registry access, so criterion is not
//! available; this module provides the small subset the benches need:
//! warmup, adaptive iteration-count calibration, multiple timed samples,
//! and a median-of-samples report in ns/iteration.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark's timing summary, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Median over all timed samples.
    pub median_ns: f64,
    /// Fastest sample (closest to the true cost on a noisy machine).
    pub min_ns: f64,
}

/// Times `f`, printing `name: <median> ns/iter (min <min>)` and returning
/// the summary. Runs a short warmup, calibrates the per-sample iteration
/// count to roughly `sample_ms`, then takes `samples` timed samples.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> Sample {
    bench_with(name, 12, 40, &mut f)
}

/// [`bench`] with explicit sample count and per-sample budget (ms).
pub fn bench_with<T>(
    name: &str,
    samples: usize,
    sample_ms: u64,
    f: &mut impl FnMut() -> T,
) -> Sample {
    // Warmup, and a first cost estimate from it.
    let warmup = Duration::from_millis(150);
    let start = Instant::now();
    let mut warm_iters = 0u64;
    while start.elapsed() < warmup {
        black_box(f());
        warm_iters += 1;
    }
    let est_ns = (start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
    let per_sample = ((sample_ms as f64 * 1e6 / est_ns) as u64).clamp(1, 10_000_000);

    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            t.elapsed().as_nanos() as f64 / per_sample as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median_ns = times[times.len() / 2];
    let min_ns = times[0];
    println!("{name}: {median_ns:.1} ns/iter (min {min_ns:.1}, {per_sample} iters/sample)");
    Sample { median_ns, min_ns }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_plausible_times() {
        let s = bench_with("noop", 3, 1, &mut || 1u64 + 1);
        assert!(s.median_ns >= 0.0);
        assert!(s.min_ns <= s.median_ns);
    }
}
