//! Experiment harness regenerating every table and figure of the IIU
//! paper's evaluation (§5), plus the ablations DESIGN.md calls out.
//!
//! Each experiment is a function in [`experiments`] that returns a
//! machine-readable [`serde_json::Value`] and pretty-prints the same rows
//! the paper reports. One thin binary per experiment lives in `src/bin/`;
//! `run_all` executes everything and writes `results/*.json`.
//!
//! Scale: the paper's corpora have tens of millions of documents; the
//! synthetic stand-ins default to a laptop-feasible scale and can be grown
//! with the `IIU_SCALE` environment variable (documents = base × scale).
//! Shapes (orderings, ratios, crossovers) — the reproduction target — are
//! stable across scales; absolute numbers are not expected to match a
//! 29.9 M-document corpus.

// The harness is experiment-runner code: panicking on a broken experiment
// setup is the right behavior — but via explicit `panic!` with a message,
// not unwrap()/expect(). The library crate sits on verify.sh's clippy
// deny wall like the serving crates; only the gate *binaries* (whose
// whole body is one experiment run) keep a crate-root allow.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod context;
pub mod experiments;
pub mod micro;
pub mod report;

pub use context::{Ctx, DatasetName};
pub use report::{print_table, workspace_root, write_json};
