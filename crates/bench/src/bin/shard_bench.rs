//! The document-sharding scaling gate (DESIGN.md §14).
//!
//! Runs pruned single/AND/OR queries at k = 10 on the same 60k-document
//! corpus as the decode gate, unsharded and through the sharded engine at
//! 1/2/4 shards, asserting bit-identical hits before timing anything.
//!
//! Two kinds of numbers come out:
//!
//! - **Wall-clock** `min_ns` per shard count, recorded as regression
//!   thresholds. The verify gate runs on whatever machine it lands on
//!   (often a single hardware thread), so wall clock is *not* expected to
//!   scale with shards — the pool adds real thread-handoff cost — but it
//!   must not regress past `fail_above_ratio`.
//! - **Modeled** latency from the cost model's critical path: the max
//!   over shards of the per-shard phase cost plus the cross-shard merge.
//!   This is the number the scaling claim is about, and `--check` fails
//!   unless the modeled 4-shard pruned single-term QPS at k = 10 is
//!   ≥2.5× the unsharded pruned baseline with a nonzero skipped-block
//!   tally surviving the shard split.
//!
//! Writes `BENCH_shard.json` at the workspace root. `--check
//! <thresholds.json>` compares the gated metrics against the committed
//! thresholds; `--write-thresholds <path>` emits a fresh thresholds file.
//! `verify.sh` runs the gate in `--release`; pass `--quick` to skip it.

// Experiment-runner code: panicking on a broken setup is the right
// behavior (same contract as the iiu-bench lib crate).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use iiu_baseline::{CpuEngine, ShardedEngine};
use iiu_bench::micro::bench_with;
use iiu_index::shard::ShardedIndex;
use iiu_index::InvertedIndex;
use iiu_workloads::{CorpusConfig, QuerySampler};
use serde_json::{json, Map, Value};

/// Queries sampled per shape.
const N_QUERIES: usize = 32;
/// Documents in the corpus (matches the decode gate: large enough that
/// lists span many blocks, so both pruning and sharding have real work).
const E2E_DOCS: u32 = 60_000;
/// Result-set size for every timed query.
const K: usize = 10;
/// Shard counts under test; 1 exercises the pool overhead alone.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
/// Sampling floor: only lists this long are worth fanning out (lighter
/// queries are dominated by fixed per-query overhead, not decode).
const MIN_DF: u64 = 4096;
/// Minimum modeled single-term QPS gain 4 shards must deliver over the
/// unsharded pruned baseline for `--check` to pass.
const MODELED_4SHARD_MIN_GAIN: f64 = 2.5;

fn qps(min_ns: f64) -> f64 {
    if min_ns > 0.0 {
        1e9 / min_ns
    } else {
        f64::INFINITY
    }
}

/// Per-(shape, shard-count) measurement: bit-identity proof first, then
/// modeled critical-path totals over the query set, then wall clock.
struct ShapeRun {
    wall_min_ns: f64,
    /// Sum of modeled critical-path latency over the `N_QUERIES` queries.
    modeled_total_ns: f64,
    blocks_skipped: u64,
    postings_skipped: u64,
}

fn run_sharded(
    eng: &ShardedEngine,
    plain: &mut CpuEngine,
    shape: &str,
    singles: &[String],
    pairs: &[(String, String)],
) -> ShapeRun {
    // Correctness first: the timed loop below only counts hits, so prove
    // bit-identity over the whole query set up front and collect the
    // modeled totals and skip tallies while at it.
    let mut modeled_total_ns = 0.0;
    let (mut blocks_skipped, mut postings_skipped) = (0u64, 0u64);
    for i in 0..N_QUERIES {
        let (a, b) = match shape {
            "single" => {
                let t = &singles[i];
                (
                    plain.search_single(t, K).expect("sampled term"),
                    eng.search_single(t, K).expect("sampled term"),
                )
            }
            "and" => {
                let (ta, tb) = &pairs[i];
                (
                    plain.search_intersection(ta, tb, K).expect("sampled terms"),
                    eng.search_intersection(ta, tb, K).expect("sampled terms"),
                )
            }
            _ => {
                let (ta, tb) = &pairs[i];
                (
                    plain.search_union(ta, tb, K).expect("sampled terms"),
                    eng.search_union(ta, tb, K).expect("sampled terms"),
                )
            }
        };
        assert_eq!(
            a.hits,
            b.hits,
            "sharded {shape} diverged from unsharded at query {i} \
             (n={})",
            eng.num_shards()
        );
        modeled_total_ns += b.latency_ns();
        blocks_skipped += b.counts.blocks_skipped;
        postings_skipped += b.counts.postings_skipped;
    }

    let mut i = 0usize;
    let n = eng.num_shards();
    let wall = bench_with(&format!("shard/{shape}/s{n}"), 8, 30, &mut || {
        i += 1;
        let idx = i - 1;
        match shape {
            "single" => {
                eng.search_single(&singles[idx % N_QUERIES], K).expect("term").hits.len()
            }
            "and" => {
                let (a, b) = &pairs[idx % N_QUERIES];
                eng.search_intersection(a, b, K).expect("terms").hits.len()
            }
            _ => {
                let (a, b) = &pairs[idx % N_QUERIES];
                eng.search_union(a, b, K).expect("terms").hits.len()
            }
        }
    });

    ShapeRun { wall_min_ns: wall.min_ns, modeled_total_ns, blocks_skipped, postings_skipped }
}

/// Modeled critical-path totals for the unsharded pruned baseline over
/// the same query set (the denominator of the scaling claim).
fn unsharded_modeled(
    plain: &mut CpuEngine,
    shape: &str,
    singles: &[String],
    pairs: &[(String, String)],
) -> f64 {
    let mut total = 0.0;
    for i in 0..N_QUERIES {
        let out = match shape {
            "single" => plain.search_single(&singles[i], K).expect("term"),
            "and" => {
                let (a, b) = &pairs[i];
                plain.search_intersection(a, b, K).expect("terms")
            }
            _ => {
                let (a, b) = &pairs[i];
                plain.search_union(a, b, K).expect("terms")
            }
        };
        total += out.latency_ns();
    }
    total
}

fn bench_shards(index: &InvertedIndex, gate: &mut Map) -> Value {
    // Sample only genuinely heavy lists (df ≥ MIN_DF). Intra-query
    // sharding is for decode-bound queries; a short tail list is
    // dominated by the fixed per-query overhead, which no amount of
    // parallelism can split, and a serving layer would not fan it out.
    let mut sampler = QuerySampler::with_bias(index, 42, 1.0, MIN_DF);
    let singles = sampler.single_queries(N_QUERIES);
    let pairs = sampler.pair_queries(N_QUERIES);

    let mut shapes = Map::new();
    for shape in ["single", "and", "or"] {
        let mut plain = CpuEngine::new(index).with_pruning(true);
        let base_modeled_ns = unsharded_modeled(&mut plain, shape, &singles, &pairs);

        let mut rows = Map::new();
        for n in SHARD_COUNTS {
            let split = Arc::new(ShardedIndex::split(index, n).expect("split"));
            let eng = ShardedEngine::new(split).with_pruning(true);
            let run = run_sharded(&eng, &mut plain, shape, &singles, &pairs);

            // Per-query modeled numbers: totals over N_QUERIES divided out.
            let modeled_ns = run.modeled_total_ns / N_QUERIES as f64;
            let base_ns = base_modeled_ns / N_QUERIES as f64;
            let modeled_gain = base_ns / modeled_ns.max(1.0);
            if shape == "single" {
                gate.insert(format!("sharded_single_k10_s{n}"), json!(run.wall_min_ns));
            }
            rows.insert(
                format!("s{n}"),
                json!({
                    "shards": n,
                    "wall_min_ns": run.wall_min_ns,
                    "wall_qps": qps(run.wall_min_ns),
                    "modeled_ns": modeled_ns,
                    "modeled_qps": qps(modeled_ns),
                    "unsharded_modeled_ns": base_ns,
                    "modeled_qps_gain": modeled_gain,
                    "blocks_skipped": run.blocks_skipped,
                    "postings_skipped": run.postings_skipped,
                }),
            );
            println!(
                "shard/{shape}/s{n}: modeled {:.0} ns/query ({:.2}x unsharded), \
                 {} blocks skipped",
                modeled_ns, modeled_gain, run.blocks_skipped
            );
        }
        shapes.insert(shape.to_string(), Value::Object(rows));
    }
    Value::Object(shapes)
}

/// Checks this run's gated metrics against committed thresholds. Returns
/// the list of violations (empty = pass).
fn check_thresholds(gate: &Map, thresholds: &Value) -> Vec<String> {
    let ratio = thresholds["fail_above_ratio"].as_f64().unwrap_or(1.25);
    let mut violations = Vec::new();
    let Some(baseline) = thresholds["min_ns"].as_object() else {
        return vec!["thresholds file has no \"min_ns\" object".to_string()];
    };
    for (name, base) in baseline {
        let Some(base_ns) = base.as_f64() else {
            violations.push(format!("threshold {name} is not a number"));
            continue;
        };
        match gate.get(name).and_then(Value::as_f64) {
            None => violations.push(format!("gated metric {name} missing from this run")),
            Some(measured) if measured > base_ns * ratio => violations.push(format!(
                "{name}: {measured:.1} ns exceeds {base_ns:.1} ns x {ratio} = {:.1} ns",
                base_ns * ratio
            )),
            Some(_) => {}
        }
    }
    violations
}

fn thresholds_from(gate: &Map, ratio: f64) -> Value {
    json!({
        "schema": "shard-gate-thresholds-v1",
        "comment": "min_ns baselines for the shard scaling gate; a run fails when measured > baseline * fail_above_ratio. Regenerate with: cargo run --release -p iiu-bench --bin shard_bench -- --write-thresholds BENCH_shard_thresholds.json",
        "fail_above_ratio": ratio,
        "min_ns": Value::Object(gate.clone()),
    })
}

fn main() -> ExitCode {
    let mut out_path: Option<PathBuf> = None;
    let mut check_path: Option<PathBuf> = None;
    let mut write_thresholds: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let path_arg = |args: &mut dyn Iterator<Item = String>| {
            args.next().map(PathBuf::from).unwrap_or_else(|| {
                eprintln!("shard_bench: {arg} needs a path argument");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--out" => out_path = Some(path_arg(&mut args)),
            "--check" => check_path = Some(path_arg(&mut args)),
            "--write-thresholds" => write_thresholds = Some(path_arg(&mut args)),
            other => {
                eprintln!(
                    "shard_bench: unknown argument {other} \
                     (expected --out/--check/--write-thresholds <path>)"
                );
                return ExitCode::from(2);
            }
        }
    }
    let root = iiu_bench::workspace_root().unwrap_or_else(|| PathBuf::from("."));
    let out_path = out_path.unwrap_or_else(|| root.join("BENCH_shard.json"));

    println!(
        "== sharded vs unsharded pruned top-k, {E2E_DOCS} docs, k={K}, \
         shards in {SHARD_COUNTS:?} =="
    );
    let index = CorpusConfig::ccnews_like(E2E_DOCS).generate().into_default_index();
    let mut gate = Map::new();
    let shapes = bench_shards(&index, &mut gate);

    let report = json!({
        "schema": "shard-bench-v1",
        "e2e_docs": E2E_DOCS,
        "k": K,
        "queries_per_shape": N_QUERIES,
        "shapes": shapes.clone(),
        "gate_min_ns": Value::Object(gate.clone()),
    });
    let text = serde_json::to_string_pretty(&report).expect("serializable");
    if let Err(e) = std::fs::write(&out_path, text + "\n") {
        eprintln!("shard_bench: cannot write {}: {e}", out_path.display());
        return ExitCode::from(2);
    }
    println!("[wrote {}]", out_path.display());

    if let Some(path) = write_thresholds {
        // Wall timings here run real OS threads and swing far more between
        // runs than decode_bench's single-threaded loops, so the wall gate
        // is a coarse backstop (the hard perf gate is the modeled scaling
        // check above) and gets a correspondingly looser ratio.
        let t =
            serde_json::to_string_pretty(&thresholds_from(&gate, 1.75)).expect("serializable");
        if let Err(e) = std::fs::write(&path, t + "\n") {
            eprintln!("shard_bench: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("[wrote {}]", path.display());
    }

    if let Some(path) = check_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("shard_bench: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let thresholds = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("shard_bench: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let mut violations = check_thresholds(&gate, &thresholds);
        // Latency thresholds alone can't prove sharding pays off; also
        // require the modeled 4-shard single-term win and that block-max
        // pruning still skips blocks after the split.
        let s4 = &shapes["single"]["s4"];
        let gain = s4["modeled_qps_gain"].as_f64().unwrap_or(0.0);
        if gain < MODELED_4SHARD_MIN_GAIN {
            violations.push(format!(
                "4-shard single k=10 modeled qps gain {gain:.2} below required \
                 {MODELED_4SHARD_MIN_GAIN}"
            ));
        }
        if s4["blocks_skipped"].as_u64().unwrap_or(0) == 0 {
            violations.push("4-shard single k=10 skipped no blocks".to_string());
        }
        if violations.is_empty() {
            println!("shard gate: OK ({} metrics within threshold)", gate.len());
        } else {
            for v in &violations {
                eprintln!("shard gate: REGRESSION: {v}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
