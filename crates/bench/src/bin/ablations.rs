//! Runs the DESIGN.md §5 ablations (traversal cache, partitioning, stream
//! buffers).

fn main() {
    let ctx = iiu_bench::Ctx::ccnews_only();
    let result = iiu_bench::experiments::ablations::run(&ctx);
    iiu_bench::write_json("ablations", &result);
}
