//! Regenerates the paper's fig14 (see DESIGN.md §4).

fn main() {
    let ctx = iiu_bench::Ctx::new();
    let result = iiu_bench::experiments::fig14::run(&ctx);
    iiu_bench::write_json("fig14_maxsize", &result);
}
