//! Regenerates the paper's table2 (see DESIGN.md §4).

fn main() {
    let ctx = iiu_bench::Ctx::new();
    let result = iiu_bench::experiments::table2::run(&ctx);
    iiu_bench::write_json("table2_compression", &result);
}
