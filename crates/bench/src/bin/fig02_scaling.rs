//! Regenerates the paper's fig02 (see DESIGN.md §4).

fn main() {
    let ctx = iiu_bench::Ctx::new();
    let result = iiu_bench::experiments::fig02::run(&ctx);
    iiu_bench::write_json("fig02_scaling", &result);
}
