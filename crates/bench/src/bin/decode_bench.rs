//! The hot-path decode perf gate (DESIGN.md §11).
//!
//! Times the bit-unpack kernels across widths 1..=32 — the retained
//! scalar reference (`unpack_all_scalar`, the pre-kernel "before") against
//! the word-aligned batch kernel (`unpack_into`, the "after") — plus
//! end-to-end single/AND/OR query throughput in the baseline engine,
//! where the "before" is a faithful replica of the old per-byte,
//! alloc-per-block query path kept in this binary as `mod legacy`.
//!
//! Also times block-max pruned top-k (DESIGN.md §13) against exhaustive
//! scoring on the same engine at k ∈ {10, 100, 1000} for single/AND/OR
//! queries, asserting bit-identical hits first. `--check` fails unless
//! pruning delivers ≥1.5× single-term QPS at k = 10 with a nonzero
//! skipped-block tally.
//!
//! Also runs the codec shootout (DESIGN.md §18): every integrated
//! [`BlockCodec`](iiu_index::BlockCodec) — bitpack, stream-vbyte,
//! simdbp128 — decodes the same blocks across the gated widths. Per-codec
//! decode times join the gated metrics, and `--check` additionally
//! requires that simdbp128 strictly beats the scalar word-window bitpack
//! baseline at equal-or-better compression, and that every codec's
//! bits/posting stays within the committed `max_bits_per_posting` bound.
//!
//! Writes `BENCH_decode.json` at the workspace root. With
//! `--check <thresholds.json>` it additionally compares the gated
//! `min_ns` metrics against the committed thresholds and exits nonzero on
//! a >25% regression (`fail_above_ratio` in the thresholds file). With
//! `--write-thresholds <path>` it emits a fresh thresholds file from this
//! run's measurements. `--smoke` runs only the one-block-per-codec decode
//! bit-identity check (no timing). `verify.sh` runs the gate in
//! `--release`; `--quick` verify runs just the smoke.

// Experiment-runner code: panicking on a broken setup is the right
// behavior (same contract as the iiu-bench lib crate).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::process::ExitCode;

use iiu_baseline::CpuEngine;
use iiu_bench::micro::bench_with;
use iiu_index::bitpack::{pack_all, unpack_all_scalar, unpack_into};
use iiu_index::{CodecId, InvertedIndex, Posting};
use iiu_workloads::{CorpusConfig, QuerySampler};
use serde_json::{json, Map, Value};

/// Values per kernel timing buffer.
const KERNEL_N: usize = 4096;
/// Queries sampled per end-to-end query type.
const N_QUERIES: usize = 32;
/// Documents in the end-to-end corpus (small enough for the verify gate,
/// large enough that lists span many blocks and block-max pruning has
/// real skip opportunities).
const E2E_DOCS: u32 = 60_000;
/// Widths whose batch kernel time is gated (the §5-relevant 4–20 range).
const GATED_WIDTHS: [u8; 5] = [4, 8, 12, 16, 20];
/// Result-set sizes for the pruned-vs-exhaustive top-k comparison.
const PRUNED_KS: [usize; 3] = [10, 100, 1000];
/// Minimum single-term QPS gain pruning must deliver at k = 10 for
/// `--check` to pass.
const PRUNED_SINGLE_K10_MIN_GAIN: f64 = 1.5;
/// Postings per codec-shootout block (a realistic full block).
const SHOOTOUT_BLOCK: usize = 256;
/// Blocks decoded per timed codec-shootout iteration.
const SHOOTOUT_BLOCKS: usize = 16;
/// tf field width used throughout the codec shootout.
const SHOOTOUT_TF_BITS: u8 = 4;

/// The old query path, kept verbatim as the perf gate's "before"
/// reference: per-byte bit extraction, a fresh `Vec` per decoded block,
/// and a one-block memo instead of the decoded-block cache.
mod legacy {
    use iiu_baseline::{top_k, Hit};
    use iiu_index::block::EncodedList;
    use iiu_index::score::term_score_fixed;
    use iiu_index::{DocId, InvertedIndex, Posting};

    fn read(bytes: &[u8], cursor: &mut usize, width: u8) -> u32 {
        let mut out: u32 = 0;
        let mut got: u8 = 0;
        while got < width {
            let byte_idx = *cursor / 8;
            let bit_idx = (*cursor % 8) as u8;
            let avail = 8 - bit_idx;
            let take = avail.min(width - got);
            let mask = ((1u16 << take) - 1) as u8;
            let chunk = (bytes[byte_idx] >> bit_idx) & mask;
            out |= u32::from(chunk) << got;
            got += take;
            *cursor += take as usize;
        }
        out
    }

    pub fn decode_block(list: &EncodedList, idx: usize) -> Vec<Posting> {
        let meta = list.metas()[idx];
        let skip = list.skips()[idx];
        let payload = list.payload();
        let mut cursor = meta.offset as usize * 8;
        let mut out = Vec::with_capacity(meta.count as usize);
        let mut prev = skip;
        for i in 0..meta.count {
            let gap = read(payload, &mut cursor, meta.dn_bits);
            let tf = read(payload, &mut cursor, meta.tf_bits);
            let doc = if i == 0 { skip } else { prev + gap };
            out.push(Posting::new(doc, tf));
            prev = doc;
        }
        out
    }

    fn decode_full(list: &EncodedList) -> Vec<Posting> {
        let mut out = Vec::new();
        for b in 0..list.num_blocks() {
            out.extend(decode_block(list, b));
        }
        out
    }

    fn intersect(short: &EncodedList, long: &EncodedList) -> Vec<(DocId, u32, u32)> {
        let short_postings = decode_full(short);
        let skips = long.skips();
        let mut out = Vec::new();
        let mut cached_block: Option<(usize, Vec<Posting>)> = None;
        for p in &short_postings {
            let mut lo = 0usize;
            let mut hi = skips.len();
            while lo < hi {
                let mid = (lo + hi) / 2;
                if skips[mid] <= p.doc_id {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            let Some(block_idx) = lo.checked_sub(1) else {
                continue;
            };
            let hit = matches!(&cached_block, Some((idx, _)) if *idx == block_idx);
            if !hit {
                cached_block = Some((block_idx, decode_block(long, block_idx)));
            }
            let block = &cached_block.as_ref().expect("decoded above").1;
            let mut lo = 0usize;
            let mut hi = block.len();
            while lo < hi {
                let mid = (lo + hi) / 2;
                if block[mid].doc_id < p.doc_id {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            if lo < block.len() && block[lo].doc_id == p.doc_id {
                out.push((p.doc_id, p.tf, block[lo].tf));
            }
        }
        out
    }

    fn union(a: &EncodedList, b: &EncodedList) -> Vec<(DocId, u32, u32)> {
        let (pa, pb) = (decode_full(a), decode_full(b));
        let mut out = Vec::with_capacity(pa.len() + pb.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < pa.len() && j < pb.len() {
            match pa[i].doc_id.cmp(&pb[j].doc_id) {
                std::cmp::Ordering::Less => {
                    out.push((pa[i].doc_id, pa[i].tf, 0));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push((pb[j].doc_id, 0, pb[j].tf));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push((pa[i].doc_id, pa[i].tf, pb[j].tf));
                    i += 1;
                    j += 1;
                }
            }
        }
        for p in &pa[i..] {
            out.push((p.doc_id, p.tf, 0));
        }
        for p in &pb[j..] {
            out.push((p.doc_id, 0, p.tf));
        }
        out
    }

    pub fn search_single(index: &InvertedIndex, term: &str, k: usize) -> Vec<Hit> {
        let id = index.term_id(term).expect("sampled term");
        let idf = index.term_info(id).idf_bar;
        let hits: Vec<Hit> = decode_full(index.encoded_list(id))
            .iter()
            .map(|p| Hit {
                doc_id: p.doc_id,
                score: term_score_fixed(idf, index.dl_bar(p.doc_id), p.tf).to_f64(),
            })
            .collect();
        top_k(hits, k)
    }

    pub fn search_intersection(
        index: &InvertedIndex,
        term_a: &str,
        term_b: &str,
        k: usize,
    ) -> Vec<Hit> {
        let ia = index.term_id(term_a).expect("sampled term");
        let ib = index.term_id(term_b).expect("sampled term");
        let (si, li) =
            if index.term_info(ia).df <= index.term_info(ib).df { (ia, ib) } else { (ib, ia) };
        let idf_s = index.term_info(si).idf_bar;
        let idf_l = index.term_info(li).idf_bar;
        let hits: Vec<Hit> = intersect(index.encoded_list(si), index.encoded_list(li))
            .iter()
            .map(|&(doc_id, tf_s, tf_l)| {
                let dl = index.dl_bar(doc_id);
                let s = term_score_fixed(idf_s, dl, tf_s)
                    .saturating_add(term_score_fixed(idf_l, dl, tf_l));
                Hit { doc_id, score: s.to_f64() }
            })
            .collect();
        top_k(hits, k)
    }

    pub fn search_union(
        index: &InvertedIndex,
        term_a: &str,
        term_b: &str,
        k: usize,
    ) -> Vec<Hit> {
        let ia = index.term_id(term_a).expect("sampled term");
        let ib = index.term_id(term_b).expect("sampled term");
        let idf_a = index.term_info(ia).idf_bar;
        let idf_b = index.term_info(ib).idf_bar;
        let hits: Vec<Hit> = union(index.encoded_list(ia), index.encoded_list(ib))
            .iter()
            .map(|&(doc_id, tf_a, tf_b)| {
                let dl = index.dl_bar(doc_id);
                let mut s = iiu_index::Fixed::ZERO;
                if tf_a > 0 {
                    s = s.saturating_add(term_score_fixed(idf_a, dl, tf_a));
                }
                if tf_b > 0 {
                    s = s.saturating_add(term_score_fixed(idf_b, dl, tf_b));
                }
                Hit { doc_id, score: s.to_f64() }
            })
            .collect();
        top_k(hits, k)
    }
}

/// Deterministic test values (LCG) masked to `width` bits.
fn kernel_values(width: u8) -> Vec<u32> {
    let mask = if width >= 32 { u32::MAX } else { (1u32 << width) - 1 };
    let mut x = 0x2545_f491_4f6c_dd1du64;
    (0..KERNEL_N)
        .map(|_| {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            ((x >> 33) as u32) & mask
        })
        .collect()
}

fn bench_kernels(gate: &mut Map) -> Vec<Value> {
    let mut rows = Vec::new();
    for width in 1..=32u8 {
        let values = kernel_values(width);
        let bytes = pack_all(&values, width);
        let scalar = bench_with(&format!("unpack/scalar/w{width:02}"), 6, 12, &mut || {
            unpack_all_scalar(&bytes, KERNEL_N, width)
        });
        let mut out: Vec<u32> = Vec::with_capacity(KERNEL_N);
        // The gated metric is a min over samples; extra samples keep a
        // noisy-neighbor spike from inflating it past the threshold.
        let batch = bench_with(&format!("unpack/batch/w{width:02}"), 6, 24, &mut || {
            out.clear();
            unpack_into(&bytes, 0, KERNEL_N, width, &mut out);
            out.len()
        });
        assert_eq!(out, values, "batch kernel must decode the packed values");
        let speedup = scalar.min_ns / batch.min_ns;
        if GATED_WIDTHS.contains(&width) {
            gate.insert(format!("unpack_batch_w{width:02}"), json!(batch.min_ns));
        }
        rows.push(json!({
            "width": width,
            "values": KERNEL_N,
            "scalar_min_ns": scalar.min_ns,
            "scalar_median_ns": scalar.median_ns,
            "batch_min_ns": batch.min_ns,
            "batch_median_ns": batch.median_ns,
            "speedup_min": speedup,
        }));
    }
    rows
}

fn qps(min_ns: f64) -> f64 {
    if min_ns > 0.0 {
        1e9 / min_ns
    } else {
        f64::INFINITY
    }
}

fn bench_e2e(index: &InvertedIndex, gate: &mut Map) -> Value {
    // Bias sampling toward high-df terms (weight ∝ df, df >= 64): the gate
    // measures decode-bound throughput, and short tail lists spend their
    // time in scoring/top-k rather than in the kernels under test.
    let mut sampler = QuerySampler::with_bias(index, 42, 1.0, 64);
    let singles = sampler.single_queries(N_QUERIES);
    let pairs = sampler.pair_queries(N_QUERIES);
    let mut engine = CpuEngine::new(index);

    let mut e2e = Map::new();
    let run = |name: &str,
               gate: &mut Map,
               before: &mut dyn FnMut(usize) -> usize,
               after: &mut dyn FnMut(usize) -> usize| {
        let mut i = 0usize;
        let b = bench_with(&format!("e2e/{name}/before"), 8, 30, &mut || {
            i += 1;
            before(i - 1)
        });
        let mut j = 0usize;
        let a = bench_with(&format!("e2e/{name}/after"), 8, 30, &mut || {
            j += 1;
            after(j - 1)
        });
        gate.insert(format!("e2e_{name}"), json!(a.min_ns));
        json!({
            "before_min_ns": b.min_ns,
            "after_min_ns": a.min_ns,
            "before_qps": qps(b.min_ns),
            "after_qps": qps(a.min_ns),
            "qps_gain": b.min_ns / a.min_ns,
        })
    };

    let single = run(
        "single",
        gate,
        &mut |i| legacy::search_single(index, &singles[i % N_QUERIES], 10).len(),
        &mut |i| {
            engine.search_single(&singles[i % N_QUERIES], 10).expect("sampled term").hits.len()
        },
    );
    e2e.insert("single".to_string(), single);

    let mut engine = CpuEngine::new(index);
    let and = run(
        "and",
        gate,
        &mut |i| {
            let (a, b) = &pairs[i % N_QUERIES];
            legacy::search_intersection(index, a, b, 10).len()
        },
        &mut |i| {
            let (a, b) = &pairs[i % N_QUERIES];
            engine.search_intersection(a, b, 10).expect("sampled terms").hits.len()
        },
    );
    e2e.insert("and".to_string(), and);

    let mut engine = CpuEngine::new(index);
    let or = run(
        "or",
        gate,
        &mut |i| {
            let (a, b) = &pairs[i % N_QUERIES];
            legacy::search_union(index, a, b, 10).len()
        },
        &mut |i| {
            let (a, b) = &pairs[i % N_QUERIES];
            engine.search_union(a, b, 10).expect("sampled terms").hits.len()
        },
    );
    e2e.insert("or".to_string(), or);

    Value::Object(e2e)
}

/// Pruned-vs-exhaustive top-k on the same engine and queries: the only
/// difference is block-max pruning (DESIGN.md §13). Asserts bit-identical
/// hits before timing anything, tallies the skip counters, and gates the
/// pruned latency of every shape at k = 10.
fn bench_pruned(index: &InvertedIndex, gate: &mut Map) -> Value {
    let mut sampler = QuerySampler::with_bias(index, 42, 1.0, 64);
    let singles = sampler.single_queries(N_QUERIES);
    let pairs = sampler.pair_queries(N_QUERIES);

    let mut shapes = Map::new();
    for shape in ["single", "and", "or"] {
        let mut rows = Map::new();
        for k in PRUNED_KS {
            let mut exh = CpuEngine::new(index);
            let mut pru = CpuEngine::new(index).with_pruning(true);

            // Correctness first: the timed runs below only count hits, so
            // prove bit-identity over the whole query set up front, and
            // collect the logical skip tallies while at it.
            let (mut blocks_skipped, mut postings_skipped) = (0u64, 0u64);
            let query = |exh: &mut CpuEngine, pru: &mut CpuEngine, i: usize| {
                let (a, b) = match shape {
                    "single" => {
                        let t = &singles[i % N_QUERIES];
                        (
                            exh.search_single(t, k).expect("sampled term"),
                            pru.search_single(t, k).expect("sampled term"),
                        )
                    }
                    "and" => {
                        let (ta, tb) = &pairs[i % N_QUERIES];
                        (
                            exh.search_intersection(ta, tb, k).expect("sampled terms"),
                            pru.search_intersection(ta, tb, k).expect("sampled terms"),
                        )
                    }
                    _ => {
                        let (ta, tb) = &pairs[i % N_QUERIES];
                        (
                            exh.search_union(ta, tb, k).expect("sampled terms"),
                            pru.search_union(ta, tb, k).expect("sampled terms"),
                        )
                    }
                };
                assert_eq!(a.hits, b.hits, "pruned {shape} diverged at query {i} k={k}");
                (b.counts.blocks_skipped, b.counts.postings_skipped)
            };
            for i in 0..N_QUERIES {
                let (bs, ps) = query(&mut exh, &mut pru, i);
                blocks_skipped += bs;
                postings_skipped += ps;
            }

            let mut i = 0usize;
            let e = bench_with(&format!("pruned/{shape}/k{k}/exhaustive"), 8, 30, &mut || {
                i += 1;
                let idx = i - 1;
                match shape {
                    "single" => exh
                        .search_single(&singles[idx % N_QUERIES], k)
                        .expect("term")
                        .hits
                        .len(),
                    "and" => {
                        let (a, b) = &pairs[idx % N_QUERIES];
                        exh.search_intersection(a, b, k).expect("terms").hits.len()
                    }
                    _ => {
                        let (a, b) = &pairs[idx % N_QUERIES];
                        exh.search_union(a, b, k).expect("terms").hits.len()
                    }
                }
            });
            let mut j = 0usize;
            let p = bench_with(&format!("pruned/{shape}/k{k}/pruned"), 8, 30, &mut || {
                j += 1;
                let idx = j - 1;
                match shape {
                    "single" => pru
                        .search_single(&singles[idx % N_QUERIES], k)
                        .expect("term")
                        .hits
                        .len(),
                    "and" => {
                        let (a, b) = &pairs[idx % N_QUERIES];
                        pru.search_intersection(a, b, k).expect("terms").hits.len()
                    }
                    _ => {
                        let (a, b) = &pairs[idx % N_QUERIES];
                        pru.search_union(a, b, k).expect("terms").hits.len()
                    }
                }
            });

            if k == 10 {
                gate.insert(format!("e2e_pruned_{shape}_k10"), json!(p.min_ns));
            }
            rows.insert(
                format!("k{k}"),
                json!({
                    "k": k,
                    "exhaustive_min_ns": e.min_ns,
                    "pruned_min_ns": p.min_ns,
                    "exhaustive_qps": qps(e.min_ns),
                    "pruned_qps": qps(p.min_ns),
                    "qps_gain": e.min_ns / p.min_ns,
                    "blocks_skipped": blocks_skipped,
                    "postings_skipped": postings_skipped,
                }),
            );
        }
        shapes.insert(shape.to_string(), Value::Object(rows));
    }
    Value::Object(shapes)
}

/// Deterministic shootout values (LCG) masked to `width` bits, seeded per
/// block so every block carries different data.
fn shootout_values(seed: u64, n: usize, width: u8) -> Vec<u32> {
    let mask = if width >= 32 { u32::MAX } else { (1u32 << width) - 1 };
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            ((x >> 33) as u32) & mask
        })
        .collect()
}

/// One codec's encoding of the shared shootout blocks for one gap width.
struct CodecBlocks {
    payloads: Vec<Vec<u8>>,
    skips: Vec<u32>,
    total_bytes: usize,
}

/// Encodes `blocks` shootout blocks under `codec`. Every codec sees the
/// same gap/tf values (per-block seeded), so decoded postings must agree
/// bit for bit across codecs.
fn encode_shootout(codec: CodecId, gap_bits: u8, blocks: usize) -> CodecBlocks {
    let ops = codec.ops();
    let mut payloads = Vec::with_capacity(blocks);
    let mut skips = Vec::with_capacity(blocks);
    let mut total_bytes = 0usize;
    for b in 0..blocks {
        let mut gaps =
            shootout_values((b as u64) << 8 | u64::from(gap_bits), SHOOTOUT_BLOCK, gap_bits);
        // The first docID travels in the block's skip value.
        gaps[0] = 0;
        let tfs = shootout_values((b as u64) << 16 | 0x7F, SHOOTOUT_BLOCK, SHOOTOUT_TF_BITS);
        let mut payload = Vec::new();
        ops.encode_block(&gaps, &tfs, gap_bits, SHOOTOUT_TF_BITS, &mut payload);
        total_bytes += payload.len();
        payloads.push(payload);
        skips.push(b as u32 * 8 + 1);
    }
    CodecBlocks { payloads, skips, total_bytes }
}

/// Decodes every block in `cb` into `out` (cleared first). Panics on a
/// decode error — these are self-produced blocks.
fn decode_shootout(codec: CodecId, cb: &CodecBlocks, gap_bits: u8, out: &mut Vec<Posting>) {
    out.clear();
    for (payload, &skip) in cb.payloads.iter().zip(&cb.skips) {
        codec
            .ops()
            .try_decode_block_into(
                payload,
                SHOOTOUT_BLOCK,
                gap_bits,
                SHOOTOUT_TF_BITS,
                skip,
                out,
            )
            .expect("self-produced shootout block");
    }
}

/// The codec shootout (DESIGN.md §18): every integrated [`BlockCodec`]
/// decodes the same blocks; per-codec decode time per gated width goes
/// into the gate map and per-codec aggregates (throughput, bits/posting)
/// feed the `--check` rules — SIMD must strictly beat the scalar
/// word-window baseline at equal-or-better compression.
fn bench_codec_shootout(gate: &mut Map) -> Value {
    let postings_per_iter = (SHOOTOUT_BLOCK * SHOOTOUT_BLOCKS) as f64;
    let mut per_width = Vec::new();
    let mut totals: Vec<(CodecId, f64, usize)> = // (codec, total_min_ns, total_bytes)
        CodecId::ALL.iter().map(|&c| (c, 0.0, 0usize)).collect();

    for width in GATED_WIDTHS {
        let sets: Vec<CodecBlocks> =
            CodecId::ALL.iter().map(|&c| encode_shootout(c, width, SHOOTOUT_BLOCKS)).collect();

        // Differential check before timing: all codecs must decode the
        // shared blocks to bit-identical postings.
        let mut reference = Vec::new();
        decode_shootout(CodecId::BitPack, &sets[0], width, &mut reference);
        for (i, codec) in CodecId::ALL.into_iter().enumerate().skip(1) {
            let mut got = Vec::new();
            decode_shootout(codec, &sets[i], width, &mut got);
            assert_eq!(got, reference, "{codec} decode diverged from bitpack at w{width}");
        }

        let mut row = Map::new();
        row.insert("width".into(), json!(width));
        for (i, codec) in CodecId::ALL.into_iter().enumerate() {
            let cb = &sets[i];
            let mut out: Vec<Posting> = Vec::with_capacity(SHOOTOUT_BLOCK * SHOOTOUT_BLOCKS);
            let timing = bench_with(&format!("codec/{codec}/w{width:02}"), 6, 24, &mut || {
                decode_shootout(codec, cb, width, &mut out);
                out.len()
            });
            gate.insert(format!("codec_{codec}_w{width:02}"), json!(timing.min_ns));
            totals[i].1 += timing.min_ns;
            totals[i].2 += cb.total_bytes;
            row.insert(
                codec.name().to_string(),
                json!({
                    "min_ns": timing.min_ns,
                    "median_ns": timing.median_ns,
                    "mpostings_per_s": postings_per_iter / timing.min_ns * 1e3,
                    "payload_bytes": cb.total_bytes,
                    "payload_bits_per_posting": cb.total_bytes as f64 * 8.0 / postings_per_iter,
                }),
            );
        }
        per_width.push(Value::Object(row));
    }

    let mut aggregate = Map::new();
    for (codec, total_ns, total_bytes) in totals {
        let total_postings = postings_per_iter * GATED_WIDTHS.len() as f64;
        aggregate.insert(
            codec.name().to_string(),
            json!({
                "total_min_ns": total_ns,
                "mpostings_per_s": total_postings / total_ns * 1e3,
                "payload_bytes": total_bytes,
                "payload_bits_per_posting": total_bytes as f64 * 8.0 / total_postings,
            }),
        );
    }
    json!({
        "block_postings": SHOOTOUT_BLOCK,
        "blocks": SHOOTOUT_BLOCKS,
        "tf_bits": SHOOTOUT_TF_BITS,
        "widths": Value::Array(per_width),
        "aggregate": Value::Object(aggregate),
    })
}

/// `--smoke`: one block per codec per width, encode + decode + cross-codec
/// bit-identity, no timing. The cheap decode sanity check `verify.sh
/// --quick` runs.
fn run_smoke() -> ExitCode {
    for width in GATED_WIDTHS {
        let mut reference = Vec::new();
        for codec in CodecId::ALL {
            let cb = encode_shootout(codec, width, 1);
            let mut got = Vec::new();
            decode_shootout(codec, &cb, width, &mut got);
            assert_eq!(got.len(), SHOOTOUT_BLOCK);
            if codec == CodecId::BitPack {
                reference = got;
            } else {
                assert_eq!(
                    got, reference,
                    "{codec} smoke decode diverged from bitpack at w{width}"
                );
            }
        }
    }
    println!(
        "codec smoke: OK ({} codecs x {} widths, one {}-posting block each, bit-identical)",
        CodecId::ALL.len(),
        GATED_WIDTHS.len(),
        SHOOTOUT_BLOCK
    );
    ExitCode::SUCCESS
}

/// Checks this run's gated metrics against committed thresholds. Returns
/// the list of violations (empty = pass).
fn check_thresholds(gate: &Map, thresholds: &Value) -> Vec<String> {
    let ratio = thresholds["fail_above_ratio"].as_f64().unwrap_or(1.25);
    let mut violations = Vec::new();
    let Some(baseline) = thresholds["min_ns"].as_object() else {
        return vec!["thresholds file has no \"min_ns\" object".to_string()];
    };
    for (name, base) in baseline {
        let Some(base_ns) = base.as_f64() else {
            violations.push(format!("threshold {name} is not a number"));
            continue;
        };
        match gate.get(name).and_then(Value::as_f64) {
            None => violations.push(format!("gated metric {name} missing from this run")),
            Some(measured) if measured > base_ns * ratio => violations.push(format!(
                "{name}: {measured:.1} ns exceeds {base_ns:.1} ns x {ratio} = {:.1} ns",
                base_ns * ratio
            )),
            Some(_) => {}
        }
    }
    violations
}

fn thresholds_from(gate: &Map, shootout: &Value, ratio: f64) -> Value {
    // Compression is deterministic, so its bound is exact: a codec change
    // that costs even one payload byte per shootout posting set trips the
    // gate until the threshold is regenerated deliberately.
    let mut max_bits = Map::new();
    if let Some(agg) = shootout["aggregate"].as_object() {
        for (codec, stats) in agg {
            if let Some(b) = stats["payload_bits_per_posting"].as_f64() {
                max_bits.insert(codec.clone(), json!(b));
            }
        }
    }
    json!({
        "schema": "decode-gate-thresholds-v2",
        "comment": "min_ns baselines for the decode perf gate; a run fails when measured > baseline * fail_above_ratio, when a codec's shootout payload exceeds max_bits_per_posting, or when simdbp128 fails to strictly beat the bitpack decode baseline. Regenerate with: cargo run --release -p iiu-bench --bin decode_bench -- --write-thresholds BENCH_decode_thresholds.json",
        "fail_above_ratio": ratio,
        "min_ns": Value::Object(gate.clone()),
        "max_bits_per_posting": Value::Object(max_bits),
    })
}

fn main() -> ExitCode {
    let mut out_path: Option<PathBuf> = None;
    let mut check_path: Option<PathBuf> = None;
    let mut write_thresholds: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let path_arg = |args: &mut dyn Iterator<Item = String>| {
            args.next().map(PathBuf::from).unwrap_or_else(|| {
                eprintln!("decode_bench: {arg} needs a path argument");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--out" => out_path = Some(path_arg(&mut args)),
            "--check" => check_path = Some(path_arg(&mut args)),
            "--write-thresholds" => write_thresholds = Some(path_arg(&mut args)),
            "--smoke" => return run_smoke(),
            other => {
                eprintln!(
                    "decode_bench: unknown argument {other} \
                     (expected --smoke or --out/--check/--write-thresholds <path>)"
                );
                return ExitCode::from(2);
            }
        }
    }
    let root = iiu_bench::workspace_root().unwrap_or_else(|| PathBuf::from("."));
    let out_path = out_path.unwrap_or_else(|| root.join("BENCH_decode.json"));

    println!("== decode kernels: scalar (before) vs batch (after), {KERNEL_N} values ==");
    let mut gate = Map::new();
    let kernels = bench_kernels(&mut gate);

    println!("== end-to-end baseline engine, {E2E_DOCS} docs, {N_QUERIES} queries/type ==");
    let index = CorpusConfig::ccnews_like(E2E_DOCS).generate().into_default_index();
    let e2e = bench_e2e(&index, &mut gate);

    println!("== pruned vs exhaustive top-k, k in {PRUNED_KS:?} ==");
    let pruned = bench_pruned(&index, &mut gate);

    println!(
        "== codec shootout: {} codecs x widths {GATED_WIDTHS:?}, \
         {SHOOTOUT_BLOCKS} x {SHOOTOUT_BLOCK}-posting blocks ==",
        CodecId::ALL.len()
    );
    let shootout = bench_codec_shootout(&mut gate);

    let widths_4_20: Vec<f64> = kernels
        .iter()
        .filter(|r| (4..=20).contains(&r["width"].as_u64().unwrap_or(0)))
        .map(|r| r["speedup_min"].as_f64().unwrap_or(0.0))
        .collect();
    let min_speedup_4_20 = widths_4_20.iter().copied().fold(f64::INFINITY, f64::min);

    let report = json!({
        "schema": "decode-bench-v1",
        "kernel_values": KERNEL_N,
        "e2e_docs": E2E_DOCS,
        "kernels": Value::Array(kernels),
        "min_kernel_speedup_widths_4_20": min_speedup_4_20,
        "e2e": e2e,
        "pruned": pruned.clone(),
        "codec_shootout": shootout.clone(),
        "gate_min_ns": Value::Object(gate.clone()),
    });
    let text = serde_json::to_string_pretty(&report).expect("serializable");
    if let Err(e) = std::fs::write(&out_path, text + "\n") {
        eprintln!("decode_bench: cannot write {}: {e}", out_path.display());
        return ExitCode::from(2);
    }
    println!("[wrote {}]", out_path.display());

    if let Some(path) = write_thresholds {
        let t = serde_json::to_string_pretty(&thresholds_from(&gate, &shootout, 1.25))
            .expect("serializable");
        if let Err(e) = std::fs::write(&path, t + "\n") {
            eprintln!("decode_bench: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("[wrote {}]", path.display());
    }

    if let Some(path) = check_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("decode_bench: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let thresholds = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("decode_bench: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let mut violations = check_thresholds(&gate, &thresholds);
        // Latency thresholds alone can't prove pruning pays off; also
        // require the k=10 single-term win and that blocks were skipped.
        let k10 = &pruned["single"]["k10"];
        let gain = k10["qps_gain"].as_f64().unwrap_or(0.0);
        if gain < PRUNED_SINGLE_K10_MIN_GAIN {
            violations.push(format!(
                "pruned single k=10 qps_gain {gain:.2} below required {PRUNED_SINGLE_K10_MIN_GAIN}"
            ));
        }
        if k10["blocks_skipped"].as_u64().unwrap_or(0) == 0 {
            violations.push("pruned single k=10 skipped no blocks".to_string());
        }
        // Codec shootout rules. The SIMD codec must strictly beat the
        // scalar word-window baseline on decode time over the gated
        // widths, at equal-or-better compression — its whole reason to
        // exist. Compression bounds are per-codec and deterministic.
        let agg = &shootout["aggregate"];
        let bp_ns = agg["bitpack"]["total_min_ns"].as_f64().unwrap_or(0.0);
        let sbp_ns = agg["simdbp128"]["total_min_ns"].as_f64().unwrap_or(f64::INFINITY);
        // NaN (a missing/garbled aggregate) must fail the gate, so ask
        // for a definite Less rather than comparing with >=.
        if sbp_ns.partial_cmp(&bp_ns) != Some(std::cmp::Ordering::Less) {
            violations.push(format!(
                "simdbp128 decode ({sbp_ns:.1} ns) does not strictly beat the bitpack \
                 word-window baseline ({bp_ns:.1} ns)"
            ));
        }
        let bp_bytes = agg["bitpack"]["payload_bytes"].as_u64().unwrap_or(0);
        let sbp_bytes = agg["simdbp128"]["payload_bytes"].as_u64().unwrap_or(u64::MAX);
        if sbp_bytes > bp_bytes {
            violations.push(format!(
                "simdbp128 payload ({sbp_bytes} B) exceeds bitpack's ({bp_bytes} B)"
            ));
        }
        if let Some(max_bits) = thresholds["max_bits_per_posting"].as_object() {
            for (codec, bound) in max_bits {
                let bound = bound.as_f64().unwrap_or(f64::INFINITY);
                match agg[codec.as_str()]["payload_bits_per_posting"].as_f64() {
                    None => violations
                        .push(format!("codec {codec} missing from this run's shootout")),
                    Some(bits) if bits > bound => violations.push(format!(
                        "codec {codec}: {bits:.3} bits/posting exceeds committed {bound:.3}"
                    )),
                    Some(_) => {}
                }
            }
        }
        if violations.is_empty() {
            println!("decode gate: OK ({} metrics within threshold)", gate.len());
        } else {
            for v in &violations {
                eprintln!("decode gate: REGRESSION: {v}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
