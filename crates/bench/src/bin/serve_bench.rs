//! The serve tail-latency gate (DESIGN.md §17).
//!
//! Offers the same ≥100k-query Zipf-skewed stream to the serving layer
//! twice at equal offered load — a closed loop keeping `CONCURRENCY`
//! queries outstanding, the device path sabotaged throughout so every
//! answer runs the sharded CPU path — once with the fixed topology
//! (every query fans out across all shards) and once with the hybrid
//! scheduler (cheap queries answer inline, heavy ones fan out).
//!
//! Reported per mode: p50/p99/p999 service latency from the serving
//! layer's own log₂-µs histogram (interpolated, with the top-bucket
//! lower-bound flag surfaced — see `iiu_serve::Quantile`) plus
//! closed-loop throughput. Before timing counts for anything, the two
//! modes' hit streams are proven bit-identical to each other over all
//! queries, and spot-checked against an unsharded exhaustive reference.
//!
//! `--check` fails unless the hybrid p99 is strictly below the fixed
//! p99 (the tentpole claim: per-query parallelism routing buys tail
//! latency at equal load), the hybrid run used both routes, and the
//! committed latency thresholds hold. Writes `BENCH_serve.json` at the
//! workspace root; `--write-thresholds <path>` emits a fresh thresholds
//! file. `verify.sh` runs the gate in `--release`; `--quick` skips it.

// Experiment-runner code: panicking on a broken setup is the right
// behavior (same contract as the other gate binaries).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use iiu_core::{estimate_query_cost, CpuSearchEngine, Hit, Query, SearchEngine};
use iiu_index::InvertedIndex;
use iiu_serve::{
    BreakerConfig, FaultPlan, Quantile, QueryService, RetryPolicy, SchedulerConfig,
    ServeConfig, ShardPoolConfig,
};
use iiu_workloads::{traffic, CorpusConfig, TrafficConfig};
use serde_json::{json, Map, Value};

/// Queries offered per mode (the gate requires ≥100k).
const N_QUERIES: usize = 100_000;
/// Documents in the corpus: large enough that heavy lists span many
/// blocks (so intra-query fan-out has real decode work to split) while
/// keeping two 100k-query runs inside the verify budget.
const DOCS: u32 = 20_000;
/// Result-set size for every query.
const K: usize = 10;
/// Zipf popularity skew of the offered stream (1.0 ≈ web traffic).
const ZIPF_SKEW: f64 = 1.0;
/// Closed-loop window: queries kept outstanding at all times. Equal
/// offered load means both modes see the identical stream at this same
/// concurrency; only the scheduling policy differs.
const CONCURRENCY: usize = 256;
/// Serve workers draining the admission queue.
const WORKERS: usize = 4;
/// Document shards on the CPU path.
const SHARDS: usize = 4;
/// Shard-task pool threads (pinned, so runs compare across machines).
const POOL_THREADS: usize = 4;
/// Every `SPOT_EVERY`-th query's hits are checked against an unsharded
/// exhaustive reference run.
const SPOT_EVERY: usize = 97;

/// One mode's measurements over the full stream.
struct ModeRun {
    p50: Quantile,
    p99: Quantile,
    p999: Quantile,
    /// Closed-loop answered throughput over the run's wall clock.
    qps: f64,
    /// Order-sensitive digest of every answer's `(doc_id, score)` stream.
    hits_digest: u64,
    sched_inline: u64,
    sched_fanout: u64,
}

/// SplitMix64-style digest step; folds one value into the running hash.
fn mix(h: u64, v: u64) -> u64 {
    let mut x = (h ^ v).wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn digest_hits(mut h: u64, hits: &[Hit]) -> u64 {
    h = mix(h, hits.len() as u64);
    for hit in hits {
        h = mix(h, u64::from(hit.doc_id));
        h = mix(h, hit.score.to_bits());
    }
    h
}

fn mode_config(hybrid: bool, heavy_df_threshold: u64) -> ServeConfig {
    ServeConfig {
        workers: WORKERS,
        queue_capacity: 2 * CONCURRENCY,
        default_deadline: Duration::from_secs(60),
        // One sabotaged device attempt, no retries, then the breaker
        // opens for the rest of the run: the whole stream lands on the
        // sharded CPU path, which is what the gate is about.
        retry: RetryPolicy { max_attempts: 1, ..RetryPolicy::default() },
        breaker: BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_secs(3_600),
            probe_successes: 2,
        },
        fault: FaultPlan { burst: Some((0, u64::MAX)), seed: 0x5E12, ..FaultPlan::NONE },
        pruned_cpu_fallback: true,
        shards: SHARDS,
        shard_pool: ShardPoolConfig {
            pool_threads: POOL_THREADS,
            ..ShardPoolConfig::default()
        },
        scheduler: SchedulerConfig {
            hybrid,
            heavy_df_threshold,
            ..SchedulerConfig::default()
        },
        ..ServeConfig::default()
    }
}

/// Runs the full stream through one service configuration, closed-loop
/// at `CONCURRENCY` outstanding, spot-checking hits against `reference`.
fn run_mode(
    index: &Arc<InvertedIndex>,
    texts: &[String],
    hybrid: bool,
    heavy_df_threshold: u64,
    reference: &mut CpuSearchEngine,
) -> ModeRun {
    let label = if hybrid { "hybrid" } else { "fixed" };
    let mut svc =
        QueryService::start(Arc::clone(index), mode_config(hybrid, heavy_df_threshold));
    let mut digest = 0u64;
    let started = Instant::now();
    for (wave_no, wave) in texts.chunks(CONCURRENCY).enumerate() {
        let pending: Vec<_> = wave
            .iter()
            .map(|text| {
                let q = Query::parse(text).expect("traffic query parses");
                svc.submit(q, K).expect("closed-loop wave within queue capacity")
            })
            .collect();
        for (i, p) in pending.into_iter().enumerate() {
            let resp = p.wait().expect("no faults on the CPU path: every query answers");
            digest = digest_hits(digest, &resp.hits);
            let seq = wave_no * CONCURRENCY + i;
            if seq.is_multiple_of(SPOT_EVERY) {
                let q = Query::parse(&wave[i]).expect("traffic query parses");
                let expect = reference.search(&q, K).expect("reference search succeeds").hits;
                assert_eq!(
                    resp.hits, expect,
                    "{label} answer diverged from the unsharded reference \
                     (query {seq}: {:?})",
                    wave[i]
                );
            }
        }
    }
    let elapsed = started.elapsed();
    svc.shutdown();
    let h = svc.health();

    assert_eq!(h.answered(), texts.len() as u64, "{label}: queries lost: {h}");
    assert_eq!(h.rejected_total(), 0, "{label}: closed loop must never shed: {h}");
    let (p50, p99, p999) = (
        h.p50.expect("latencies recorded"),
        h.p99.expect("latencies recorded"),
        h.p999.expect("latencies recorded"),
    );
    let qps = h.answered() as f64 / elapsed.as_secs_f64();
    println!(
        "serve/{label}: p50={p50} p99={p99} p999={p999} ({qps:.0} qps closed-loop, \
         inline={} fanout={})",
        h.sched_inline, h.sched_fanout
    );
    ModeRun {
        p50,
        p99,
        p999,
        qps,
        hits_digest: digest,
        sched_inline: h.sched_inline,
        sched_fanout: h.sched_fanout,
    }
}

fn quantile_us(q: Quantile) -> f64 {
    q.value.as_secs_f64() * 1e6
}

fn mode_json(run: &ModeRun) -> Value {
    json!({
        "p50_us": quantile_us(run.p50),
        "p99_us": quantile_us(run.p99),
        "p999_us": quantile_us(run.p999),
        "p999_is_lower_bound": run.p999.is_lower_bound,
        "closed_loop_qps": run.qps,
        "sched_inline": run.sched_inline,
        "sched_fanout": run.sched_fanout,
    })
}

/// Checks this run's gated latencies against committed thresholds.
/// Returns the list of violations (empty = pass).
fn check_thresholds(gate: &Map, thresholds: &Value) -> Vec<String> {
    let ratio = thresholds["fail_above_ratio"].as_f64().unwrap_or(2.0);
    let mut violations = Vec::new();
    let Some(baseline) = thresholds["max_us"].as_object() else {
        return vec!["thresholds file has no \"max_us\" object".to_string()];
    };
    for (name, base) in baseline {
        let Some(base_us) = base.as_f64() else {
            violations.push(format!("threshold {name} is not a number"));
            continue;
        };
        match gate.get(name).and_then(Value::as_f64) {
            None => violations.push(format!("gated metric {name} missing from this run")),
            Some(measured) if measured > base_us * ratio => violations.push(format!(
                "{name}: {measured:.1} us exceeds {base_us:.1} us x {ratio} = {:.1} us",
                base_us * ratio
            )),
            Some(_) => {}
        }
    }
    violations
}

fn thresholds_from(gate: &Map, ratio: f64) -> Value {
    json!({
        "schema": "serve-gate-thresholds-v1",
        "comment": "max_us baselines for the serve tail-latency gate; a run fails when measured > baseline * fail_above_ratio. The relational gate (hybrid p99 < fixed p99) is machine-independent and always enforced by --check. Regenerate with: cargo run --release -p iiu-bench --bin serve_bench -- --write-thresholds BENCH_serve_thresholds.json",
        "fail_above_ratio": ratio,
        "max_us": Value::Object(gate.clone()),
    })
}

fn main() -> ExitCode {
    let mut out_path: Option<PathBuf> = None;
    let mut check_path: Option<PathBuf> = None;
    let mut write_thresholds: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let path_arg = |args: &mut dyn Iterator<Item = String>| {
            args.next().map(PathBuf::from).unwrap_or_else(|| {
                eprintln!("serve_bench: {arg} needs a path argument");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--out" => out_path = Some(path_arg(&mut args)),
            "--check" => check_path = Some(path_arg(&mut args)),
            "--write-thresholds" => write_thresholds = Some(path_arg(&mut args)),
            other => {
                eprintln!(
                    "serve_bench: unknown argument {other} \
                     (expected --out/--check/--write-thresholds <path>)"
                );
                return ExitCode::from(2);
            }
        }
    }
    let root = iiu_bench::workspace_root().unwrap_or_else(|| PathBuf::from("."));
    let out_path = out_path.unwrap_or_else(|| root.join("BENCH_serve.json"));

    println!(
        "== serve tail latency: {N_QUERIES} Zipf(s={ZIPF_SKEW}) queries, {DOCS} docs, \
         k={K}, {CONCURRENCY} outstanding, {WORKERS} workers, {SHARDS} shards, \
         {POOL_THREADS} pool threads =="
    );
    let index = Arc::new(CorpusConfig::ccnews_like(DOCS).generate().into_default_index());
    let stream = traffic::open_loop(
        &index,
        &TrafficConfig {
            rate_qps: 1e9, // arrival times unused: the closed loop self-paces
            n_queries: N_QUERIES,
            unknown_term_rate: 0.0,
            seed: 0x5E12_BE4C,
            zipf_skew: ZIPF_SKEW,
            ..TrafficConfig::default()
        },
    );
    let texts: Vec<String> = stream.iter().map(|tq| tq.text.clone()).collect();

    // Heavy threshold = median longest-list size over the *offered*
    // stream, so the hybrid run is guaranteed to exercise both routes on
    // this traffic (the sampler is df-biased; a dictionary-wide median
    // would classify everything as heavy).
    let mut maxes: Vec<u64> = texts
        .iter()
        .map(|t| {
            let q = Query::parse(t).expect("traffic query parses");
            estimate_query_cost(&index, &q.terms()).max_list_postings
        })
        .collect();
    maxes.sort_unstable();
    let heavy_df_threshold = maxes[maxes.len() / 2];
    println!("heavy-query threshold: longest list >= {heavy_df_threshold} postings");

    let mut reference = CpuSearchEngine::new(&index);
    let fixed = run_mode(&index, &texts, false, heavy_df_threshold, &mut reference);
    let hybrid = run_mode(&index, &texts, true, heavy_df_threshold, &mut reference);

    // Scheduling must change placement only, never results: the two
    // modes' full 100k-answer hit streams are digest-identical.
    assert_eq!(
        fixed.hits_digest, hybrid.hits_digest,
        "hybrid scheduling changed query results"
    );
    println!(
        "hit streams bit-identical across modes (digest {:016x}); \
         p99 gain {:.2}x",
        fixed.hits_digest,
        quantile_us(fixed.p99) / quantile_us(hybrid.p99).max(1e-9),
    );

    let mut gate = Map::new();
    gate.insert("fixed_p99_us".to_string(), json!(quantile_us(fixed.p99)));
    gate.insert("hybrid_p99_us".to_string(), json!(quantile_us(hybrid.p99)));
    gate.insert("hybrid_p999_us".to_string(), json!(quantile_us(hybrid.p999)));

    let modes = json!({ "fixed": mode_json(&fixed), "hybrid": mode_json(&hybrid) });
    let report = json!({
        "schema": "serve-bench-v1",
        "docs": DOCS,
        "queries": N_QUERIES,
        "zipf_skew": ZIPF_SKEW,
        "k": K,
        "concurrency": CONCURRENCY,
        "workers": WORKERS,
        "shards": SHARDS,
        "pool_threads": POOL_THREADS,
        "heavy_df_threshold": heavy_df_threshold,
        "modes": modes,
        "p99_gain": quantile_us(fixed.p99) / quantile_us(hybrid.p99).max(1e-9),
        "gate_max_us": Value::Object(gate.clone()),
    });
    let text = serde_json::to_string_pretty(&report).expect("serializable");
    if let Err(e) = std::fs::write(&out_path, text + "\n") {
        eprintln!("serve_bench: cannot write {}: {e}", out_path.display());
        return ExitCode::from(2);
    }
    println!("[wrote {}]", out_path.display());

    if let Some(path) = write_thresholds {
        // Service latencies run real thread handoffs under a saturated
        // closed loop and swing more than single-threaded micro numbers,
        // so the absolute ceilings are a coarse backstop (the hard gate
        // is the relational hybrid-beats-fixed check) with a loose ratio.
        let t =
            serde_json::to_string_pretty(&thresholds_from(&gate, 2.0)).expect("serializable");
        if let Err(e) = std::fs::write(&path, t + "\n") {
            eprintln!("serve_bench: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("[wrote {}]", path.display());
    }

    if let Some(path) = check_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("serve_bench: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let thresholds = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("serve_bench: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let mut violations = check_thresholds(&gate, &thresholds);
        // The tentpole claim, machine-independent: at equal offered load
        // the hybrid scheduler must strictly beat the fixed topology on
        // p99 — and must have done so by actually routing, not by
        // degenerating into a single mode.
        if quantile_us(hybrid.p99) >= quantile_us(fixed.p99) {
            violations.push(format!(
                "hybrid p99 {} not strictly below fixed p99 {}",
                hybrid.p99, fixed.p99
            ));
        }
        if hybrid.sched_inline == 0 || hybrid.sched_fanout == 0 {
            violations.push(format!(
                "hybrid run degenerated to one route (inline={} fanout={})",
                hybrid.sched_inline, hybrid.sched_fanout
            ));
        }
        if hybrid.p999.is_lower_bound {
            violations.push(format!(
                "hybrid p999 {} fell in the histogram's open-ended top bucket \
                 (≈101 days): the service wedged",
                hybrid.p999
            ));
        }
        if violations.is_empty() {
            println!("serve gate: OK (hybrid p99 {} < fixed p99 {})", hybrid.p99, fixed.p99);
        } else {
            for v in &violations {
                eprintln!("serve gate: REGRESSION: {v}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
