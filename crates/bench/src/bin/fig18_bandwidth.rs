//! Regenerates the paper's fig18 (see DESIGN.md §4).

fn main() {
    let ctx = iiu_bench::Ctx::new();
    let result = iiu_bench::experiments::fig18::run(&ctx);
    iiu_bench::write_json("fig18_bandwidth", &result);
}
