//! Regenerates the paper's fig17 (see DESIGN.md §4).

fn main() {
    let ctx = iiu_bench::Ctx::new();
    let result = iiu_bench::experiments::fig17::run(&ctx);
    iiu_bench::write_json("fig17_breakdown", &result);
}
