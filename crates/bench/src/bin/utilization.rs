//! Per-unit pipeline utilization study.

fn main() {
    let ctx = iiu_bench::Ctx::ccnews_only();
    let result = iiu_bench::experiments::utilization::run(&ctx);
    iiu_bench::write_json("utilization", &result);
}
