//! Document-ordering compression study (DESIGN.md §8).

fn main() {
    let ctx = iiu_bench::Ctx::ccnews_only();
    let result = iiu_bench::experiments::reordering::run(&ctx);
    iiu_bench::write_json("reordering", &result);
}
