//! Regenerates the paper's fig01 (see DESIGN.md §4).

fn main() {
    let ctx = iiu_bench::Ctx::new();
    let result = iiu_bench::experiments::fig01::run(&ctx);
    iiu_bench::write_json("fig01_breakdown", &result);
}
