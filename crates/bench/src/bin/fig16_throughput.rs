//! Regenerates the paper's fig16 (see DESIGN.md §4).

fn main() {
    let ctx = iiu_bench::Ctx::new();
    let result = iiu_bench::experiments::fig16::run(&ctx);
    iiu_bench::write_json("fig16_throughput", &result);
}
