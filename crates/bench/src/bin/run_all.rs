//! Runs every experiment in DESIGN.md §4's index, writing one JSON per
//! table/figure plus a combined `results/all.json`.

use serde_json::json;

fn main() {
    let t0 = std::time::Instant::now();
    let ctx = iiu_bench::Ctx::new();
    eprintln!("[datasets built in {:.1?}]", t0.elapsed());
    let mut all = serde_json::Map::new();
    macro_rules! run {
        ($name:literal, $module:ident) => {{
            let t = std::time::Instant::now();
            let v = iiu_bench::experiments::$module::run(&ctx);
            iiu_bench::write_json($name, &v);
            eprintln!("[{} finished in {:.1?}]", $name, t.elapsed());
            all.insert($name.to_string(), v);
        }};
    }
    run!("fig01_breakdown", fig01);
    run!("fig02_scaling", fig02);
    run!("table2_compression", table2);
    run!("fig14_maxsize", fig14);
    run!("fig15_latency", fig15);
    run!("fig16_throughput", fig16);
    run!("fig17_breakdown", fig17);
    run!("fig18_bandwidth", fig18);
    run!("fig19_hbm", fig19);
    run!("table3_area_power", table3);
    run!("fig20_energy", fig20);
    run!("hybrid_parallelism", hybrid);
    run!("load_latency", load_latency);
    run!("reordering", reordering);
    run!("utilization", utilization);
    run!("ablations", ablations);
    iiu_bench::write_json("all", &json!(all));
    eprintln!("[run_all finished in {:.1?}]", t0.elapsed());
}
