//! Regenerates the paper's table3 (see DESIGN.md §4).

fn main() {
    let ctx = iiu_bench::Ctx::new();
    let result = iiu_bench::experiments::table3::run(&ctx);
    iiu_bench::write_json("table3_area_power", &result);
}
