//! Regenerates the paper's fig15 (see DESIGN.md §4).

fn main() {
    let ctx = iiu_bench::Ctx::new();
    let result = iiu_bench::experiments::fig15::run(&ctx);
    iiu_bench::write_json("fig15_latency", &result);
}
