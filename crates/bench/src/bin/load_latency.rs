//! Latency-vs-offered-load serving curves for both systems.

fn main() {
    let ctx = iiu_bench::Ctx::ccnews_only();
    let result = iiu_bench::experiments::load_latency::run(&ctx);
    iiu_bench::write_json("load_latency", &result);
}
