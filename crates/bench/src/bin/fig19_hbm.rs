//! Regenerates the paper's Fig. 19 (HBM scalability; see DESIGN.md §4).

fn main() {
    let ctx = iiu_bench::Ctx::ccnews_only();
    let result = iiu_bench::experiments::fig19::run(&ctx);
    iiu_bench::write_json("fig19_hbm", &result);
}
