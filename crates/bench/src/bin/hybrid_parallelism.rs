//! Quantifies the paper's Fig. 12c hybrid interconnect configuration.

fn main() {
    let ctx = iiu_bench::Ctx::ccnews_only();
    let result = iiu_bench::experiments::hybrid::run(&ctx);
    iiu_bench::write_json("hybrid_parallelism", &result);
}
