//! The mmap storage perf gate (DESIGN.md §19).
//!
//! Serializes a medium synthetic corpus to a temp file, loads it twice —
//! materialized on the heap (`deserialize`) and zero-copy through the
//! mapped loader (`storage::map_index`) — and proves the two sources are
//! interchangeable before timing anything: the indexes compare equal and
//! block-max pruned top-k returns bit-identical hits for single/AND/OR
//! queries across both.
//!
//! Timed sections:
//!
//! - **Block decode**: every block of the highest-df lists decoded
//!   straight out of the warm mapping vs out of owned heap bytes. This is
//!   the zero-copy hot path — after the lazy record CRC is paid once, a
//!   warm mapped decode must stay within a small factor of in-RAM
//!   (`max_warm_ratio` in the thresholds file, checked within-run so
//!   machine speed cancels out).
//! - **End-to-end**: pruned top-k per query shape on both sources, same
//!   within-run warm-ratio rule plus committed `min_ns` baselines.
//! - **Cold page cache**: the file's pages are evicted
//!   (`posix_fadvise(DONTNEED)`) and one query sweep is timed against a
//!   fresh mapping. Advisory only — containers may ignore the advice —
//!   so the report records whether eviction worked but `--check` does not
//!   gate on cold numbers.
//!
//! The **RSS gate** re-execs this binary (`--rss-child`): the child
//! streams a ≥1M-doc corpus to disk with `generate_streamed` (peak memory
//! independent of the posting count), serves pruned top-k through a fresh
//! mapping of it, and reports its own `VmHWM`. `--check` fails if the
//! child's peak RSS exceeds the committed `rss_max_kb` — the bound that
//! proves gen → mmap-serve never materializes the corpus.
//!
//! Writes `BENCH_mmap.json` at the workspace root. `--check
//! <thresholds.json>` compares against committed thresholds and exits
//! nonzero on regression; `--write-thresholds <path>` emits a fresh
//! thresholds file; `--smoke` runs only the source-equivalence checks on
//! a small corpus (no timing, no RSS child) — the `verify.sh --quick`
//! variant.

// Experiment-runner code: panicking on a broken setup is the right
// behavior (same contract as the iiu-bench lib crate).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use iiu_baseline::CpuEngine;
use iiu_bench::micro::bench_with;
use iiu_index::{storage, Bm25Params, CodecId, InvertedIndex, Partitioner, Posting, TermId};
use iiu_workloads::{CorpusConfig, QuerySampler};
use serde_json::{json, Map, Value};

/// Documents in the timed corpus (matches the decode gate's e2e corpus).
const E2E_DOCS: u32 = 60_000;
/// Queries sampled per shape.
const N_QUERIES: usize = 32;
/// High-df lists in the block-decode micro.
const DECODE_LISTS: usize = 4;
/// Documents in the RSS-gate corpus (the ≥1M-doc acceptance bound).
const RSS_DOCS: u32 = 1_000_000;
/// Vocabulary of the RSS-gate corpus — lighter than the presets'
/// `n_docs / 2` so the gate finishes in bench time while still writing
/// millions of postings.
const RSS_TERMS: u32 = 100_000;
/// Queries the RSS child serves through the mapping per shape.
const RSS_QUERIES: usize = 32;

/// The RSS-gate corpus: ≥1M docs with a vocabulary light enough for the
/// verify gate (~8M postings, tens of MiB on disk).
fn rss_corpus() -> CorpusConfig {
    CorpusConfig {
        n_docs: RSS_DOCS,
        n_terms: RSS_TERMS,
        zipf_s: 0.65,
        max_df_fraction: 0.05,
        avg_doc_len: 400,
        mean_tf: 1.6,
        clustering: 0.9,
        seed: 0x11A9,
    }
}

/// Scratch temp-file path unique to this process.
fn temp_index_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("iiu-mmap-bench-{tag}-{}.iiu", std::process::id()))
}

/// Peak resident set size of this process in KiB (`VmHWM` from
/// `/proc/self/status`); `None` off Linux.
fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Term ids of the `n` highest-df lists.
fn top_df_terms(index: &InvertedIndex, n: usize) -> Vec<TermId> {
    let mut ids: Vec<TermId> = (0..index.num_terms() as TermId).collect();
    ids.sort_by_key(|&id| std::cmp::Reverse(index.term_info(id).df));
    ids.truncate(n);
    ids
}

/// Decodes every block of every list in `ids`, panicking on any decode
/// error (these are self-produced indexes). Returns total postings.
fn decode_lists(index: &InvertedIndex, ids: &[TermId], out: &mut Vec<Posting>) -> usize {
    let mut total = 0usize;
    for &id in ids {
        let list = index.encoded_list(id);
        for b in 0..list.num_blocks() {
            out.clear();
            list.try_decode_block_into(b, out).expect("self-produced block");
            total += out.len();
        }
    }
    total
}

/// Runs the pruned query of `shape` number `i` on `engine`.
fn run_query(
    engine: &mut CpuEngine,
    shape: &str,
    singles: &[String],
    pairs: &[(String, String)],
    i: usize,
    k: usize,
) -> Vec<iiu_baseline::Hit> {
    match shape {
        "single" => engine.search_single(&singles[i % singles.len()], k),
        "and" => {
            let (a, b) = &pairs[i % pairs.len()];
            engine.search_intersection(a, b, k)
        }
        _ => {
            let (a, b) = &pairs[i % pairs.len()];
            engine.search_union(a, b, k)
        }
    }
    .expect("sampled terms resolve")
    .hits
}

/// Proves the two sources interchangeable: index equality plus
/// bit-identical pruned hits for every shape. Panics on divergence.
fn assert_source_equivalence(
    heap: &InvertedIndex,
    mapped: &InvertedIndex,
    singles: &[String],
    pairs: &[(String, String)],
) {
    assert!(mapped.source().is_mapped() && !heap.source().is_mapped());
    assert_eq!(mapped, heap, "mapped load must equal heap load");
    let mut eh = CpuEngine::new(heap).with_pruning(true);
    let mut em = CpuEngine::new(mapped).with_pruning(true);
    for shape in ["single", "and", "or"] {
        for i in 0..N_QUERIES {
            let h = run_query(&mut eh, shape, singles, pairs, i, 10);
            let m = run_query(&mut em, shape, singles, pairs, i, 10);
            assert_eq!(h, m, "mmap {shape} hits diverged from heap at query {i}");
        }
    }
}

/// `--rss-child`: stream the ≥1M-doc corpus to disk, serve pruned top-k
/// through a fresh mapping, and report this process's peak RSS as JSON on
/// stdout. Run in a child process so the parent's own allocations don't
/// pollute `VmHWM`.
fn run_rss_child() -> ExitCode {
    let path = temp_index_path("rss");
    let cfg = rss_corpus();
    let file = std::fs::File::create(&path).expect("create RSS temp file");
    let (_, stats) = cfg
        .generate_streamed(
            std::io::BufWriter::new(file),
            Partitioner::default(),
            Bm25Params::default(),
            CodecId::BitPack,
        )
        .expect("streamed generation");
    let file_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);

    let index = storage::map_index(&path).expect("map streamed index");
    let mut sampler = QuerySampler::with_bias(&index, 42, 1.0, 64);
    let singles = sampler.single_queries(RSS_QUERIES);
    let pairs = sampler.pair_queries(RSS_QUERIES);
    let mut engine = CpuEngine::new(&index).with_pruning(true);
    let mut hits = 0usize;
    for shape in ["single", "and", "or"] {
        for i in 0..RSS_QUERIES {
            hits += run_query(&mut engine, shape, &singles, &pairs, i, 10).len();
        }
    }
    assert!(hits > 0, "RSS-gate queries returned no hits");

    let resident_kb = index.source().resident_bytes().map(|b| b / 1024);
    drop(engine);
    drop(index);
    let _ = std::fs::remove_file(&path);
    let report = json!({
            "docs": stats.docs,
            "terms": stats.terms,
            "postings": stats.postings,
            "file_bytes": file_bytes,
            "mapped_resident_kb": resident_kb,
            "vm_hwm_kb": vm_hwm_kb(),
            "hits": hits,
    });
    println!("{}", serde_json::to_string(&report).expect("serializable"));
    ExitCode::SUCCESS
}

/// Spawns the RSS child and parses its JSON report.
fn run_rss_gate() -> Value {
    let exe = std::env::current_exe().expect("own path");
    let out = std::process::Command::new(exe)
        .arg("--rss-child")
        .output()
        .expect("spawn RSS child");
    assert!(
        out.status.success(),
        "RSS child failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).expect("child stdout is UTF-8");
    let line = text.lines().last().expect("child printed a report");
    serde_json::from_str(line).expect("child report parses")
}

/// `--smoke`: source equivalence only, on a small corpus. No timing, no
/// RSS child.
fn run_smoke() -> ExitCode {
    let path = temp_index_path("smoke");
    let index = CorpusConfig::tiny(0x5EED).generate().into_default_index();
    let bytes = iiu_index::io::serialize(&index).expect("serialize");
    std::fs::write(&path, &bytes).expect("write temp index");
    let heap = iiu_index::io::deserialize(&bytes).expect("heap load");
    let mapped = storage::map_index(&path).expect("mapped load");
    let mut sampler = QuerySampler::with_bias(&heap, 42, 1.0, 8);
    let singles = sampler.single_queries(N_QUERIES);
    let pairs = sampler.pair_queries(N_QUERIES);
    assert_source_equivalence(&heap, &mapped, &singles, &pairs);
    let _ = std::fs::remove_file(&path);
    println!(
        "mmap smoke: OK (heap and mapped loads equal, {} queries x 3 shapes bit-identical)",
        N_QUERIES
    );
    ExitCode::SUCCESS
}

/// Checks this run's gated metrics against committed thresholds (same
/// `min_ns`/`fail_above_ratio` schema as the decode gate).
fn check_min_ns(gate: &Map, thresholds: &Value) -> Vec<String> {
    let ratio = thresholds["fail_above_ratio"].as_f64().unwrap_or(1.25);
    let mut violations = Vec::new();
    let Some(baseline) = thresholds["min_ns"].as_object() else {
        return vec!["thresholds file has no \"min_ns\" object".to_string()];
    };
    for (name, base) in baseline {
        let Some(base_ns) = base.as_f64() else {
            violations.push(format!("threshold {name} is not a number"));
            continue;
        };
        match gate.get(name).and_then(Value::as_f64) {
            None => violations.push(format!("gated metric {name} missing from this run")),
            Some(measured) if measured > base_ns * ratio => violations.push(format!(
                "{name}: {measured:.1} ns exceeds {base_ns:.1} ns x {ratio} = {:.1} ns",
                base_ns * ratio
            )),
            Some(_) => {}
        }
    }
    violations
}

fn main() -> ExitCode {
    let mut out_path: Option<PathBuf> = None;
    let mut check_path: Option<PathBuf> = None;
    let mut write_thresholds: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let path_arg = |args: &mut dyn Iterator<Item = String>| {
            args.next().map(PathBuf::from).unwrap_or_else(|| {
                eprintln!("mmap_bench: {arg} needs a path argument");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--out" => out_path = Some(path_arg(&mut args)),
            "--check" => check_path = Some(path_arg(&mut args)),
            "--write-thresholds" => write_thresholds = Some(path_arg(&mut args)),
            "--smoke" => return run_smoke(),
            "--rss-child" => return run_rss_child(),
            other => {
                eprintln!(
                    "mmap_bench: unknown argument {other} \
                     (expected --smoke or --out/--check/--write-thresholds <path>)"
                );
                return ExitCode::from(2);
            }
        }
    }
    let root = iiu_bench::workspace_root().unwrap_or_else(|| PathBuf::from("."));
    let out_path = out_path.unwrap_or_else(|| root.join("BENCH_mmap.json"));

    println!("== mmap vs heap: {E2E_DOCS}-doc corpus, {N_QUERIES} queries/shape ==");
    let path = temp_index_path("e2e");
    let bytes = {
        let index = CorpusConfig::ccnews_like(E2E_DOCS).generate().into_default_index();
        iiu_index::io::serialize(&index).expect("serialize")
    };
    std::fs::write(&path, &bytes).expect("write temp index");
    let heap = iiu_index::io::deserialize(&bytes).expect("heap load");
    drop(bytes);
    let mapped = storage::map_index(&path).expect("mapped load");

    let mut sampler = QuerySampler::with_bias(&heap, 42, 1.0, 64);
    let singles = sampler.single_queries(N_QUERIES);
    let pairs = sampler.pair_queries(N_QUERIES);

    // Correctness before timing — this sweep also warms every mapped page
    // and pays each record's lazy CRC exactly once.
    assert_source_equivalence(&heap, &mapped, &singles, &pairs);
    println!("source equivalence: OK (equal indexes, bit-identical pruned hits)");

    let mut gate = Map::new();

    // Block decode straight out of the warm mapping vs owned heap bytes.
    let ids = top_df_terms(&heap, DECODE_LISTS);
    let mut scratch: Vec<Posting> = Vec::new();
    let decoded = decode_lists(&heap, &ids, &mut scratch);
    let heap_dec = bench_with("decode/heap", 6, 24, &mut || {
        decode_lists(&heap, &ids, &mut scratch)
    });
    let mmap_dec = bench_with("decode/mmap", 6, 24, &mut || {
        decode_lists(&mapped, &ids, &mut scratch)
    });
    gate.insert("block_decode_heap".into(), json!(heap_dec.min_ns));
    gate.insert("block_decode_mmap".into(), json!(mmap_dec.min_ns));
    let decode = json!({
        "lists": DECODE_LISTS,
        "postings_per_iter": decoded,
        "heap_min_ns": heap_dec.min_ns,
        "mmap_min_ns": mmap_dec.min_ns,
        "warm_ratio": mmap_dec.min_ns / heap_dec.min_ns,
    });

    // End-to-end pruned top-k per shape on both sources.
    let mut eh = CpuEngine::new(&heap).with_pruning(true);
    let mut em = CpuEngine::new(&mapped).with_pruning(true);
    let mut e2e = Map::new();
    for shape in ["single", "and", "or"] {
        let mut i = 0usize;
        let h = bench_with(&format!("e2e/{shape}/heap"), 8, 30, &mut || {
            i += 1;
            run_query(&mut eh, shape, &singles, &pairs, i - 1, 10).len()
        });
        let mut j = 0usize;
        let m = bench_with(&format!("e2e/{shape}/mmap"), 8, 30, &mut || {
            j += 1;
            run_query(&mut em, shape, &singles, &pairs, j - 1, 10).len()
        });
        gate.insert(format!("e2e_{shape}_mmap"), json!(m.min_ns));
        e2e.insert(
            shape.to_string(),
            json!({
                "heap_min_ns": h.min_ns,
                "mmap_min_ns": m.min_ns,
                "warm_ratio": m.min_ns / h.min_ns,
            }),
        );
    }

    // Cold page cache: advisory — fadvise may be a no-op in containers.
    drop(em);
    drop(mapped);
    let evicted = iiu_index::mmap::evict_from_page_cache(&path);
    let cold_map = storage::map_index(&path).expect("cold mapped load");
    let mut ec = CpuEngine::new(&cold_map).with_pruning(true);
    let t0 = Instant::now();
    let mut cold_hits = 0usize;
    for i in 0..N_QUERIES {
        cold_hits += run_query(&mut ec, "single", &singles, &pairs, i, 10).len();
    }
    let cold_sweep_ns = t0.elapsed().as_nanos() as u64;
    let cold = json!({
        "evicted": evicted,
        "sweep_queries": N_QUERIES,
        "sweep_ns": cold_sweep_ns,
        "hits": cold_hits,
    });
    drop(ec);
    drop(cold_map);
    let _ = std::fs::remove_file(&path);

    println!("== RSS gate: streamed {RSS_DOCS}-doc corpus served through mmap (child) ==");
    let rss = run_rss_gate();
    println!(
        "rss child: {} docs, {} postings, {} KiB file, VmHWM {} KiB",
        rss["docs"].as_u64().unwrap_or(0),
        rss["postings"].as_u64().unwrap_or(0),
        rss["file_bytes"].as_u64().unwrap_or(0) / 1024,
        rss["vm_hwm_kb"].as_u64().unwrap_or(0)
    );

    let report = json!({
        "schema": "mmap-bench-v1",
        "e2e_docs": E2E_DOCS,
        "block_decode": decode.clone(),
        "e2e": Value::Object(e2e.clone()),
        "cold": cold,
        "rss_gate": rss.clone(),
        "gate_min_ns": Value::Object(gate.clone()),
    });
    let text = serde_json::to_string_pretty(&report).expect("serializable");
    if let Err(e) = std::fs::write(&out_path, text + "\n") {
        eprintln!("mmap_bench: cannot write {}: {e}", out_path.display());
        return ExitCode::from(2);
    }
    println!("[wrote {}]", out_path.display());

    if let Some(path) = write_thresholds {
        let t = json!({
            "schema": "mmap-gate-thresholds-v1",
            "comment": "min_ns baselines for the mmap storage gate; a run fails when measured > baseline * fail_above_ratio, when a warm mapped decode/query exceeds its same-run heap time by more than max_warm_ratio, or when the streamed-gen + mmap-serve child's peak RSS exceeds rss_max_kb. Regenerate with: cargo run --release -p iiu-bench --bin mmap_bench -- --write-thresholds BENCH_mmap_thresholds.json",
            "fail_above_ratio": 1.25,
            "max_warm_ratio": 1.5,
            "rss_max_kb": 262_144,
            "min_ns": Value::Object(gate.clone()),
        });
        let t = serde_json::to_string_pretty(&t).expect("serializable");
        if let Err(e) = std::fs::write(&path, t + "\n") {
            eprintln!("mmap_bench: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("[wrote {}]", path.display());
    }

    if let Some(path) = check_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("mmap_bench: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let thresholds: Value = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("mmap_bench: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let mut violations = check_min_ns(&gate, &thresholds);
        // Warm mapped access must stay within a small factor of in-RAM —
        // compared within this run, so absolute machine speed cancels.
        let max_warm = thresholds["max_warm_ratio"].as_f64().unwrap_or(1.5);
        let dec_ratio = decode["warm_ratio"].as_f64().unwrap_or(f64::INFINITY);
        if dec_ratio > max_warm {
            violations.push(format!(
                "warm mapped block decode is {dec_ratio:.2}x heap (allowed {max_warm}x)"
            ));
        }
        for (shape, row) in &e2e {
            let r = row["warm_ratio"].as_f64().unwrap_or(f64::INFINITY);
            if r > max_warm {
                violations.push(format!(
                    "warm mapped {shape} query is {r:.2}x heap (allowed {max_warm}x)"
                ));
            }
        }
        // The ≥1M-doc bounded-RSS acceptance bound.
        let rss_max = thresholds["rss_max_kb"].as_u64().unwrap_or(u64::MAX);
        let hwm = rss["vm_hwm_kb"].as_u64();
        match hwm {
            None => violations.push("RSS child reported no VmHWM".to_string()),
            Some(kb) if kb > rss_max => violations.push(format!(
                "RSS child peaked at {kb} KiB, exceeds committed {rss_max} KiB"
            )),
            Some(_) => {}
        }
        if rss["docs"].as_u64().unwrap_or(0) < u64::from(RSS_DOCS) {
            violations.push("RSS child corpus is under the 1M-doc bound".to_string());
        }
        if violations.is_empty() {
            println!("mmap gate: OK ({} metrics within threshold)", gate.len() + 5);
        } else {
            for v in &violations {
                eprintln!("mmap gate: REGRESSION: {v}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
