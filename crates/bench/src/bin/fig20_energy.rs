//! Regenerates the paper's fig20 (see DESIGN.md §4).

fn main() {
    let ctx = iiu_bench::Ctx::new();
    let result = iiu_bench::experiments::fig20::run(&ctx);
    iiu_bench::write_json("fig20_energy", &result);
}
