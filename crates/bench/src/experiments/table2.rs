//! Table 2: compression ratio (uncompressed size / compressed size) of the
//! IIU scheme versus Lucene and the classic codecs, on both datasets.
//!
//! Expected shape (from the paper): OptPfor > IIU > Lucene; VByte lowest of
//! the byte codecs; CC-News compresses much better than ClueWeb12; IIU
//! beats Lucene by ~1.5–1.8× thanks to dynamic partitioning and slimmer
//! metadata.

use iiu_codecs::{all_codecs, Codec, VByte};
use iiu_index::{InvertedIndex, Partitioner};
use serde_json::json;

use crate::context::{rebuild_with_partitioner, Ctx};
use crate::report::print_table;

/// Extra per-block bytes charged to the Lucene baseline beyond the IIU
/// metadata: Lucene's multi-level skip structures and per-block headers
/// ("maintains additional per-block metadata to accelerate query
/// processing", §5.2). 12 B extra per 128-posting block models that.
pub const LUCENE_EXTRA_BLOCK_BYTES: u64 = 12;

/// Compression ratio of a whole index under one codec: docIDs through the
/// codec, term frequencies through the codec or VByte if unsupported.
pub fn codec_index_ratio(index: &InvertedIndex, codec: &dyn Codec) -> f64 {
    let mut uncompressed = 0u64;
    let mut compressed = 0u64;
    for t in 0..index.num_terms() as u32 {
        let list = index.encoded_list(t).decode_all();
        if list.is_empty() {
            continue;
        }
        uncompressed += list.uncompressed_bytes() as u64;
        let ids = list.doc_ids();
        let tfs = list.term_freqs();
        compressed += codec.encode_sorted(&ids).len() as u64;
        compressed += match codec.encode_values(&tfs) {
            Some(bytes) => bytes.len() as u64,
            None => {
                VByte.encode_values(&tfs).unwrap_or_else(|| panic!("vbyte handles all")).len()
                    as u64
            }
        };
    }
    uncompressed as f64 / compressed as f64
}

/// Runs the experiment.
pub fn run(ctx: &Ctx) -> serde_json::Value {
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for d in ctx.datasets() {
        // IIU: dynamic partitioning (the context index is already maxSize 256).
        let iiu_ratio = d.index.size_stats().compression_ratio();
        // Lucene: static 128-posting blocks + heavier per-block metadata.
        let lucene = rebuild_with_partitioner(d, Partitioner::fixed(128));
        let ls = lucene.index.size_stats();
        let lucene_bytes = ls.compressed_bytes() + ls.num_blocks * LUCENE_EXTRA_BLOCK_BYTES;
        let lucene_ratio = ls.uncompressed_bytes as f64 / lucene_bytes as f64;

        let mut entry = json!({
            "dataset": d.name.label(),
            "Lucene": lucene_ratio,
            "IIU": iiu_ratio,
        });
        let mut row = vec![d.name.label().to_string(), format!("{lucene_ratio:.2}x")];
        let mut header_names = vec!["Lucene".to_string()];
        for codec in all_codecs() {
            let r = codec_index_ratio(&d.index, codec.as_ref());
            entry[codec.name()] = json!(r);
            row.push(format!("{r:.2}x"));
            header_names.push(codec.name().to_string());
        }
        row.push(format!("{iiu_ratio:.2}x"));
        header_names.push("IIU".to_string());
        rows.push(row);
        out.push(entry);
    }
    let header: Vec<&str> = [
        "dataset",
        "Lucene",
        "Pfor",
        "NewPfor",
        "OptPfor",
        "SIMD-BP128",
        "VByte",
        "Simple9",
        "Elias-Fano",
        "MILC",
        "IIU",
    ]
    .to_vec();
    print_table("Table 2: compression ratio (higher is better)", &header, &rows);
    json!({ "table": "table2", "rows": out })
}
