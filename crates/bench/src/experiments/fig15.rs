//! Figure 15: single-query latency (log scale in the paper) of the
//! baseline versus IIU-1/2/4/8 with intra-query parallelism.
//!
//! Expected shape: large IIU wins everywhere; intersection benefits most;
//! single-term queries stop scaling with cores because host top-k
//! dominates; union is flat in core count (merge-unit bottleneck).

use iiu_sim::{HostModel, IiuMachine, SimConfig};
use serde_json::json;

use crate::context::Ctx;
use crate::experiments::{
    baseline_latencies_ns, iiu_intra_latencies, mean, sim_queries, QueryType,
};
use crate::report::{fmt_ns, print_table};

/// Core counts swept (IIU-X in the paper).
pub const CORE_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Runs the experiment.
pub fn run(ctx: &Ctx) -> serde_json::Value {
    let host = HostModel::default();
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for d in ctx.datasets() {
        let machine = IiuMachine::new(&d.index, SimConfig::default());
        for qt in QueryType::all() {
            let lucene = mean(&baseline_latencies_ns(d, qt));
            let queries = sim_queries(d, qt);
            let mut row =
                vec![d.name.label().to_string(), qt.label().to_string(), fmt_ns(lucene)];
            let mut entry = json!({
                "dataset": d.name.label(),
                "query_type": qt.label(),
                "lucene_ns": lucene,
            });
            for cores in CORE_COUNTS {
                let (lats, _) = iiu_intra_latencies(&machine, &host, &queries, cores);
                let m = mean(&lats);
                row.push(format!("{} ({:.1}x)", fmt_ns(m), lucene / m));
                entry[format!("iiu{cores}_ns")] = json!(m);
                entry[format!("iiu{cores}_speedup")] = json!(lucene / m);
            }
            rows.push(row);
            out.push(entry);
        }
    }
    print_table(
        "Fig. 15: mean query latency, baseline vs IIU-X intra-query (speedup in parens)",
        &["dataset", "type", "Lucene", "IIU-1", "IIU-2", "IIU-4", "IIU-8"],
        &rows,
    );
    json!({ "figure": "fig15", "rows": out })
}
