//! One module per table/figure of the paper's evaluation, plus ablations.
//!
//! Every module exposes `run(ctx) -> serde_json::Value`, printing its rows
//! and returning machine-readable results for `results/*.json` and
//! EXPERIMENTS.md.

pub mod ablations;
pub mod fig01;
pub mod fig02;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod hybrid;
pub mod load_latency;
pub mod reordering;
pub mod table2;
pub mod table3;
pub mod utilization;

use iiu_baseline::{CpuEngine, PhaseBreakdown};
use iiu_sim::{HostModel, IiuMachine, QueryRun, SimQuery};

use crate::context::Dataset;

/// The paper's three query types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryType {
    /// Single-term query.
    Single,
    /// Two-term intersection.
    Intersect,
    /// Two-term union.
    Union,
}

impl QueryType {
    /// All types, in the paper's order.
    pub fn all() -> [QueryType; 3] {
        [QueryType::Single, QueryType::Intersect, QueryType::Union]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            QueryType::Single => "single",
            QueryType::Intersect => "intersection",
            QueryType::Union => "union",
        }
    }
}

/// The dataset's sampled workload as accelerator queries of one type.
pub fn sim_queries(d: &Dataset, qt: QueryType) -> Vec<SimQuery> {
    match qt {
        QueryType::Single => d.singles.iter().map(|&t| SimQuery::Single(t)).collect(),
        QueryType::Intersect => {
            d.pairs.iter().map(|&(a, b)| SimQuery::Intersect(a, b)).collect()
        }
        QueryType::Union => d.pairs.iter().map(|&(a, b)| SimQuery::Union(a, b)).collect(),
    }
}

/// Runs the baseline over the dataset's workload of one type, returning
/// per-query phase breakdowns (includes top-k).
pub fn baseline_breakdowns(d: &Dataset, qt: QueryType) -> Vec<PhaseBreakdown> {
    let mut engine = CpuEngine::new(&d.index);
    let term = |t: u32| d.index.term_info(t).term.clone();
    match qt {
        QueryType::Single => d
            .singles
            .iter()
            .map(|&t| {
                engine
                    .search_single(&term(t), 10)
                    .unwrap_or_else(|e| panic!("sampled term: {e:?}"))
                    .phases
            })
            .collect(),
        QueryType::Intersect => d
            .pairs
            .iter()
            .map(|&(a, b)| {
                engine
                    .search_intersection(&term(a), &term(b), 10)
                    .unwrap_or_else(|e| panic!("sampled terms: {e:?}"))
                    .phases
            })
            .collect(),
        QueryType::Union => d
            .pairs
            .iter()
            .map(|&(a, b)| {
                engine
                    .search_union(&term(a), &term(b), 10)
                    .unwrap_or_else(|e| panic!("sampled terms: {e:?}"))
                    .phases
            })
            .collect(),
    }
}

/// Per-query baseline latencies in ns (total, including top-k).
pub fn baseline_latencies_ns(d: &Dataset, qt: QueryType) -> Vec<f64> {
    baseline_breakdowns(d, qt).iter().map(PhaseBreakdown::total_ns).collect()
}

/// End-to-end IIU query latency: dispatch + accelerator cycles + host
/// top-k (paper Figs. 15/17).
pub fn iiu_latency_ns(host: &HostModel, run: &QueryRun, clock_ghz: f64) -> f64 {
    host.query_latency_ns(run.cycles, clock_ghz, run.stats.candidates)
}

/// Runs every query of a type through the machine with intra-query
/// parallelism, returning (per-query end-to-end ns, runs).
pub fn iiu_intra_latencies(
    machine: &IiuMachine<'_>,
    host: &HostModel,
    queries: &[SimQuery],
    cores: usize,
) -> (Vec<f64>, Vec<QueryRun>) {
    let clock = machine.config().clock_ghz;
    let runs: Vec<QueryRun> = queries
        .iter()
        .map(|&q| {
            machine.run_query(q, cores).unwrap_or_else(|e| panic!("sim completes: {e:?}"))
        })
        .collect();
    let lats = runs.iter().map(|r| iiu_latency_ns(host, r, clock)).collect();
    (lats, runs)
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Geometric mean of positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}
