//! Ablations of the design choices DESIGN.md §5 calls out:
//!
//! * the BSU traversal cache (size sweep, including off);
//! * dynamic versus static partitioning at equal block limits;
//! * the Block Reader stream-buffer window.

use iiu_sim::{HostModel, IiuMachine, SimConfig};
use serde_json::json;

use crate::context::{rebuild_with_partitioner, Ctx, DatasetName};
use crate::experiments::{iiu_intra_latencies, mean, sim_queries, QueryType};
use crate::report::print_table;

/// Traversal-cache sizes swept (1 ≈ off: a single-entry cache almost never
/// hits a binary-search path).
pub const CACHE_SIZES: [usize; 5] = [1, 8, 16, 32, 128];

/// BR window sizes swept.
pub const BR_WINDOWS: [usize; 6] = [4, 8, 16, 32, 64, 128];

/// Runs the traversal-cache ablation: intersection queries, BSU memory
/// probes and latency versus cache size.
pub fn traversal_cache(ctx: &Ctx) -> serde_json::Value {
    let d = ctx.dataset(DatasetName::CcNews);
    let host = HostModel::default();
    let queries: Vec<_> = sim_queries(d, QueryType::Intersect).into_iter().take(30).collect();
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for size in CACHE_SIZES {
        let machine = IiuMachine::new(
            &d.index,
            SimConfig { bsu_cache_entries: size, ..SimConfig::default() },
        );
        let (lats, runs) = iiu_intra_latencies(&machine, &host, &queries, 1);
        let probes: u64 = runs.iter().map(|r| r.stats.bsu_probes).sum();
        let hits: u64 = runs.iter().map(|r| r.stats.bsu_cache_hits).sum();
        let hit_rate = hits as f64 / probes.max(1) as f64;
        rows.push(vec![
            size.to_string(),
            format!("{:.1}%", 100.0 * hit_rate),
            format!("{}", probes - hits),
            format!("{:.2} us", mean(&lats) / 1e3),
        ]);
        out.push(json!({
            "cache_entries": size,
            "hit_rate": hit_rate,
            "memory_probes": probes - hits,
            "mean_latency_ns": mean(&lats),
        }));
    }
    print_table(
        "Ablation: BSU traversal cache (intersection, IIU-1)",
        &["entries", "hit rate", "mem probes", "latency"],
        &rows,
    );
    json!({ "ablation": "traversal_cache", "rows": out })
}

/// Runs the partitioning ablation: dynamic vs fixed at the same limit.
pub fn partitioning(ctx: &Ctx) -> serde_json::Value {
    let d = ctx.dataset(DatasetName::CcNews);
    let host = HostModel::default();
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (label, part) in [
        ("dynamic(256)", iiu_index::Partitioner::dynamic(256)),
        ("fixed(256)", iiu_index::Partitioner::fixed(256)),
        ("dynamic(128)", iiu_index::Partitioner::dynamic(128)),
        ("fixed(128)", iiu_index::Partitioner::fixed(128)),
    ] {
        let rebuilt = rebuild_with_partitioner(d, part);
        let stats = rebuilt.index.size_stats();
        let machine = IiuMachine::new(&rebuilt.index, SimConfig::default());
        let queries: Vec<_> =
            sim_queries(&rebuilt, QueryType::Single).into_iter().take(30).collect();
        let (lats, _) = iiu_intra_latencies(&machine, &host, &queries, 8);
        rows.push(vec![
            label.to_string(),
            format!("{:.2}x", stats.compression_ratio()),
            format!("{:.1}", stats.avg_block_len()),
            format!("{:.2} us", mean(&lats) / 1e3),
        ]);
        out.push(json!({
            "partitioner": label,
            "compression_ratio": stats.compression_ratio(),
            "avg_block_len": stats.avg_block_len(),
            "mean_latency_ns": mean(&lats),
        }));
    }
    print_table(
        "Ablation: dynamic vs fixed partitioning (single-term, IIU-8)",
        &["partitioner", "compression", "avg block", "latency"],
        &rows,
    );
    json!({ "ablation": "partitioning", "rows": out })
}

/// Runs the stream-buffer ablation: BR window size versus latency.
pub fn stream_buffers(ctx: &Ctx) -> serde_json::Value {
    let d = ctx.dataset(DatasetName::CcNews);
    let host = HostModel::default();
    let queries: Vec<_> = sim_queries(d, QueryType::Single).into_iter().take(30).collect();
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for window in BR_WINDOWS {
        let machine =
            IiuMachine::new(&d.index, SimConfig { br_window: window, ..SimConfig::default() });
        let (lats, _) = iiu_intra_latencies(&machine, &host, &queries, 8);
        rows.push(vec![window.to_string(), format!("{:.2} us", mean(&lats) / 1e3)]);
        out.push(json!({ "br_window": window, "mean_latency_ns": mean(&lats) }));
    }
    print_table(
        "Ablation: Block Reader stream-buffer window (single-term, IIU-8)",
        &["entries", "latency"],
        &rows,
    );
    json!({ "ablation": "stream_buffers", "rows": out })
}

/// Runs the device-top-k ablation: moving the paper's host-side top-k
/// selection into the write-back path (the extension §4.5 hints at). This
/// attacks exactly the bottleneck Fig. 17 identifies for single-term
/// queries.
pub fn device_topk(ctx: &Ctx) -> serde_json::Value {
    let d = ctx.dataset(DatasetName::CcNews);
    let host = HostModel::default();
    let queries: Vec<_> = sim_queries(d, QueryType::Single).into_iter().take(30).collect();
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (label, k) in [("host top-k (paper)", 0usize), ("device top-k=10", 10)] {
        let machine =
            IiuMachine::new(&d.index, SimConfig { device_topk: k, ..SimConfig::default() });
        let clock = machine.config().clock_ghz;
        let mut total_ns = 0.0;
        let mut wr_bytes = 0u64;
        for &q in &queries {
            let run =
                machine.run_query(q, 8).unwrap_or_else(|e| panic!("sim completes: {e:?}"));
            total_ns += host.query_latency_ns(run.cycles, clock, run.stats.candidates);
            wr_bytes += run.mem.bytes_written;
        }
        let mean_ns = total_ns / queries.len() as f64;
        rows.push(vec![
            label.to_string(),
            format!("{:.2} us", mean_ns / 1e3),
            format!("{} KiB", wr_bytes / 1024),
        ]);
        out.push(json!({
            "config": label,
            "mean_latency_ns": mean_ns,
            "write_bytes": wr_bytes,
        }));
    }
    print_table(
        "Ablation: on-device top-k (single-term, IIU-8) — removes the Fig. 17 host bottleneck",
        &["config", "mean latency", "writes"],
        &rows,
    );
    json!({ "ablation": "device_topk", "rows": out })
}

/// Runs all ablations.
pub fn run(ctx: &Ctx) -> serde_json::Value {
    json!({
        "traversal_cache": traversal_cache(ctx),
        "partitioning": partitioning(ctx),
        "stream_buffers": stream_buffers(ctx),
        "device_topk": device_topk(ctx),
    })
}
