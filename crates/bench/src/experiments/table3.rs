//! Table 3: area and power of the IIU components. Published synthesis
//! numbers (TSMC 40 nm) replayed from the model constants — see DESIGN.md
//! §2 for why synthesis cannot be reproduced in software.

use iiu_sim::{table3_total_area_mm2, table3_total_power_w, TABLE3};
use serde_json::json;

use crate::context::Ctx;
use crate::report::print_table;

/// Runs the experiment.
pub fn run(_ctx: &Ctx) -> serde_json::Value {
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for c in TABLE3 {
        rows.push(vec![
            c.name.to_string(),
            format!("{:.3}", c.area_per_instance_mm2()),
            format!("{:.1}", c.power_per_instance_mw()),
            c.count.to_string(),
            format!("{:.3}", c.total_area_mm2),
            format!("{:.1}", c.total_power_mw),
        ]);
        out.push(json!({
            "component": c.name,
            "count": c.count,
            "total_area_mm2": c.total_area_mm2,
            "total_power_mw": c.total_power_mw,
        }));
    }
    rows.push(vec![
        "TOTAL".into(),
        String::new(),
        String::new(),
        String::new(),
        format!("{:.3}", table3_total_area_mm2()),
        format!("{:.1}", table3_total_power_w() * 1e3),
    ]);
    print_table(
        "Table 3: IIU area/power (published 40 nm synthesis constants; total 3.106 mm², 1.144 W)",
        &["component", "area/inst (mm2)", "power/inst (mW)", "#", "total area", "total power"],
        &rows,
    );
    json!({
        "table": "table3",
        "rows": out,
        "total_area_mm2": table3_total_area_mm2(),
        "total_power_w": table3_total_power_w(),
    })
}
