//! Figure 18: DRAM bandwidth utilization of IIU-1..8 with inter-query
//! parallelism, on both datasets. Single-term and union become
//! bandwidth-bound as units grow; intersection does not (it touches few
//! blocks).

use iiu_sim::{IiuMachine, SimConfig};
use serde_json::json;

use crate::context::Ctx;
use crate::experiments::{sim_queries, QueryType};
use crate::report::print_table;

/// Unit counts swept.
pub const UNIT_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Runs the experiment.
pub fn run(ctx: &Ctx) -> serde_json::Value {
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for d in ctx.datasets() {
        let machine = IiuMachine::new(&d.index, SimConfig::default());
        for qt in QueryType::all() {
            let queries = sim_queries(d, qt);
            let mut row = vec![d.name.label().to_string(), qt.label().to_string()];
            let mut entry = json!({
                "dataset": d.name.label(),
                "query_type": qt.label(),
            });
            for units in UNIT_COUNTS {
                let batch = machine
                    .run_batch(&queries, units)
                    .unwrap_or_else(|e| panic!("sim completes: {e:?}"));
                let util = batch.mem.bandwidth_utilization;
                row.push(format!("{:.1}%", 100.0 * util));
                entry[format!("iiu{units}_bw_utilization")] = json!(util);
            }
            rows.push(row);
            out.push(entry);
        }
    }
    print_table(
        "Fig. 18: DRAM bandwidth utilization, IIU-X inter-query (DDR4-2400, 76.8 GB/s peak)",
        &["dataset", "type", "IIU-1", "IIU-2", "IIU-4", "IIU-8"],
        &rows,
    );
    json!({ "figure": "fig18", "rows": out })
}
