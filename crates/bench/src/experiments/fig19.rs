//! Figure 19: scalability on an HBM-like memory system (CC-News,
//! inter-query parallelism, up to 32 units). Single-term and union keep
//! scaling with bandwidth; intersection does not fully utilize it.

use iiu_sim::{DramConfig, HostModel, IiuMachine, SimConfig};
use serde_json::json;

use crate::context::{Ctx, DatasetName};
use crate::experiments::fig16::iiu_batch_qps;
use crate::experiments::{sim_queries, QueryType};
use crate::report::print_table;

/// Unit counts swept (the paper scales to 32 on HBM).
pub const UNIT_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Runs the experiment.
pub fn run(ctx: &Ctx) -> serde_json::Value {
    let d = ctx.dataset(DatasetName::CcNews);
    let host = HostModel::default();
    let big = |dram| SimConfig { n_pairs: 32, n_cores: 32, dram, ..SimConfig::default() };
    let ddr = IiuMachine::new(&d.index, big(DramConfig::ddr4_2400()));
    let hbm = IiuMachine::new(&d.index, big(DramConfig::hbm_like()));

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for qt in QueryType::all() {
        let queries = sim_queries(d, qt);
        let mut entry = json!({ "query_type": qt.label() });
        let mut row = vec![qt.label().to_string()];
        let mut base = 0.0;
        for units in UNIT_COUNTS {
            let (qps_hbm, batch_hbm) = iiu_batch_qps(&hbm, &host, &queries, units);
            let (qps_ddr, _) = iiu_batch_qps(&ddr, &host, &queries, units);
            if units == 1 {
                base = qps_hbm;
            }
            row.push(format!(
                "{:.1}x/{:.0}%",
                qps_hbm / base,
                100.0 * batch_hbm.mem.bandwidth_utilization
            ));
            entry[format!("u{units}_hbm_speedup_vs_u1")] = json!(qps_hbm / base);
            entry[format!("u{units}_hbm_bw_utilization")] =
                json!(batch_hbm.mem.bandwidth_utilization);
            entry[format!("u{units}_hbm_over_ddr")] = json!(qps_hbm / qps_ddr);
        }
        rows.push(row);
        out.push(entry);
    }
    print_table(
        "Fig. 19: HBM-like scalability on CC-News (speedup vs 1 unit / bandwidth utilization)",
        &["type", "u=1", "u=2", "u=4", "u=8", "u=16", "u=32"],
        &rows,
    );
    json!({ "figure": "fig19", "rows": out })
}
