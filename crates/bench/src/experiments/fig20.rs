//! Figure 20: normalized energy consumption per query. The baseline burns
//! single-core CPU power for the whole query; IIU burns ~1.1 W for its
//! part plus CPU power for the host top-k pass, which dominates its total.
//! Paper average: 18.6× less energy.

use iiu_sim::{HostModel, IiuMachine, PowerModel, SimConfig};
use serde_json::json;

use crate::context::Ctx;
use crate::experiments::{
    baseline_latencies_ns, geomean, iiu_intra_latencies, mean, sim_queries, QueryType,
};
use crate::report::print_table;

/// Runs the experiment.
pub fn run(ctx: &Ctx) -> serde_json::Value {
    let host = HostModel::default();
    let power = PowerModel::default();
    let mut rows = Vec::new();
    let mut out = Vec::new();
    let mut savings = Vec::new();
    for d in ctx.datasets() {
        let machine = IiuMachine::new(&d.index, SimConfig::default());
        let clock = machine.config().clock_ghz;
        for qt in QueryType::all() {
            let lucene_ns = mean(&baseline_latencies_ns(d, qt));
            let e_lucene = power.cpu_core_energy_j(lucene_ns);

            let queries = sim_queries(d, qt);
            let (_, runs) = iiu_intra_latencies(&machine, &host, &queries, 8);
            let mut e_iiu_acc = 0.0;
            let mut e_iiu_cpu = 0.0;
            for r in &runs {
                e_iiu_acc += power.iiu_energy_j(r.cycles as f64 / clock);
                e_iiu_cpu += power
                    .cpu_core_energy_j(host.topk_ns(r.stats.candidates) + host.dispatch_ns);
            }
            let e_iiu = (e_iiu_acc + e_iiu_cpu) / runs.len() as f64;
            let saving = e_lucene / e_iiu;
            savings.push(saving);
            rows.push(vec![
                d.name.label().to_string(),
                qt.label().to_string(),
                format!("{:.2} uJ", e_lucene * 1e6),
                format!("{:.2} uJ", e_iiu * 1e6),
                format!("{:.3}", e_iiu_acc / runs.len() as f64 / e_iiu),
                format!("{saving:.1}x"),
            ]);
            out.push(json!({
                "dataset": d.name.label(),
                "query_type": qt.label(),
                "lucene_energy_j": e_lucene,
                "iiu_energy_j": e_iiu,
                "iiu_accelerator_fraction": e_iiu_acc / runs.len() as f64 / e_iiu,
                "saving": saving,
            }));
        }
    }
    let avg = geomean(&savings);
    rows.push(vec![
        "AVERAGE".into(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        format!("{avg:.1}x"),
    ]);
    print_table(
        "Fig. 20: energy per query (paper: 18.6x average saving; IIU total dominated by host CPU)",
        &["dataset", "type", "Lucene E", "IIU E", "IIU accel frac", "saving"],
        &rows,
    );
    json!({ "figure": "fig20", "rows": out, "average_saving": avg })
}
