//! Figure 1: breakdown of query processing time in the Lucene-like
//! baseline. The paper's headline: decompression accounts for over 40% of
//! the response time across all three query types.

use serde_json::json;

use crate::context::Ctx;
use crate::experiments::{baseline_breakdowns, QueryType};
use crate::report::print_table;

/// Runs the experiment.
pub fn run(ctx: &Ctx) -> serde_json::Value {
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for d in ctx.datasets() {
        for qt in QueryType::all() {
            let phases = baseline_breakdowns(d, qt);
            let mut total = iiu_baseline::PhaseBreakdown::default();
            for p in &phases {
                total.merge(p);
            }
            let t = total.total_ns();
            let frac = |x: f64| x / t;
            rows.push(vec![
                d.name.label().to_string(),
                qt.label().to_string(),
                format!("{:.1}%", 100.0 * frac(total.decompress_ns)),
                format!("{:.1}%", 100.0 * frac(total.setop_ns)),
                format!("{:.1}%", 100.0 * frac(total.score_ns)),
                format!("{:.1}%", 100.0 * frac(total.topk_ns)),
                format!("{:.1}%", 100.0 * frac(total.other_ns)),
            ]);
            out.push(json!({
                "dataset": d.name.label(),
                "query_type": qt.label(),
                "decompress": frac(total.decompress_ns),
                "setop": frac(total.setop_ns),
                "score": frac(total.score_ns),
                "topk": frac(total.topk_ns),
                "other": frac(total.other_ns),
            }));
        }
    }
    print_table(
        "Fig. 1: baseline query-time breakdown (paper: decompression > 40%)",
        &["dataset", "type", "decompress", "set-op", "score", "top-k", "other"],
        &rows,
    );
    json!({ "figure": "fig01", "rows": out })
}
