//! Fig. 12c quantified: the hybrid interconnect configuration. One
//! latency-critical query gets a multi-core intra-query allocation while a
//! throughput backlog drains on the remaining units; the sweep shows the
//! latency/throughput frontier the reconfigurable interconnect exposes.

use iiu_sim::{HostModel, IiuMachine, SimConfig, SimQuery};
use serde_json::json;

use crate::context::{Ctx, DatasetName};
use crate::experiments::{iiu_latency_ns, sim_queries, QueryType};
use crate::report::print_table;

/// (latency cores, batch units) splits of the 8-core machine.
pub const SPLITS: [(usize, usize); 3] = [(2, 6), (4, 4), (6, 2)];

/// Runs the experiment.
pub fn run(ctx: &Ctx) -> serde_json::Value {
    let d = ctx.dataset(DatasetName::CcNews);
    let machine = IiuMachine::new(&d.index, SimConfig::default());
    let host = HostModel::default();
    let clock = machine.config().clock_ghz;

    // The latency-critical query: the workload's longest single-term list.
    let hot = *d
        .singles
        .iter()
        .max_by_key(|&&t| d.index.term_info(t).df)
        .unwrap_or_else(|| panic!("non-empty workload"));
    let backlog: Vec<SimQuery> =
        sim_queries(d, QueryType::Single).into_iter().take(32).collect();

    let solo = machine
        .run_query(SimQuery::Single(hot), 8)
        .unwrap_or_else(|e| panic!("sim completes: {e:?}"));
    let solo_ns = iiu_latency_ns(&host, &solo, clock);

    let mut rows = vec![vec![
        "isolated (8+0)".to_string(),
        format!("{:.2} us", solo_ns / 1e3),
        "-".to_string(),
    ]];
    let mut out = vec![json!({
        "split": "8+0",
        "latency_ns": solo_ns,
        "batch_qps": 0.0,
    })];

    for (lat_cores, units) in SPLITS {
        let run = machine
            .run_hybrid(SimQuery::Single(hot), &backlog, lat_cores, units)
            .unwrap_or_else(|e| panic!("sim completes: {e:?}"));
        let lat_ns = iiu_latency_ns(&host, &run.latency_query, clock);
        let qps = backlog.len() as f64 / (run.batch_cycles as f64 / clock * 1e-9);
        rows.push(vec![
            format!("hybrid ({lat_cores}+{units})"),
            format!("{:.2} us ({:.2}x)", lat_ns / 1e3, lat_ns / solo_ns),
            format!("{qps:.0} qps"),
        ]);
        out.push(json!({
            "split": format!("{lat_cores}+{units}"),
            "latency_ns": lat_ns,
            "latency_vs_isolated": lat_ns / solo_ns,
            "batch_qps": qps,
        }));
    }
    print_table(
        "Fig. 12c: hybrid allocation — latency query vs co-running backlog throughput",
        &["allocation", "hot-query latency", "backlog throughput"],
        &rows,
    );
    json!({ "figure": "fig12c_hybrid", "rows": out })
}
