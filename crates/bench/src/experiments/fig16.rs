//! Figure 16: query throughput over the 100-query workload, baseline on 8
//! CPU cores versus IIU-X inter-query units.
//!
//! Also reports the paper's two decompositions: IIU-1 versus
//! *single-threaded* Lucene (specialization, ~14.6×) and IIU-8 over IIU-1
//! (parallelism, ~3.6×).

use iiu_sim::{HostModel, IiuMachine, SimConfig};
use serde_json::json;

use crate::context::Ctx;
use crate::experiments::{baseline_latencies_ns, sim_queries, QueryType};
use crate::report::print_table;

/// Unit counts swept.
pub const UNIT_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// CPU cores for the baseline and for host-side top-k.
pub const CPU_CORES: usize = 8;

/// Throughput (queries/s) of an IIU batch: accelerator makespan overlapped
/// with host top-k on the CPU cores.
pub fn iiu_batch_qps(
    machine: &IiuMachine<'_>,
    host: &HostModel,
    queries: &[iiu_sim::SimQuery],
    units: usize,
) -> (f64, iiu_sim::BatchRun) {
    let batch =
        machine.run_batch(queries, units).unwrap_or_else(|e| panic!("sim completes: {e:?}"));
    let clock = machine.config().clock_ghz;
    let iiu_ns = batch.cycles as f64 / clock;
    let cands: Vec<u64> = batch.queries.iter().map(|q| q.stats.candidates).collect();
    let topk_ns = host.batch_topk_ns(&cands, CPU_CORES);
    let total_ns = iiu_ns.max(topk_ns) + host.dispatch_ns;
    (queries.len() as f64 / (total_ns * 1e-9), batch)
}

/// Runs the experiment.
pub fn run(ctx: &Ctx) -> serde_json::Value {
    let host = HostModel::default();
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for d in ctx.datasets() {
        let machine = IiuMachine::new(&d.index, SimConfig::default());
        for qt in QueryType::all() {
            let lats = baseline_latencies_ns(d, qt);
            let lucene_qps = lats.len() as f64
                / (iiu_baseline::parallel_makespan_ns(&lats, CPU_CORES) * 1e-9);
            let lucene_1t_qps = lats.len() as f64 / (lats.iter().sum::<f64>() * 1e-9);
            let queries = sim_queries(d, qt);
            let mut row = vec![
                d.name.label().to_string(),
                qt.label().to_string(),
                format!("{lucene_qps:.0}"),
            ];
            let mut entry = json!({
                "dataset": d.name.label(),
                "query_type": qt.label(),
                "lucene_8core_qps": lucene_qps,
                "lucene_1thread_qps": lucene_1t_qps,
            });
            let mut qps1 = 0.0;
            for units in UNIT_COUNTS {
                let (qps, _) = iiu_batch_qps(&machine, &host, &queries, units);
                if units == 1 {
                    qps1 = qps;
                    entry["specialization_iiu1_vs_1thread"] = json!(qps / lucene_1t_qps);
                }
                row.push(format!("{:.0} ({:.1}x)", qps, qps / lucene_qps));
                entry[format!("iiu{units}_qps")] = json!(qps);
                entry[format!("iiu{units}_speedup")] = json!(qps / lucene_qps);
            }
            entry["parallelism_iiu8_vs_iiu1"] =
                json!(entry["iiu8_qps"].as_f64().unwrap_or(0.0) / qps1);
            rows.push(row);
            out.push(entry);
        }
    }
    print_table(
        "Fig. 16: throughput (qps) for the 100-query workload, baseline-8core vs IIU-X \
         inter-query (speedup in parens)",
        &["dataset", "type", "Lucene-8c", "IIU-1", "IIU-2", "IIU-4", "IIU-8"],
        &rows,
    );
    json!({ "figure": "fig16", "rows": out })
}
