//! Figure 17: runtime breakdown of IIU-8 — how much of the end-to-end
//! latency the host-side top-k selection takes once intra-query
//! parallelism has shrunk the accelerator's share (Amdahl's law).

use iiu_sim::{HostModel, IiuMachine, SimConfig};
use serde_json::json;

use crate::context::Ctx;
use crate::experiments::{iiu_intra_latencies, sim_queries, QueryType};
use crate::report::print_table;

/// Runs the experiment.
pub fn run(ctx: &Ctx) -> serde_json::Value {
    let host = HostModel::default();
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for d in ctx.datasets() {
        let machine = IiuMachine::new(&d.index, SimConfig::default());
        let clock = machine.config().clock_ghz;
        for qt in QueryType::all() {
            let queries = sim_queries(d, qt);
            let (_, runs) = iiu_intra_latencies(&machine, &host, &queries, 8);
            let mut iiu_ns = 0.0;
            let mut topk_ns = 0.0;
            for r in &runs {
                iiu_ns += r.cycles as f64 / clock;
                topk_ns += host.topk_ns(r.stats.candidates);
            }
            let dispatch = host.dispatch_ns * runs.len() as f64;
            let total = iiu_ns + topk_ns + dispatch;
            rows.push(vec![
                d.name.label().to_string(),
                qt.label().to_string(),
                format!("{:.1}%", 100.0 * iiu_ns / total),
                format!("{:.1}%", 100.0 * topk_ns / total),
                format!("{:.1}%", 100.0 * dispatch / total),
            ]);
            out.push(json!({
                "dataset": d.name.label(),
                "query_type": qt.label(),
                "iiu_fraction": iiu_ns / total,
                "topk_fraction": topk_ns / total,
                "dispatch_fraction": dispatch / total,
            }));
        }
    }
    print_table(
        "Fig. 17: IIU-8 runtime breakdown (top-k on the host CPU dominates single-term)",
        &["dataset", "type", "IIU", "top-k (host)", "dispatch"],
        &rows,
    );
    json!({ "figure": "fig17", "rows": out })
}
