//! Document-ordering study: how much of Table 2's dataset differential is
//! an *ordering* effect. A clustered corpus is scattered by a random
//! permutation (the ClueWeb12 situation) and each strategy tries to win
//! the locality back; the original order is the oracle.

use iiu_codecs::{Codec, OptPfor, VByte};
use iiu_index::reorder::{reorder, Ordering};
use iiu_index::{Bm25Params, Partitioner};
use iiu_workloads::CorpusConfig;
use serde_json::json;

use crate::context::Ctx;
use crate::experiments::table2::codec_index_ratio;
use crate::report::print_table;

/// Runs the experiment: a strongly clustered (CC-News-like) corpus is
/// scattered by a random permutation — the "bad crawl" — and each ordering
/// strategy tries to win the locality back. The original order is the
/// oracle upper bound.
pub fn run(_ctx: &Ctx) -> serde_json::Value {
    let n_docs = (f64::from(crate::context::BASE_DOCS) * crate::context::scale() / 2.0) as u32;
    let oracle = CorpusConfig::ccnews_like(n_docs).generate();
    // Scatter: the corpus as a breadth-first crawl would deliver it.
    let (scat_lists, scat_lens) =
        reorder(oracle.lists.clone(), oracle.doc_lens.clone(), Ordering::Random(99));

    let mut rows = Vec::new();
    let mut out = Vec::new();
    let mut cases: Vec<(&str, Vec<(String, iiu_index::PostingList)>, Vec<u32>)> = Vec::new();
    cases.push(("oracle (original)", oracle.lists.clone(), oracle.doc_lens.clone()));
    cases.push(("scattered crawl", scat_lists.clone(), scat_lens.clone()));
    for (label, ordering) in
        [("by length", Ordering::ByLength), ("MinHash cluster", Ordering::MinHash)]
    {
        let (l, n) = reorder(scat_lists.clone(), scat_lens.clone(), ordering);
        cases.push((label, l, n));
    }
    for (label, lists, lens) in cases {
        let index = iiu_index::InvertedIndex::from_lists(
            lists,
            lens,
            Partitioner::default(),
            Bm25Params::default(),
        )
        .unwrap_or_else(|e| panic!("reordered corpus encodes: {e:?}"));
        let iiu = index.size_stats().compression_ratio();
        let opt = codec_index_ratio(&index, &OptPfor);
        let vbyte = codec_index_ratio(&index, &VByte);
        let _ = VByte.name();
        rows.push(vec![
            label.to_string(),
            format!("{iiu:.2}x"),
            format!("{opt:.2}x"),
            format!("{vbyte:.2}x"),
        ]);
        out.push(json!({
            "ordering": label,
            "iiu_ratio": iiu,
            "optpfor_ratio": opt,
            "vbyte_ratio": vbyte,
        }));
    }
    print_table(
        "Document reordering: oracle vs scattered crawl vs recovery strategies (compression ratio)",
        &["ordering", "IIU", "OptPfor", "VByte"],
        &rows,
    );
    json!({ "experiment": "reordering", "rows": out })
}
