//! Figure 2: baseline throughput versus the number of backlogged queries.
//! Lucene exploits only inter-query parallelism, so throughput grows until
//! the core count (8) is saturated and flattens afterwards.

use serde_json::json;

use crate::context::{Ctx, DatasetName};
use crate::experiments::{baseline_latencies_ns, QueryType};
use crate::report::print_table;

/// CPU cores available to the baseline (Table 1's i7-7820X has 8).
pub const CPU_CORES: usize = 8;

/// Runs the experiment.
pub fn run(ctx: &Ctx) -> serde_json::Value {
    let d = ctx.dataset(DatasetName::CcNews);
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for qt in QueryType::all() {
        let lats = baseline_latencies_ns(d, qt);
        let mut row = vec![qt.label().to_string()];
        let mut series = Vec::new();
        for &backlog in &[1usize, 2, 4, 8, 16, 32, 64, 100] {
            let slice: Vec<f64> = lats.iter().cycle().take(backlog).copied().collect();
            let makespan = iiu_baseline::parallel_makespan_ns(&slice, CPU_CORES);
            // Scheduling efficiency: queries served per mean service time.
            // 1.0 at a backlog of one; saturates at the core count.
            let mean = slice.iter().sum::<f64>() / slice.len() as f64;
            let normalized = backlog as f64 * mean / makespan;
            row.push(format!("{normalized:.2}"));
            series.push(json!({ "backlog": backlog, "normalized_throughput": normalized }));
        }
        rows.push(row);
        out.push(json!({ "query_type": qt.label(), "series": series }));
    }
    print_table(
        "Fig. 2: baseline throughput vs backlog (normalized to 1 query; flattens at 8 cores)",
        &["type", "q=1", "q=2", "q=4", "q=8", "q=16", "q=32", "q=64", "q=100"],
        &rows,
    );
    json!({ "figure": "fig02", "cpu_cores": CPU_CORES, "rows": out })
}
