//! Figure 14: speedup versus compression ratio as the partitioner's
//! `maxSize` sweeps 16..2048. Smaller blocks buy intra-query parallelism
//! at a (small) compression cost; the paper picks 256. Also reproduces
//! the §5.2 footnote: Lucene's static 128 scheme gives comparable speed
//! but a much lower compression ratio.

use iiu_sim::{HostModel, IiuMachine, SimConfig};
use serde_json::json;

use crate::context::{rebuild_with_partitioner, Ctx, DatasetName};
use crate::experiments::{
    baseline_latencies_ns, iiu_intra_latencies, mean, sim_queries, QueryType,
};
use crate::report::print_table;

/// The swept maxSize values (the format caps blocks at 2048).
pub const MAX_SIZES: [usize; 8] = [16, 32, 64, 128, 256, 512, 1024, 2048];

/// Queries used per point (a subset keeps the 8-index sweep fast).
pub const QUERIES_PER_POINT: usize = 30;

/// Runs the experiment.
pub fn run(ctx: &Ctx) -> serde_json::Value {
    let d = ctx.dataset(DatasetName::CcNews);
    let host = HostModel::default();
    let lucene_ns = mean(
        &baseline_latencies_ns(d, QueryType::Single)[..QUERIES_PER_POINT.min(d.singles.len())],
    );

    let mut rows = Vec::new();
    let mut out = Vec::new();
    let mut eval = |label: String, part: iiu_index::Partitioner| {
        let rebuilt = rebuild_with_partitioner(d, part);
        let ratio = rebuilt.index.size_stats().compression_ratio();
        let machine = IiuMachine::new(&rebuilt.index, SimConfig::default());
        let queries: Vec<_> = sim_queries(&rebuilt, QueryType::Single)
            .into_iter()
            .take(QUERIES_PER_POINT)
            .collect();
        let (lats, _) = iiu_intra_latencies(&machine, &host, &queries, 8);
        let speedup = lucene_ns / mean(&lats);
        rows.push(vec![label.clone(), format!("{speedup:.1}x"), format!("{ratio:.2}x")]);
        out.push(json!({ "config": label, "speedup": speedup, "compression_ratio": ratio }));
    };

    for max in MAX_SIZES {
        eval(format!("dynamic({max})"), iiu_index::Partitioner::dynamic(max));
    }
    // The footnote comparison: Lucene's static partitioning inside IIU.
    eval("static(128)".to_string(), iiu_index::Partitioner::fixed(128));

    print_table(
        "Fig. 14: speedup (vs baseline, single-term, IIU-8 intra) and compression ratio vs maxSize",
        &["partitioner", "speedup", "compression"],
        &rows,
    );
    json!({ "figure": "fig14", "rows": out })
}
