//! Pipeline utilization: how busy each unit class is per query type —
//! the balance argument behind the paper's datapath (two DCUs and two SUs
//! per core; the merge unit as the union bottleneck; the BSU only lit up
//! by intersections).

use iiu_sim::{IiuMachine, SimConfig};
use serde_json::json;

use crate::context::{Ctx, DatasetName};
use crate::experiments::{sim_queries, QueryType};
use crate::report::print_table;

/// Runs the experiment (IIU-1 so busy fractions are per-unit-pair).
pub fn run(ctx: &Ctx) -> serde_json::Value {
    let d = ctx.dataset(DatasetName::CcNews);
    let machine = IiuMachine::new(&d.index, SimConfig::default());
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for qt in QueryType::all() {
        let queries: Vec<_> = sim_queries(d, qt).into_iter().take(30).collect();
        let mut cycles = 0u64;
        let mut dcu = 0u64;
        let mut su = 0u64;
        let mut bsu = 0u64;
        let mut bw = 0.0f64;
        for &q in &queries {
            let run =
                machine.run_query(q, 1).unwrap_or_else(|e| panic!("sim completes: {e:?}"));
            cycles += run.cycles;
            dcu += run.stats.dcu_busy;
            su += run.stats.su_busy;
            bsu += run.stats.bsu_probes;
            bw += run.mem.bandwidth_utilization;
        }
        // 2 DCUs and 2 SUs per core.
        let dcu_frac = dcu as f64 / (2.0 * cycles as f64);
        let su_frac = su as f64 / (2.0 * cycles as f64);
        let bsu_per_kcycle = 1e3 * bsu as f64 / cycles as f64;
        rows.push(vec![
            qt.label().to_string(),
            format!("{:.1}%", 100.0 * dcu_frac),
            format!("{:.1}%", 100.0 * su_frac),
            format!("{bsu_per_kcycle:.1}"),
            format!("{:.1}%", 100.0 * bw / queries.len() as f64),
        ]);
        out.push(json!({
            "query_type": qt.label(),
            "dcu_busy_fraction": dcu_frac,
            "su_busy_fraction": su_frac,
            "bsu_probes_per_kcycle": bsu_per_kcycle,
            "mean_bw_utilization": bw / queries.len() as f64,
        }));
    }
    print_table(
        "Pipeline utilization (IIU-1): unit busy fractions per query type",
        &["type", "DCU busy", "SU busy", "BSU probes/kcycle", "DRAM bw"],
        &rows,
    );
    json!({ "experiment": "utilization", "rows": out })
}
