//! Latency under offered load: the serving curve a deployment actually
//! cares about (not a paper figure, but the operational consequence of
//! Figs. 15/16). Poisson arrivals drain through IIU-8 inter-query units
//! and through the 8-core baseline; mean sojourn time (queueing + service)
//! is reported per utilization level.

use iiu_sim::{HostModel, IiuMachine, SimConfig};
use serde_json::json;

use crate::context::{Ctx, DatasetName};
use crate::experiments::{baseline_latencies_ns, mean, sim_queries, QueryType};
use crate::report::{fmt_ns, print_table};

/// Utilization levels swept (fraction of each system's own capacity).
pub const LOADS: [f64; 4] = [0.3, 0.6, 0.8, 0.95];

/// Units / CPU cores.
pub const UNITS: usize = 8;

/// Deterministic exponential inter-arrival sequence (inverse CDF over a
/// low-discrepancy driver, so runs are reproducible without `rand` here).
fn arrivals(n: usize, mean_gap: f64) -> Vec<u64> {
    let mut out = Vec::with_capacity(n);
    let mut t = 0.0f64;
    let mut u = 0.5f64;
    for _ in 0..n {
        // Weyl sequence in (0,1) as the uniform driver.
        u = (u + std::f64::consts::FRAC_1_SQRT_2) % 1.0;
        let x = -(1.0 - u.max(1e-9)).ln() * mean_gap;
        t += x;
        out.push(t as u64);
    }
    out
}

/// FCFS multi-server queue over fixed service times (the baseline side).
fn queue_sim(arrivals: &[u64], services: &[f64], servers: usize) -> f64 {
    let mut free_at = vec![0.0f64; servers];
    let mut total_sojourn = 0.0;
    for (i, &a) in arrivals.iter().enumerate() {
        let s = services[i % services.len()];
        let (k, &earliest) = free_at
            .iter()
            .enumerate()
            .min_by(|x, y| x.1.partial_cmp(y.1).unwrap_or(std::cmp::Ordering::Equal))
            .unwrap_or_else(|| panic!("servers > 0"));
        let start = earliest.max(a as f64);
        free_at[k] = start + s;
        total_sojourn += free_at[k] - a as f64;
    }
    total_sojourn / arrivals.len() as f64
}

/// Runs the experiment.
pub fn run(ctx: &Ctx) -> serde_json::Value {
    let d = ctx.dataset(DatasetName::CcNews);
    let machine = IiuMachine::new(&d.index, SimConfig::default());
    let host = HostModel::default();
    let clock = machine.config().clock_ghz;

    let queries: Vec<_> = sim_queries(d, QueryType::Single).into_iter().take(64).collect();
    let lucene_services = baseline_latencies_ns(d, QueryType::Single);
    let lucene_mean = mean(&lucene_services);

    // Each system's own single-query service time defines its capacity.
    let solo: Vec<u64> = queries
        .iter()
        .take(8)
        .map(|&q| {
            machine.run_query(q, 1).unwrap_or_else(|e| panic!("sim completes: {e:?}")).cycles
        })
        .collect();
    let iiu_service = solo.iter().sum::<u64>() as f64 / solo.len() as f64;

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for &load in &LOADS {
        // IIU: inter-arrival sized against its own aggregate capacity.
        let gap_iiu = iiu_service / UNITS as f64 / load;
        let arr = arrivals(queries.len(), gap_iiu);
        let batch = machine
            .run_arrivals(&queries, &arr, UNITS)
            .unwrap_or_else(|e| panic!("sim completes: {e:?}"));
        let iiu_sojourn_ns = batch
            .queries
            .iter()
            .map(|q| q.cycles as f64 / clock + host.topk_ns(q.stats.candidates))
            .sum::<f64>()
            / batch.queries.len() as f64;
        let iiu_qps = load * UNITS as f64 / (iiu_service * 1e-9);

        // Baseline: same utilization against its own capacity.
        let gap_cpu = lucene_mean / UNITS as f64 / load;
        let arr_cpu = arrivals(256, gap_cpu);
        let cpu_sojourn_ns = queue_sim(&arr_cpu, &lucene_services, UNITS);
        let cpu_qps = load * UNITS as f64 / (lucene_mean * 1e-9);

        rows.push(vec![
            format!("{:.0}%", load * 100.0),
            format!("{} @ {:.0} qps", fmt_ns(cpu_sojourn_ns), cpu_qps),
            format!("{} @ {:.0} qps", fmt_ns(iiu_sojourn_ns), iiu_qps),
            format!("{:.1}x", iiu_qps / cpu_qps),
        ]);
        out.push(json!({
            "utilization": load,
            "baseline_sojourn_ns": cpu_sojourn_ns,
            "baseline_qps": cpu_qps,
            "iiu_sojourn_ns": iiu_sojourn_ns,
            "iiu_qps": iiu_qps,
            "throughput_advantage": iiu_qps / cpu_qps,
        }));
    }
    print_table(
        "Load-latency: mean sojourn at equal *relative* utilization (single-term, 8 units/cores)",
        &["utilization", "baseline", "IIU", "qps advantage"],
        &rows,
    );
    json!({ "experiment": "load_latency", "rows": out })
}
