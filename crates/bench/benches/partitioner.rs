//! Criterion microbenchmarks: the dynamic-programming partitioner versus
//! fixed partitioning across list lengths and maxSize values.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use iiu_index::{Partitioner, Posting, PostingList};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bursty_list(n: usize, seed: u64) -> PostingList {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = 0u32;
    PostingList::from_sorted(
        (0..n)
            .map(|_| {
                acc += if rng.gen_bool(0.9) { 1 } else { rng.gen_range(2..5000) };
                Posting::new(acc, rng.gen_range(1..16))
            })
            .collect(),
    )
}

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    for n in [10_000usize, 100_000] {
        let list = bursty_list(n, 3);
        group.throughput(Throughput::Elements(n as u64));
        for max in [64usize, 256, 1024] {
            group.bench_with_input(
                BenchmarkId::new(format!("dynamic-{max}"), n),
                &list,
                |b, list| b.iter(|| black_box(Partitioner::dynamic(max).partition(list))),
            );
        }
        group.bench_with_input(BenchmarkId::new("fixed-128", n), &list, |b, list| {
            b.iter(|| black_box(Partitioner::fixed(128).partition(list)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_partitioners
}
criterion_main!(benches);
