//! Microbenchmarks: the dynamic-programming partitioner versus fixed
//! partitioning across list lengths and maxSize values. Run with
//! `cargo bench --bench partitioner`.

use std::hint::black_box;

use iiu_bench::micro::bench;
use iiu_index::{Partitioner, Posting, PostingList};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bursty_list(n: usize, seed: u64) -> PostingList {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = 0u32;
    PostingList::from_sorted(
        (0..n)
            .map(|_| {
                acc += if rng.gen_bool(0.9) { 1 } else { rng.gen_range(2..5000) };
                Posting::new(acc, rng.gen_range(1..16))
            })
            .collect(),
    )
}

fn main() {
    for n in [10_000usize, 100_000] {
        let list = bursty_list(n, 3);
        for max in [64usize, 256, 1024] {
            bench(&format!("partition/dynamic-{max}/{n}"), || {
                black_box(Partitioner::dynamic(max).partition(&list))
            });
        }
        bench(&format!("partition/fixed-128/{n}"), || {
            black_box(Partitioner::fixed(128).partition(&list))
        });
    }
}
