//! Microbenchmarks: encode/decode throughput of every compression codec
//! on realistic gap distributions. Run with `cargo bench --bench codecs`.

use std::hint::black_box;

use iiu_bench::micro::bench;
use iiu_codecs::all_codecs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn clustered_doc_ids(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = 0u32;
    (0..n)
        .map(|_| {
            let gap = if rng.gen_bool(0.85) {
                rng.gen_range(1u32..4)
            } else {
                rng.gen_range(4u32..600)
            };
            acc += gap;
            acc
        })
        .collect()
}

fn main() {
    let ids = clustered_doc_ids(100_000, 42);
    for codec in all_codecs() {
        let encoded = codec.encode_sorted(&ids);
        bench(&format!("codec/encode/{}", codec.name()), || {
            black_box(codec.encode_sorted(&ids))
        });
        bench(&format!("codec/decode/{}", codec.name()), || {
            black_box(codec.decode_sorted(&encoded, ids.len()))
        });
    }

    {
        use iiu_index::{Partitioner, Posting, PostingList};
        let ids = clustered_doc_ids(100_000, 7);
        let list = PostingList::from_sorted(ids.iter().map(|&d| Posting::new(d, 2)).collect());
        let part = Partitioner::dynamic(256).partition(&list);
        let enc = iiu_index::EncodedList::encode(&list, &part).expect("encodes");
        bench("iiu-format/decode_all", || black_box(enc.decode_all()));
    }
}
