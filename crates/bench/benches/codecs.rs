//! Criterion microbenchmarks: encode/decode throughput of every
//! compression codec on realistic gap distributions.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use iiu_codecs::all_codecs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn clustered_doc_ids(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = 0u32;
    (0..n)
        .map(|_| {
            let gap = if rng.gen_bool(0.85) { rng.gen_range(1..4) } else { rng.gen_range(4..600) };
            acc += gap;
            acc
        })
        .collect()
}

fn bench_codecs(c: &mut Criterion) {
    let ids = clustered_doc_ids(100_000, 42);
    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Elements(ids.len() as u64));
    for codec in all_codecs() {
        let encoded = codec.encode_sorted(&ids);
        group.bench_with_input(
            BenchmarkId::new("encode", codec.name()),
            &ids,
            |b, ids| b.iter(|| black_box(codec.encode_sorted(ids))),
        );
        group.bench_with_input(
            BenchmarkId::new("decode", codec.name()),
            &encoded,
            |b, bytes| b.iter(|| black_box(codec.decode_sorted(bytes, ids.len()))),
        );
    }
    group.finish();
}

fn bench_iiu_block_decode(c: &mut Criterion) {
    use iiu_index::{Partitioner, Posting, PostingList};
    let ids = clustered_doc_ids(100_000, 7);
    let list = PostingList::from_sorted(ids.iter().map(|&d| Posting::new(d, 2)).collect());
    let part = Partitioner::dynamic(256).partition(&list);
    let enc = iiu_index::EncodedList::encode(&list, &part).expect("encodes");
    let mut group = c.benchmark_group("iiu-format");
    group.throughput(Throughput::Elements(list.len() as u64));
    group.bench_function("decode_all", |b| b.iter(|| black_box(enc.decode_all())));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_codecs, bench_iiu_block_decode
}
criterion_main!(benches);
