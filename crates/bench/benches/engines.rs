//! Macrobenchmarks: end-to-end query processing on the baseline engine
//! and wall-clock speed of the cycle-level simulator. Run with
//! `cargo bench --bench engines`.

use std::hint::black_box;

use iiu_baseline::CpuEngine;
use iiu_bench::micro::bench;
use iiu_sim::{IiuMachine, SimConfig, SimQuery};
use iiu_workloads::{CorpusConfig, QuerySampler};

fn main() {
    let index = CorpusConfig::ccnews_like(20_000).generate().into_default_index();
    let mut sampler = QuerySampler::new(&index, 9);
    let term = sampler.single_queries(1).remove(0);
    let (ta, tb) = {
        let (a, b) = sampler.pair_queries(1).remove(0);
        (index.term_id(&a).unwrap(), index.term_id(&b).unwrap())
    };
    let term_id = index.term_id(&term).unwrap();

    let mut engine = CpuEngine::new(&index);
    bench("baseline/single_term", || black_box(engine.search_single(&term, 10).unwrap()));

    let machine = IiuMachine::new(&index, SimConfig::default());
    bench("simulator/single_term_1core", || {
        black_box(machine.run_query(SimQuery::Single(term_id), 1).expect("sim completes"))
    });
    bench("simulator/intersection_1core", || {
        black_box(machine.run_query(SimQuery::Intersect(ta, tb), 1).expect("sim completes"))
    });
}
