//! Criterion macrobenchmarks: end-to-end query processing on the baseline
//! engine and wall-clock speed of the cycle-level simulator.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use iiu_baseline::CpuEngine;
use iiu_sim::{IiuMachine, SimConfig, SimQuery};
use iiu_workloads::{CorpusConfig, QuerySampler};

fn bench_engines(c: &mut Criterion) {
    let index = CorpusConfig::ccnews_like(20_000).generate().into_default_index();
    let mut sampler = QuerySampler::new(&index, 9);
    let term = sampler.single_queries(1).remove(0);
    let (ta, tb) = {
        let (a, b) = sampler.pair_queries(1).remove(0);
        (index.term_id(&a).unwrap(), index.term_id(&b).unwrap())
    };
    let term_id = index.term_id(&term).unwrap();

    let engine = CpuEngine::new(&index);
    c.bench_function("baseline/single_term", |b| {
        b.iter(|| black_box(engine.search_single(&term, 10).unwrap()))
    });

    let machine = IiuMachine::new(&index, SimConfig::default());
    c.bench_function("simulator/single_term_1core", |b| {
        b.iter(|| black_box(machine.run_query(SimQuery::Single(term_id), 1).expect("sim completes")))
    });
    c.bench_function("simulator/intersection_1core", |b| {
        b.iter(|| black_box(machine.run_query(SimQuery::Intersect(ta, tb), 1).expect("sim completes")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_engines
}
criterion_main!(benches);
