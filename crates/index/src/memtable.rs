//! In-memory write buffer for the incremental index.
//!
//! Documents accepted since the last seal live here as uncompressed
//! posting lists over *buffer-local* document ids (0-based in arrival
//! order). The buffer is fully searchable: the incremental index unions
//! it with sealed segments at query time, remapping local ids by the
//! sealed-document offset. Sealing drains the buffer into a compressed
//! on-disk segment.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::BTreeMap;

use crate::posting::PostingList;
use crate::wal::IngestDoc;

/// Uncompressed, searchable buffer of not-yet-sealed documents.
#[derive(Debug, Default)]
pub struct WriteBuffer {
    /// Term → postings over buffer-local doc ids. `BTreeMap` keeps terms
    /// in lexicographic order, matching [`crate::IndexBuilder`] and the
    /// segment seal path.
    lists: BTreeMap<String, PostingList>,
    /// Token length per buffered document, indexed by local doc id.
    doc_lens: Vec<u32>,
}

impl WriteBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        WriteBuffer::default()
    }

    /// Number of buffered documents.
    pub fn num_docs(&self) -> usize {
        self.doc_lens.len()
    }

    /// True when no documents are buffered.
    pub fn is_empty(&self) -> bool {
        self.doc_lens.is_empty()
    }

    /// Token lengths of the buffered documents, in arrival order.
    pub fn doc_lens(&self) -> &[u32] {
        &self.doc_lens
    }

    /// Postings for `term` over buffer-local doc ids, if any.
    pub fn postings(&self, term: &str) -> Option<&PostingList> {
        self.lists.get(term)
    }

    /// Document frequency of `term` within the buffer.
    pub fn df(&self, term: &str) -> u64 {
        self.lists.get(term).map_or(0, |l| l.len() as u64)
    }

    /// Appends one document, assigning it the next local doc id.
    /// [`IngestDoc`]'s normalized (strictly sorted, tf ≥ 1) term pairs
    /// make the per-list `push` monotonicity invariant hold trivially.
    pub fn add(&mut self, doc: &IngestDoc) {
        let local_id = self.doc_lens.len() as u32;
        self.doc_lens.push(doc.len());
        for (term, tf) in doc.terms() {
            self.lists.entry(term.clone()).or_default().push(local_id, *tf);
        }
    }

    /// Drains the buffer into `(term, postings)` pairs in lexicographic
    /// term order plus the doc-length table — the exact shape
    /// [`crate::InvertedIndex::from_lists`] consumes for sealing.
    pub fn drain(&mut self) -> (Vec<(String, PostingList)>, Vec<u32>) {
        let lists = std::mem::take(&mut self.lists).into_iter().collect();
        let doc_lens = std::mem::take(&mut self.doc_lens);
        (lists, doc_lens)
    }

    /// Iterates `(term, postings)` in lexicographic term order without
    /// draining.
    pub fn iter_lists(&self) -> impl Iterator<Item = (&str, &PostingList)> {
        self.lists.iter().map(|(t, l)| (t.as_str(), l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(len: u32, terms: &[(&str, u32)]) -> IngestDoc {
        IngestDoc::new(len, terms.iter().map(|(t, f)| ((*t).to_owned(), *f)).collect())
    }

    #[test]
    fn add_assigns_sequential_local_ids() {
        let mut buf = WriteBuffer::new();
        buf.add(&doc(5, &[("b", 2), ("a", 1)]));
        buf.add(&doc(3, &[("b", 7)]));
        assert_eq!(buf.num_docs(), 2);
        assert_eq!(buf.doc_lens(), &[5, 3]);
        assert_eq!(buf.df("a"), 1);
        assert_eq!(buf.df("b"), 2);
        assert_eq!(buf.df("zzz"), 0);
        let b = buf.postings("b").unwrap();
        assert_eq!(b.doc_ids(), vec![0, 1]);
        assert_eq!(b.term_freqs(), vec![2, 7]);
    }

    #[test]
    fn drain_empties_and_orders_terms() {
        let mut buf = WriteBuffer::new();
        buf.add(&doc(4, &[("zeta", 1), ("alpha", 2)]));
        let (lists, lens) = buf.drain();
        assert_eq!(lens, vec![4]);
        let names: Vec<&str> = lists.iter().map(|(t, _)| t.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        assert!(buf.is_empty());
        assert!(buf.iter_lists().next().is_none());
    }
}
