//! Crash recovery for the incremental index directory.
//!
//! Opening a directory replays everything a crash could have left behind
//! and reconstructs exactly the acknowledged state:
//!
//! 1. `*.tmp` files (segment seals or merges that never reached their
//!    rename) are deleted.
//! 2. Segment files are discovered from their names, segments fully
//!    contained in another's range are dropped as stale pre-merge
//!    leftovers, and the survivors must tile `[0, total)` contiguously —
//!    anything else is typed corruption, never a panic.
//! 3. Each surviving segment is loaded and checksum-verified by the
//!    format reader, and must agree with the options the directory is
//!    opened with (a segment sealed under different BM25 parameters
//!    would score inconsistently, and one sealed under a different block
//!    codec would silently diverge from the directory's write path; both
//!    are refused).
//! 4. The WAL is replayed from the sealed-document count: torn tails are
//!    truncated, duplicates skipped, provable corruption reported as
//!    [`IndexError::CorruptWal`].
//!
//! The whole pass is summarized in a [`RecoveryReport`] so callers (and
//! the chaos tests) can assert the recovery story truthfully.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;
use std::fs;
use std::path::Path;

use crate::codec::CodecId;
use crate::error::IndexError;
use crate::memtable::WriteBuffer;
use crate::partition::Partitioner;
use crate::score::Bm25Params;
use crate::segment::{self, LoadedSegment, SegmentMeta, TMP_SUFFIX};
use crate::wal::{self, Wal, WAL_FILE_NAME};

fn io_err(context: &'static str, e: std::io::Error) -> IndexError {
    IndexError::Io { context, message: e.to_string() }
}

/// What recovery found and did while opening a directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segments loaded and serving.
    pub segments_loaded: usize,
    /// Stale segments dropped because a merged segment subsumed them.
    pub segments_subsumed: usize,
    /// In-flight `*.tmp` files deleted.
    pub tmp_files_removed: usize,
    /// Documents replayed from the WAL into the write buffer.
    pub wal_docs_replayed: u64,
    /// WAL records skipped as duplicates / already sealed.
    pub wal_duplicates_skipped: u64,
    /// Torn-tail bytes truncated from the WAL.
    pub wal_torn_bytes_truncated: u64,
    /// True when no WAL existed (fresh directory) and one was created.
    pub wal_was_missing: bool,
    /// True when the WAL header itself was torn and the file was rebuilt.
    pub wal_header_rebuilt: bool,
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} segment(s) loaded ({} subsumed, {} tmp removed); \
             WAL: {} doc(s) replayed, {} duplicate(s) skipped, {} torn byte(s) truncated{}{}",
            self.segments_loaded,
            self.segments_subsumed,
            self.tmp_files_removed,
            self.wal_docs_replayed,
            self.wal_duplicates_skipped,
            self.wal_torn_bytes_truncated,
            if self.wal_was_missing { ", WAL created fresh" } else { "" },
            if self.wal_header_rebuilt { ", torn WAL header rebuilt" } else { "" },
        )
    }
}

/// Everything recovery hands back to [`crate::IncrementalIndex::open`].
#[derive(Debug)]
pub struct RecoveredState {
    /// Loaded segments in ascending `start` order, tiling `[0, total)`.
    pub segments: Vec<LoadedSegment>,
    /// Write buffer rebuilt from the WAL replay.
    pub buffer: WriteBuffer,
    /// The WAL, truncated past any torn tail and open for appending.
    pub wal: Wal,
    /// What happened.
    pub report: RecoveryReport,
}

/// Scans `dir`, removes in-flight temp files, resolves the segment set,
/// and replays the WAL. See the module docs for the full protocol.
/// Segments are materialized on the heap; see [`recover_mode`] to map
/// them instead.
pub fn recover(
    dir: &Path,
    partitioner: Partitioner,
    params: Bm25Params,
    codec: CodecId,
) -> Result<RecoveredState, IndexError> {
    recover_mode(dir, partitioner, params, codec, false)
}

/// [`recover`] with a choice of segment backing: `mmap_segments` loads
/// each sealed segment via [`segment::load_segment_mmap`] (zero-copy,
/// payload CRCs deferred to first touch) instead of
/// [`segment::load_segment`] (heap, fully verified at load).
pub fn recover_mode(
    dir: &Path,
    partitioner: Partitioner,
    params: Bm25Params,
    codec: CodecId,
    mmap_segments: bool,
) -> Result<RecoveredState, IndexError> {
    let mut report = RecoveryReport::default();

    // Pass 1: enumerate the directory, deleting in-flight temp files.
    let mut metas: Vec<SegmentMeta> = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| io_err("listing the index directory", e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("listing the index directory", e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else {
            return Err(IndexError::CorruptIndex { context: "non-UTF-8 file name" });
        };
        if name.ends_with(TMP_SUFFIX) {
            fs::remove_file(entry.path()).map_err(|e| io_err("removing a tmp file", e))?;
            report.tmp_files_removed += 1;
            continue;
        }
        if name == WAL_FILE_NAME {
            continue;
        }
        match segment::parse_segment_name(name) {
            Some((start, count)) => {
                if count == 0 {
                    return Err(IndexError::CorruptIndex { context: "zero-length segment" });
                }
                metas.push(SegmentMeta { start, count, file_name: name.to_owned() });
            }
            None if name.starts_with("seg-") => {
                return Err(IndexError::CorruptIndex {
                    context: "unparseable segment file name",
                });
            }
            None => {} // unrelated file; ignore
        }
    }

    // Pass 2: subsumption resolution + tiling validation. Sorting by
    // (start asc, count desc) puts each merged segment before the stale
    // inputs it covers.
    metas.sort_unstable_by(|a, b| a.start.cmp(&b.start).then(b.count.cmp(&a.count)));
    let mut resolved: Vec<SegmentMeta> = Vec::new();
    let mut covered_end = 0u64;
    for m in metas {
        if m.end() <= covered_end {
            // Fully contained in already-kept coverage: a stale pre-merge
            // leftover. Delete it so it cannot resurface.
            fs::remove_file(dir.join(&m.file_name))
                .map_err(|e| io_err("removing a subsumed segment", e))?;
            report.segments_subsumed += 1;
        } else if m.start == covered_end {
            covered_end = m.end();
            resolved.push(m);
        } else if m.start > covered_end {
            return Err(IndexError::CorruptIndex { context: "segment ranges leave a gap" });
        } else {
            return Err(IndexError::CorruptIndex { context: "segment ranges overlap" });
        }
    }

    // Pass 3: load and cross-check every surviving segment.
    let mut segments = Vec::with_capacity(resolved.len());
    for meta in &resolved {
        let loaded = if mmap_segments {
            segment::load_segment_mmap(dir, meta)?
        } else {
            segment::load_segment(dir, meta)?
        };
        if loaded.index.partitioner() != partitioner
            || loaded.index.params() != params
            || loaded.index.codec() != codec
        {
            return Err(IndexError::CorruptIndex {
                context: "segment sealed under different index options",
            });
        }
        segments.push(loaded);
    }
    report.segments_loaded = segments.len();
    let sealed_docs = covered_end;

    // Pass 4: WAL replay from the sealed-document count.
    let wal_path = dir.join(WAL_FILE_NAME);
    let mut buffer = WriteBuffer::new();
    let wal = if wal_path.exists() {
        let bytes = fs::read(&wal_path).map_err(|e| io_err("reading the WAL", e))?;
        let replayed = wal::replay(&bytes, sealed_docs)?;
        report.wal_docs_replayed = replayed.docs.len() as u64;
        report.wal_duplicates_skipped = replayed.duplicates_skipped;
        report.wal_torn_bytes_truncated = replayed.torn_bytes;
        for doc in &replayed.docs {
            buffer.add(doc);
        }
        if replayed.valid_len == 0 {
            // The 8-byte header itself was torn: rebuild from scratch.
            report.wal_header_rebuilt = !bytes.is_empty();
            Wal::create(&wal_path, replayed.next_seq)?
        } else {
            Wal::open_append(&wal_path, replayed.next_seq, replayed.valid_len)?
        }
    } else {
        report.wal_was_missing = true;
        Wal::create(&wal_path, sealed_docs)?
    };

    Ok(RecoveredState { segments, buffer, wal, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posting::PostingList;

    fn opts() -> (Partitioner, Bm25Params) {
        (Partitioner::dynamic(crate::partition::DEFAULT_MAX_SIZE), Bm25Params::default())
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("iiu-rec-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn seal_one(dir: &Path, start: u64, n: u64) -> LoadedSegment {
        let (part, params) = opts();
        let mut list = PostingList::new();
        let mut lens = Vec::new();
        for i in 0..n {
            list.push(i as u32, 1 + (i as u32 % 3));
            lens.push(10 + i as u32);
        }
        segment::seal_segment(dir, start, vec![("term".into(), list)], lens, part, params)
            .unwrap()
    }

    #[test]
    fn fresh_directory_creates_wal() {
        let dir = tmp_dir("fresh");
        let (part, params) = opts();
        let state = recover(&dir, part, params, CodecId::BitPack).unwrap();
        assert!(state.report.wal_was_missing);
        assert_eq!(state.segments.len(), 0);
        assert!(state.buffer.is_empty());
        assert!(dir.join(WAL_FILE_NAME).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tmp_files_are_removed_and_counted() {
        let dir = tmp_dir("tmp");
        std::fs::write(dir.join("seg-000000000000-000000000005.iiu.tmp"), b"junk").unwrap();
        let (part, params) = opts();
        let state = recover(&dir, part, params, CodecId::BitPack).unwrap();
        assert_eq!(state.report.tmp_files_removed, 1);
        assert!(!dir.join("seg-000000000000-000000000005.iiu.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn subsumed_segments_are_dropped_and_deleted() {
        let dir = tmp_dir("subsume");
        let (part, params) = opts();
        // Old tiling: [0,2) and [2,3). Merged: [0,3).
        let a = seal_one(&dir, 0, 2);
        let b = seal_one(&dir, 2, 1);
        seal_one(&dir, 0, 3);
        let state = recover(&dir, part, params, CodecId::BitPack).unwrap();
        assert_eq!(state.report.segments_loaded, 1);
        assert_eq!(state.report.segments_subsumed, 2);
        assert_eq!(state.segments[0].meta.count, 3);
        assert!(!dir.join(&a.meta.file_name).exists());
        assert!(!dir.join(&b.meta.file_name).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gap_in_tiling_is_typed_error() {
        let dir = tmp_dir("gap");
        let (part, params) = opts();
        seal_one(&dir, 0, 2);
        seal_one(&dir, 5, 1); // [2,5) missing
        let err = recover(&dir, part, params, CodecId::BitPack).unwrap_err();
        assert!(matches!(
            err,
            IndexError::CorruptIndex { context: "segment ranges leave a gap" }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_overlap_is_typed_error() {
        let dir = tmp_dir("overlap");
        let (part, params) = opts();
        seal_one(&dir, 0, 3);
        seal_one(&dir, 2, 3); // overlaps [2,3) but extends past
        let err = recover(&dir, part, params, CodecId::BitPack).unwrap_err();
        assert!(matches!(err, IndexError::CorruptIndex { context: "segment ranges overlap" }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unparseable_seg_name_is_typed_error() {
        let dir = tmp_dir("badname");
        std::fs::write(dir.join("seg-bogus.iiu"), b"x").unwrap();
        let (part, params) = opts();
        let err = recover(&dir, part, params, CodecId::BitPack).unwrap_err();
        assert!(matches!(
            err,
            IndexError::CorruptIndex { context: "unparseable segment file name" }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_segment_file_is_typed_error() {
        let dir = tmp_dir("truncseg");
        let (part, params) = opts();
        let s = seal_one(&dir, 0, 2);
        let path = dir.join(&s.meta.file_name);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = recover(&dir, part, params, CodecId::BitPack).unwrap_err();
        // Any typed corruption error is acceptable; a panic is not.
        let _ = err.to_string();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_options_are_refused() {
        let dir = tmp_dir("optmis");
        let (part, params) = opts();
        seal_one(&dir, 0, 2);
        let err = recover(&dir, Partitioner::fixed(64), params, CodecId::BitPack).unwrap_err();
        assert!(matches!(
            err,
            IndexError::CorruptIndex {
                context: "segment sealed under different index options"
            }
        ));
        let err = recover(&dir, part, Bm25Params { k1: 9.9, ..params }, CodecId::BitPack)
            .unwrap_err();
        assert!(matches!(err, IndexError::CorruptIndex { .. }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_codec_is_refused() {
        let dir = tmp_dir("codecmis");
        let (part, params) = opts();
        seal_one(&dir, 0, 2); // sealed bit-packed
        let err = recover(&dir, part, params, CodecId::StreamVByte).unwrap_err();
        assert!(matches!(
            err,
            IndexError::CorruptIndex {
                context: "segment sealed under different index options"
            }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
