//! Binary index file format.
//!
//! The host's `init(file invFile)` primitive (paper §4.1) loads the inverted
//! index from a file into the memory region the accelerator reads. This
//! module defines that file format: a little-endian, sectioned layout with a
//! magic/version word, the BM25 parameters, the document-length table, and
//! one record per term (name, metadata words, skip values, payload bytes).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::block::BlockMeta;
use crate::error::IndexError;
use crate::index::InvertedIndex;
use crate::partition::Partitioner;
use crate::posting::PostingList;
use crate::score::Bm25Params;

/// Magic + version identifying the format ("IIUX" + 0x0001).
pub const MAGIC: u64 = 0x4949_5558_0000_0001;

/// Serializes `index` to bytes.
pub fn serialize(index: &InvertedIndex) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u64_le(MAGIC);
    buf.put_f64_le(index.params().k1);
    buf.put_f64_le(index.params().b);
    match index.partitioner() {
        Partitioner::Fixed { block_len } => {
            buf.put_u8(0);
            buf.put_u32_le(block_len as u32);
        }
        Partitioner::Dynamic { max_size } => {
            buf.put_u8(1);
            buf.put_u32_le(max_size as u32);
        }
    }
    buf.put_u64_le(index.num_docs());
    for &l in index.doc_lens() {
        buf.put_u32_le(l);
    }
    buf.put_u64_le(index.num_terms() as u64);
    for info in index.terms() {
        let list = index.encoded_list(index.term_id(&info.term).expect("term in dictionary"));
        buf.put_u32_le(info.term.len() as u32);
        buf.put_slice(info.term.as_bytes());
        buf.put_u64_le(list.num_postings());
        buf.put_u64_le(list.num_blocks() as u64);
        for meta in list.metas() {
            buf.put_u64_le(meta.pack());
        }
        for &skip in list.skips() {
            buf.put_u32_le(skip);
        }
        buf.put_u64_le(list.payload().len() as u64);
        buf.put_slice(list.payload());
    }
    buf.freeze()
}

/// Deserializes an index previously written by [`serialize`].
///
/// # Errors
///
/// Returns [`IndexError::UnsupportedFormat`] on a bad magic word and
/// [`IndexError::CorruptIndex`] on truncated or inconsistent content.
pub fn deserialize(mut bytes: &[u8]) -> Result<InvertedIndex, IndexError> {
    fn need(buf: &[u8], n: usize, context: &'static str) -> Result<(), IndexError> {
        if buf.remaining() < n {
            Err(IndexError::CorruptIndex { context })
        } else {
            Ok(())
        }
    }

    need(bytes, 8, "magic")?;
    let magic = bytes.get_u64_le();
    if magic != MAGIC {
        return Err(IndexError::UnsupportedFormat { found: magic });
    }
    need(bytes, 8 + 8 + 1 + 4 + 8, "header")?;
    let k1 = bytes.get_f64_le();
    let b = bytes.get_f64_le();
    let params = Bm25Params { k1, b };
    let part_kind = bytes.get_u8();
    let part_arg = bytes.get_u32_le() as usize;
    let partitioner = match part_kind {
        0 => Partitioner::fixed(part_arg),
        1 => Partitioner::dynamic(part_arg),
        _ => return Err(IndexError::CorruptIndex { context: "partitioner kind" }),
    };
    let n_docs = bytes.get_u64_le() as usize;
    need(bytes, n_docs * 4, "doc length table")?;
    let doc_lens: Vec<u32> = (0..n_docs).map(|_| bytes.get_u32_le()).collect();

    need(bytes, 8, "term count")?;
    let n_terms = bytes.get_u64_le() as usize;
    let mut lists = Vec::with_capacity(n_terms);
    for _ in 0..n_terms {
        need(bytes, 4, "term name length")?;
        let name_len = bytes.get_u32_le() as usize;
        need(bytes, name_len, "term name")?;
        let name = std::str::from_utf8(&bytes[..name_len])
            .map_err(|_| IndexError::CorruptIndex { context: "term name utf-8" })?
            .to_owned();
        bytes.advance(name_len);

        need(bytes, 16, "list header")?;
        let num_postings = bytes.get_u64_le();
        let num_blocks = bytes.get_u64_le() as usize;
        need(bytes, num_blocks * 12 + 8, "block tables")?;
        let metas: Vec<BlockMeta> =
            (0..num_blocks).map(|_| BlockMeta::unpack(bytes.get_u64_le())).collect();
        let skips: Vec<u32> = (0..num_blocks).map(|_| bytes.get_u32_le()).collect();
        let payload_len = bytes.get_u64_le() as usize;
        need(bytes, payload_len, "payload")?;
        let payload = bytes[..payload_len].to_vec();
        bytes.advance(payload_len);

        // Rebuild the list by decoding and re-encoding: this validates the
        // content and reconstructs the derived fields (model cost) without
        // trusting the file.
        let block_lens: Vec<usize> = metas.iter().map(|m| m.count as usize).collect();
        let total: u64 = block_lens.iter().map(|&l| l as u64).sum();
        if total != num_postings {
            return Err(IndexError::CorruptIndex { context: "posting count mismatch" });
        }
        let decoded = decode_raw(&metas, &skips, &payload)?;
        let list = PostingList::from_sorted(decoded);
        lists.push((name, list));
    }

    InvertedIndex::from_lists(lists, doc_lens, partitioner, params)
}

/// Decodes raw block tables into postings, with bounds checking.
fn decode_raw(
    metas: &[BlockMeta],
    skips: &[u32],
    payload: &[u8],
) -> Result<Vec<crate::posting::Posting>, IndexError> {
    use crate::bitpack::BitReader;
    if metas.len() != skips.len() {
        return Err(IndexError::CorruptIndex { context: "skip/meta count mismatch" });
    }
    let mut out = Vec::new();
    for (meta, &skip) in metas.iter().zip(skips) {
        let bits_needed = meta.offset as usize * 8
            + meta.pair_bits() as usize * meta.count as usize;
        if bits_needed > payload.len() * 8 {
            return Err(IndexError::CorruptIndex { context: "payload bounds" });
        }
        let mut r = BitReader::with_bit_offset(payload, meta.offset as usize * 8);
        let mut prev = skip;
        for i in 0..meta.count {
            let gap = r.read(meta.dn_bits);
            let tf = r.read(meta.tf_bits);
            let doc = if i == 0 {
                skip
            } else {
                prev.checked_add(gap)
                    .ok_or(IndexError::CorruptIndex { context: "docID overflow" })?
            };
            if let Some(last) = out.last() {
                let last: &crate::posting::Posting = last;
                if doc <= last.doc_id {
                    return Err(IndexError::CorruptIndex { context: "docIDs not increasing" });
                }
            }
            out.push(crate::posting::Posting::new(doc, tf));
            prev = doc;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BuildOptions, IndexBuilder};

    fn sample_index() -> InvertedIndex {
        let mut b = IndexBuilder::new(BuildOptions::default());
        b.add_document("the quick brown fox jumps over the lazy dog");
        b.add_document("pack my box with five dozen liquor jugs");
        b.add_document("the five boxing wizards jump quickly");
        b.add_document("quick wizards pack the box");
        b.build()
    }

    #[test]
    fn roundtrip_preserves_index() {
        let idx = sample_index();
        let bytes = serialize(&idx);
        let back = deserialize(&bytes).unwrap();
        assert_eq!(idx, back);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = serialize(&sample_index()).to_vec();
        bytes[0] ^= 0xff;
        assert!(matches!(
            deserialize(&bytes),
            Err(IndexError::UnsupportedFormat { .. })
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = serialize(&sample_index()).to_vec();
        // Every strict prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            let r = deserialize(&bytes[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes must be rejected");
        }
    }

    #[test]
    fn roundtrip_empty_index() {
        let idx = IndexBuilder::new(BuildOptions::default()).build();
        let bytes = serialize(&idx);
        let back = deserialize(&bytes).unwrap();
        assert_eq!(idx, back);
    }

    #[test]
    fn roundtrip_preserves_partitioner_and_params() {
        let mut b = IndexBuilder::new(BuildOptions {
            partitioner: Partitioner::fixed(128),
            bm25: Bm25Params { k1: 0.9, b: 0.4 },
            ..Default::default()
        });
        b.add_document("alpha beta gamma alpha");
        let idx = b.build();
        let back = deserialize(&serialize(&idx)).unwrap();
        assert_eq!(back.partitioner(), Partitioner::fixed(128));
        assert!((back.params().k1 - 0.9).abs() < 1e-12);
        assert!((back.params().b - 0.4).abs() < 1e-12);
    }
}
