//! Binary index file format.
//!
//! The host's `init(file invFile)` primitive (paper §4.1) loads the inverted
//! index from a file into the memory region the accelerator reads. This
//! module defines that file format: a little-endian, sectioned layout with a
//! magic/version word, the BM25 parameters, the document-length table, and
//! one record per term (name, metadata words, skip values, payload bytes).
//!
//! # Format v4 (current)
//!
//! Version 4 extends the v3 layout with a block-codec id byte inside the
//! CRC-protected header — the codec every posting-list payload is encoded
//! with (see [`crate::codec::CodecId`]):
//!
//! ```text
//! magic/version            u64   (MAGIC, not covered by a section CRC)
//! header                   k1 f64 · b f64 · partitioner (u8 kind + u32 arg)
//!                          · codec u8 (v4 only)
//!                          · num_docs u64 · num_terms u64      + crc32 u32
//! doc-length table         num_docs × u32                      + crc32 u32
//! term record (× num_terms)
//!                          name_len u32 · name bytes
//!                          · num_postings u64 · num_blocks u64
//!                          · num_blocks × meta u64
//!                          · num_blocks × skip u32
//!                          · payload_len u64 · payload bytes   + crc32 u32
//! score bounds (v3+)       per term: num_blocks u64
//!                          · num_blocks × (ub_raw u32 · max_tf u32)
//!                          whole section                       + crc32 u32
//! footer                   crc32 u32 over every preceding byte
//! ```
//!
//! [`deserialize`] verifies each section checksum before trusting its
//! contents, then rebuilds every posting list by decoding it (bounds
//! checked) and re-encoding, so a malformed file yields a typed
//! [`IndexError`] — never a panic or an out-of-bounds read. The codec id
//! is interpreted only after the header CRC verifies: random corruption
//! of the byte surfaces as a checksum mismatch, while a CRC-consistent
//! id this build does not implement is the typed
//! [`IndexError::UnknownCodec`]. A CRC-consistent *flip* to a different
//! valid codec decodes the payloads as garbage and is rejected by the
//! monotonic-docID check or the score-bounds recomputation oracle. The
//! score bounds section is additionally held against a full recomputation
//! from the decoded postings: a CRC-consistent file whose stored bounds
//! disagree with the postings is rejected (`score bounds mismatch`)
//! rather than silently pruning wrong results. Version 3 (no codec byte —
//! always the bit-packed codec), version 2 (no bounds section) and
//! version 1 files (no checksums) remain readable — bounds are derived
//! data, recomputed on every load path — and unknown versions are
//! rejected with [`IndexError::UnsupportedFormat`].

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::block::{BlockMeta, EncodedList};
use crate::bounds::ListBounds;
use crate::checksum::{crc32, Crc32};
use crate::codec::CodecId;
use crate::error::IndexError;
use crate::index::InvertedIndex;
use crate::partition::Partitioner;
use crate::posting::PostingList;
use crate::score::{Bm25Params, Fixed};
use crate::shard::ShardedIndex;

/// Little-endian append helpers over the output buffer (the serialized
/// format is defined in terms of these primitives).
trait PutLe {
    fn put_u8(&mut self, v: u8);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_f64_le(&mut self, v: f64);
    fn put_slice(&mut self, s: &[u8]);
}

impl PutLe for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

/// Magic + version identifying the current format ("IIUX" + 0x0004).
pub const MAGIC: u64 = 0x4949_5558_0000_0004;

/// Magic + version of the v3 format (score bounds, no codec id byte —
/// the bit-packed codec implicitly), still accepted by [`deserialize`].
pub const MAGIC_V3: u64 = 0x4949_5558_0000_0003;

/// Magic + version of the v2 format (checksums, no score bounds
/// section), still accepted by [`deserialize`].
pub const MAGIC_V2: u64 = 0x4949_5558_0000_0002;

/// Magic + version of the legacy checksum-free format ("IIUX" + 0x0001),
/// still accepted by [`deserialize`].
pub const MAGIC_V1: u64 = 0x4949_5558_0000_0001;

/// Magic + version of the legacy sharded-manifest format ("IIUS" +
/// 0x0001), still accepted by [`deserialize_sharded`].
///
/// Identical to [`MAGIC_SHARD_V2`] except the header carries no
/// per-shard body-length table, so a scanner cannot locate shard `s+1`
/// without successfully parsing shard `s` — [`scan_sharded`] degrades to
/// stop-at-first-error on these files.
pub const MAGIC_SHARD: u64 = 0x4949_5553_0000_0001;

/// Magic + version of the legacy v2 sharded-manifest format ("IIUS" +
/// 0x0002).
///
/// A shard manifest is *not* N concatenated plain files: every shard is
/// built with the global collection statistics (avgdl, per-term idf̄),
/// which cannot be recomputed from a shard's own postings. The manifest
/// therefore carries those statistics once, up front, followed by one
/// checksummed body (the v2/v3 header + doc table + term records) per
/// shard:
///
/// ```text
/// magic/version      u64  (MAGIC_SHARD_V2 / MAGIC_SHARD_V3)
/// shard header       num_shards u32 · global num_docs u64 · avgdl f64
///                    · parent partitioner (u8 kind + u32 arg)
///                    · num_terms u64 · num_terms × idf̄ raw u32
///                    · num_shards × body byte-length u64        + crc32
/// shard body (× N)   the checksummed body layout of the plain formats
/// footer             crc32 u32 over every preceding byte
/// ```
///
/// The body-length table (new in manifest v2) lets [`scan_sharded`]
/// locate every shard body independently, so a single corrupt shard is
/// reported as *that shard* failing its CRC cross-check while the
/// remaining shards still get scanned.
///
/// Per-shard score bounds are derived data (recomputed from the decoded
/// postings plus the manifest's global statistics on load, exactly as a
/// v2 file's bounds are), so they are not stored.
pub const MAGIC_SHARD_V2: u64 = 0x4949_5553_0000_0002;

/// Magic + version of the current sharded-manifest format ("IIUS" +
/// 0x0003): identical to [`MAGIC_SHARD_V2`] except every shard body
/// carries the v4-style codec id byte in its header, so shards can be
/// encoded with any [`CodecId`]. v2 and v1 manifests stay readable
/// (their bodies are implicitly bit-packed).
pub const MAGIC_SHARD_V3: u64 = 0x4949_5553_0000_0003;

/// Serializes `index` to bytes in format v4 (the index's block codec is
/// recorded in the CRC-protected header).
///
/// # Errors
///
/// Returns [`IndexError::UnknownTerm`] if the index's dictionary is
/// inconsistent with its term table (an internal-corruption guard that
/// replaces the old panic on this path).
pub fn serialize(index: &InvertedIndex) -> Result<Vec<u8>, IndexError> {
    let mut buf = Vec::new();
    buf.put_u64_le(MAGIC);
    write_checksummed_body(&mut buf, index, true)?;

    let bounds_start = buf.len();
    for bounds in index.bounds() {
        buf.put_u64_le(bounds.num_blocks() as u64);
        for (ub, &max_tf) in bounds.ubs().iter().zip(bounds.max_tfs()) {
            buf.put_u32_le(ub.raw());
            buf.put_u32_le(max_tf);
        }
    }
    seal_section(&mut buf, bounds_start);

    let footer = crc32(&buf);
    buf.put_u32_le(footer);
    Ok(buf)
}

/// Appends a section CRC over `buf[start..]`.
fn seal_section(buf: &mut Vec<u8>, start: usize) {
    let crc = crc32(&buf[start..]);
    buf.put_u32_le(crc);
}

/// Writes the checksummed body shared by the plain formats and the shard
/// manifest: header, doc-length table, and one sealed record per term.
/// `with_codec` selects the v4-style header carrying the codec id byte
/// (current formats) versus the legacy 37-byte header (v2/v3 bodies).
fn write_checksummed_body(
    buf: &mut Vec<u8>,
    index: &InvertedIndex,
    with_codec: bool,
) -> Result<(), IndexError> {
    let header_start = buf.len();
    buf.put_f64_le(index.params().k1);
    buf.put_f64_le(index.params().b);
    match index.partitioner() {
        Partitioner::Fixed { block_len } => {
            buf.put_u8(0);
            buf.put_u32_le(block_len as u32);
        }
        Partitioner::Dynamic { max_size } => {
            buf.put_u8(1);
            buf.put_u32_le(max_size as u32);
        }
    }
    if with_codec {
        buf.put_u8(index.codec().as_u8());
    }
    buf.put_u64_le(index.num_docs());
    buf.put_u64_le(index.num_terms() as u64);
    seal_section(buf, header_start);

    let doc_start = buf.len();
    for &l in index.doc_lens() {
        buf.put_u32_le(l);
    }
    seal_section(buf, doc_start);

    for info in index.terms() {
        let id = index
            .term_id(&info.term)
            .ok_or_else(|| IndexError::UnknownTerm { term: info.term.clone() })?;
        let list = index.encoded_list(id);
        let record_start = buf.len();
        buf.put_u32_le(info.term.len() as u32);
        buf.put_slice(info.term.as_bytes());
        buf.put_u64_le(list.num_postings());
        buf.put_u64_le(list.num_blocks() as u64);
        for meta in list.metas() {
            buf.put_u64_le(meta.pack());
        }
        for &skip in list.skips() {
            buf.put_u32_le(skip);
        }
        buf.put_u64_le(list.payload().len() as u64);
        buf.put_slice(list.payload());
        seal_section(buf, record_start);
    }
    Ok(())
}

/// Serializes a sharded index as a v3 shard manifest (see
/// [`MAGIC_SHARD_V2`] for the shared layout and [`MAGIC_SHARD_V3`] for
/// the codec-id difference).
///
/// # Errors
///
/// Returns [`IndexError::CorruptIndex`] if the sharded index has no
/// shards or its shard dictionaries disagree, and [`IndexError::UnknownTerm`]
/// on an internally inconsistent shard dictionary.
pub fn serialize_sharded(sharded: &ShardedIndex) -> Result<Vec<u8>, IndexError> {
    let Some(first) = sharded.shards().first() else {
        return Err(IndexError::CorruptIndex { context: "sharded index has no shards" });
    };
    // Render each body up front so the header can carry its byte length
    // (the table scan_sharded uses to address shards independently).
    let mut bodies: Vec<Vec<u8>> = Vec::with_capacity(sharded.num_shards());
    for shard in sharded.shards() {
        if shard.num_terms() != first.num_terms() {
            return Err(IndexError::CorruptIndex { context: "shard dictionaries disagree" });
        }
        let mut body = Vec::new();
        write_checksummed_body(&mut body, shard, true)?;
        bodies.push(body);
    }

    let mut buf = Vec::new();
    buf.put_u64_le(MAGIC_SHARD_V3);

    let header_start = buf.len();
    buf.put_u32_le(sharded.num_shards() as u32);
    buf.put_u64_le(sharded.num_docs());
    buf.put_f64_le(first.avgdl());
    match sharded.parent_partitioner() {
        Partitioner::Fixed { block_len } => {
            buf.put_u8(0);
            buf.put_u32_le(block_len as u32);
        }
        Partitioner::Dynamic { max_size } => {
            buf.put_u8(1);
            buf.put_u32_le(max_size as u32);
        }
    }
    buf.put_u64_le(first.num_terms() as u64);
    for info in first.terms() {
        buf.put_u32_le(info.idf_bar.raw());
    }
    for body in &bodies {
        buf.put_u64_le(body.len() as u64);
    }
    seal_section(&mut buf, header_start);

    for body in &bodies {
        buf.put_slice(body);
    }

    let footer = crc32(&buf);
    buf.put_u32_le(footer);
    Ok(buf)
}

/// Streams a format-v4 index file one term at a time, producing output
/// byte-identical to [`serialize`] over the same inputs without ever
/// holding the whole index — or the whole file — in memory.
///
/// The v4 header carries `num_docs`/`num_terms` and the footer CRC
/// covers every preceding byte, so construction takes the complete
/// document-length table and the term count up front and immediately
/// emits magic, header, and doc table while folding them into a running
/// [`Crc32`]. Each [`push_term`](Self::push_term) call then encodes one
/// posting list, writes its sealed record, and accumulates that list's
/// score bounds; [`finish`](Self::finish) emits the bounds section and
/// the footer. Peak memory is one encoded list plus the per-document
/// (4 + 4 bytes/doc) and per-block (16 bytes/block) tables —
/// independent of the total posting count, which is what lets `iiu gen`
/// stream a million-document corpus to disk with bounded RSS.
///
/// Terms must be pushed in the order the index's dictionary should
/// assign term ids (the synthetic corpus generator's rank order).
pub struct StreamingWriter<W: std::io::Write> {
    sink: W,
    /// Running checksum over every byte emitted so far (the footer).
    footer: Crc32,
    params: Bm25Params,
    partitioner: Partitioner,
    codec: CodecId,
    n_docs: u64,
    /// Per-document `dl̄` table, shared by every list's bound computation.
    dl_bars: Vec<Fixed>,
    /// Score bounds accumulated per pushed term, emitted by `finish`.
    bounds: Vec<ListBounds>,
    expected_terms: u64,
    written_terms: u64,
}

impl<W: std::io::Write> StreamingWriter<W> {
    /// Opens a streamed v4 file: writes magic, sealed header, and sealed
    /// doc-length table to `sink`. Exactly `num_terms` calls to
    /// [`push_term`](Self::push_term) must follow before
    /// [`finish`](Self::finish).
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::Io`] if the sink rejects a write.
    pub fn new(
        sink: W,
        doc_lens: &[u32],
        num_terms: u64,
        partitioner: Partitioner,
        params: Bm25Params,
        codec: CodecId,
    ) -> Result<Self, IndexError> {
        let n_docs = doc_lens.len() as u64;
        let avgdl = if doc_lens.is_empty() {
            1.0
        } else {
            doc_lens.iter().map(|&l| f64::from(l)).sum::<f64>() / n_docs as f64
        };
        let dl_bars: Vec<Fixed> =
            doc_lens.iter().map(|&l| Fixed::from_f64(params.dl_bar(l, avgdl))).collect();

        let mut writer = StreamingWriter {
            sink,
            footer: Crc32::new(),
            params,
            partitioner,
            codec,
            n_docs,
            dl_bars,
            bounds: Vec::with_capacity(usize::try_from(num_terms).unwrap_or(0)),
            expected_terms: num_terms,
            written_terms: 0,
        };
        writer.emit(&MAGIC.to_le_bytes())?;

        let mut header = Vec::new();
        header.put_f64_le(params.k1);
        header.put_f64_le(params.b);
        match partitioner {
            Partitioner::Fixed { block_len } => {
                header.put_u8(0);
                header.put_u32_le(block_len as u32);
            }
            Partitioner::Dynamic { max_size } => {
                header.put_u8(1);
                header.put_u32_le(max_size as u32);
            }
        }
        header.put_u8(codec.as_u8());
        header.put_u64_le(n_docs);
        header.put_u64_le(num_terms);
        seal_section(&mut header, 0);
        writer.emit(&header)?;

        let mut table = Vec::with_capacity(doc_lens.len() * 4 + 4);
        for &l in doc_lens {
            table.put_u32_le(l);
        }
        seal_section(&mut table, 0);
        writer.emit(&table)?;
        Ok(writer)
    }

    /// Encodes `list`, writes its sealed term record, and accumulates its
    /// score bounds. The term is assigned the next term id.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::CorruptIndex`] on a docID beyond the corpus
    /// or when more terms are pushed than the header declares, encoding
    /// errors from [`EncodedList::encode_with`] verbatim, and
    /// [`IndexError::Io`] if the sink rejects the write.
    pub fn push_term(&mut self, term: &str, list: &PostingList) -> Result<(), IndexError> {
        if self.written_terms == self.expected_terms {
            return Err(IndexError::CorruptIndex {
                context: "more streamed terms than the header declares",
            });
        }
        if let Some(last) = list.as_slice().last() {
            if u64::from(last.doc_id) >= self.n_docs {
                return Err(IndexError::CorruptIndex {
                    context: "posting list references docID beyond corpus",
                });
            }
        }
        let idf_bar = Fixed::from_f64(self.params.idf_bar(self.n_docs, list.len() as u64));
        let partition = self.partitioner.partition_for(list, self.codec);
        let encoded = EncodedList::encode_with(list, &partition, self.codec)?;
        self.bounds.push(ListBounds::compute(
            list.as_slice(),
            &partition,
            idf_bar,
            &self.dl_bars,
        ));

        let mut record = Vec::new();
        record.put_u32_le(term.len() as u32);
        record.put_slice(term.as_bytes());
        record.put_u64_le(encoded.num_postings());
        record.put_u64_le(encoded.num_blocks() as u64);
        for meta in encoded.metas() {
            record.put_u64_le(meta.pack());
        }
        for &skip in encoded.skips() {
            record.put_u32_le(skip);
        }
        record.put_u64_le(encoded.payload().len() as u64);
        record.put_slice(encoded.payload());
        seal_section(&mut record, 0);
        self.emit(&record)?;
        self.written_terms += 1;
        Ok(())
    }

    /// Writes the sealed score-bounds section and the footer CRC, flushes,
    /// and returns the sink.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::CorruptIndex`] if fewer terms were pushed
    /// than the header declares, and [`IndexError::Io`] on sink errors.
    pub fn finish(mut self) -> Result<W, IndexError> {
        if self.written_terms != self.expected_terms {
            return Err(IndexError::CorruptIndex {
                context: "fewer streamed terms than the header declares",
            });
        }
        let mut section = Vec::new();
        for bounds in &self.bounds {
            section.put_u64_le(bounds.num_blocks() as u64);
            for (ub, &max_tf) in bounds.ubs().iter().zip(bounds.max_tfs()) {
                section.put_u32_le(ub.raw());
                section.put_u32_le(max_tf);
            }
        }
        seal_section(&mut section, 0);
        self.emit(&section)?;

        // The footer covers everything already emitted and is itself
        // outside the running checksum.
        let footer = self.footer.finish();
        self.sink.write_all(&footer.to_le_bytes()).map_err(stream_io_err)?;
        self.sink.flush().map_err(stream_io_err)?;
        Ok(self.sink)
    }

    /// Writes `bytes` to the sink and folds them into the footer CRC.
    fn emit(&mut self, bytes: &[u8]) -> Result<(), IndexError> {
        self.footer.update(bytes);
        self.sink.write_all(bytes).map_err(stream_io_err)
    }
}

/// Maps a sink write failure to the typed I/O error.
fn stream_io_err(e: std::io::Error) -> IndexError {
    IndexError::Io { context: "writing streamed index file", message: e.to_string() }
}

/// Whether `bytes` starts with a shard-manifest magic (either manifest
/// version) — the dispatch probe loaders use to pick
/// [`deserialize_sharded`] over [`deserialize`].
pub fn is_sharded(bytes: &[u8]) -> bool {
    if bytes.len() < 8 {
        return false;
    }
    let magic = u64::from_le_bytes([
        bytes[0], bytes[1], bytes[2], bytes[3], bytes[4], bytes[5], bytes[6], bytes[7],
    ]);
    magic == MAGIC_SHARD || magic == MAGIC_SHARD_V2 || magic == MAGIC_SHARD_V3
}

/// Deserializes a shard manifest written by [`serialize_sharded`].
///
/// Each shard is rebuilt with the manifest's *global* statistics via
/// [`InvertedIndex::from_lists_with_stats`], then the assembled
/// [`ShardedIndex`] is held against its cross-shard invariants
/// (round-robin doc counts, per-shard validation).
///
/// # Errors
///
/// Returns [`IndexError::UnsupportedFormat`] on a non-manifest magic,
/// [`IndexError::ChecksumMismatch`] when a section checksum fails, and
/// [`IndexError::CorruptIndex`] on truncated or inconsistent content.
pub fn deserialize_sharded(bytes: &[u8]) -> Result<ShardedIndex, IndexError> {
    let mut r = Reader::new(bytes);
    let magic = r.u64("magic")?;
    if magic != MAGIC_SHARD && magic != MAGIC_SHARD_V2 && magic != MAGIC_SHARD_V3 {
        return Err(IndexError::UnsupportedFormat { found: magic });
    }
    let header = read_shard_header(&mut r, magic)?;
    let with_codec = magic == MAGIC_SHARD_V3;

    let mut shards = Vec::with_capacity(header.num_shards.min(r.remaining()));
    for s in 0..header.num_shards {
        let body_start = r.pos;
        let body = read_checksummed_body(&mut r, with_codec)?;
        if let Some(lens) = &header.body_lens {
            // A v2/v3 manifest records each body's byte length; a body that
            // parses but consumed a different span means the length table
            // and the content disagree (only possible under tampering with
            // checksums recomputed) — reject rather than trust either.
            if (r.pos - body_start) as u64 != lens[s] {
                return Err(IndexError::CorruptIndex {
                    context: "shard body length mismatch",
                });
            }
        }
        if body.lists.len() != header.idf_bars.len() {
            return Err(IndexError::CorruptIndex { context: "shard dictionaries disagree" });
        }
        let with_idf = body
            .lists
            .into_iter()
            .zip(&header.idf_bars)
            .map(|((term, list), &idf)| (term, list, idf))
            .collect();
        shards.push(InvertedIndex::from_lists_with_stats_codec(
            with_idf,
            body.doc_lens,
            header.avgdl,
            body.partitioner,
            body.params,
            body.codec,
        )?);
    }
    verify_footer(&mut r)?;
    ShardedIndex::from_shards(shards, header.n_docs, header.parent_partitioner)
}

/// Parsed shard-manifest header, shared by [`deserialize_sharded`],
/// [`scan_sharded`] and the zero-copy loader ([`crate::storage`]).
pub(crate) struct ShardManifestHeader {
    pub(crate) num_shards: usize,
    pub(crate) n_docs: u64,
    pub(crate) avgdl: f64,
    pub(crate) parent_partitioner: Partitioner,
    pub(crate) idf_bars: Vec<Fixed>,
    /// Per-shard body byte lengths — absent only in legacy v1 manifests.
    pub(crate) body_lens: Option<Vec<u64>>,
}

pub(crate) fn read_shard_header(
    r: &mut Reader<'_>,
    magic: u64,
) -> Result<ShardManifestHeader, IndexError> {
    let header_start = r.pos;
    let num_shards = r.u32("shard header")? as usize;
    let n_docs = r.u64("shard header")?;
    let avgdl = r.f64("shard header")?;
    let part_kind = r.u8("shard header")?;
    let part_arg = r.u32("shard header")? as usize;
    let n_terms = r.u64("shard header")? as usize;
    let idf_bytes =
        n_terms.checked_mul(4).ok_or(IndexError::CorruptIndex { context: "shard header" })?;
    let raw = r.take(idf_bytes, "shard header")?;
    let idf_bars: Vec<Fixed> = raw
        .chunks_exact(4)
        .map(|c| Fixed::from_raw(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
        .collect();
    // Legacy v1 manifests have no body-length table; v2 and v3 do.
    let body_lens = if magic != MAGIC_SHARD {
        let len_bytes = num_shards
            .checked_mul(8)
            .ok_or(IndexError::CorruptIndex { context: "shard header" })?;
        let raw = r.take(len_bytes, "shard header")?;
        Some(
            raw.chunks_exact(8)
                .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
                .collect(),
        )
    } else {
        None
    };
    r.verify_section(header_start, "shard header", "shard header checksum")?;
    let parent_partitioner = read_partitioner(part_kind, part_arg)?;
    if num_shards == 0 {
        return Err(IndexError::CorruptIndex { context: "shard count must be nonzero" });
    }
    if !avgdl.is_finite() || avgdl <= 0.0 {
        return Err(IndexError::CorruptIndex { context: "shard avgdl" });
    }
    Ok(ShardManifestHeader {
        num_shards,
        n_docs,
        avgdl,
        parent_partitioner,
        idf_bars,
        body_lens,
    })
}

/// CRC cross-check result for one shard body in a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ShardBodyStatus {
    /// The body parsed and every section checksum held.
    Ok {
        /// Documents in this shard's doc-length table.
        docs: u64,
        /// Total postings across this shard's term records.
        postings: u64,
    },
    /// The body failed its CRC cross-check (or was structurally invalid).
    Corrupt {
        /// The typed rejection.
        error: IndexError,
    },
    /// Not reached: a legacy (v1) manifest has no body-length table, so a
    /// corrupt shard hides every shard after it.
    Unscanned,
}

/// Per-shard integrity report over a shard manifest, produced by
/// [`scan_sharded`] without aborting on the first bad shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardScanReport {
    /// Manifest format version (1 or 2).
    pub version: u32,
    /// Shard count claimed by the (CRC-verified) header.
    pub num_shards: usize,
    /// Global document count claimed by the header.
    pub num_docs: u64,
    /// One status per shard body.
    pub shards: Vec<ShardBodyStatus>,
    /// Whether the whole-file footer CRC held (always `false` when any
    /// body is corrupt — the footer covers every body byte).
    pub footer_ok: bool,
}

impl ShardScanReport {
    /// Whether every shard body verified and the footer held.
    pub fn is_clean(&self) -> bool {
        self.footer_ok && self.shards.iter().all(|s| matches!(s, ShardBodyStatus::Ok { .. }))
    }

    /// Indices of shards whose body failed verification.
    pub fn corrupt_shards(&self) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, ShardBodyStatus::Corrupt { .. }))
            .map(|(i, _)| i)
            .collect()
    }

    /// The round-robin document count shard `s` must hold for the
    /// header's global count (`ShardedIndex::validate`'s invariant).
    pub fn expected_docs(&self, s: usize) -> u64 {
        let n = self.num_shards as u64;
        (self.num_docs + n - 1 - s as u64) / n
    }
}

/// Scans a shard manifest, CRC-cross-checking every shard body
/// *independently* instead of erroring on the first bad one.
///
/// On a v2 or v3 manifest the header's body-length table addresses each
/// body directly, so one corrupt shard leaves the others scannable. On a
/// legacy v1 manifest bodies are only reachable sequentially: the scan
/// stops at the first corrupt body and marks the rest
/// [`ShardBodyStatus::Unscanned`].
///
/// # Errors
///
/// Returns [`IndexError::UnsupportedFormat`] on a non-manifest magic and
/// a typed error if the *header* itself is unreadable — without a valid
/// header there is no shard layout to scan.
pub fn scan_sharded(bytes: &[u8]) -> Result<ShardScanReport, IndexError> {
    let mut r = Reader::new(bytes);
    let magic = r.u64("magic")?;
    if magic != MAGIC_SHARD && magic != MAGIC_SHARD_V2 && magic != MAGIC_SHARD_V3 {
        return Err(IndexError::UnsupportedFormat { found: magic });
    }
    let header = read_shard_header(&mut r, magic)?;
    let version = match magic {
        MAGIC_SHARD_V3 => 3,
        MAGIC_SHARD_V2 => 2,
        _ => 1,
    };
    let with_codec = magic == MAGIC_SHARD_V3;

    let scan_body = |start: usize, limit: usize| -> (ShardBodyStatus, usize) {
        if start > limit {
            let error = IndexError::CorruptIndex { context: "shard body truncated" };
            return (ShardBodyStatus::Corrupt { error }, start);
        }
        let mut br = Reader { buf: &bytes[..limit], pos: start };
        match read_checksummed_body(&mut br, with_codec) {
            Ok(body) => {
                let postings = body.lists.iter().map(|(_, l)| l.len() as u64).sum();
                (ShardBodyStatus::Ok { docs: body.doc_lens.len() as u64, postings }, br.pos)
            }
            Err(error) => (ShardBodyStatus::Corrupt { error }, br.pos),
        }
    };

    let mut shards = Vec::with_capacity(header.num_shards);
    let footer_ok;
    if let Some(lens) = &header.body_lens {
        // v2/v3: every body is addressable from the (CRC-verified) length
        // table, so a corrupt shard is reported in place and the scan
        // moves on to the next shard.
        let mut start = r.pos;
        for &len in lens {
            let end = start.checked_add(len as usize).filter(|&e| e + 4 <= bytes.len());
            match end {
                Some(end) => {
                    let (status, consumed) = scan_body(start, end);
                    // A body that parses short of its recorded span was
                    // spliced; don't let it masquerade as clean.
                    if consumed != end && matches!(status, ShardBodyStatus::Ok { .. }) {
                        shards.push(ShardBodyStatus::Corrupt {
                            error: IndexError::CorruptIndex {
                                context: "shard body length mismatch",
                            },
                        });
                    } else {
                        shards.push(status);
                    }
                    start = end;
                }
                None => {
                    shards.push(ShardBodyStatus::Corrupt {
                        error: IndexError::CorruptIndex { context: "shard body length" },
                    });
                }
            }
        }
        footer_ok = start + 4 == bytes.len()
            && crc32(&bytes[..start])
                == u32::from_le_bytes([
                    bytes[start],
                    bytes[start + 1],
                    bytes[start + 2],
                    bytes[start + 3],
                ]);
    } else {
        // v1: no length table — bodies are only locatable sequentially.
        let mut pos = r.pos;
        let mut dead = false;
        for _ in 0..header.num_shards {
            if dead {
                shards.push(ShardBodyStatus::Unscanned);
                continue;
            }
            let limit = bytes.len().saturating_sub(4);
            let (status, consumed) = scan_body(pos, limit);
            dead = matches!(status, ShardBodyStatus::Corrupt { .. });
            shards.push(status);
            pos = consumed;
        }
        footer_ok = !dead
            && pos + 4 == bytes.len()
            && crc32(&bytes[..pos])
                == u32::from_le_bytes([
                    bytes[pos],
                    bytes[pos + 1],
                    bytes[pos + 2],
                    bytes[pos + 3],
                ]);
    }

    Ok(ShardScanReport {
        version,
        num_shards: header.num_shards,
        num_docs: header.n_docs,
        shards,
        footer_ok,
    })
}

/// A bounds-checked little-endian cursor over the serialized bytes that
/// remembers its position, so section checksums can be computed over the
/// exact byte ranges that were parsed. Shared with the zero-copy loader
/// ([`crate::storage`]), which parses the same layouts over a mapping.
pub(crate) struct Reader<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn take(
        &mut self,
        n: usize,
        context: &'static str,
    ) -> Result<&'a [u8], IndexError> {
        if self.remaining() < n {
            return Err(IndexError::CorruptIndex { context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self, context: &'static str) -> Result<u8, IndexError> {
        Ok(self.take(1, context)?[0])
    }

    pub(crate) fn u32(&mut self, context: &'static str) -> Result<u32, IndexError> {
        let s = self.take(4, context)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    pub(crate) fn u64(&mut self, context: &'static str) -> Result<u64, IndexError> {
        let s = self.take(8, context)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    pub(crate) fn f64(&mut self, context: &'static str) -> Result<f64, IndexError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Reads a stored section checksum and verifies it against the bytes
    /// parsed since `start`.
    pub(crate) fn verify_section(
        &mut self,
        start: usize,
        section: &'static str,
        crc_context: &'static str,
    ) -> Result<(), IndexError> {
        let found = crc32(&self.buf[start..self.pos]);
        let expected = self.u32(crc_context)?;
        if expected != found {
            return Err(IndexError::ChecksumMismatch { section, expected, found });
        }
        Ok(())
    }
}

/// Deserializes an index previously written by [`serialize`] (format v4)
/// or by the legacy v3 (no codec id), v2 (no bounds section) or v1 (no
/// checksums) writers.
///
/// # Errors
///
/// Returns [`IndexError::UnsupportedFormat`] on an unknown magic/version
/// word, [`IndexError::UnknownCodec`] when a v4 header names a codec this
/// build doesn't know, [`IndexError::ChecksumMismatch`] when a section
/// checksum fails, and [`IndexError::CorruptIndex`] on truncated or
/// inconsistent content — including a score-bounds section that passes
/// its CRC but disagrees with the bounds recomputed from the postings.
pub fn deserialize(bytes: &[u8]) -> Result<InvertedIndex, IndexError> {
    let mut r = Reader::new(bytes);
    let magic = r.u64("magic")?;
    match magic {
        MAGIC => deserialize_bounded(r, true),
        MAGIC_V3 => deserialize_bounded(r, false),
        MAGIC_V2 => deserialize_v2(r),
        MAGIC_V1 => deserialize_v1(r),
        found => Err(IndexError::UnsupportedFormat { found }),
    }
}

/// Cheaply reads the codec id a plain index file's payloads are encoded
/// with, verifying only the magic and the header-section CRC (no payload
/// decode). Pre-v4 files report [`CodecId::BitPack`].
///
/// # Errors
///
/// Returns [`IndexError::UnsupportedFormat`] on an unknown magic,
/// [`IndexError::ChecksumMismatch`] on a corrupt header, and
/// [`IndexError::UnknownCodec`] on a codec id this build doesn't know.
pub fn peek_codec(bytes: &[u8]) -> Result<CodecId, IndexError> {
    let mut r = Reader::new(bytes);
    let magic = r.u64("magic")?;
    match magic {
        MAGIC => {
            let start = r.pos;
            let _ = r.take(21, "header")?; // k1, b, partitioner
            let raw = r.u8("header")?;
            let _ = r.take(16, "header")?; // num_docs, num_terms
            r.verify_section(start, "header", "header checksum")?;
            CodecId::from_u8(raw)
        }
        MAGIC_V3 | MAGIC_V2 | MAGIC_V1 => Ok(CodecId::BitPack),
        found => Err(IndexError::UnsupportedFormat { found }),
    }
}

pub(crate) fn read_partitioner(kind: u8, arg: usize) -> Result<Partitioner, IndexError> {
    // Validate the range here rather than letting the constructors panic:
    // a CRC-consistent tamper can present any arg with valid checksums.
    if !(1..=crate::block::MAX_BLOCK_LEN).contains(&arg) {
        return Err(IndexError::CorruptIndex { context: "partitioner arg" });
    }
    match kind {
        0 => Ok(Partitioner::fixed(arg)),
        1 => Ok(Partitioner::dynamic(arg)),
        _ => Err(IndexError::CorruptIndex { context: "partitioner kind" }),
    }
}

/// Everything a checksummed file (v2/v3/v4) carries before its
/// version-specific tail sections.
struct ChecksummedBody {
    params: Bm25Params,
    partitioner: Partitioner,
    codec: CodecId,
    doc_lens: Vec<u32>,
    lists: Vec<(String, PostingList)>,
}

/// Reads the header, doc-length table and term records shared by the
/// checksummed layouts, verifying each section checksum. `with_codec`
/// selects the v4-style header (one extra codec-id byte after the
/// partitioner); without it the body is pre-v4 and implicitly bit-packed.
fn read_checksummed_body(
    r: &mut Reader<'_>,
    with_codec: bool,
) -> Result<ChecksummedBody, IndexError> {
    let header_start = r.pos;
    let k1 = r.f64("header")?;
    let b = r.f64("header")?;
    let params = Bm25Params { k1, b };
    let part_kind = r.u8("header")?;
    let part_arg = r.u32("header")? as usize;
    // Read the raw byte here but interpret it only after the section CRC
    // passes: random corruption of the codec field should surface as a
    // checksum mismatch, not as a spurious "unknown codec".
    let codec_raw = if with_codec { Some(r.u8("header")?) } else { None };
    let n_docs = r.u64("header")? as usize;
    let n_terms = r.u64("header")? as usize;
    r.verify_section(header_start, "header", "header checksum")?;
    let partitioner = read_partitioner(part_kind, part_arg)?;
    let codec = match codec_raw {
        Some(raw) => CodecId::from_u8(raw)?,
        None => CodecId::BitPack,
    };

    let doc_start = r.pos;
    let doc_bytes = n_docs
        .checked_mul(4)
        .ok_or(IndexError::CorruptIndex { context: "doc length table" })?;
    let raw = r.take(doc_bytes, "doc length table")?;
    let doc_lens: Vec<u32> =
        raw.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
    r.verify_section(doc_start, "doc length table", "doc length checksum")?;

    let mut lists = Vec::with_capacity(n_terms.min(r.remaining()));
    for _ in 0..n_terms {
        let record_start = r.pos;
        let (name, list) = read_term_record(r, "term record", codec)?;
        r.verify_section(record_start, "term record", "term record checksum")?;
        lists.push((name, list));
    }
    Ok(ChecksummedBody { params, partitioner, codec, doc_lens, lists })
}

/// Verifies the whole-file footer CRC and that no bytes trail it.
fn verify_footer(r: &mut Reader<'_>) -> Result<(), IndexError> {
    let body_end = r.pos;
    let found = crc32(&r.buf[..body_end]);
    let expected = r.u32("footer")?;
    if expected != found {
        return Err(IndexError::ChecksumMismatch { section: "footer", expected, found });
    }
    if r.remaining() != 0 {
        return Err(IndexError::CorruptIndex { context: "trailing bytes" });
    }
    Ok(())
}

fn deserialize_v2(mut r: Reader<'_>) -> Result<InvertedIndex, IndexError> {
    let body = read_checksummed_body(&mut r, false)?;
    verify_footer(&mut r)?;
    InvertedIndex::from_lists(body.lists, body.doc_lens, body.partitioner, body.params)
}

/// Shared v3/v4 reader: checksummed body plus a score-bounds section.
/// `with_codec` distinguishes the v4 header (codec id byte) from v3.
fn deserialize_bounded(
    mut r: Reader<'_>,
    with_codec: bool,
) -> Result<InvertedIndex, IndexError> {
    let body = read_checksummed_body(&mut r, with_codec)?;

    let bounds_start = r.pos;
    let n_terms = body.lists.len();
    let mut stored: Vec<ListBounds> = Vec::with_capacity(n_terms);
    for _ in 0..n_terms {
        let num_blocks = r.u64("score bounds")? as usize;
        let entry_bytes = num_blocks
            .checked_mul(8)
            .ok_or(IndexError::CorruptIndex { context: "score bounds" })?;
        let raw = r.take(entry_bytes, "score bounds")?;
        let mut ubs = Vec::with_capacity(num_blocks);
        let mut max_tfs = Vec::with_capacity(num_blocks);
        for c in raw.chunks_exact(8) {
            ubs.push(Fixed::from_raw(u32::from_le_bytes([c[0], c[1], c[2], c[3]])));
            max_tfs.push(u32::from_le_bytes([c[4], c[5], c[6], c[7]]));
        }
        stored.push(ListBounds::from_raw_parts(ubs, max_tfs));
    }
    r.verify_section(bounds_start, "score bounds", "score bounds checksum")?;
    verify_footer(&mut r)?;

    let index = InvertedIndex::from_lists_codec(
        body.lists,
        body.doc_lens,
        body.partitioner,
        body.params,
        body.codec,
    )?;
    // `from_lists_codec` recomputed the bounds from the decoded postings;
    // a CRC-consistent file whose stored bounds disagree was written wrong
    // (or tampered with checksums recomputed) and must not drive pruning.
    for (id, stored) in stored.iter().enumerate() {
        if *stored != *index.list_bounds(id as crate::index::TermId) {
            return Err(IndexError::CorruptIndex { context: "score bounds mismatch" });
        }
    }
    Ok(index)
}

fn deserialize_v1(mut r: Reader<'_>) -> Result<InvertedIndex, IndexError> {
    let k1 = r.f64("header")?;
    let b = r.f64("header")?;
    let params = Bm25Params { k1, b };
    let part_kind = r.u8("header")?;
    let part_arg = r.u32("header")? as usize;
    let partitioner = read_partitioner(part_kind, part_arg)?;
    let n_docs = r.u64("header")? as usize;
    let doc_bytes = n_docs
        .checked_mul(4)
        .ok_or(IndexError::CorruptIndex { context: "doc length table" })?;
    let raw = r.take(doc_bytes, "doc length table")?;
    let doc_lens: Vec<u32> =
        raw.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();

    let n_terms = r.u64("term count")? as usize;
    let mut lists = Vec::with_capacity(n_terms.min(r.remaining()));
    for _ in 0..n_terms {
        lists.push(read_term_record(&mut r, "term record", CodecId::BitPack)?);
    }
    InvertedIndex::from_lists(lists, doc_lens, partitioner, params)
}

/// Reads one term record (shared by every format version) and rebuilds
/// the list by decoding and re-encoding: this validates the content and
/// reconstructs the derived fields (model cost) without trusting the file.
fn read_term_record(
    r: &mut Reader<'_>,
    context: &'static str,
    codec: CodecId,
) -> Result<(String, PostingList), IndexError> {
    let name_len = r.u32(context)? as usize;
    let name = std::str::from_utf8(r.take(name_len, context)?)
        .map_err(|_| IndexError::CorruptIndex { context: "term name utf-8" })?
        .to_owned();

    let num_postings = r.u64(context)?;
    let num_blocks = r.u64(context)? as usize;
    let table_bytes = num_blocks
        .checked_mul(12)
        .ok_or(IndexError::CorruptIndex { context: "block tables" })?;
    let raw = r.take(table_bytes, context)?;
    let (meta_raw, skip_raw) = raw.split_at(num_blocks * 8);
    let metas: Vec<BlockMeta> = meta_raw
        .chunks_exact(8)
        .map(|c| {
            BlockMeta::unpack(u64::from_le_bytes([
                c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7],
            ]))
        })
        .collect();
    let skips: Vec<u32> = skip_raw
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    let payload_len = r.u64(context)? as usize;
    let payload = r.take(payload_len, context)?;

    let total: u64 = metas.iter().map(|m| u64::from(m.count)).sum();
    if total != num_postings {
        return Err(IndexError::CorruptIndex { context: "posting count mismatch" });
    }
    let decoded = decode_raw(&metas, &skips, payload, codec)?;
    Ok((name, PostingList::from_sorted(decoded)))
}

/// Decodes raw block tables into postings, with bounds checking.
///
/// The bit-packed path reads the payload directly; other codecs decode
/// each block through their [`crate::BlockCodec`] implementation and the
/// strictly-increasing docID post-check below catches any in-bounds
/// corruption the codec's own bounds checks can't (e.g. wrapped gap sums).
fn decode_raw(
    metas: &[BlockMeta],
    skips: &[u32],
    payload: &[u8],
    codec: CodecId,
) -> Result<Vec<crate::posting::Posting>, IndexError> {
    use crate::bitpack::BitReader;
    if metas.len() != skips.len() {
        return Err(IndexError::CorruptIndex { context: "skip/meta count mismatch" });
    }
    if codec != CodecId::BitPack {
        let ops = codec.ops();
        let mut out = Vec::new();
        for (i, (meta, &skip)) in metas.iter().zip(skips).enumerate() {
            let start = meta.offset as usize;
            let end = match metas.get(i + 1) {
                Some(next) => next.offset as usize,
                None => payload.len(),
            };
            if start > end || end > payload.len() {
                return Err(IndexError::CorruptIndex { context: "payload bounds" });
            }
            let base = out.len();
            ops.try_decode_block_into(
                &payload[start..end],
                meta.count as usize,
                meta.dn_bits,
                meta.tf_bits,
                skip,
                &mut out,
            )?;
            let floor = if base == 0 { None } else { Some(out[base - 1].doc_id) };
            let mut prev = floor;
            for p in &out[base..] {
                if prev.is_some_and(|d| p.doc_id <= d) {
                    return Err(IndexError::CorruptIndex { context: "docIDs not increasing" });
                }
                prev = Some(p.doc_id);
            }
        }
        return Ok(out);
    }
    let mut out = Vec::new();
    for (meta, &skip) in metas.iter().zip(skips) {
        let bits_needed =
            meta.offset as usize * 8 + meta.pair_bits() as usize * meta.count as usize;
        if bits_needed > payload.len() * 8 {
            return Err(IndexError::CorruptIndex { context: "payload bounds" });
        }
        let mut r = BitReader::with_bit_offset(payload, meta.offset as usize * 8);
        let mut prev = skip;
        for i in 0..meta.count {
            let gap = r.read(meta.dn_bits);
            let tf = r.read(meta.tf_bits);
            let doc = if i == 0 {
                skip
            } else {
                prev.checked_add(gap)
                    .ok_or(IndexError::CorruptIndex { context: "docID overflow" })?
            };
            if let Some(last) = out.last() {
                let last: &crate::posting::Posting = last;
                if doc <= last.doc_id {
                    return Err(IndexError::CorruptIndex { context: "docIDs not increasing" });
                }
            }
            out.push(crate::posting::Posting::new(doc, tf));
            prev = doc;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BuildOptions, IndexBuilder};

    fn sample_index() -> InvertedIndex {
        let mut b = IndexBuilder::new(BuildOptions::default());
        b.add_document("the quick brown fox jumps over the lazy dog");
        b.add_document("pack my box with five dozen liquor jugs");
        b.add_document("the five boxing wizards jump quickly");
        b.add_document("quick wizards pack the box");
        b.build()
    }

    /// Writes `index` in the legacy v1 layout (no checksums), byte-for-byte
    /// what the old writer produced.
    fn serialize_v1(index: &InvertedIndex) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.put_u64_le(MAGIC_V1);
        buf.put_f64_le(index.params().k1);
        buf.put_f64_le(index.params().b);
        match index.partitioner() {
            Partitioner::Fixed { block_len } => {
                buf.put_u8(0);
                buf.put_u32_le(block_len as u32);
            }
            Partitioner::Dynamic { max_size } => {
                buf.put_u8(1);
                buf.put_u32_le(max_size as u32);
            }
        }
        buf.put_u64_le(index.num_docs());
        for &l in index.doc_lens() {
            buf.put_u32_le(l);
        }
        buf.put_u64_le(index.num_terms() as u64);
        for info in index.terms() {
            let list = index.encoded_list(index.term_id(&info.term).unwrap());
            buf.put_u32_le(info.term.len() as u32);
            buf.put_slice(info.term.as_bytes());
            buf.put_u64_le(list.num_postings());
            buf.put_u64_le(list.num_blocks() as u64);
            for meta in list.metas() {
                buf.put_u64_le(meta.pack());
            }
            for &skip in list.skips() {
                buf.put_u32_le(skip);
            }
            buf.put_u64_le(list.payload().len() as u64);
            buf.put_slice(list.payload());
        }
        buf
    }

    /// Writes `index` in the v2 layout (checksummed, no score bounds
    /// section), byte-for-byte what the v2 writer produced.
    fn serialize_v2(index: &InvertedIndex) -> Vec<u8> {
        fn seal_section(buf: &mut Vec<u8>, start: usize) {
            let crc = crc32(&buf[start..]);
            buf.put_u32_le(crc);
        }

        let mut buf = Vec::new();
        buf.put_u64_le(MAGIC_V2);
        let header_start = buf.len();
        buf.put_f64_le(index.params().k1);
        buf.put_f64_le(index.params().b);
        match index.partitioner() {
            Partitioner::Fixed { block_len } => {
                buf.put_u8(0);
                buf.put_u32_le(block_len as u32);
            }
            Partitioner::Dynamic { max_size } => {
                buf.put_u8(1);
                buf.put_u32_le(max_size as u32);
            }
        }
        buf.put_u64_le(index.num_docs());
        buf.put_u64_le(index.num_terms() as u64);
        seal_section(&mut buf, header_start);

        let doc_start = buf.len();
        for &l in index.doc_lens() {
            buf.put_u32_le(l);
        }
        seal_section(&mut buf, doc_start);

        for info in index.terms() {
            let list = index.encoded_list(index.term_id(&info.term).unwrap());
            let record_start = buf.len();
            buf.put_u32_le(info.term.len() as u32);
            buf.put_slice(info.term.as_bytes());
            buf.put_u64_le(list.num_postings());
            buf.put_u64_le(list.num_blocks() as u64);
            for meta in list.metas() {
                buf.put_u64_le(meta.pack());
            }
            for &skip in list.skips() {
                buf.put_u32_le(skip);
            }
            buf.put_u64_le(list.payload().len() as u64);
            buf.put_slice(list.payload());
            seal_section(&mut buf, record_start);
        }

        let footer = crc32(&buf);
        buf.put_u32_le(footer);
        buf
    }

    #[test]
    fn roundtrip_preserves_index() {
        let idx = sample_index();
        let bytes = serialize(&idx).unwrap();
        let back = deserialize(&bytes).unwrap();
        assert_eq!(idx, back);
    }

    #[test]
    fn reads_legacy_v1_files() {
        let idx = sample_index();
        let bytes = serialize_v1(&idx);
        let back = deserialize(&bytes).unwrap();
        assert_eq!(idx, back);
    }

    #[test]
    fn reads_legacy_v2_files() {
        // Bounds are derived data: a v2 file (no bounds section) loads
        // into an index equal to the v3 roundtrip, bounds included.
        let idx = sample_index();
        let bytes = serialize_v2(&idx);
        let back = deserialize(&bytes).unwrap();
        assert_eq!(idx, back);
        assert_eq!(back.bounds().len(), back.num_terms());
    }

    #[test]
    fn rejects_v2_truncation_everywhere() {
        let bytes = serialize_v2(&sample_index());
        for cut in 0..bytes.len() {
            let r = deserialize(&bytes[..cut]);
            assert!(r.is_err(), "v2 prefix of {cut} bytes must be rejected");
        }
    }

    #[test]
    fn stored_bounds_cross_check_catches_consistent_tampering() {
        // Tamper with a stored block bound, then recompute the section CRC
        // and footer so every checksum passes. The recomputation oracle
        // must still reject the file — CRCs can't catch a file that was
        // *written* wrong.
        let idx = sample_index();
        let mut bytes = serialize(&idx).unwrap().to_vec();
        let n = bytes.len();
        let bounds_len: usize = idx.bounds().iter().map(|b| 8 + b.num_blocks() * 8).sum();
        let content_start = n - 8 - bounds_len;
        // First term's first block ub, low byte (right after its num_blocks).
        bytes[content_start + 8] ^= 0x01;
        let crc = crc32(&bytes[content_start..n - 8]);
        bytes[n - 8..n - 4].copy_from_slice(&crc.to_le_bytes());
        let footer = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&footer.to_le_bytes());
        assert!(matches!(
            deserialize(&bytes),
            Err(IndexError::CorruptIndex { context: "score bounds mismatch" })
        ));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = serialize(&sample_index()).unwrap().to_vec();
        bytes[0] ^= 0xff;
        assert!(matches!(deserialize(&bytes), Err(IndexError::UnsupportedFormat { .. })));
    }

    #[test]
    fn rejects_unknown_future_version() {
        let mut bytes = serialize(&sample_index()).unwrap().to_vec();
        bytes[0] = 0x05; // "IIUX" + 0x0005
        assert!(matches!(
            deserialize(&bytes),
            Err(IndexError::UnsupportedFormat { found }) if found & 0xffff == 5
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = serialize(&sample_index()).unwrap().to_vec();
        // Every strict prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            let r = deserialize(&bytes[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes must be rejected");
        }
    }

    #[test]
    fn rejects_v1_truncation_everywhere() {
        let bytes = serialize_v1(&sample_index());
        for cut in 0..bytes.len() {
            let r = deserialize(&bytes[..cut]);
            assert!(r.is_err(), "v1 prefix of {cut} bytes must be rejected");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = serialize(&sample_index()).unwrap().to_vec();
        bytes.push(0);
        assert!(matches!(
            deserialize(&bytes),
            Err(IndexError::CorruptIndex { context: "trailing bytes" })
        ));
    }

    #[test]
    fn every_bit_flip_is_detected() {
        // With per-section CRCs plus a whole-file footer, any single-bit
        // flip anywhere in the file must be rejected.
        let bytes = serialize(&sample_index()).unwrap().to_vec();
        for byte in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[byte] ^= 1 << (byte % 8);
            assert!(
                deserialize(&flipped).is_err(),
                "bit flip at byte {byte} was silently accepted"
            );
        }
    }

    #[test]
    fn checksum_error_names_the_section() {
        let idx = sample_index();
        let bytes = serialize(&idx).unwrap().to_vec();
        // Flip a doc-length byte: header is 8 (magic) + 38 + 4 bytes in.
        let mut corrupt = bytes.clone();
        corrupt[8 + 38 + 4 + 1] ^= 0x10;
        match deserialize(&corrupt) {
            Err(IndexError::ChecksumMismatch { section, expected, found }) => {
                assert_eq!(section, "doc length table");
                assert_ne!(expected, found);
            }
            other => panic!("expected doc-length checksum failure, got {other:?}"),
        }
        // Flip a byte in the header (k1).
        let mut corrupt = bytes.clone();
        corrupt[9] ^= 0x01;
        match deserialize(&corrupt) {
            Err(IndexError::ChecksumMismatch { section, .. }) => {
                assert_eq!(section, "header");
            }
            other => panic!("expected header checksum failure, got {other:?}"),
        }
        // Flip a byte of the first term record (its name byte at offset
        // 8 magic + 38 header + 4 crc + 16 doc table + 4 crc + 4 name_len).
        let mut corrupt = bytes.clone();
        corrupt[8 + 38 + 4 + 16 + 4 + 4] ^= 0x04;
        match deserialize(&corrupt) {
            Err(
                IndexError::ChecksumMismatch { section: "term record", .. }
                | IndexError::CorruptIndex { .. },
            ) => {}
            other => panic!("expected term-record failure, got {other:?}"),
        }
        // Flip the last score-bounds byte before its checksum: the file
        // ends [bounds content][bounds crc 4][footer 4].
        let mut corrupt = bytes.clone();
        let n = corrupt.len();
        corrupt[n - 9] ^= 0x80;
        match deserialize(&corrupt) {
            Err(IndexError::ChecksumMismatch { section, .. }) => {
                assert_eq!(section, "score bounds");
            }
            other => panic!("expected score-bounds checksum failure, got {other:?}"),
        }
    }

    /// Byte offsets of every section boundary in a v4 file, in order, each
    /// labeled with the context/section expected when the file is cut
    /// *inside* the following section.
    fn v4_section_boundaries(index: &InvertedIndex) -> Vec<(usize, &'static str)> {
        let mut bounds = Vec::new();
        let mut pos = 0usize;
        bounds.push((pos, "magic"));
        pos += 8;
        bounds.push((pos, "header"));
        pos += 38;
        bounds.push((pos, "header checksum"));
        pos += 4;
        bounds.push((pos, "doc length table"));
        pos += index.doc_lens().len() * 4;
        bounds.push((pos, "doc length checksum"));
        pos += 4;
        for info in index.terms() {
            let list = index.encoded_list(index.term_id(&info.term).unwrap());
            bounds.push((pos, "term record"));
            pos += 4
                + info.term.len()
                + 8
                + 8
                + list.num_blocks() * 12
                + 8
                + list.payload().len();
            bounds.push((pos, "term record checksum"));
            pos += 4;
        }
        bounds.push((pos, "score bounds"));
        for b in index.bounds() {
            pos += 8 + b.num_blocks() * 8;
        }
        bounds.push((pos, "score bounds checksum"));
        pos += 4;
        bounds.push((pos, "footer"));
        bounds
    }

    #[test]
    fn truncation_context_names_the_right_section() {
        let idx = sample_index();
        let bytes = serialize(&idx).unwrap().to_vec();
        let bounds = v4_section_boundaries(&idx);
        assert_eq!(bounds.last().unwrap().0 + 4, bytes.len(), "boundary math");
        for &(at, expect) in &bounds {
            // Cutting exactly at a boundary fails while *needing* the next
            // section, so the context must name it.
            match deserialize(&bytes[..at]) {
                Err(IndexError::CorruptIndex { context }) => {
                    assert_eq!(context, expect, "cut at {at}");
                }
                other => panic!("cut at {at}: expected CorruptIndex, got {other:?}"),
            }
        }
    }

    fn sample_sharded() -> ShardedIndex {
        ShardedIndex::split(&sample_index(), 3).unwrap()
    }

    #[test]
    fn sharded_roundtrip_preserves_every_shard() {
        let sharded = sample_sharded();
        let bytes = serialize_sharded(&sharded).unwrap();
        assert!(is_sharded(&bytes));
        let back = deserialize_sharded(&bytes).unwrap();
        assert_eq!(sharded, back, "roundtrip must preserve global stats and bounds");
        assert_eq!(back.merge().unwrap(), sample_index());
    }

    #[test]
    fn sharded_magic_is_rejected_by_plain_deserialize_and_vice_versa() {
        let sharded = sample_sharded();
        let bytes = serialize_sharded(&sharded).unwrap();
        assert!(matches!(
            deserialize(&bytes),
            Err(IndexError::UnsupportedFormat { found }) if found == MAGIC_SHARD_V3
        ));
        let plain = serialize(&sample_index()).unwrap();
        assert!(!is_sharded(&plain));
        assert!(matches!(
            deserialize_sharded(&plain),
            Err(IndexError::UnsupportedFormat { .. })
        ));
        assert!(matches!(scan_sharded(&plain), Err(IndexError::UnsupportedFormat { .. })));
    }

    /// Writes a legacy v1 shard manifest (no body-length table),
    /// byte-for-byte what the old writer produced.
    fn serialize_sharded_v1(sharded: &ShardedIndex) -> Vec<u8> {
        let first = sharded.shards().first().unwrap();
        let mut buf = Vec::new();
        buf.put_u64_le(MAGIC_SHARD);
        let header_start = buf.len();
        buf.put_u32_le(sharded.num_shards() as u32);
        buf.put_u64_le(sharded.num_docs());
        buf.put_f64_le(first.avgdl());
        match sharded.parent_partitioner() {
            Partitioner::Fixed { block_len } => {
                buf.put_u8(0);
                buf.put_u32_le(block_len as u32);
            }
            Partitioner::Dynamic { max_size } => {
                buf.put_u8(1);
                buf.put_u32_le(max_size as u32);
            }
        }
        buf.put_u64_le(first.num_terms() as u64);
        for info in first.terms() {
            buf.put_u32_le(info.idf_bar.raw());
        }
        seal_section(&mut buf, header_start);
        for shard in sharded.shards() {
            write_checksummed_body(&mut buf, shard, false).unwrap();
        }
        let footer = crc32(&buf);
        buf.put_u32_le(footer);
        buf
    }

    #[test]
    fn legacy_v1_shard_manifest_still_loads() {
        let sharded = sample_sharded();
        let bytes = serialize_sharded_v1(&sharded);
        assert!(is_sharded(&bytes));
        let back = deserialize_sharded(&bytes).unwrap();
        assert_eq!(sharded, back);
        let report = scan_sharded(&bytes).unwrap();
        assert_eq!(report.version, 1);
        assert!(report.is_clean(), "clean v1 manifest must scan clean: {report:?}");
    }

    /// Writes a legacy v2 shard manifest (body-length table but no codec
    /// id bytes), byte-for-byte what the pre-v4 writer produced.
    fn serialize_sharded_v2(sharded: &ShardedIndex) -> Vec<u8> {
        let first = sharded.shards().first().unwrap();
        let mut bodies: Vec<Vec<u8>> = Vec::new();
        for shard in sharded.shards() {
            let mut body = Vec::new();
            write_checksummed_body(&mut body, shard, false).unwrap();
            bodies.push(body);
        }
        let mut buf = Vec::new();
        buf.put_u64_le(MAGIC_SHARD_V2);
        let header_start = buf.len();
        buf.put_u32_le(sharded.num_shards() as u32);
        buf.put_u64_le(sharded.num_docs());
        buf.put_f64_le(first.avgdl());
        match sharded.parent_partitioner() {
            Partitioner::Fixed { block_len } => {
                buf.put_u8(0);
                buf.put_u32_le(block_len as u32);
            }
            Partitioner::Dynamic { max_size } => {
                buf.put_u8(1);
                buf.put_u32_le(max_size as u32);
            }
        }
        buf.put_u64_le(first.num_terms() as u64);
        for info in first.terms() {
            buf.put_u32_le(info.idf_bar.raw());
        }
        for body in &bodies {
            buf.put_u64_le(body.len() as u64);
        }
        seal_section(&mut buf, header_start);
        for body in &bodies {
            buf.put_slice(body);
        }
        let footer = crc32(&buf);
        buf.put_u32_le(footer);
        buf
    }

    #[test]
    fn legacy_v2_shard_manifest_still_loads() {
        let sharded = sample_sharded();
        let bytes = serialize_sharded_v2(&sharded);
        assert!(is_sharded(&bytes));
        let back = deserialize_sharded(&bytes).unwrap();
        assert_eq!(sharded, back);
        let report = scan_sharded(&bytes).unwrap();
        assert_eq!(report.version, 2);
        assert!(report.is_clean(), "clean v2 manifest must scan clean: {report:?}");
    }

    /// Writes `index` in the legacy v3 layout: the v4 layout minus the
    /// codec id byte, byte-for-byte what the pre-codec writer produced.
    fn serialize_v3(index: &InvertedIndex) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.put_u64_le(MAGIC_V3);
        write_checksummed_body(&mut buf, index, false).unwrap();
        let bounds_start = buf.len();
        for bounds in index.bounds() {
            buf.put_u64_le(bounds.num_blocks() as u64);
            for (ub, &max_tf) in bounds.ubs().iter().zip(bounds.max_tfs()) {
                buf.put_u32_le(ub.raw());
                buf.put_u32_le(max_tf);
            }
        }
        seal_section(&mut buf, bounds_start);
        let footer = crc32(&buf);
        buf.put_u32_le(footer);
        buf
    }

    #[test]
    fn reads_legacy_v3_files() {
        let idx = sample_index();
        let bytes = serialize_v3(&idx);
        let back = deserialize(&bytes).unwrap();
        assert_eq!(back, idx);
        assert_eq!(back.codec(), CodecId::BitPack, "pre-v4 files are bit-packed");
        // The legacy layout keeps its own corruption detection.
        for byte in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[byte] ^= 1 << (byte % 8);
            assert!(deserialize(&flipped).is_err(), "v3 bit flip at byte {byte} accepted");
        }
    }

    fn sample_index_with(codec: CodecId) -> InvertedIndex {
        let mut b = IndexBuilder::new(BuildOptions { codec, ..Default::default() });
        b.add_document("the quick brown fox jumps over the lazy dog");
        b.add_document("pack my box with five dozen liquor jugs");
        b.add_document("the five boxing wizards jump quickly");
        b.add_document("quick wizards pack the box");
        b.build()
    }

    #[test]
    fn streaming_writer_is_byte_identical_to_serialize() {
        for codec in CodecId::ALL {
            let idx = sample_index_with(codec);
            let expected = serialize(&idx).unwrap();
            let mut w = StreamingWriter::new(
                Vec::new(),
                idx.doc_lens(),
                idx.num_terms() as u64,
                idx.partitioner(),
                idx.params(),
                codec,
            )
            .unwrap();
            for info in idx.terms() {
                let list = idx.decode_term(&info.term).unwrap();
                w.push_term(&info.term, &list).unwrap();
            }
            let bytes = w.finish().unwrap();
            assert_eq!(bytes, expected, "{codec} streamed output diverges");
            // And the streamed file loads on both the heap and mmap paths.
            assert_eq!(deserialize(&bytes).unwrap(), idx, "{codec}");
        }
    }

    #[test]
    fn streaming_writer_enforces_declared_term_count() {
        let idx = sample_index();
        let w = StreamingWriter::new(
            Vec::new(),
            idx.doc_lens(),
            idx.num_terms() as u64,
            idx.partitioner(),
            idx.params(),
            idx.codec(),
        )
        .unwrap();
        // Too few: finishing before all declared terms were pushed.
        assert!(matches!(
            w.finish(),
            Err(IndexError::CorruptIndex {
                context: "fewer streamed terms than the header declares"
            })
        ));

        // Too many: one extra push past the declared count.
        let mut w = StreamingWriter::new(
            Vec::new(),
            idx.doc_lens(),
            1,
            idx.partitioner(),
            idx.params(),
            idx.codec(),
        )
        .unwrap();
        let info = &idx.terms()[0];
        let list = idx.decode_term(&info.term).unwrap();
        w.push_term(&info.term, &list).unwrap();
        assert!(matches!(
            w.push_term(&info.term, &list),
            Err(IndexError::CorruptIndex {
                context: "more streamed terms than the header declares"
            })
        ));
    }

    #[test]
    fn streaming_writer_rejects_out_of_range_docid() {
        let idx = sample_index();
        let mut w = StreamingWriter::new(
            Vec::new(),
            idx.doc_lens(),
            1,
            idx.partitioner(),
            idx.params(),
            idx.codec(),
        )
        .unwrap();
        let mut list = PostingList::new();
        list.push(idx.num_docs() as u32, 1);
        assert!(matches!(
            w.push_term("beyond", &list),
            Err(IndexError::CorruptIndex {
                context: "posting list references docID beyond corpus"
            })
        ));
    }

    #[test]
    fn v4_roundtrip_preserves_codec_for_every_codec() {
        for codec in CodecId::ALL {
            let idx = sample_index_with(codec);
            assert_eq!(idx.codec(), codec);
            let bytes = serialize(&idx).unwrap();
            assert_eq!(peek_codec(&bytes).unwrap(), codec);
            let back = deserialize(&bytes).unwrap();
            assert_eq!(back.codec(), codec);
            assert_eq!(back, idx, "{codec} roundtrip");

            let sharded = ShardedIndex::split(&idx, 3).unwrap();
            let sbytes = serialize_sharded(&sharded).unwrap();
            let sback = deserialize_sharded(&sbytes).unwrap();
            assert_eq!(sback, sharded, "{codec} sharded roundtrip");
            for shard in sback.shards() {
                assert_eq!(shard.codec(), codec);
            }
        }
    }

    #[test]
    fn every_bit_flip_is_detected_for_every_codec() {
        for codec in CodecId::ALL {
            let bytes = serialize(&sample_index_with(codec)).unwrap();
            for byte in 0..bytes.len() {
                let mut flipped = bytes.clone();
                flipped[byte] ^= 1 << (byte % 8);
                assert!(
                    deserialize(&flipped).is_err(),
                    "{codec}: bit flip at byte {byte} was silently accepted"
                );
            }
        }
    }

    /// Rewrites the header section CRC and whole-file footer of a plain
    /// v4 file so a deliberate header tamper passes every checksum.
    fn reseal_v4_header(bytes: &mut [u8]) {
        // Header spans bytes 8..46 (38 bytes), its CRC sits at 46..50.
        let crc = crc32(&bytes[8..46]);
        bytes[46..50].copy_from_slice(&crc.to_le_bytes());
        let n = bytes.len();
        let footer = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&footer.to_le_bytes());
    }

    #[test]
    fn crc_consistent_unknown_codec_id_is_a_typed_error() {
        let mut bytes = serialize(&sample_index()).unwrap().to_vec();
        // Codec id byte: 8 magic + 16 params + 5 partitioner = offset 29.
        bytes[29] = 99;
        reseal_v4_header(&mut bytes);
        assert!(matches!(deserialize(&bytes), Err(IndexError::UnknownCodec { id: 99 })));
    }

    #[test]
    fn crc_consistent_codec_flip_is_rejected() {
        // Flipping a bit-packed file's codec id to a *valid* other codec
        // (with all checksums recomputed) must not load: the payload
        // misdecodes, tripping the docID monotonic check or the stored
        // score-bounds oracle.
        for &codec in &[CodecId::StreamVByte, CodecId::SimdBp128] {
            let mut bytes = serialize(&sample_index()).unwrap().to_vec();
            assert_eq!(bytes[29], CodecId::BitPack.as_u8());
            bytes[29] = codec.as_u8();
            reseal_v4_header(&mut bytes);
            assert!(deserialize(&bytes).is_err(), "codec flip to {codec} accepted");
        }
    }

    #[test]
    fn corrupting_the_codec_byte_alone_is_a_checksum_mismatch() {
        // Without recomputing the CRCs, a flipped codec byte must surface
        // as a header checksum failure, not an unknown-codec error.
        let mut bytes = serialize(&sample_index()).unwrap().to_vec();
        bytes[29] ^= 0xff;
        assert!(matches!(
            deserialize(&bytes),
            Err(IndexError::ChecksumMismatch { section: "header", .. })
        ));
    }

    #[test]
    fn scan_reports_clean_manifest_per_shard() {
        let sharded = sample_sharded();
        let bytes = serialize_sharded(&sharded).unwrap();
        let report = scan_sharded(&bytes).unwrap();
        assert_eq!(report.version, 3);
        assert_eq!(report.num_shards, sharded.num_shards());
        assert!(report.is_clean(), "{report:?}");
        assert!(report.corrupt_shards().is_empty());
        for (s, status) in report.shards.iter().enumerate() {
            let ShardBodyStatus::Ok { docs, .. } = status else {
                panic!("shard {s} not ok: {status:?}");
            };
            assert_eq!(*docs, sharded.shard(s).num_docs());
            assert_eq!(*docs, report.expected_docs(s), "round-robin balance");
        }
    }

    #[test]
    fn scan_isolates_a_corrupt_shard_body_and_keeps_scanning() {
        // Corrupt one byte inside shard 1's body: deserialize_sharded must
        // reject the file, while scan_sharded must flag exactly shard 1
        // and still verify shards 0 and 2.
        let sharded = sample_sharded();
        let bytes = serialize_sharded(&sharded).unwrap();
        let clean = scan_sharded(&bytes).unwrap();
        assert_eq!(clean.shards.len(), 3);

        // Locate shard 1's body: header ends where the first body starts.
        let header_len = 4 + 8 + 8 + 5 + 8 + sharded.shard(0).num_terms() * 4 + 3 * 8;
        let bodies_start = 8 + header_len + 4;
        let mut body_lens = Vec::new();
        for s in 0..3 {
            let at = 8 + 4 + 8 + 8 + 5 + 8 + sharded.shard(0).num_terms() * 4 + s * 8;
            body_lens.push(u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()) as usize);
        }
        let shard1_mid = bodies_start + body_lens[0] + body_lens[1] / 2;
        let mut corrupt = bytes.clone();
        corrupt[shard1_mid] ^= 0x10;

        assert!(deserialize_sharded(&corrupt).is_err());
        let report = scan_sharded(&corrupt).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.corrupt_shards(), vec![1], "{report:?}");
        assert!(matches!(report.shards[0], ShardBodyStatus::Ok { .. }));
        assert!(matches!(report.shards[2], ShardBodyStatus::Ok { .. }));
        assert!(!report.footer_ok, "footer covers the flipped byte");

        // The same corruption in a v1 manifest hides the shards after it.
        let v1 = serialize_sharded_v1(&sharded);
        let v1_header_len = 4 + 8 + 8 + 5 + 8 + sharded.shard(0).num_terms() * 4;
        let v1_shard1_mid = 8 + v1_header_len + 4 + body_lens[0] + body_lens[1] / 2;
        let mut v1_corrupt = v1.clone();
        v1_corrupt[v1_shard1_mid] ^= 0x10;
        let v1_report = scan_sharded(&v1_corrupt).unwrap();
        assert!(matches!(v1_report.shards[0], ShardBodyStatus::Ok { .. }));
        assert!(matches!(v1_report.shards[1], ShardBodyStatus::Corrupt { .. }));
        assert!(matches!(v1_report.shards[2], ShardBodyStatus::Unscanned));
    }

    #[test]
    fn scan_survives_truncation_and_bit_flips_without_panicking() {
        let bytes = serialize_sharded(&sample_sharded()).unwrap();
        for cut in 0..bytes.len() {
            // Any prefix must yield Err or a non-clean report, never panic.
            if let Ok(report) = scan_sharded(&bytes[..cut]) {
                assert!(!report.is_clean(), "truncation at {cut} scanned clean");
            }
        }
        for byte in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[byte] ^= 1 << (byte % 8);
            if let Ok(report) = scan_sharded(&flipped) {
                assert!(!report.is_clean(), "bit flip at byte {byte} scanned clean");
            }
        }
    }

    #[test]
    fn sharded_rejects_truncation_everywhere() {
        let bytes = serialize_sharded(&sample_sharded()).unwrap();
        for cut in 0..bytes.len() {
            assert!(
                deserialize_sharded(&bytes[..cut]).is_err(),
                "shard manifest prefix of {cut} bytes must be rejected"
            );
        }
    }

    #[test]
    fn sharded_every_bit_flip_is_detected() {
        let bytes = serialize_sharded(&sample_sharded()).unwrap();
        for byte in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[byte] ^= 1 << (byte % 8);
            assert!(
                deserialize_sharded(&flipped).is_err(),
                "shard-manifest bit flip at byte {byte} was silently accepted"
            );
        }
    }

    #[test]
    fn sharded_rejects_crc_consistent_idf_tampering() {
        // Flip an idf̄ raw in the shard header, then recompute the header
        // CRC and footer so every checksum passes. The loaded shards would
        // score differently from the global index; the round-robin/validate
        // oracle can't see that, but the flip must at least survive the
        // structural rebuild — prove the *checksum* catches the plain flip
        // and that a fully recomputed file loads as a different index
        // rather than silently equal.
        let sharded = sample_sharded();
        let bytes = serialize_sharded(&sharded).unwrap();
        let mut flipped = bytes.clone();
        // idf table starts at 8 (magic) + 4 + 8 + 8 + 5 (partitioner) + 8 = 41.
        flipped[41] ^= 0x40;
        assert!(matches!(
            deserialize_sharded(&flipped),
            Err(IndexError::ChecksumMismatch { section: "shard header", .. })
        ));

        let header_len = 4 + 8 + 8 + 5 + 8 + sharded.shard(0).num_terms() * 4 + 3 * 8;
        let crc = crc32(&flipped[8..8 + header_len]);
        flipped[8 + header_len..8 + header_len + 4].copy_from_slice(&crc.to_le_bytes());
        let n = flipped.len();
        let footer = crc32(&flipped[..n - 4]);
        flipped[n - 4..].copy_from_slice(&footer.to_le_bytes());
        let back = deserialize_sharded(&flipped).unwrap();
        assert_ne!(back, sharded, "tampered idf̄ must not load as the original");
    }

    #[test]
    fn sharded_rejects_trailing_garbage() {
        let mut bytes = serialize_sharded(&sample_sharded()).unwrap();
        bytes.push(0);
        assert!(matches!(
            deserialize_sharded(&bytes),
            Err(IndexError::CorruptIndex { context: "trailing bytes" })
        ));
    }

    #[test]
    fn roundtrip_empty_index() {
        let idx = IndexBuilder::new(BuildOptions::default()).build();
        let bytes = serialize(&idx).unwrap();
        let back = deserialize(&bytes).unwrap();
        assert_eq!(idx, back);
    }

    #[test]
    fn zero_length_files_are_typed_errors_in_every_loader() {
        // A crash can leave an index file at length zero (created, never
        // written). Every loader must reject it with a typed error; none
        // may panic.
        assert!(matches!(deserialize(&[]), Err(IndexError::CorruptIndex { .. })));
        assert!(matches!(deserialize_sharded(&[]), Err(IndexError::CorruptIndex { .. })));
        assert!(matches!(scan_sharded(&[]), Err(IndexError::CorruptIndex { .. })));
        assert!(!is_sharded(&[]));
    }

    #[test]
    fn truncation_inside_the_header_is_a_typed_error_at_every_cut() {
        // Truncate both formats at every byte inside magic + header: the
        // loaders must return a typed error (not panic, not succeed) for
        // each cut. Past-magic cuts may legitimately report checksum or
        // corruption errors; cuts inside the magic word itself must not be
        // misread as a different format.
        let plain = serialize(&sample_index()).unwrap();
        let sharded = serialize_sharded(&sample_sharded()).unwrap();
        for cut in 0..64usize {
            if cut < plain.len() {
                let r = std::panic::catch_unwind(|| deserialize(&plain[..cut]))
                    .expect("plain loader must not panic on truncated header");
                assert!(r.is_err(), "accepted a {cut}-byte prefix of a plain index");
            }
            if cut < sharded.len() {
                let short = &sharded[..cut];
                let r = std::panic::catch_unwind(|| deserialize_sharded(short))
                    .expect("sharded loader must not panic on truncated header");
                assert!(r.is_err(), "accepted a {cut}-byte prefix of a manifest");
                let r = std::panic::catch_unwind(|| scan_sharded(short))
                    .expect("scan must not panic on truncated header");
                assert!(r.is_err(), "scanned a {cut}-byte prefix of a manifest");
                assert!(cut >= 8 || !is_sharded(short));
            }
        }
    }

    #[test]
    fn roundtrip_preserves_partitioner_and_params() {
        let mut b = IndexBuilder::new(BuildOptions {
            partitioner: Partitioner::fixed(128),
            bm25: Bm25Params { k1: 0.9, b: 0.4 },
            ..Default::default()
        });
        b.add_document("alpha beta gamma alpha");
        let idx = b.build();
        let back = deserialize(&serialize(&idx).unwrap()).unwrap();
        assert_eq!(back.partitioner(), Partitioner::fixed(128));
        assert!((back.params().k1 - 0.9).abs() < 1e-12);
        assert!((back.params().b - 0.4).abs() < 1e-12);
    }
}
