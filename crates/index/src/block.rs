//! Block structure of a compressed posting list (paper §3.1, Fig. 5).
//!
//! A posting list is split into blocks of contiguous postings. For every
//! block the index stores:
//!
//! * a 64-bit metadata word: docID bitwidth (5 b), tf bitwidth (5 b),
//!   element count (11 b) and byte offset of the compressed payload (43 b);
//! * a raw 32-bit *skip value* — the first docID of the block — enabling
//!   membership testing without decompression;
//! * the bit-packed `(d-gap, tf)` pairs themselves.
//!
//! Within a block the first posting's d-gap is stored as 0 and the skip
//! value supplies its docID ("the skip value is added to a d-gap to obtain
//! the uncompressed docID").
//!
//! The block *structure* (metadata words, skip list, per-block maximum
//! widths) is codec-independent; how the payload bytes between two block
//! offsets encode the `(d-gap, tf)` pairs is delegated to a
//! [`crate::codec::BlockCodec`]. The default [`CodecId::BitPack`] payload
//! is decoded inline here by the word-window kernels, byte-identical to
//! the pre-codec format.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::Arc;

use crate::bitpack::{self, bits_for};
use crate::checksum;
use crate::codec::CodecId;
use crate::error::IndexError;
use crate::mmap::Mmap;
use crate::posting::{DocId, Posting, PostingList};

/// Maximum number of postings a block can hold: the metadata word has an
/// 11-bit count field storing `count - 1`.
pub const MAX_BLOCK_LEN: usize = 1 << 11;

/// Bits of metadata + skip value charged to every block by the paper's cost
/// function (Eq. 3): 64-bit metadata word plus 32-bit skip value.
pub const BLOCK_OVERHEAD_BITS: u64 = 96;

/// Per-block metadata, packed into one 64-bit word in the on-disk format.
///
/// # Example
///
/// ```
/// use iiu_index::BlockMeta;
/// let meta = BlockMeta { dn_bits: 7, tf_bits: 3, count: 128, offset: 4096 };
/// let word = meta.pack();
/// assert_eq!(BlockMeta::unpack(word), meta);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockMeta {
    /// Bitwidth of the packed d-gaps (0..=31).
    pub dn_bits: u8,
    /// Bitwidth of the packed term frequencies (0..=31).
    pub tf_bits: u8,
    /// Number of postings in the block (1..=[`MAX_BLOCK_LEN`]).
    pub count: u16,
    /// Byte offset of the block's payload within the list's compressed
    /// stream (43 bits).
    pub offset: u64,
}

impl BlockMeta {
    /// Packs into the 64-bit layout `offset(43) | count-1(11) | tf(5) | dn(5)`.
    ///
    /// # Panics
    ///
    /// Panics if any field exceeds its bitwidth budget.
    pub fn pack(&self) -> u64 {
        assert!(self.dn_bits < 32, "dn bitwidth must fit in 5 bits");
        assert!(self.tf_bits < 32, "tf bitwidth must fit in 5 bits");
        assert!(
            (1..=MAX_BLOCK_LEN as u16 as usize).contains(&(self.count as usize)),
            "block count must be in 1..={MAX_BLOCK_LEN}"
        );
        assert!(self.offset < (1 << 43), "payload offset must fit in 43 bits");
        u64::from(self.dn_bits)
            | u64::from(self.tf_bits) << 5
            | u64::from(self.count - 1) << 10
            | self.offset << 21
    }

    /// Inverse of [`BlockMeta::pack`].
    pub fn unpack(word: u64) -> Self {
        BlockMeta {
            dn_bits: (word & 0x1f) as u8,
            tf_bits: ((word >> 5) & 0x1f) as u8,
            count: ((word >> 10) & 0x7ff) as u16 + 1,
            offset: word >> 21,
        }
    }

    /// Bits per posting in this block.
    pub fn pair_bits(&self) -> u32 {
        u32::from(self.dn_bits) + u32::from(self.tf_bits)
    }

    /// Size of the block payload in bytes (byte-aligned).
    pub fn payload_bytes(&self) -> u64 {
        (u64::from(self.pair_bits()) * u64::from(self.count)).div_ceil(8)
    }
}

/// Backing storage of an [`EncodedList`] payload: owned heap bytes (the
/// encoder's output, and every deserialized-into-RAM list) or a borrowed
/// window of a shared file mapping (the zero-copy storage layer,
/// DESIGN.md §19). Everything downstream sees `&[u8]` either way.
#[derive(Debug, Clone)]
pub(crate) enum PayloadBuf {
    /// Heap-owned payload bytes.
    Owned(Vec<u8>),
    /// A byte window of a memory-mapped index file. The `Arc` keeps the
    /// mapping alive for as long as any list references it.
    Mapped {
        map: Arc<Mmap>,
        offset: usize,
        len: usize,
    },
}

impl Default for PayloadBuf {
    fn default() -> Self {
        PayloadBuf::Owned(Vec::new())
    }
}

impl PayloadBuf {
    pub(crate) fn as_slice(&self) -> &[u8] {
        match self {
            PayloadBuf::Owned(v) => v.as_slice(),
            // The range is validated at construction; a malformed one
            // degrades to an empty payload (callers then report "payload
            // bounds") rather than panicking.
            PayloadBuf::Mapped { map, offset, len } => offset
                .checked_add(*len)
                .and_then(|end| map.as_slice().get(*offset..end))
                .unwrap_or(&[]),
        }
    }

    fn len(&self) -> usize {
        match self {
            PayloadBuf::Owned(v) => v.len(),
            PayloadBuf::Mapped { len, .. } => *len,
        }
    }

    /// Shortens the payload to `n` bytes (fault-injection helper: works on
    /// both backings without copying the mapped bytes).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn truncate(&mut self, n: usize) {
        match self {
            PayloadBuf::Owned(v) => v.truncate(n),
            PayloadBuf::Mapped { len, .. } => *len = (*len).min(n),
        }
    }
}

/// Deferred integrity check for a list loaded from a mapped file: the
/// stored CRC of the term record's bytes, verified on first touch instead
/// of at open (verifying eagerly would fault in every payload page and
/// forfeit the point of mapping). The verdict is cached, so the steady
/// state is one atomic load per decode.
///
/// Shared via `Arc` so clones of a list (and the engines holding them)
/// agree on the verdict.
#[derive(Debug)]
pub struct LazyCrc {
    map: Arc<Mmap>,
    start: usize,
    len: usize,
    expected: u32,
    /// 0 = unverified, 1 = verified ok, 2 = checksum mismatch.
    state: AtomicU8,
    /// The computed CRC when `state == 2`.
    found: AtomicU32,
}

const LAZY_UNVERIFIED: u8 = 0;
const LAZY_OK: u8 = 1;
const LAZY_BAD: u8 = 2;

impl LazyCrc {
    pub(crate) fn new(map: Arc<Mmap>, start: usize, len: usize, expected: u32) -> Self {
        LazyCrc {
            map,
            start,
            len,
            expected,
            state: AtomicU8::new(LAZY_UNVERIFIED),
            found: AtomicU32::new(0),
        }
    }

    /// Checks the record bytes against the stored CRC, computing at most
    /// once (concurrent racers recompute harmlessly — the verdict is a
    /// pure function of immutable bytes).
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::ChecksumMismatch`] if the record bytes do not
    /// hash to the stored CRC, or [`IndexError::CorruptIndex`] if the
    /// recorded range fell outside the mapping.
    pub fn verify(&self) -> Result<(), IndexError> {
        match self.state.load(Ordering::Acquire) {
            LAZY_OK => return Ok(()),
            LAZY_BAD => {
                return Err(IndexError::ChecksumMismatch {
                    section: "term record",
                    expected: self.expected,
                    found: self.found.load(Ordering::Acquire),
                })
            }
            _ => {}
        }
        let bytes = self
            .start
            .checked_add(self.len)
            .and_then(|end| self.map.as_slice().get(self.start..end))
            .ok_or(IndexError::CorruptIndex { context: "term record range" })?;
        let found = checksum::crc32(bytes);
        if found == self.expected {
            self.state.store(LAZY_OK, Ordering::Release);
            Ok(())
        } else {
            self.found.store(found, Ordering::Release);
            self.state.store(LAZY_BAD, Ordering::Release);
            Err(IndexError::ChecksumMismatch {
                section: "term record",
                expected: self.expected,
                found,
            })
        }
    }
}

/// A posting list compressed with the IIU scheme: block metadata, skip list
/// and a byte-aligned bit-packed payload.
#[derive(Debug, Clone, Default)]
pub struct EncodedList {
    metas: Vec<BlockMeta>,
    skips: Vec<DocId>,
    payload: PayloadBuf,
    num_postings: u64,
    /// Total cost in bits under the codec's model (the paper's Eq. 3 for
    /// the default codec): modeled payload bits plus 96 bits of overhead
    /// per block, *before* byte alignment.
    model_bits: u64,
    /// How the payload bytes encode each block's `(d-gap, tf)` pairs.
    codec: CodecId,
    /// Deferred whole-record checksum for lists served out of a mapping.
    /// `None` for owned lists and for checksum-free v1 files.
    lazy: Option<Arc<LazyCrc>>,
}

/// Equality is over logical content (structure + payload bytes + codec);
/// the backing (heap vs mapping) and lazy-verification state are
/// representation details — a mapped index must compare equal to the heap
/// index it was serialized from.
impl PartialEq for EncodedList {
    fn eq(&self, other: &Self) -> bool {
        self.metas == other.metas
            && self.skips == other.skips
            && self.payload.as_slice() == other.payload.as_slice()
            && self.num_postings == other.num_postings
            && self.model_bits == other.model_bits
            && self.codec == other.codec
    }
}

impl Eq for EncodedList {}

impl EncodedList {
    /// Compresses `list` using the block boundaries produced by a
    /// partitioner. `block_lens` must sum to `list.len()`.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::ValueTooWide`] if a docID or tf needs 32 or
    /// more bits (the 5-bit metadata width fields top out at 31), and
    /// [`IndexError::BadPartition`] if `block_lens` is inconsistent with the
    /// list length or violates [`MAX_BLOCK_LEN`].
    pub fn encode(list: &PostingList, block_lens: &[usize]) -> Result<Self, IndexError> {
        Self::encode_with(list, block_lens, CodecId::default())
    }

    /// [`EncodedList::encode`] with an explicit block codec. The block
    /// structure (metadata, skips, widths) is identical across codecs;
    /// only the payload bytes and the cost model differ. For
    /// [`CodecId::BitPack`] this is byte-identical to [`EncodedList::encode`].
    ///
    /// # Errors
    ///
    /// Same contract as [`EncodedList::encode`].
    pub fn encode_with(
        list: &PostingList,
        block_lens: &[usize],
        codec: CodecId,
    ) -> Result<Self, IndexError> {
        let postings = list.as_slice();
        let total: usize = block_lens.iter().sum();
        if total != postings.len() || block_lens.iter().any(|&l| l == 0 || l > MAX_BLOCK_LEN) {
            return Err(IndexError::BadPartition {
                list_len: postings.len(),
                partition_sum: total,
            });
        }

        let ops = codec.ops();
        let mut metas = Vec::with_capacity(block_lens.len());
        let mut skips = Vec::with_capacity(block_lens.len());
        let mut payload: Vec<u8> = Vec::new();
        let mut model_bits: u64 = 0;
        let mut start = 0usize;
        // Scratch reused across blocks: the stored d-gap / tf columns.
        let mut gaps: Vec<u32> = Vec::new();
        let mut tfs: Vec<u32> = Vec::new();

        for &len in block_lens {
            let block = &postings[start..start + len];
            let skip = block[0].doc_id;

            // Stored d-gaps: 0 for the first posting (recovered from the skip
            // value), successor differences for the rest.
            gaps.clear();
            tfs.clear();
            let mut max_gap = 0u32;
            let mut max_tf = 0u32;
            for (i, p) in block.iter().enumerate() {
                let gap = if i == 0 { 0 } else { p.doc_id - block[i - 1].doc_id };
                max_gap = max_gap.max(gap);
                max_tf = max_tf.max(p.tf);
                gaps.push(gap);
                tfs.push(p.tf);
            }
            let dn_bits = bits_for(max_gap);
            let tf_bits = bits_for(max_tf);
            if dn_bits >= 32 || tf_bits >= 32 {
                return Err(IndexError::ValueTooWide { dn_bits, tf_bits });
            }

            let offset = payload.len() as u64;
            if offset >= (1 << 43) {
                return Err(IndexError::ListTooLarge { bytes: offset });
            }
            ops.encode_block(&gaps, &tfs, dn_bits, tf_bits, &mut payload);

            metas.push(BlockMeta { dn_bits, tf_bits, count: len as u16, offset });
            skips.push(skip);
            model_bits += ops.block_cost_bits(len as u64, dn_bits, tf_bits);
            start += len;
        }

        Ok(EncodedList {
            metas,
            skips,
            payload: PayloadBuf::Owned(payload),
            num_postings: postings.len() as u64,
            model_bits,
            codec,
            lazy: None,
        })
    }

    /// Assembles a list directly from stored parts — the zero-copy load
    /// path ([`crate::storage`]): no decode, no re-encode, the payload
    /// stays wherever `payload` points (typically a file mapping).
    /// `model_bits` is recomputed from the metadata words (exactly what
    /// the encoder charged, since both derive it from the same widths and
    /// counts). The structural invariants are checked before the list is
    /// returned; payload *content* is covered by `lazy` (or by the
    /// caller's bounds recompute for checksum-free formats).
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::CorruptIndex`] if the parts fail
    /// [`EncodedList::validate`].
    pub(crate) fn from_stored_parts(
        metas: Vec<BlockMeta>,
        skips: Vec<DocId>,
        payload: PayloadBuf,
        num_postings: u64,
        codec: CodecId,
        lazy: Option<Arc<LazyCrc>>,
    ) -> Result<Self, IndexError> {
        let ops = codec.ops();
        let model_bits = metas
            .iter()
            .map(|m| ops.block_cost_bits(u64::from(m.count), m.dn_bits, m.tf_bits))
            .sum();
        let list = EncodedList { metas, skips, payload, num_postings, model_bits, codec, lazy };
        list.validate()?;
        Ok(list)
    }

    /// Runs the deferred record checksum, if this list carries one (lists
    /// served from a mapping). Owned lists return `Ok` unconditionally.
    /// Engines call this at term-resolve time so corruption surfaces as a
    /// typed error before any panicking decode wrapper runs; the decode
    /// entry points below also call it as defense in depth.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::ChecksumMismatch`] on a corrupt record.
    pub fn ensure_verified(&self) -> Result<(), IndexError> {
        match &self.lazy {
            None => Ok(()),
            Some(l) => l.verify(),
        }
    }

    /// The block codec the payload is encoded with.
    pub fn codec(&self) -> CodecId {
        self.codec
    }

    /// The payload byte range of block `idx`: from its offset to the next
    /// block's offset (or the end of the payload for the last block).
    /// Codecs whose block size is not derivable from the metadata widths
    /// (Stream-VByte) rely on this contiguity invariant.
    fn block_slice(&self, idx: usize) -> Result<&[u8], IndexError> {
        let payload = self.payload.as_slice();
        let start = self.metas[idx].offset as usize;
        let end = self.metas.get(idx + 1).map_or(payload.len(), |m| m.offset as usize);
        if start > end || end > payload.len() {
            return Err(IndexError::CorruptIndex { context: "payload bounds" });
        }
        Ok(&payload[start..end])
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.metas.len()
    }

    /// Number of postings across all blocks.
    pub fn num_postings(&self) -> u64 {
        self.num_postings
    }

    /// Block metadata words.
    pub fn metas(&self) -> &[BlockMeta] {
        &self.metas
    }

    /// Skip list: the raw first docID of each block.
    pub fn skips(&self) -> &[DocId] {
        &self.skips
    }

    /// The bit-packed payload bytes (borrowed from the heap or straight
    /// from a file mapping, depending on how the list was loaded).
    pub fn payload(&self) -> &[u8] {
        self.payload.as_slice()
    }

    /// True when the payload is served from a file mapping rather than
    /// owned heap bytes.
    pub fn is_mapped(&self) -> bool {
        matches!(self.payload, PayloadBuf::Mapped { .. })
    }

    /// Decodes block `idx` into postings.
    ///
    /// Allocates a fresh `Vec` per call; hot paths should reuse a scratch
    /// buffer with [`EncodedList::decode_block_into`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the payload is corrupt.
    pub fn decode_block(&self, idx: usize) -> Vec<Posting> {
        let mut out = Vec::with_capacity(self.metas.get(idx).map_or(0, |m| m.count as usize));
        self.decode_block_into(idx, &mut out);
        out
    }

    /// Appends block `idx`'s postings onto `out` without allocating (beyond
    /// `out`'s own growth): the zero-alloc decode kernel every hot path
    /// uses. Delta-decoding of docIDs and the tf interleave are fused into
    /// one pass of word-window field extractions (see
    /// [`crate::bitpack::try_unpack_into`] for the kernel family).
    ///
    /// `out` is appended to, not cleared — callers reusing a scratch buffer
    /// clear it first; [`crate::EncodedList::decode_all`] exploits the
    /// append to concatenate blocks without an intermediate copy.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the payload is corrupt. Use
    /// [`EncodedList::try_decode_block_into`] for untrusted payloads.
    pub fn decode_block_into(&self, idx: usize, out: &mut Vec<Posting>) {
        if let Err(e) = self.try_decode_block_into(idx, out) {
            panic!("decode of block {idx} failed: {e}");
        }
    }

    /// [`EncodedList::decode_block_into`], returning
    /// [`IndexError::CorruptIndex`] instead of panicking when `idx` is out
    /// of range or a corrupted payload would read past the buffer. `out` is
    /// untouched on error.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::CorruptIndex`] naming the violated bound.
    pub fn try_decode_block_into(
        &self,
        idx: usize,
        out: &mut Vec<Posting>,
    ) -> Result<(), IndexError> {
        self.ensure_verified()?;
        let meta = *self
            .metas
            .get(idx)
            .ok_or(IndexError::CorruptIndex { context: "block index out of range" })?;
        let skip = *self
            .skips
            .get(idx)
            .ok_or(IndexError::CorruptIndex { context: "skip/meta count mismatch" })?;
        if self.codec != CodecId::BitPack {
            let block = self.block_slice(idx)?;
            return self.codec.ops().try_decode_block_into(
                block,
                meta.count as usize,
                meta.dn_bits,
                meta.tf_bits,
                skip,
                out,
            );
        }
        if meta.dn_bits > 31 || meta.tf_bits > 31 {
            return Err(IndexError::CorruptIndex { context: "block bitwidths" });
        }
        let count = meta.count as usize;
        let end_bits = meta
            .offset
            .checked_mul(8)
            .and_then(|b| b.checked_add(u64::from(meta.pair_bits()) * count as u64))
            .ok_or(IndexError::CorruptIndex { context: "payload bounds" })?;
        if end_bits > self.payload.len() as u64 * 8 {
            return Err(IndexError::CorruptIndex { context: "payload bounds" });
        }

        let payload = self.payload.as_slice();
        let dn = meta.dn_bits;
        let tf_bits = meta.tf_bits;
        let mut bit = meta.offset as usize * 8;
        out.reserve(count);
        let mut prev = skip;
        for i in 0..count {
            let gap = bitpack::extract(payload, bit, dn);
            bit += dn as usize;
            let tf = bitpack::extract(payload, bit, tf_bits);
            bit += tf_bits as usize;
            // wrapping: bounds were checked above, but a corrupt (yet
            // in-bounds) payload must degrade to garbage values, not a
            // debug-build overflow panic.
            let doc = if i == 0 { skip } else { prev.wrapping_add(gap) };
            out.push(Posting::new(doc, tf));
            prev = doc;
        }
        Ok(())
    }

    /// Decodes the entire list.
    pub fn decode_all(&self) -> PostingList {
        let mut postings = Vec::with_capacity(self.num_postings as usize);
        for i in 0..self.num_blocks() {
            self.decode_block_into(i, &mut postings);
        }
        PostingList::from_sorted(postings)
    }

    /// Index of the only block that may contain `doc_id`, by binary search
    /// over the skip list (membership testing, §2.2): the last block whose
    /// skip value is `<= doc_id`. Returns `None` if `doc_id` precedes the
    /// first skip value or the list is empty.
    pub fn candidate_block(&self, doc_id: DocId) -> Option<usize> {
        let n = self.skips.partition_point(|&s| s <= doc_id);
        n.checked_sub(1)
    }

    /// Physical compressed size in bytes: payload + 8 B metadata and 4 B
    /// skip value per block.
    pub fn compressed_bytes(&self) -> u64 {
        self.payload.len() as u64 + self.metas.len() as u64 * 12
    }

    /// Streaming decoder over all postings, one block at a time — the
    /// software analogue of a DCU consuming the list without materializing
    /// it.
    ///
    /// # Example
    ///
    /// ```
    /// use iiu_index::{EncodedList, Posting, PostingList};
    /// let list = PostingList::from_sorted(
    ///     (0..10u32).map(|i| Posting::new(i * 5, 1)).collect(),
    /// );
    /// let enc = EncodedList::encode(&list, &[4, 6]).unwrap();
    /// let sum: u64 = enc.iter().map(|p| u64::from(p.doc_id)).sum();
    /// assert_eq!(sum, (0..10u64).map(|i| i * 5).sum());
    /// ```
    pub fn iter(&self) -> Iter<'_> {
        Iter { list: self, block: 0, buffered: Vec::new(), pos: 0 }
    }

    /// Membership test: the term frequency of `doc_id` if present,
    /// decompressing at most one block (skip-list search + in-block scan,
    /// the operation MILC optimizes and the BSU accelerates).
    ///
    /// # Example
    ///
    /// ```
    /// use iiu_index::{EncodedList, Posting, PostingList};
    /// let list = PostingList::from_sorted(vec![
    ///     Posting::new(3, 7),
    ///     Posting::new(90, 2),
    /// ]);
    /// let enc = EncodedList::encode(&list, &[1, 1]).unwrap();
    /// assert_eq!(enc.find(3), Some(7));
    /// assert_eq!(enc.find(4), None);
    /// ```
    pub fn find(&self, doc_id: DocId) -> Option<u32> {
        // A mapped list whose deferred checksum fails reports "absent"
        // rather than panicking; engines surface the typed error via
        // `ensure_verified` at resolve time.
        self.ensure_verified().ok()?;
        let block = self.candidate_block(doc_id)?;
        if self.codec != CodecId::BitPack {
            // Non-default codecs materialize the one candidate block and
            // binary-search it; still a single-block decompression.
            let mut buf = Vec::with_capacity(self.metas[block].count as usize);
            self.try_decode_block_into(block, &mut buf).ok()?;
            return buf.binary_search_by_key(&doc_id, |p| p.doc_id).ok().map(|i| buf[i].tf);
        }
        // Scan the packed pairs directly — no block materialization. DocIDs
        // within a block are increasing, so the scan stops at the first
        // docID past the probe.
        let meta = self.metas[block];
        let skip = self.skips[block];
        let end_bits =
            meta.offset as usize * 8 + meta.pair_bits() as usize * meta.count as usize;
        assert!(end_bits <= self.payload.len() * 8, "bit read past end of buffer");
        let payload = self.payload.as_slice();
        let mut bit = meta.offset as usize * 8;
        let mut prev = skip;
        for i in 0..meta.count as usize {
            let gap = bitpack::extract(payload, bit, meta.dn_bits);
            bit += meta.dn_bits as usize;
            let tf = bitpack::extract(payload, bit, meta.tf_bits);
            bit += meta.tf_bits as usize;
            let doc = if i == 0 { skip } else { prev.wrapping_add(gap) };
            if doc == doc_id {
                return Some(tf);
            }
            if doc > doc_id {
                return None;
            }
            prev = doc;
        }
        None
    }

    /// Cost in bits under the codec's model (the paper's Eq. 3 for the
    /// default codec), before byte alignment.
    pub fn model_bits(&self) -> u64 {
        self.model_bits
    }

    /// Checks the structural invariants every decoder on the hot path
    /// relies on, without decoding any payload:
    ///
    /// * one skip value per metadata word;
    /// * bitwidths at most 31 and counts in `1..=`[`MAX_BLOCK_LEN`]
    ///   (guaranteed by the packed layout, but re-checked for lists built
    ///   by hand);
    /// * block counts summing to [`EncodedList::num_postings`];
    /// * every block's payload range in-bounds;
    /// * skip values strictly increasing.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::CorruptIndex`] naming the violated invariant.
    pub fn validate(&self) -> Result<(), IndexError> {
        if self.metas.len() != self.skips.len() {
            return Err(IndexError::CorruptIndex { context: "skip/meta count mismatch" });
        }
        let mut total: u64 = 0;
        for meta in &self.metas {
            if meta.dn_bits > 31 || meta.tf_bits > 31 {
                return Err(IndexError::CorruptIndex { context: "block bitwidths" });
            }
            if meta.count == 0 || meta.count as usize > MAX_BLOCK_LEN {
                return Err(IndexError::CorruptIndex { context: "block count" });
            }
            total += u64::from(meta.count);
            // Minimum payload bits the block needs under its codec: exact
            // for the bit-packed layouts, a 1-byte-per-value floor for
            // Stream-VByte (the decoder re-checks exact lengths).
            let min_bits = match self.codec {
                CodecId::BitPack | CodecId::SimdBp128 => {
                    u64::from(meta.pair_bits()) * u64::from(meta.count)
                }
                CodecId::StreamVByte => {
                    let n = u64::from(meta.count);
                    8 * 2 * (n.div_ceil(4) + n)
                }
            };
            let bits_needed = meta
                .offset
                .checked_mul(8)
                .and_then(|b| b.checked_add(min_bits))
                .ok_or(IndexError::CorruptIndex { context: "payload bounds" })?;
            if bits_needed > self.payload.len() as u64 * 8 {
                return Err(IndexError::CorruptIndex { context: "payload bounds" });
            }
        }
        if total != self.num_postings {
            return Err(IndexError::CorruptIndex { context: "posting count mismatch" });
        }
        if self.skips.windows(2).any(|w| w[0] >= w[1]) {
            return Err(IndexError::CorruptIndex { context: "skip values not increasing" });
        }
        Ok(())
    }
}

/// Streaming iterator over an [`EncodedList`]'s postings.
///
/// Created by [`EncodedList::iter`]; decodes one block at a time.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    list: &'a EncodedList,
    block: usize,
    buffered: Vec<Posting>,
    pos: usize,
}

impl Iterator for Iter<'_> {
    type Item = Posting;

    fn next(&mut self) -> Option<Posting> {
        while self.pos >= self.buffered.len() {
            if self.block >= self.list.num_blocks() {
                return None;
            }
            // Reuse the buffer across blocks: one allocation per list, not
            // one per block.
            self.buffered.clear();
            self.list.decode_block_into(self.block, &mut self.buffered);
            self.block += 1;
            self.pos = 0;
        }
        let p = self.buffered[self.pos];
        self.pos += 1;
        Some(p)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Remaining = total - consumed (cheap lower bound via buffered).
        let consumed_blocks: u64 =
            self.list.metas.iter().take(self.block).map(|m| u64::from(m.count)).sum();
        let remaining = self.list.num_postings()
            - (consumed_blocks - (self.buffered.len() - self.pos) as u64);
        (remaining as usize, Some(remaining as usize))
    }
}

impl<'a> IntoIterator for &'a EncodedList {
    type Item = Posting;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn list(pairs: &[(u32, u32)]) -> PostingList {
        PostingList::from_sorted(pairs.iter().map(|&(d, t)| Posting::new(d, t)).collect())
    }

    #[test]
    fn meta_pack_unpack_roundtrip() {
        let cases = [
            BlockMeta { dn_bits: 0, tf_bits: 0, count: 1, offset: 0 },
            BlockMeta {
                dn_bits: 31,
                tf_bits: 31,
                count: MAX_BLOCK_LEN as u16,
                offset: (1 << 43) - 1,
            },
            BlockMeta { dn_bits: 7, tf_bits: 3, count: 256, offset: 123_456 },
        ];
        for m in cases {
            assert_eq!(BlockMeta::unpack(m.pack()), m);
        }
    }

    #[test]
    #[should_panic(expected = "5 bits")]
    fn meta_pack_rejects_wide_dn() {
        BlockMeta { dn_bits: 32, tf_bits: 0, count: 1, offset: 0 }.pack();
    }

    #[test]
    fn encode_single_block_roundtrip() {
        // The Lausanne example from Fig. 4.
        let l = list(&[
            (7, 11),
            (10, 2),
            (15, 1),
            (54, 1),
            (72, 5),
            (134, 3),
            (170, 1),
            (221, 2),
            (294, 4),
            (417, 1),
            (500, 3),
            (542, 7),
        ]);
        let enc = EncodedList::encode(&l, &[12]).unwrap();
        assert_eq!(enc.num_blocks(), 1);
        assert_eq!(enc.skips(), &[7]);
        // Max d-gap is 123 (7 bits), max tf is 11 (4 bits).
        assert_eq!(enc.metas()[0].dn_bits, 7);
        assert_eq!(enc.metas()[0].tf_bits, 4);
        assert_eq!(enc.decode_all(), l);
    }

    #[test]
    fn encode_multi_block_roundtrip() {
        let l = list(&[(0, 1), (2, 2), (11, 1), (20, 9), (38, 1), (46, 2)]);
        let enc = EncodedList::encode(&l, &[2, 3, 1]).unwrap();
        assert_eq!(enc.num_blocks(), 3);
        assert_eq!(enc.skips(), &[0, 11, 46]);
        assert_eq!(
            enc.decode_block(1),
            vec![Posting::new(11, 1), Posting::new(20, 9), Posting::new(38, 1)]
        );
        assert_eq!(enc.decode_all(), l);
    }

    #[test]
    fn encode_rejects_bad_partition() {
        let l = list(&[(0, 1), (5, 1)]);
        assert!(matches!(EncodedList::encode(&l, &[3]), Err(IndexError::BadPartition { .. })));
        assert!(matches!(EncodedList::encode(&l, &[1]), Err(IndexError::BadPartition { .. })));
        assert!(matches!(
            EncodedList::encode(&l, &[0, 2]),
            Err(IndexError::BadPartition { .. })
        ));
    }

    #[test]
    fn encode_rejects_huge_gap() {
        // A d-gap of u32::MAX - 1 needs 32 bits, beyond the 5-bit width field.
        let l = list(&[(0, 1), (u32::MAX - 1, 1)]);
        assert!(matches!(EncodedList::encode(&l, &[2]), Err(IndexError::ValueTooWide { .. })));
    }

    #[test]
    fn candidate_block_binary_search() {
        let l = list(&[(1, 1), (8, 1), (19, 1), (37, 1), (48, 1), (54, 1), (76, 1)]);
        let enc = EncodedList::encode(&l, &[1; 7]).unwrap();
        // Skip values {1, 8, 19, 37, 48, 54, 76} — the Fig. 11 example.
        assert_eq!(enc.candidate_block(40), Some(3)); // block with skip 37
        assert_eq!(enc.candidate_block(64), Some(5)); // block with skip 54
        assert_eq!(enc.candidate_block(0), None);
        assert_eq!(enc.candidate_block(1), Some(0));
        assert_eq!(enc.candidate_block(1000), Some(6));
    }

    #[test]
    fn model_bits_matches_formula() {
        let l = list(&[(0, 1), (2, 2), (11, 1), (20, 9)]);
        let enc = EncodedList::encode(&l, &[4]).unwrap();
        // Gaps {0,2,9,9} -> 4 bits; tfs {1,2,1,9} -> 4 bits; 4 postings.
        assert_eq!(enc.model_bits(), (4 + 4) * 4 + 96);
    }

    #[test]
    fn zero_width_block_all_same_tf_adjacent_docs() {
        // Consecutive docIDs with gap 1 and all tf = 1: dn_bits = 1, tf_bits = 1.
        let l = list(&[(10, 1), (11, 1), (12, 1)]);
        let enc = EncodedList::encode(&l, &[3]).unwrap();
        assert_eq!(enc.metas()[0].dn_bits, 1);
        assert_eq!(enc.metas()[0].tf_bits, 1);
        assert_eq!(enc.decode_all(), l);
    }

    #[test]
    fn singleton_block_uses_zero_dn_bits() {
        let l = list(&[(1000, 1)]);
        let enc = EncodedList::encode(&l, &[1]).unwrap();
        assert_eq!(enc.metas()[0].dn_bits, 0);
        assert_eq!(enc.decode_all(), l);
    }

    #[test]
    fn width_zero_both_fields_decodes_without_reading_bits() {
        // A singleton with tf 0: dn_bits = 0 AND tf_bits = 0, so the block
        // payload is empty and the decoder must not touch any bytes.
        let l = list(&[(1000, 0)]);
        let enc = EncodedList::encode(&l, &[1]).unwrap();
        assert_eq!(enc.metas()[0].dn_bits, 0);
        assert_eq!(enc.metas()[0].tf_bits, 0);
        assert!(enc.payload().is_empty());
        assert_eq!(enc.decode_block(0), vec![Posting::new(1000, 0)]);
        assert_eq!(enc.find(1000), Some(0));
    }

    #[test]
    fn width_zero_tf_decodes_run_of_zeros() {
        // Multi-posting block with every tf 0: tf_bits = 0, docIDs still
        // delta-decode correctly.
        let l = list(&[(3, 0), (4, 0), (5, 0), (6, 0)]);
        let enc = EncodedList::encode(&l, &[4]).unwrap();
        assert_eq!(enc.metas()[0].tf_bits, 0);
        assert_eq!(enc.decode_all(), l);
        assert_eq!(enc.find(5), Some(0));
        assert_eq!(enc.find(7), None);
    }

    #[test]
    fn decode_block_into_appends_and_reuses_capacity() {
        let l = list(&[(0, 1), (2, 2), (11, 1), (20, 9), (38, 1), (46, 2)]);
        let enc = EncodedList::encode(&l, &[3, 3]).unwrap();
        let mut scratch = Vec::new();
        enc.decode_block_into(0, &mut scratch);
        enc.decode_block_into(1, &mut scratch); // appends
        assert_eq!(scratch, l.as_slice());
        let cap = scratch.capacity();
        // Reuse: clear + decode must not reallocate.
        scratch.clear();
        enc.decode_block_into(1, &mut scratch);
        assert_eq!(scratch, enc.decode_block(1));
        assert_eq!(scratch.capacity(), cap);
    }

    #[test]
    fn try_decode_block_into_reports_corruption_not_panic() {
        let l = list(&[(0, 1), (2, 2), (11, 1), (20, 9)]);
        let enc = EncodedList::encode(&l, &[2, 2]).unwrap();
        let mut out = Vec::new();

        // Out-of-range block index.
        assert!(matches!(
            enc.try_decode_block_into(9, &mut out),
            Err(IndexError::CorruptIndex { context: "block index out of range" })
        ));

        // Offset pointing past the payload.
        let mut bad = enc.clone();
        bad.metas[1].offset = (1 << 43) - 1;
        assert!(matches!(
            bad.try_decode_block_into(1, &mut out),
            Err(IndexError::CorruptIndex { context: "payload bounds" })
        ));

        // Widths out of the packed range.
        let mut bad = enc.clone();
        bad.metas[0].dn_bits = 40;
        assert!(matches!(
            bad.try_decode_block_into(0, &mut out),
            Err(IndexError::CorruptIndex { context: "block bitwidths" })
        ));

        // A count overrunning the payload.
        let mut bad = enc;
        bad.metas[1].count = MAX_BLOCK_LEN as u16;
        assert!(matches!(
            bad.try_decode_block_into(1, &mut out),
            Err(IndexError::CorruptIndex { context: "payload bounds" })
        ));

        // Every error left the scratch untouched.
        assert!(out.is_empty());
    }

    #[test]
    fn validate_accepts_encoder_output_and_catches_tampering() {
        let l = list(&[(0, 1), (2, 2), (11, 1), (20, 9), (38, 1), (46, 2)]);
        let enc = EncodedList::encode(&l, &[2, 2, 2]).unwrap();
        assert!(enc.validate().is_ok());

        let mut bad = enc.clone();
        bad.num_postings += 1;
        assert!(matches!(
            bad.validate(),
            Err(IndexError::CorruptIndex { context: "posting count mismatch" })
        ));

        let mut bad = enc.clone();
        bad.skips[1] = bad.skips[0]; // not strictly increasing
        assert!(matches!(
            bad.validate(),
            Err(IndexError::CorruptIndex { context: "skip values not increasing" })
        ));

        let mut bad = enc.clone();
        bad.metas[2].offset = (1 << 43) - 1; // way out of the payload
        assert!(matches!(
            bad.validate(),
            Err(IndexError::CorruptIndex { context: "payload bounds" })
        ));

        let mut bad = enc.clone();
        bad.skips.pop();
        assert!(matches!(
            bad.validate(),
            Err(IndexError::CorruptIndex { context: "skip/meta count mismatch" })
        ));

        let mut bad = enc;
        bad.metas[0].dn_bits = 63;
        assert!(matches!(
            bad.validate(),
            Err(IndexError::CorruptIndex { context: "block bitwidths" })
        ));
    }

    #[test]
    fn compressed_bytes_accounts_overheads() {
        let l = list(&[(0, 1), (3, 1), (9, 1), (10, 1)]);
        let enc = EncodedList::encode(&l, &[2, 2]).unwrap();
        let payload = enc.payload().len() as u64;
        assert_eq!(enc.compressed_bytes(), payload + 2 * 12);
    }

    #[test]
    fn iter_streams_all_blocks() {
        let l = list(&[(0, 1), (2, 2), (11, 1), (20, 9), (38, 1), (46, 2)]);
        let enc = EncodedList::encode(&l, &[2, 3, 1]).unwrap();
        let collected: Vec<Posting> = enc.iter().collect();
        assert_eq!(collected, l.as_slice());
        // size_hint is exact at the start.
        assert_eq!(enc.iter().size_hint(), (6, Some(6)));
        let mut it = enc.iter();
        it.next();
        assert_eq!(it.size_hint().0, 5);
    }

    #[test]
    fn iter_on_empty_list() {
        let enc = EncodedList::default();
        assert_eq!(enc.iter().count(), 0);
    }

    #[test]
    fn encode_with_bitpack_is_byte_identical_to_encode() {
        let l = list(&[(0, 1), (2, 2), (11, 1), (20, 9), (38, 1), (46, 2)]);
        let a = EncodedList::encode(&l, &[2, 3, 1]).unwrap();
        let b = EncodedList::encode_with(&l, &[2, 3, 1], CodecId::BitPack).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.codec(), CodecId::BitPack);
    }

    #[test]
    fn every_codec_roundtrips_decode_find_and_iter() {
        let pairs: Vec<(u32, u32)> = (0..300u32).map(|i| (i * 7 + (i % 5), i % 13)).collect();
        let l = list(&pairs);
        let lens = [vec![150usize], vec![97], vec![53]].concat();
        for codec in CodecId::ALL {
            let enc = EncodedList::encode_with(&l, &lens, codec).unwrap();
            assert_eq!(enc.codec(), codec);
            assert!(enc.validate().is_ok(), "{codec}");
            assert_eq!(enc.decode_all(), l, "{codec}");
            assert_eq!(enc.iter().collect::<Vec<_>>(), l.as_slice(), "{codec}");
            for &(d, t) in &pairs {
                assert_eq!(enc.find(d), Some(t), "{codec} doc {d}");
            }
            assert_eq!(enc.find(1), None, "{codec}");
            assert_eq!(enc.find(u32::MAX), None, "{codec}");
        }
    }

    #[test]
    fn non_bitpack_truncated_payload_errors_rather_than_panics() {
        let l = list(&[(0, 1), (2, 2), (11, 1), (20, 9), (38, 1), (46, 2)]);
        for codec in [CodecId::StreamVByte, CodecId::SimdBp128] {
            let enc = EncodedList::encode_with(&l, &[3, 3], codec).unwrap();
            let mut bad = enc.clone();
            bad.payload.truncate(1);
            let mut out = Vec::new();
            assert!(bad.try_decode_block_into(0, &mut out).is_err(), "{codec}");
            assert!(out.is_empty(), "{codec}");
        }
    }

    #[test]
    fn find_decompresses_one_block_only() {
        let l = list(&[(0, 1), (2, 2), (11, 1), (20, 9), (38, 1), (46, 2)]);
        let enc = EncodedList::encode(&l, &[2, 2, 2]).unwrap();
        assert_eq!(enc.find(20), Some(9));
        assert_eq!(enc.find(21), None);
        assert_eq!(enc.find(0), Some(1));
        assert_eq!(enc.find(46), Some(2));
        assert_eq!(enc.find(47), None);
    }

    proptest! {
        #[test]
        fn prop_iter_equals_decode_all(
            ids in proptest::collection::btree_set(0u32..1 << 20, 1..300),
        ) {
            let l = PostingList::from_sorted(
                ids.iter().map(|&d| Posting::new(d, d % 7 + 1)).collect(),
            );
            let lens = crate::partition::Partitioner::dynamic(32).partition(&l);
            let enc = EncodedList::encode(&l, &lens).unwrap();
            let streamed: Vec<Posting> = enc.iter().collect();
            prop_assert_eq!(streamed, l.into_inner());
        }

        #[test]
        fn prop_find_agrees_with_membership(
            ids in proptest::collection::btree_set(0u32..2000, 1..120),
        ) {
            let l = PostingList::from_sorted(
                ids.iter().map(|&d| Posting::new(d, d % 5 + 1)).collect(),
            );
            let lens = crate::partition::Partitioner::dynamic(8).partition(&l);
            let enc = EncodedList::encode(&l, &lens).unwrap();
            for d in 0..2000u32 {
                let expect = ids.contains(&d).then(|| d % 5 + 1);
                prop_assert_eq!(enc.find(d), expect, "doc {}", d);
            }
        }

        #[test]
        fn prop_roundtrip_random_partition(
            ids in proptest::collection::btree_set(0u32..1 << 24, 1..500),
            seed in 0u64..1000,
        ) {
            let postings: Vec<Posting> = ids
                .iter()
                .enumerate()
                .map(|(i, &d)| Posting::new(d, (seed as u32).wrapping_mul(i as u32 + 1) % 1000 + 1))
                .collect();
            let l = PostingList::from_sorted(postings);
            // Deterministic pseudo-random partition from the seed.
            let mut lens = Vec::new();
            let mut left = l.len();
            let mut s = seed.wrapping_add(1);
            while left > 0 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let take = (s >> 33) as usize % left.min(64) + 1;
                lens.push(take.min(left));
                left -= take.min(left);
            }
            let enc = EncodedList::encode(&l, &lens).unwrap();
            prop_assert_eq!(enc.decode_all(), l);
            prop_assert_eq!(enc.num_blocks(), lens.len());
        }

        /// `decode_block_into` (fused batch kernel) matches `decode_block`
        /// for every block of random lists under random partitions,
        /// including when the scratch buffer carries stale capacity.
        #[test]
        fn prop_decode_block_into_equals_decode_block(
            ids in proptest::collection::btree_set(0u32..1 << 24, 1..400),
            seed in 0u64..1000,
        ) {
            let postings: Vec<Posting> = ids
                .iter()
                .enumerate()
                .map(|(i, &d)| Posting::new(d, (seed as u32).wrapping_mul(i as u32) % 512))
                .collect();
            let l = PostingList::from_sorted(postings);
            let mut lens = Vec::new();
            let mut left = l.len();
            let mut s = seed.wrapping_add(7);
            while left > 0 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let take = ((s >> 33) as usize % left.min(97) + 1).min(left);
                lens.push(take);
                left -= take;
            }
            let enc = EncodedList::encode(&l, &lens).unwrap();
            let mut scratch = vec![Posting::new(u32::MAX, u32::MAX); 8]; // stale junk
            for b in 0..enc.num_blocks() {
                scratch.clear();
                enc.decode_block_into(b, &mut scratch);
                prop_assert_eq!(&scratch, &enc.decode_block(b), "block {}", b);
            }
        }

        #[test]
        fn prop_candidate_block_finds_members(
            ids in proptest::collection::btree_set(0u32..10_000, 2..200),
        ) {
            let l = PostingList::from_sorted(
                ids.iter().map(|&d| Posting::new(d, 1)).collect(),
            );
            let lens = [vec![7usize; l.len() / 7], vec![l.len() % 7]]
                .concat()
                .into_iter()
                .filter(|&x| x > 0)
                .collect::<Vec<_>>();
            let enc = EncodedList::encode(&l, &lens).unwrap();
            for &d in &ids {
                let b = enc.candidate_block(d).expect("member must have a candidate block");
                let decoded = enc.decode_block(b);
                prop_assert!(decoded.iter().any(|p| p.doc_id == d));
            }
        }
    }
}
