//! Crash-safe incremental index: WAL-backed write path over sealed
//! segments plus a live in-memory buffer.
//!
//! ## Write path
//!
//! [`IncrementalIndex::ingest_batch`] appends every document to the WAL,
//! fsyncs **once** per batch (the acknowledgment barrier), and only then
//! applies the batch to the in-memory [`WriteBuffer`]. A crash at any
//! instant therefore loses only unacknowledged documents; everything
//! acknowledged is replayed from the WAL on reopen.
//!
//! When the buffer reaches `seal_threshold` documents it is drained into
//! a sealed on-disk segment (atomic write + rename, partitioner re-run
//! over the batch for compression-optimal blocks) and the WAL is reset.
//! When the segment count reaches `merge_threshold`, segments are merged
//! into one — the same decode/remap/rebuild shape as
//! [`crate::ShardedIndex::merge`].
//!
//! ## Scoring and bit-identity
//!
//! Sealed segments bake *segment-local* BM25 statistics, which search
//! ignores. Instead, [`IncrementalIndex::scored_postings`] recomputes the
//! per-term `idf̄` and per-document `dl̄` from **global** statistics
//! (total doc count, union document frequency, running `avgdl`
//! maintained in the same left-fold order [`InvertedIndex::from_lists`]
//! uses) and scores through the same Q16.16
//! [`crate::score::term_score_fixed`] datapath. Scores are therefore
//! bit-identical to a one-shot index built over the same documents — the
//! equivalence the recovery chaos campaign gates on.
//!
//! ## Error contract
//!
//! Methods return typed [`IndexError`]s and never panic on corrupt or
//! torn input. If `seal` or `compact` fails partway, the in-memory state
//! may be behind the durable state; the safe continuation is to drop the
//! handle and [`IncrementalIndex::open`] again — the WAL and segment
//! protocol guarantee the reopened state is exactly the acknowledged one.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::BTreeMap;
use std::fs;
use std::ops::Range;
use std::path::{Path, PathBuf};

use crate::codec::CodecId;
use crate::error::IndexError;
use crate::index::InvertedIndex;
use crate::memtable::WriteBuffer;
use crate::partition::Partitioner;
use crate::posting::{DocId, Posting, PostingList};
use crate::recovery::{self, RecoveryReport};
use crate::score::{term_score_fixed, Bm25Params, Fixed};
use crate::segment::{self, LoadedSegment, SegmentMeta};
use crate::wal::{IngestDoc, Wal, WAL_FILE_NAME};

fn io_err(context: &'static str, e: std::io::Error) -> IndexError {
    IndexError::Io { context, message: e.to_string() }
}

/// Tuning knobs for the incremental index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncrementalOptions {
    /// Block partitioner used for every sealed segment.
    pub partitioner: Partitioner,
    /// BM25 parameters (must match across all segments in a directory).
    pub bm25: Bm25Params,
    /// Block codec every sealed segment is encoded with (must match
    /// across all segments in a directory).
    pub codec: CodecId,
    /// Buffered-document count that triggers an automatic seal after a
    /// batch; `0` disables auto-sealing (manual [`IncrementalIndex::seal`]
    /// only).
    pub seal_threshold: usize,
    /// Sealed-segment count that triggers an automatic merge; `0`
    /// disables auto-merging.
    pub merge_threshold: usize,
    /// Memory-map sealed segments instead of materializing them on the
    /// heap ([`crate::storage`]): posting bytes stay in the page cache
    /// and each segment's record CRCs defer to first touch. Sealed files
    /// are immutable (tmp + fsync + rename), satisfying the mapped
    /// loader's safety contract.
    pub mmap_segments: bool,
}

impl Default for IncrementalOptions {
    fn default() -> Self {
        IncrementalOptions {
            partitioner: Partitioner::dynamic(crate::partition::DEFAULT_MAX_SIZE),
            bm25: Bm25Params::default(),
            codec: CodecId::BitPack,
            seal_threshold: 4096,
            merge_threshold: 8,
            mmap_segments: false,
        }
    }
}

/// A crash-safe, incrementally updatable inverted index over a directory.
#[derive(Debug)]
pub struct IncrementalIndex {
    dir: PathBuf,
    opts: IncrementalOptions,
    segments: Vec<LoadedSegment>,
    buffer: WriteBuffer,
    wal: Wal,
    /// Token length of every document (sealed then buffered), by global id.
    doc_lens: Vec<u32>,
    /// Running Σ doc_len as an f64 left fold in global doc order — the
    /// exact summation [`InvertedIndex::from_lists`] performs, so the
    /// derived `avgdl` is bit-identical to a one-shot build.
    len_sum: f64,
    report: RecoveryReport,
}

impl IncrementalIndex {
    /// Opens (or initializes) the incremental index at `dir`, running full
    /// crash recovery: temp-file cleanup, segment resolution, WAL replay
    /// with torn-tail truncation. An empty or missing directory becomes a
    /// fresh index.
    ///
    /// # Errors
    ///
    /// Returns typed errors for unrecoverable corruption (CRC-corrupt
    /// interior WAL records, damaged or non-tiling segments) and for
    /// filesystem failures; never panics on bad bytes.
    pub fn open(dir: &Path, opts: IncrementalOptions) -> Result<Self, IndexError> {
        fs::create_dir_all(dir).map_err(|e| io_err("creating the index directory", e))?;
        let state = recovery::recover_mode(
            dir,
            opts.partitioner,
            opts.bm25,
            opts.codec,
            opts.mmap_segments,
        )?;
        let mut doc_lens = Vec::new();
        let mut len_sum = 0.0f64;
        for seg in &state.segments {
            for &l in seg.index.doc_lens() {
                doc_lens.push(l);
                len_sum += f64::from(l);
            }
        }
        for &l in state.buffer.doc_lens() {
            doc_lens.push(l);
            len_sum += f64::from(l);
        }
        if state.wal.next_seq() != doc_lens.len() as u64 {
            return Err(IndexError::CorruptIndex {
                context: "WAL sequence disagrees with recovered document count",
            });
        }
        Ok(IncrementalIndex {
            dir: dir.to_path_buf(),
            opts,
            segments: state.segments,
            buffer: state.buffer,
            wal: state.wal,
            doc_lens,
            len_sum,
            report: state.report,
        })
    }

    /// What recovery found when this handle was opened.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.report
    }

    /// The directory this index lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The options this index was opened with.
    pub fn options(&self) -> &IncrementalOptions {
        &self.opts
    }

    /// Total acknowledged documents (sealed + buffered).
    pub fn num_docs(&self) -> u64 {
        self.doc_lens.len() as u64
    }

    /// Documents sealed into on-disk segments.
    pub fn sealed_docs(&self) -> u64 {
        self.segments.last().map_or(0, |s| s.meta.end())
    }

    /// Documents in the in-memory buffer (durable in the WAL only).
    pub fn buffered_docs(&self) -> u64 {
        self.buffer.num_docs() as u64
    }

    /// Sealed segment metadata, ascending by start.
    pub fn segment_metas(&self) -> Vec<&SegmentMeta> {
        self.segments.iter().map(|s| &s.meta).collect()
    }

    /// Token length of document `d`.
    pub fn doc_len(&self, d: DocId) -> u32 {
        self.doc_lens[d as usize]
    }

    /// Global average document length, bit-identical to the one-shot
    /// build's left-fold computation (1.0 for an empty corpus).
    pub fn avgdl(&self) -> f64 {
        if self.doc_lens.is_empty() {
            1.0
        } else {
            self.len_sum / self.doc_lens.len() as f64
        }
    }

    /// Union document frequency of `term` across segments and buffer.
    pub fn df(&self, term: &str) -> u64 {
        let sealed: u64 = self
            .segments
            .iter()
            .map(|s| s.index.term_id(term).map_or(0, |id| s.index.term_info(id).df))
            .sum();
        sealed + self.buffer.df(term)
    }

    /// True when any acknowledged document contains `term`.
    pub fn has_term(&self, term: &str) -> bool {
        self.buffer.df(term) > 0
            || self.segments.iter().any(|s| s.index.term_id(term).is_some())
    }

    /// Decoded, globally remapped, **globally scored** postings for
    /// `term`, ascending by doc id — or `None` for an unknown term.
    ///
    /// Each entry is `(global_doc_id, score)` where the score is the same
    /// Q16.16 `term_score_fixed(idf̄, dl̄(doc), tf)` a one-shot index
    /// produces, because `idf̄` and `dl̄` come from global statistics.
    pub fn scored_postings(
        &self,
        term: &str,
    ) -> Result<Option<Vec<(DocId, Fixed)>>, IndexError> {
        let df = self.df(term);
        if df == 0 {
            return Ok(None);
        }
        let idf_bar = Fixed::from_f64(self.opts.bm25.idf_bar(self.num_docs(), df));
        let avgdl = self.avgdl();
        let mut out = Vec::with_capacity(df as usize);
        let score = |global: DocId, tf: u32, out: &mut Vec<(DocId, Fixed)>| {
            let dl_bar =
                Fixed::from_f64(self.opts.bm25.dl_bar(self.doc_lens[global as usize], avgdl));
            out.push((global, term_score_fixed(idf_bar, dl_bar, tf)));
        };
        for seg in &self.segments {
            if seg.index.term_id(term).is_none() {
                continue;
            }
            let list = seg.index.decode_term(term)?;
            let offset = seg.meta.start as u32;
            for p in list.iter() {
                score(p.doc_id + offset, p.tf, &mut out);
            }
        }
        if let Some(list) = self.buffer.postings(term) {
            let offset = self.sealed_docs() as u32;
            for p in list.iter() {
                score(p.doc_id + offset, p.tf, &mut out);
            }
        }
        Ok(Some(out))
    }

    /// Ingests one document; returns its global doc id. See
    /// [`Self::ingest_batch`] for the durability contract.
    pub fn ingest(&mut self, doc: &IngestDoc) -> Result<u64, IndexError> {
        self.ingest_batch(std::slice::from_ref(doc)).map(|r| r.start)
    }

    /// Ingests a batch: every document is appended to the WAL, the WAL is
    /// fsynced **once**, and only then is the batch applied to the live
    /// buffer and auto-seal/merge thresholds consulted. When this returns
    /// `Ok`, every document in the batch survives any crash.
    ///
    /// Returns the assigned global doc-id range.
    pub fn ingest_batch(&mut self, docs: &[IngestDoc]) -> Result<Range<u64>, IndexError> {
        if docs.is_empty() {
            let n = self.num_docs();
            return Ok(n..n);
        }
        if self.num_docs() + docs.len() as u64 > u64::from(u32::MAX) {
            return Err(IndexError::CorruptIndex { context: "32-bit docID space exhausted" });
        }
        let start = self.num_docs();
        for (i, doc) in docs.iter().enumerate() {
            let seq = self.wal.append(doc)?;
            debug_assert_eq!(seq, start + i as u64, "WAL sequence out of step with doc ids");
        }
        // Durability barrier: acknowledge only after this fsync.
        self.wal.sync()?;
        for doc in docs {
            self.buffer.add(doc);
            self.doc_lens.push(doc.len());
            self.len_sum += f64::from(doc.len());
        }
        let end = self.num_docs();
        if self.opts.seal_threshold > 0 && self.buffer.num_docs() >= self.opts.seal_threshold {
            self.seal()?;
        }
        Ok(start..end)
    }

    /// Seals the buffer into a new on-disk segment and resets the WAL.
    /// Returns `false` (and does nothing) when the buffer is empty.
    ///
    /// Crash ordering: the segment reaches its final name (atomic rename)
    /// *before* the WAL is reset. A crash in between replays the sealed
    /// documents from the WAL and skips them as already-sealed
    /// duplicates.
    pub fn seal(&mut self) -> Result<bool, IndexError> {
        if self.buffer.is_empty() {
            return Ok(false);
        }
        let start = self.sealed_docs();
        let (lists, lens) = self.buffer.drain();
        let sealed = segment::seal_segment_with(
            &self.dir,
            start,
            lists,
            lens,
            self.opts.partitioner,
            self.opts.bm25,
            self.opts.codec,
        )?;
        // In mmap mode the freshly sealed file replaces its heap copy:
        // posting bytes move to the page cache as soon as they're durable.
        let sealed = if self.opts.mmap_segments {
            segment::load_segment_mmap(&self.dir, &sealed.meta)?
        } else {
            sealed
        };
        self.segments.push(sealed);
        self.wal = Wal::create(&self.dir.join(WAL_FILE_NAME), self.num_docs())?;
        if self.opts.merge_threshold > 0 && self.segments.len() >= self.opts.merge_threshold {
            self.compact()?;
        }
        Ok(true)
    }

    /// Merges all sealed segments into one. Returns `false` when fewer
    /// than two segments exist.
    ///
    /// Crash ordering: the merged segment reaches its final name before
    /// the inputs are unlinked; recovery's subsumption pass cleans up any
    /// leftovers a crash in between produces.
    pub fn compact(&mut self) -> Result<bool, IndexError> {
        if self.segments.len() < 2 {
            return Ok(false);
        }
        let refs: Vec<&LoadedSegment> = self.segments.iter().collect();
        let (lists, lens) = segment::merge_segment_lists(&refs)?;
        let start = self.segments[0].meta.start;
        let merged = segment::seal_segment_with(
            &self.dir,
            start,
            lists,
            lens,
            self.opts.partitioner,
            self.opts.bm25,
            self.opts.codec,
        )?;
        for old in &self.segments {
            if old.meta.file_name != merged.meta.file_name {
                fs::remove_file(self.dir.join(&old.meta.file_name))
                    .map_err(|e| io_err("removing a merged-away segment", e))?;
            }
        }
        let merged = if self.opts.mmap_segments {
            segment::load_segment_mmap(&self.dir, &merged.meta)?
        } else {
            merged
        };
        self.segments = vec![merged];
        Ok(true)
    }

    /// Materializes a one-shot [`InvertedIndex`] over every acknowledged
    /// document — the reference the equivalence gates compare against,
    /// and the bridge to consumers of the static format.
    pub fn to_one_shot(&self) -> Result<InvertedIndex, IndexError> {
        let mut merged: BTreeMap<String, Vec<Posting>> = BTreeMap::new();
        for seg in &self.segments {
            let offset = seg.meta.start as u32;
            for info in seg.index.terms() {
                let list = seg.index.decode_term(&info.term)?;
                merged
                    .entry(info.term.clone())
                    .or_default()
                    .extend(list.iter().map(|p| Posting::new(p.doc_id + offset, p.tf)));
            }
        }
        let offset = self.sealed_docs() as u32;
        for (term, list) in self.buffer.iter_lists() {
            merged
                .entry(term.to_owned())
                .or_default()
                .extend(list.iter().map(|p| Posting::new(p.doc_id + offset, p.tf)));
        }
        let lists = merged
            .into_iter()
            .map(|(term, mut postings)| {
                postings.sort_unstable_by_key(|p| p.doc_id);
                (term, PostingList::from_sorted(postings))
            })
            .collect();
        InvertedIndex::from_lists_codec(
            lists,
            self.doc_lens.clone(),
            self.opts.partitioner,
            self.opts.bm25,
            self.opts.codec,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(len: u32, terms: &[(&str, u32)]) -> IngestDoc {
        IngestDoc::new(len, terms.iter().map(|(t, f)| ((*t).to_owned(), *f)).collect())
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("iiu-inc-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn manual_opts() -> IncrementalOptions {
        IncrementalOptions { seal_threshold: 0, merge_threshold: 0, ..Default::default() }
    }

    #[test]
    fn ingest_seal_reopen_preserves_everything() {
        let dir = tmp_dir("basic");
        let mut idx = IncrementalIndex::open(&dir, manual_opts()).unwrap();
        idx.ingest_batch(&[doc(5, &[("alpha", 2), ("beta", 1)]), doc(3, &[("beta", 3)])])
            .unwrap();
        assert!(idx.seal().unwrap());
        idx.ingest(&doc(7, &[("alpha", 1)])).unwrap();
        assert_eq!(idx.num_docs(), 3);
        assert_eq!(idx.sealed_docs(), 2);
        assert_eq!(idx.df("alpha"), 2);
        assert_eq!(idx.df("beta"), 2);

        let reopened = IncrementalIndex::open(&dir, manual_opts()).unwrap();
        assert_eq!(reopened.num_docs(), 3);
        assert_eq!(reopened.sealed_docs(), 2);
        assert_eq!(reopened.buffered_docs(), 1);
        assert_eq!(reopened.recovery_report().wal_docs_replayed, 1);
        assert_eq!(reopened.df("alpha"), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scored_postings_match_one_shot_index() {
        let dir = tmp_dir("score");
        let mut idx = IncrementalIndex::open(&dir, manual_opts()).unwrap();
        idx.ingest_batch(&[
            doc(12, &[("alpha", 2), ("beta", 1)]),
            doc(40, &[("beta", 5), ("gamma", 1)]),
            doc(8, &[("alpha", 1)]),
        ])
        .unwrap();
        idx.seal().unwrap();
        idx.ingest_batch(&[doc(25, &[("alpha", 3), ("gamma", 2)]), doc(16, &[("beta", 2)])])
            .unwrap();

        let one_shot = idx.to_one_shot().unwrap();
        assert_eq!(one_shot.num_docs(), 5);
        for term in ["alpha", "beta", "gamma"] {
            let live = idx.scored_postings(term).unwrap().unwrap();
            let list = one_shot.decode_term(term).unwrap();
            let id = one_shot.term_id(term).unwrap();
            let info = one_shot.term_info(id);
            assert_eq!(live.len(), list.len(), "{term}");
            for (l, p) in live.iter().zip(list.iter()) {
                assert_eq!(l.0, p.doc_id, "{term}");
                let expect = term_score_fixed(info.idf_bar, one_shot.dl_bar(p.doc_id), p.tf);
                assert_eq!(l.1.raw(), expect.raw(), "{term} doc {}", p.doc_id);
            }
        }
        assert!(idx.scored_postings("zzz").unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn auto_seal_and_compact_fire_at_thresholds() {
        let dir = tmp_dir("auto");
        let opts =
            IncrementalOptions { seal_threshold: 2, merge_threshold: 3, ..Default::default() };
        let mut idx = IncrementalIndex::open(&dir, opts).unwrap();
        for i in 0..10u32 {
            idx.ingest(&doc(5 + i, &[("t", 1 + i % 2)])).unwrap();
        }
        assert_eq!(idx.num_docs(), 10);
        // Threshold 2 seals every second doc; threshold 3 keeps the
        // segment count below 3 via merges.
        assert!(idx.segments.len() < 3, "merge never fired: {}", idx.segments.len());
        assert_eq!(idx.sealed_docs() + idx.buffered_docs(), 10);
        let reopened = IncrementalIndex::open(&dir, opts).unwrap();
        assert_eq!(reopened.num_docs(), 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_merges_to_single_segment() {
        let dir = tmp_dir("compact");
        let mut idx = IncrementalIndex::open(&dir, manual_opts()).unwrap();
        for batch in 0..3 {
            idx.ingest_batch(&[doc(5, &[("a", 1 + batch)]), doc(9, &[("b", 1), ("a", 2)])])
                .unwrap();
            idx.seal().unwrap();
        }
        assert_eq!(idx.segments.len(), 3);
        let before = idx.to_one_shot().unwrap();
        assert!(idx.compact().unwrap());
        assert_eq!(idx.segments.len(), 1);
        let after = idx.to_one_shot().unwrap();
        assert_eq!(
            crate::io::serialize(&before).unwrap(),
            crate::io::serialize(&after).unwrap(),
            "compaction must not change the logical index"
        );
        let reopened = IncrementalIndex::open(&dir, manual_opts()).unwrap();
        assert_eq!(reopened.segments.len(), 1);
        assert_eq!(reopened.num_docs(), 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_default_codec_survives_seal_compact_and_reopen() {
        for codec in crate::codec::CodecId::ALL {
            let dir = tmp_dir(&format!("codec-{codec}"));
            let opts = IncrementalOptions { codec, ..manual_opts() };
            let mut idx = IncrementalIndex::open(&dir, opts).unwrap();
            for batch in 0..3u32 {
                idx.ingest_batch(&[
                    doc(5, &[("a", 1 + batch)]),
                    doc(9, &[("b", 1), ("a", 2)]),
                ])
                .unwrap();
                idx.seal().unwrap();
            }
            idx.ingest(&doc(4, &[("c", 1)])).unwrap();
            for seg in &idx.segments {
                assert_eq!(seg.index.codec(), codec);
            }
            assert!(idx.compact().unwrap());
            assert_eq!(idx.segments[0].index.codec(), codec);
            let one_shot = idx.to_one_shot().unwrap();
            assert_eq!(one_shot.codec(), codec);

            let reopened = IncrementalIndex::open(&dir, opts).unwrap();
            assert_eq!(reopened.num_docs(), 7);
            assert_eq!(
                crate::io::serialize(&reopened.to_one_shot().unwrap()).unwrap(),
                crate::io::serialize(&one_shot).unwrap(),
                "{codec} reopen must reproduce the one-shot bytes"
            );
            // Reopening under a different codec is refused once segments
            // exist — the directory's write path would diverge.
            let other = if codec == crate::codec::CodecId::BitPack {
                crate::codec::CodecId::SimdBp128
            } else {
                crate::codec::CodecId::BitPack
            };
            let err =
                IncrementalIndex::open(&dir, IncrementalOptions { codec: other, ..opts })
                    .unwrap_err();
            assert!(matches!(err, IndexError::CorruptIndex { .. }), "{codec}: {err:?}");
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let dir = tmp_dir("empty");
        let mut idx = IncrementalIndex::open(&dir, manual_opts()).unwrap();
        assert_eq!(idx.ingest_batch(&[]).unwrap(), 0..0);
        assert!(!idx.seal().unwrap());
        assert!(!idx.compact().unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }
}
