//! Minimal text tokenizer used by the index builder.
//!
//! Splits on non-alphanumeric characters and lowercases, which is the
//! behaviour of Lucene's `StandardAnalyzer` to a first approximation and is
//! all the synthetic evaluation needs.

/// Tokenizes `text` into lowercase alphanumeric terms.
///
/// # Example
///
/// ```
/// use iiu_index::tokenize::tokenize;
/// assert_eq!(tokenize("Business AND Cameo!"), vec!["business", "and", "cameo"]);
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        assert_eq!(tokenize("a,b  c--d"), vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn lowercases() {
        assert_eq!(tokenize("Lausanne"), vec!["lausanne"]);
    }

    #[test]
    fn empty_input_yields_no_tokens() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("  ... ").is_empty());
    }

    #[test]
    fn keeps_digits() {
        assert_eq!(tokenize("ddr4-2400"), vec!["ddr4", "2400"]);
    }
}
