//! Pluggable block codecs for compressed posting lists.
//!
//! The paper's format bit-packs `(d-gap, tf)` pairs at per-block widths
//! (see [`crate::block`]). That scheme is one point in the
//! compression/decode-speed space; this module puts the per-block payload
//! encoding behind the [`BlockCodec`] trait so the whole engine stack —
//! builder, partitioner, block-max pruning, sharding, incremental sealing
//! — runs unchanged over any member of the family:
//!
//! * [`CodecId::BitPack`] — the paper's interleaved bit-packed pairs,
//!   decoded by the PR-3 word-window kernels. The default, and the scalar
//!   baseline of the codec shootout.
//! * [`CodecId::StreamVByte`] — byte-aligned Stream-VByte (Lemire, Kurz &
//!   Rupp): a 2-bit-per-value control stream followed by 1–4 data bytes
//!   per value, one stream for gaps and one for tfs.
//! * [`CodecId::SimdBp128`] — SIMD-BP128-style vertical layout (Lemire &
//!   Boytsov): gaps and tfs in separate streams, full 128-value groups
//!   transposed into 4 SIMD lanes × 32 values so a single shift-and-mask
//!   yields four values at once. Decoded by a runtime-dispatched
//!   SSE2/AVX2 kernel on x86-64 with a bit-identical portable scalar
//!   fallback. Widths come from the block metadata, so a SimdBp128
//!   payload is byte-for-byte the *same size* as the BitPack payload for
//!   the same partition — the layout trades nothing for the SIMD decode.
//!
//! Every codec obeys the same contracts the BitPack path established:
//!
//! * **Zero-alloc decode-into** (PR 3's `DecodeScratch` contract):
//!   `try_decode_block_into` appends to a caller-owned `Vec<Posting>`
//!   and allocates nothing else (SimdBp128 uses fixed stack buffers).
//! * **Never panic on corrupt bytes**: all reads are bounds-checked up
//!   front and failures return typed [`IndexError`]s; in-bounds garbage
//!   degrades to garbage postings exactly like the BitPack path
//!   (wrapping d-gap sums), which the deserializer's monotonicity check
//!   and the v3+ bounds oracle then reject.
//! * **A bits-per-posting cost model** ([`BlockCodec::block_cost_bits`])
//!   that parameterizes the dynamic-programming partitioner in place of
//!   the hardcoded `(b_dn + b_tf)·|B| + 96`.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;

use crate::bitpack::{self, BitWriter};
use crate::block::BLOCK_OVERHEAD_BITS;
use crate::error::IndexError;
use crate::posting::{DocId, Posting};

/// Values per SIMD group in the [`CodecId::SimdBp128`] layout.
pub const SIMD_GROUP_LEN: usize = 128;

/// Identifies the block codec a posting list (and, in format v4, a whole
/// index) is compressed with. The `u8` value is the on-disk codec id in
/// the v4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum CodecId {
    /// Interleaved bit-packed `(d-gap, tf)` pairs — the paper's format.
    #[default]
    BitPack = 0,
    /// Stream-VByte: split control/data byte streams, gaps then tfs.
    StreamVByte = 1,
    /// SIMD-BP128-style vertical bit-packing in 128-value groups.
    SimdBp128 = 2,
}

impl CodecId {
    /// Every integrated codec, in id order.
    pub const ALL: [CodecId; 3] = [CodecId::BitPack, CodecId::StreamVByte, CodecId::SimdBp128];

    /// The on-disk codec id byte.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Decodes an on-disk codec id byte.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::UnknownCodec`] for ids this build does not
    /// implement.
    pub fn from_u8(id: u8) -> Result<Self, IndexError> {
        match id {
            0 => Ok(CodecId::BitPack),
            1 => Ok(CodecId::StreamVByte),
            2 => Ok(CodecId::SimdBp128),
            other => Err(IndexError::UnknownCodec { id: other }),
        }
    }

    /// Stable human-readable name (also the CLI spelling).
    pub fn name(self) -> &'static str {
        match self {
            CodecId::BitPack => "bitpack",
            CodecId::StreamVByte => "stream-vbyte",
            CodecId::SimdBp128 => "simdbp128",
        }
    }

    /// Parses a CLI spelling (`--codec` flag); accepts a few aliases.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "bitpack" | "bp" => Some(CodecId::BitPack),
            "stream-vbyte" | "streamvbyte" | "svb" => Some(CodecId::StreamVByte),
            "simdbp128" | "simd-bp128" | "simdbp" => Some(CodecId::SimdBp128),
            _ => None,
        }
    }

    /// The codec's operations table.
    pub fn ops(self) -> &'static dyn BlockCodec {
        match self {
            CodecId::BitPack => &BitPackCodec,
            CodecId::StreamVByte => &StreamVByteCodec,
            CodecId::SimdBp128 => &SimdBp128Codec,
        }
    }
}

impl fmt::Display for CodecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-block payload codec: how one block's `(d-gap, tf)` pairs become
/// bytes and back. Block *structure* (metadata word, skip value, per-block
/// max widths) is codec-independent and lives in [`crate::block`]; a codec
/// only owns the payload bytes between one block's offset and the next.
pub trait BlockCodec: Sync {
    /// Which [`CodecId`] this table implements.
    fn id(&self) -> CodecId;

    /// Appends one block's payload to `payload`. `gaps[0]` is always 0
    /// (the first docID travels in the skip value); `gap_bits`/`tf_bits`
    /// are the block-wide maximum widths already validated to be `< 32`.
    fn encode_block(
        &self,
        gaps: &[u32],
        tfs: &[u32],
        gap_bits: u8,
        tf_bits: u8,
        payload: &mut Vec<u8>,
    );

    /// Decodes `count` postings from `block` (exactly this block's payload
    /// slice), appending to `out`. `skip` is the block's first docID.
    /// Never panics: corrupt lengths yield typed errors with `out`
    /// untouched; corrupt-but-in-bounds bytes degrade to garbage postings
    /// (wrapping gap sums), mirroring the BitPack contract.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::CorruptIndex`] when `block` is too short for
    /// `count` values or carries impossible widths.
    fn try_decode_block_into(
        &self,
        block: &[u8],
        count: usize,
        gap_bits: u8,
        tf_bits: u8,
        skip: DocId,
        out: &mut Vec<Posting>,
    ) -> Result<(), IndexError>;

    /// Modeled cost in bits of a block of `len` postings whose maximum
    /// d-gap/tf widths are `gap_bits`/`tf_bits`, including the 96-bit
    /// metadata + skip overhead — the per-codec generalization of the
    /// paper's Eq. 3 that the dynamic-programming partitioner minimizes.
    fn block_cost_bits(&self, len: u64, gap_bits: u8, tf_bits: u8) -> u64;
}

fn mask32(width: u8) -> u32 {
    if width >= 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    }
}

// ---------------------------------------------------------------------------
// BitPack: the paper's interleaved pairs (default codec).
// ---------------------------------------------------------------------------

/// The paper's interleaved bit-packed `(d-gap, tf)` pairs.
struct BitPackCodec;

impl BlockCodec for BitPackCodec {
    fn id(&self) -> CodecId {
        CodecId::BitPack
    }

    fn encode_block(
        &self,
        gaps: &[u32],
        tfs: &[u32],
        gap_bits: u8,
        tf_bits: u8,
        payload: &mut Vec<u8>,
    ) {
        let mut w = BitWriter::new();
        for (&g, &t) in gaps.iter().zip(tfs) {
            w.write(g, gap_bits);
            w.write(t, tf_bits);
        }
        payload.extend_from_slice(&w.finish());
    }

    fn try_decode_block_into(
        &self,
        block: &[u8],
        count: usize,
        gap_bits: u8,
        tf_bits: u8,
        skip: DocId,
        out: &mut Vec<Posting>,
    ) -> Result<(), IndexError> {
        if gap_bits > 31 || tf_bits > 31 {
            return Err(IndexError::CorruptIndex { context: "block bitwidths" });
        }
        let pair_bits = gap_bits as u64 + tf_bits as u64;
        if pair_bits * count as u64 > block.len() as u64 * 8 {
            return Err(IndexError::CorruptIndex { context: "payload bounds" });
        }
        let mut bit = 0usize;
        out.reserve(count);
        let mut prev = skip;
        for i in 0..count {
            let gap = bitpack::extract(block, bit, gap_bits);
            bit += gap_bits as usize;
            let tf = bitpack::extract(block, bit, tf_bits);
            bit += tf_bits as usize;
            let doc = if i == 0 { skip } else { prev.wrapping_add(gap) };
            out.push(Posting::new(doc, tf));
            prev = doc;
        }
        Ok(())
    }

    fn block_cost_bits(&self, len: u64, gap_bits: u8, tf_bits: u8) -> u64 {
        (u64::from(gap_bits) + u64::from(tf_bits)) * len + BLOCK_OVERHEAD_BITS
    }
}

// ---------------------------------------------------------------------------
// Stream-VByte: split control/data byte streams.
// ---------------------------------------------------------------------------

/// Stream-VByte with a gap stream followed by a tf stream.
///
/// Per stream: `⌈n/4⌉` control bytes (2 bits per value: data length − 1),
/// then the little-endian data bytes back to back. The split control
/// stream is what makes the format SIMD-shuffle-friendly: one control
/// byte describes a quad of values, so a single `_mm_shuffle_epi8` with a
/// per-control-byte mask expands the quad's 4–16 packed data bytes into
/// four u32 lanes. On x86-64 with SSSE3 the decoder runs that shuffle
/// kernel (runtime-detected, one table lookup + one load + one shuffle
/// per quad) and falls back to the scalar byte walk for the stream tail
/// and the final quads whose 16-byte load window would overrun the block;
/// everywhere else the scalar walk decodes the whole stream,
/// bit-identically.
struct StreamVByteCodec;

/// Builds the SSSE3 kernel's tables: for each control byte, the
/// `_mm_shuffle_epi8` mask that expands the quad's packed 1–4-byte
/// little-endian values into four u32 lanes (0x80 lanes zero-fill), and
/// the quad's total data-byte length.
#[cfg(target_arch = "x86_64")]
const fn svb_tables() -> ([[u8; 16]; 256], [u8; 256]) {
    let mut shuf = [[0x80u8; 16]; 256];
    let mut lens = [0u8; 256];
    let mut c = 0usize;
    while c < 256 {
        let mut offset = 0u8;
        let mut k = 0usize;
        while k < 4 {
            let len = ((c >> (2 * k)) & 3) as u8 + 1;
            let mut j = 0u8;
            while j < len {
                shuf[c][4 * k + j as usize] = offset + j;
                j += 1;
            }
            offset += len;
            k += 1;
        }
        lens[c] = offset;
        c += 1;
    }
    (shuf, lens)
}

/// Per-control-byte shuffle masks for the SSSE3 Stream-VByte kernel.
#[cfg(target_arch = "x86_64")]
const SVB_SHUFFLE: [[u8; 16]; 256] = svb_tables().0;

/// Per-control-byte total data bytes of one Stream-VByte quad.
#[cfg(target_arch = "x86_64")]
const SVB_QUAD_LEN: [u8; 256] = svb_tables().1;

fn svb_data_len(v: u32) -> usize {
    match v {
        0..=0xFF => 1,
        0x100..=0xFFFF => 2,
        0x1_0000..=0xFF_FFFF => 3,
        _ => 4,
    }
}

/// Modeled data bytes per value for a stream whose max width is `w` bits.
fn svb_bytes_for_width(w: u8) -> u64 {
    (u64::from(w).div_ceil(8)).max(1)
}

fn svb_encode_stream(values: &[u32], out: &mut Vec<u8>) {
    let ctrl_start = out.len();
    out.resize(ctrl_start + values.len().div_ceil(4), 0);
    for (i, &v) in values.iter().enumerate() {
        let len = svb_data_len(v);
        out[ctrl_start + i / 4] |= ((len - 1) as u8) << (2 * (i % 4));
        out.extend_from_slice(&v.to_le_bytes()[..len]);
    }
}

/// Decodes one Stream-VByte stream of `n` values, advancing `pos` and
/// handing each value to `sink`. Dispatches to the SSSE3 shuffle kernel
/// when the CPU has it.
fn svb_decode_stream(
    block: &[u8],
    pos: &mut usize,
    n: usize,
    sink: impl FnMut(usize, u32),
) -> Result<(), IndexError> {
    #[cfg(target_arch = "x86_64")]
    let simd = x86::ssse3_available();
    #[cfg(not(target_arch = "x86_64"))]
    let simd = false;
    svb_decode_stream_impl(block, pos, n, simd, sink)
}

/// [`svb_decode_stream`] with the kernel choice explicit, so tests can
/// differentially run both paths over the same bytes. Off x86-64 the
/// `simd` flag is ignored (the scalar walk is the only decoder).
fn svb_decode_stream_impl(
    block: &[u8],
    pos: &mut usize,
    n: usize,
    simd: bool,
    mut sink: impl FnMut(usize, u32),
) -> Result<(), IndexError> {
    let nctrl = n.div_ceil(4);
    let ctrl_start = *pos;
    let ctrl_end = ctrl_start
        .checked_add(nctrl)
        .filter(|&e| e <= block.len())
        .ok_or(IndexError::CorruptIndex { context: "stream-vbyte control bytes" })?;
    let mut data = ctrl_end;
    let mut i = 0usize;

    #[cfg(target_arch = "x86_64")]
    if simd {
        // Full quads whose 16-byte load window stays inside the block go
        // through the shuffle kernel — a quad consumes at most 16 data
        // bytes, so the window always covers it. The moment the window
        // would overrun (or for the tail quad), fall through to the
        // scalar walk below, which re-validates byte by byte.
        while i + 4 <= n && data + 16 <= block.len() {
            let c = block[ctrl_start + i / 4];
            // SAFETY: the loop guard proves 16 readable bytes at `data`,
            // and `simd` is only true when SSSE3 was detected.
            let vals = unsafe { x86::svb_decode_quad(block.as_ptr().add(data), c) };
            sink(i, vals[0]);
            sink(i + 1, vals[1]);
            sink(i + 2, vals[2]);
            sink(i + 3, vals[3]);
            data += usize::from(SVB_QUAD_LEN[usize::from(c)]);
            i += 4;
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = simd;

    while i < n {
        let len = ((block[ctrl_start + i / 4] >> (2 * (i % 4))) & 3) as usize + 1;
        let end = data
            .checked_add(len)
            .filter(|&e| e <= block.len())
            .ok_or(IndexError::CorruptIndex { context: "stream-vbyte data bytes" })?;
        let mut b = [0u8; 4];
        b[..len].copy_from_slice(&block[data..end]);
        sink(i, u32::from_le_bytes(b));
        data = end;
        i += 1;
    }
    *pos = data;
    Ok(())
}

impl BlockCodec for StreamVByteCodec {
    fn id(&self) -> CodecId {
        CodecId::StreamVByte
    }

    fn encode_block(
        &self,
        gaps: &[u32],
        tfs: &[u32],
        _gap_bits: u8,
        _tf_bits: u8,
        payload: &mut Vec<u8>,
    ) {
        svb_encode_stream(gaps, payload);
        svb_encode_stream(tfs, payload);
    }

    fn try_decode_block_into(
        &self,
        block: &[u8],
        count: usize,
        _gap_bits: u8,
        _tf_bits: u8,
        skip: DocId,
        out: &mut Vec<Posting>,
    ) -> Result<(), IndexError> {
        let base = out.len();
        out.reserve(count);
        let mut pos = 0usize;
        // Two passes over `out` instead of a scratch buffer: the gap pass
        // pushes postings with tf 0, the tf pass fills them in — zero
        // allocation beyond `out`'s own growth, any list length.
        let mut prev = skip;
        let gaps = svb_decode_stream(block, &mut pos, count, |i, g| {
            let doc = if i == 0 { skip } else { prev.wrapping_add(g) };
            out.push(Posting::new(doc, 0));
            prev = doc;
        });
        if let Err(e) = gaps {
            out.truncate(base);
            return Err(e);
        }
        let tfs = svb_decode_stream(block, &mut pos, count, |i, t| out[base + i].tf = t);
        if let Err(e) = tfs {
            out.truncate(base);
            return Err(e);
        }
        Ok(())
    }

    fn block_cost_bits(&self, len: u64, gap_bits: u8, tf_bits: u8) -> u64 {
        // Per value and stream: 2 control bits + the data bytes a
        // max-width value needs. A width-driven upper bound (individual
        // values may use fewer bytes), which is what the partitioner
        // needs: a model that rewards splitting off narrow-gap runs.
        let per_gap = 2 + 8 * svb_bytes_for_width(gap_bits);
        let per_tf = 2 + 8 * svb_bytes_for_width(tf_bits);
        len * (per_gap + per_tf) + BLOCK_OVERHEAD_BITS
    }
}

// ---------------------------------------------------------------------------
// SIMD-BP128: vertical 4-lane bit-packing in 128-value groups.
// ---------------------------------------------------------------------------

/// SIMD-BP128-style codec.
///
/// Block payload layout for a block of `m` postings with meta widths
/// `gw`/`tw` (no in-payload headers — the widths ride in the block
/// metadata word exactly like BitPack):
///
/// ```text
/// for each full group of 128 postings:
///     16·gw bytes   gaps, vertical layout (4 lanes × 32 values)
///     16·tw bytes   tfs, vertical layout
/// if m % 128 != 0 (tail of t postings):
///     one bitstream: t gaps at gw bits, then t tfs at tw bits,
///     byte-aligned only at the end
/// ```
///
/// Vertical layout: value `i` of a group lives in lane `i % 4` at slot
/// `i / 4`; each lane packs its 32 values LSB-first into exactly `w`
/// 32-bit words, and the four lanes' words are interleaved word by word
/// (`word[r·4 + lane]`), so one `__m128i` load brings the same slot of
/// all four lanes. Full groups cost exactly `128·w` bits and the tail is
/// exact too, so the whole block is byte-for-byte the same size as the
/// BitPack payload — the cost model is shared.
struct SimdBp128Codec;

/// Packs 128 values (each `< 2^w`) into `16·w` bytes of vertical layout.
fn pack_group_vertical(vals: &[u32], w: u8, out: &mut Vec<u8>) {
    debug_assert_eq!(vals.len(), SIMD_GROUP_LEN);
    if w == 0 {
        return;
    }
    let wu = w as usize;
    let mut words = [0u32; 128]; // w ≤ 32 ⇒ at most 4·32 words
    for lane in 0..4 {
        let mut acc: u64 = 0;
        let mut acc_bits: usize = 0;
        let mut row = 0usize;
        for slot in 0..32 {
            acc |= u64::from(vals[4 * slot + lane]) << acc_bits;
            acc_bits += wu;
            if acc_bits >= 32 {
                words[row * 4 + lane] = acc as u32;
                acc >>= 32;
                acc_bits -= 32;
                row += 1;
            }
        }
        debug_assert_eq!(acc_bits, 0, "32 values x {w} bits tile {w} words exactly");
    }
    for word in &words[..4 * wu] {
        out.extend_from_slice(&word.to_le_bytes());
    }
}

// On x86-64 the scalar pair below is the test-only reference the SIMD
// kernels are checked against; elsewhere it is the production decoder.
#[cfg_attr(target_arch = "x86_64", allow(dead_code))]
fn word_at(bytes: &[u8], offset: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&bytes[offset..offset + 4]);
    u32::from_le_bytes(b)
}

/// Portable reference unpack of one vertical group: `bytes` must hold
/// exactly `16·w` bytes. Bit-identical to the SIMD kernels.
#[cfg_attr(target_arch = "x86_64", allow(dead_code))]
fn unpack_group_scalar(bytes: &[u8], w: u8, out: &mut [u32; SIMD_GROUP_LEN]) {
    if w == 0 {
        out.fill(0);
        return;
    }
    let wu = u32::from(w);
    let mask = mask32(w);
    let load_row = |r: usize| -> [u32; 4] {
        let o = r * 16;
        [
            word_at(bytes, o),
            word_at(bytes, o + 4),
            word_at(bytes, o + 8),
            word_at(bytes, o + 12),
        ]
    };
    let mut row = 0usize;
    let mut used: u32 = 0;
    let mut acc = load_row(0);
    for slot in 0..32 {
        if used + wu <= 32 {
            for lane in 0..4 {
                out[4 * slot + lane] = (acc[lane] >> used) & mask;
            }
            used += wu;
            if used == 32 && slot + 1 < 32 {
                row += 1;
                acc = load_row(row);
                used = 0;
            }
        } else {
            let next = load_row(row + 1);
            let lo = 32 - used;
            for lane in 0..4 {
                out[4 * slot + lane] = ((acc[lane] >> used) | (next[lane] << lo)) & mask;
            }
            row += 1;
            acc = next;
            used = wu - lo;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{mask32, SIMD_GROUP_LEN};
    use std::arch::x86_64::*;
    use std::sync::OnceLock;

    pub(super) fn avx2_available() -> bool {
        static AVX2: OnceLock<bool> = OnceLock::new();
        *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }

    pub(super) fn ssse3_available() -> bool {
        static SSSE3: OnceLock<bool> = OnceLock::new();
        *SSSE3.get_or_init(|| std::arch::is_x86_feature_detected!("ssse3"))
    }

    /// Decodes one Stream-VByte quad: the control byte's shuffle mask
    /// expands the 4–16 packed data bytes at `data` into four
    /// little-endian u32 lanes (one table lookup, one load, one
    /// `_mm_shuffle_epi8`).
    ///
    /// # Safety
    ///
    /// Requires SSSE3 at runtime and 16 readable bytes at `data`.
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn svb_decode_quad(data: *const u8, ctrl: u8) -> [u32; 4] {
        let raw = _mm_loadu_si128(data as *const __m128i);
        let mask =
            _mm_loadu_si128(super::SVB_SHUFFLE[usize::from(ctrl)].as_ptr() as *const __m128i);
        let mut out = [0u32; 4];
        _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, _mm_shuffle_epi8(raw, mask));
        out
    }

    /// SSE2 unpack (baseline on x86-64, no runtime gate needed): the same
    /// row/carry walk as the scalar reference, four lanes per shift.
    pub(super) fn unpack_group_sse2(bytes: &[u8], w: u8, out: &mut [u32; SIMD_GROUP_LEN]) {
        if w == 0 {
            out.fill(0);
            return;
        }
        debug_assert!(bytes.len() >= 16 * w as usize);
        let wu = u32::from(w);
        // SAFETY: SSE2 is part of the x86-64 baseline. All loads read 16
        // in-bounds bytes (the caller hands exactly 16·w bytes and the
        // row index never exceeds w − 1); stores write within `out`.
        unsafe {
            let mask = _mm_set1_epi32(mask32(w) as i32);
            let base = bytes.as_ptr();
            let outp = out.as_mut_ptr();
            let mut row = 0usize;
            let mut used: u32 = 0;
            let mut acc = _mm_loadu_si128(base as *const __m128i);
            for slot in 0..32 {
                let vals;
                if used + wu <= 32 {
                    vals = _mm_and_si128(
                        _mm_srl_epi32(acc, _mm_cvtsi32_si128(used as i32)),
                        mask,
                    );
                    used += wu;
                    if used == 32 && slot + 1 < 32 {
                        row += 1;
                        acc = _mm_loadu_si128(base.add(row * 16) as *const __m128i);
                        used = 0;
                    }
                } else {
                    let next = _mm_loadu_si128(base.add((row + 1) * 16) as *const __m128i);
                    let lo = 32 - used;
                    vals = _mm_and_si128(
                        _mm_or_si128(
                            _mm_srl_epi32(acc, _mm_cvtsi32_si128(used as i32)),
                            _mm_sll_epi32(next, _mm_cvtsi32_si128(lo as i32)),
                        ),
                        mask,
                    );
                    row += 1;
                    acc = next;
                    used = wu - lo;
                }
                _mm_storeu_si128(outp.add(4 * slot) as *mut __m128i, vals);
            }
        }
    }

    /// AVX2 unpack for widths dividing 32 (no value crosses a word
    /// boundary): processes two rows — eight lanes-worth of values — per
    /// shift. Caller must check [`avx2_available`] and `32 % w == 0`.
    ///
    /// # Safety
    ///
    /// Requires AVX2 at runtime and `bytes.len() >= 16·w`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn unpack_group_avx2(
        bytes: &[u8],
        w: u8,
        out: &mut [u32; SIMD_GROUP_LEN],
    ) {
        debug_assert!(w != 0 && 32 % u32::from(w) == 0 && bytes.len() >= 16 * w as usize);
        let wu = u32::from(w);
        let per_row = (32 / wu) as usize;
        let mask = _mm256_set1_epi32(mask32(w) as i32);
        let base = bytes.as_ptr();
        let outp = out.as_mut_ptr();
        let rows = w as usize;
        let mut row = 0usize;
        while row + 2 <= rows {
            // Low 128 bits: row `row` (slots row·per_row ..); high 128
            // bits: row `row + 1` (the next per_row slots).
            let acc = _mm256_loadu_si256(base.add(row * 16) as *const __m256i);
            for k in 0..per_row {
                let v = _mm256_and_si256(
                    _mm256_srl_epi32(acc, _mm_cvtsi32_si128((k as u32 * wu) as i32)),
                    mask,
                );
                let slot = row * per_row + k;
                _mm_storeu_si128(
                    outp.add(4 * slot) as *mut __m128i,
                    _mm256_castsi256_si128(v),
                );
                _mm_storeu_si128(
                    outp.add(4 * (slot + per_row)) as *mut __m128i,
                    _mm256_extracti128_si256::<1>(v),
                );
            }
            row += 2;
        }
        if row < rows {
            // Odd row count (only w = 1 among the 32 % w == 0 widths).
            let acc = _mm_loadu_si128(base.add(row * 16) as *const __m128i);
            let mask128 = _mm256_castsi256_si128(mask);
            for k in 0..per_row {
                let v = _mm_and_si128(
                    _mm_srl_epi32(acc, _mm_cvtsi32_si128((k as u32 * wu) as i32)),
                    mask128,
                );
                _mm_storeu_si128(outp.add(4 * (row * per_row + k)) as *mut __m128i, v);
            }
        }
    }
}

/// Unpacks one vertical group, dispatching to the fastest kernel the CPU
/// supports. `bytes` must hold at least `16·w` bytes.
fn unpack_group(bytes: &[u8], w: u8, out: &mut [u32; SIMD_GROUP_LEN]) {
    #[cfg(target_arch = "x86_64")]
    {
        if w != 0 && 32 % u32::from(w) == 0 && x86::avx2_available() {
            // SAFETY: AVX2 presence checked at runtime; bounds are the
            // caller's contract (same as every kernel here).
            unsafe { x86::unpack_group_avx2(bytes, w, out) };
        } else {
            x86::unpack_group_sse2(bytes, w, out);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    unpack_group_scalar(bytes, w, out);
}

impl BlockCodec for SimdBp128Codec {
    fn id(&self) -> CodecId {
        CodecId::SimdBp128
    }

    fn encode_block(
        &self,
        gaps: &[u32],
        tfs: &[u32],
        gap_bits: u8,
        tf_bits: u8,
        payload: &mut Vec<u8>,
    ) {
        let n = gaps.len();
        let full = n / SIMD_GROUP_LEN;
        for g in 0..full {
            let range = g * SIMD_GROUP_LEN..(g + 1) * SIMD_GROUP_LEN;
            pack_group_vertical(&gaps[range.clone()], gap_bits, payload);
            pack_group_vertical(&tfs[range], tf_bits, payload);
        }
        let tail = full * SIMD_GROUP_LEN..n;
        if !tail.is_empty() {
            let mut w = BitWriter::new();
            for &g in &gaps[tail.clone()] {
                w.write(g, gap_bits);
            }
            for &t in &tfs[tail] {
                w.write(t, tf_bits);
            }
            payload.extend_from_slice(&w.finish());
        }
    }

    fn try_decode_block_into(
        &self,
        block: &[u8],
        count: usize,
        gap_bits: u8,
        tf_bits: u8,
        skip: DocId,
        out: &mut Vec<Posting>,
    ) -> Result<(), IndexError> {
        if gap_bits > 31 || tf_bits > 31 {
            return Err(IndexError::CorruptIndex { context: "block bitwidths" });
        }
        let full = count / SIMD_GROUP_LEN;
        let tail = count % SIMD_GROUP_LEN;
        let gap_group_bytes = 16 * gap_bits as usize;
        let tf_group_bytes = 16 * tf_bits as usize;
        let tail_bits = tail * (gap_bits as usize + tf_bits as usize);
        let need = full * (gap_group_bytes + tf_group_bytes) + tail_bits.div_ceil(8);
        if need > block.len() {
            return Err(IndexError::CorruptIndex { context: "payload bounds" });
        }
        out.reserve(count);
        let mut gaps = [0u32; SIMD_GROUP_LEN];
        let mut tfs = [0u32; SIMD_GROUP_LEN];
        let mut prev = skip;
        let mut first = true;
        let mut pos = 0usize;
        for _ in 0..full {
            unpack_group(&block[pos..pos + gap_group_bytes], gap_bits, &mut gaps);
            pos += gap_group_bytes;
            unpack_group(&block[pos..pos + tf_group_bytes], tf_bits, &mut tfs);
            pos += tf_group_bytes;
            for i in 0..SIMD_GROUP_LEN {
                let doc = if first {
                    first = false;
                    skip
                } else {
                    prev.wrapping_add(gaps[i])
                };
                out.push(Posting::new(doc, tfs[i]));
                prev = doc;
            }
        }
        if tail > 0 {
            // Tail: a plain bitstream decoded by the PR-3 word-window
            // extractor — gaps first, then tfs, no padding in between.
            let bit0 = pos * 8;
            for (i, g) in gaps.iter_mut().enumerate().take(tail) {
                *g = bitpack::extract(block, bit0 + i * gap_bits as usize, gap_bits);
            }
            let tf0 = bit0 + tail * gap_bits as usize;
            for (i, t) in tfs.iter_mut().enumerate().take(tail) {
                *t = bitpack::extract(block, tf0 + i * tf_bits as usize, tf_bits);
            }
            for i in 0..tail {
                let doc = if first {
                    first = false;
                    skip
                } else {
                    prev.wrapping_add(gaps[i])
                };
                out.push(Posting::new(doc, tfs[i]));
                prev = doc;
            }
        }
        Ok(())
    }

    fn block_cost_bits(&self, len: u64, gap_bits: u8, tf_bits: u8) -> u64 {
        // Full groups are exactly 128·(gw+tw) bits and the tail bitstream
        // is exact too, so the model is BitPack's — identical physical
        // size, SIMD-decodable arrangement.
        (u64::from(gap_bits) + u64::from(tf_bits)) * len + BLOCK_OVERHEAD_BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn group_values(seed: u64, w: u8) -> Vec<u32> {
        let mask = mask32(w);
        let mut x = seed | 1;
        (0..SIMD_GROUP_LEN as u32)
            .map(|_| {
                x = x
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                ((x >> 33) as u32) & mask
            })
            .collect()
    }

    #[test]
    fn vertical_group_roundtrips_every_width() {
        for w in 0..=31u8 {
            let vals = group_values(0xD1CE + u64::from(w), w);
            let mut bytes = Vec::new();
            pack_group_vertical(&vals, w, &mut bytes);
            assert_eq!(bytes.len(), 16 * w as usize, "w={w}");
            let mut out = [u32::MAX; SIMD_GROUP_LEN];
            unpack_group_scalar(&bytes, w, &mut out);
            assert_eq!(&out[..], &vals[..], "scalar w={w}");
            let mut simd = [u32::MAX; SIMD_GROUP_LEN];
            unpack_group(&bytes, w, &mut simd);
            assert_eq!(simd, out, "simd kernel diverges from scalar at w={w}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse2_and_avx2_match_scalar_exactly() {
        for w in 0..=31u8 {
            let vals = group_values(0xFEED + u64::from(w), w);
            let mut bytes = Vec::new();
            pack_group_vertical(&vals, w, &mut bytes);
            let mut scalar = [0u32; SIMD_GROUP_LEN];
            unpack_group_scalar(&bytes, w, &mut scalar);
            let mut sse = [0u32; SIMD_GROUP_LEN];
            x86::unpack_group_sse2(&bytes, w, &mut sse);
            assert_eq!(sse, scalar, "sse2 w={w}");
            if w != 0 && 32 % u32::from(w) == 0 && x86::avx2_available() {
                let mut avx = [0u32; SIMD_GROUP_LEN];
                unsafe { x86::unpack_group_avx2(&bytes, w, &mut avx) };
                assert_eq!(avx, scalar, "avx2 w={w}");
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn svb_shuffle_tables_are_consistent() {
        for c in 0..256usize {
            let mut offset = 0u8;
            for k in 0..4usize {
                let len = ((c >> (2 * k)) & 3) as u8 + 1;
                for j in 0..4u8 {
                    let want = if j < len { offset + j } else { 0x80 };
                    assert_eq!(SVB_SHUFFLE[c][4 * k + j as usize], want, "ctrl={c} lane={k} byte={j}");
                }
                offset += len;
            }
            assert_eq!(SVB_QUAD_LEN[c], offset, "ctrl={c}");
        }
    }

    fn svb_case_values(n: usize, seed: u64) -> Vec<u32> {
        // Cycle through all four byte lengths so every control pattern
        // shows up once n gets past a few quads.
        let mut x = seed | 1;
        (0..n)
            .map(|i| {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                let r = (x >> 33) as u32;
                match i % 4 {
                    0 => r & 0xFF,
                    1 => r & 0xFFFF,
                    2 => r & 0xFF_FFFF,
                    _ => r,
                }
            })
            .collect()
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn svb_ssse3_stream_matches_scalar_exactly() {
        if !x86::ssse3_available() {
            return;
        }
        for n in [0usize, 1, 3, 4, 5, 7, 8, 12, 16, 63, 64, 127, 128, 300, 511] {
            let values = svb_case_values(n, 0x5B5B + n as u64);
            let mut block = Vec::new();
            svb_encode_stream(&values, &mut block);
            // Trailing bytes after the stream exercise the "SIMD window
            // still in bounds" guard without changing the answer.
            for pad in [0usize, 1, 16] {
                let mut padded = block.clone();
                padded.extend(std::iter::repeat_n(0xA5u8, pad));
                let mut scalar = vec![0u32; n];
                let mut pos_scalar = 0usize;
                svb_decode_stream_impl(&padded, &mut pos_scalar, n, false, |i, v| {
                    scalar[i] = v;
                })
                .expect("scalar decode");
                let mut simd = vec![0u32; n];
                let mut pos_simd = 0usize;
                svb_decode_stream_impl(&padded, &mut pos_simd, n, true, |i, v| simd[i] = v)
                    .expect("simd decode");
                assert_eq!(simd, scalar, "n={n} pad={pad}");
                assert_eq!(simd, values, "n={n} pad={pad}");
                assert_eq!(pos_simd, pos_scalar, "n={n} pad={pad}");
                assert_eq!(pos_simd, block.len(), "n={n} pad={pad}");
            }
        }
    }

    fn block_case(
        n: usize,
        seed: u64,
        max_gap: u32,
        max_tf: u32,
    ) -> (Vec<u32>, Vec<u32>, DocId) {
        let mut x = seed | 1;
        let mut rand = move || {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            (x >> 33) as u32
        };
        let mut gaps = vec![0u32];
        let mut tfs = vec![rand() % (max_tf + 1)];
        for _ in 1..n {
            gaps.push(1 + rand() % max_gap);
            tfs.push(rand() % (max_tf + 1));
        }
        (gaps, tfs, rand())
    }

    fn postings_from(gaps: &[u32], tfs: &[u32], skip: DocId) -> Vec<Posting> {
        let mut prev = skip;
        gaps.iter()
            .zip(tfs)
            .enumerate()
            .map(|(i, (&g, &t))| {
                let doc = if i == 0 { skip } else { prev.wrapping_add(g) };
                prev = doc;
                Posting::new(doc, t)
            })
            .collect()
    }

    #[test]
    fn every_codec_roundtrips_blocks_of_all_shapes() {
        for codec in CodecId::ALL {
            let ops = codec.ops();
            for (n, max_gap, max_tf) in [
                (1, 1, 0),
                (3, 7, 3),
                (127, 100, 9),
                (128, 1 << 20, 1),
                (129, 2, 2),
                (640, 300, 15),
                (2048, 1 << 10, 255),
            ] {
                let (gaps, tfs, skip) = block_case(n, 0xBEEF + n as u64, max_gap, max_tf);
                let gw = gaps.iter().copied().map(crate::bitpack::bits_for).max().unwrap();
                let tw = tfs.iter().copied().map(crate::bitpack::bits_for).max().unwrap();
                let mut payload = Vec::new();
                ops.encode_block(&gaps, &tfs, gw, tw, &mut payload);
                let mut out = Vec::new();
                ops.try_decode_block_into(&payload, n, gw, tw, skip, &mut out)
                    .unwrap_or_else(|e| panic!("{codec} n={n}: {e}"));
                assert_eq!(out, postings_from(&gaps, &tfs, skip), "{codec} n={n}");
            }
        }
    }

    #[test]
    fn simdbp_payload_is_byte_identical_in_size_to_bitpack() {
        for (n, max_gap, max_tf) in [
            (1, 1, 1),
            (64, 50, 3),
            (128, 1000, 7),
            (200, 9, 2),
            (511, 77, 31),
            (512, 1 << 15, 1),
        ] {
            let (gaps, tfs, _) = block_case(n, 0xABCD + n as u64, max_gap, max_tf);
            let gw = gaps.iter().copied().map(crate::bitpack::bits_for).max().unwrap();
            let tw = tfs.iter().copied().map(crate::bitpack::bits_for).max().unwrap();
            let mut bp = Vec::new();
            CodecId::BitPack.ops().encode_block(&gaps, &tfs, gw, tw, &mut bp);
            let mut sb = Vec::new();
            CodecId::SimdBp128.ops().encode_block(&gaps, &tfs, gw, tw, &mut sb);
            assert_eq!(sb.len(), bp.len(), "n={n} gw={gw} tw={tw}");
        }
    }

    #[test]
    fn truncated_payloads_error_and_leave_out_untouched() {
        for codec in CodecId::ALL {
            let ops = codec.ops();
            let (gaps, tfs, skip) = block_case(300, 0xE44, 500, 12);
            let gw = gaps.iter().copied().map(crate::bitpack::bits_for).max().unwrap();
            let tw = tfs.iter().copied().map(crate::bitpack::bits_for).max().unwrap();
            let mut payload = Vec::new();
            ops.encode_block(&gaps, &tfs, gw, tw, &mut payload);
            let mut out = vec![Posting::new(7, 7)];
            for cut in [0, 1, payload.len() / 2, payload.len() - 1] {
                let err =
                    ops.try_decode_block_into(&payload[..cut], 300, gw, tw, skip, &mut out);
                assert!(err.is_err(), "{codec} cut={cut} accepted a truncated payload");
                assert_eq!(out, vec![Posting::new(7, 7)], "{codec} cut={cut} touched out");
            }
            // Impossible widths are refused before any read by the
            // width-driven codecs (Stream-VByte ignores the hints: its
            // lengths live in the control bytes).
            if codec != CodecId::StreamVByte {
                assert!(ops
                    .try_decode_block_into(&payload, 300, 32, tw, skip, &mut out)
                    .is_err());
                assert!(ops
                    .try_decode_block_into(&payload, 300, gw, 33, skip, &mut out)
                    .is_err());
            }
        }
    }

    #[test]
    fn codec_id_round_trips_and_parses() {
        for codec in CodecId::ALL {
            assert_eq!(CodecId::from_u8(codec.as_u8()).unwrap(), codec);
            assert_eq!(CodecId::parse(codec.name()), Some(codec));
            assert_eq!(codec.ops().id(), codec);
        }
        assert!(matches!(CodecId::from_u8(99), Err(IndexError::UnknownCodec { id: 99 })));
        assert_eq!(CodecId::parse("svb"), Some(CodecId::StreamVByte));
        assert_eq!(CodecId::parse("simdbp"), Some(CodecId::SimdBp128));
        assert_eq!(CodecId::parse("zstd"), None);
        assert_eq!(CodecId::default(), CodecId::BitPack);
        assert_eq!(CodecId::SimdBp128.to_string(), "simdbp128");
    }

    #[test]
    fn cost_models_are_sane() {
        // BitPack and SimdBp128 share the exact model; StreamVByte's is
        // byte-aligned and must dominate BitPack's for every width.
        for w in 0..=31u8 {
            for len in [1u64, 5, 128, 2048] {
                let bp = CodecId::BitPack.ops().block_cost_bits(len, w, 3);
                let sb = CodecId::SimdBp128.ops().block_cost_bits(len, w, 3);
                let svb = CodecId::StreamVByte.ops().block_cost_bits(len, w, 3);
                assert_eq!(bp, sb, "w={w} len={len}");
                assert!(svb >= bp, "stream-vbyte model below bitpack at w={w} len={len}");
            }
        }
        // Zero-width blocks still pay the metadata overhead.
        assert_eq!(CodecId::BitPack.ops().block_cost_bits(1, 0, 0), BLOCK_OVERHEAD_BITS);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Differential roundtrip: every codec decodes to exactly the
        /// postings the BitPack reference decodes to.
        #[test]
        fn prop_codecs_agree_with_bitpack_reference(
            raw_gaps in proptest::collection::vec(1u32..1 << 18, 1..300),
            raw_tfs in proptest::collection::vec(0u32..1 << 10, 1..300),
            skip in 0u32..1 << 24,
        ) {
            let n = raw_gaps.len().min(raw_tfs.len());
            let mut gaps = raw_gaps[..n].to_vec();
            gaps[0] = 0;
            let tfs = &raw_tfs[..n];
            let gw = gaps.iter().copied().map(crate::bitpack::bits_for).max().unwrap();
            let tw = tfs.iter().copied().map(crate::bitpack::bits_for).max().unwrap();

            let mut reference = Vec::new();
            let mut bp_payload = Vec::new();
            CodecId::BitPack.ops().encode_block(&gaps, tfs, gw, tw, &mut bp_payload);
            CodecId::BitPack.ops()
                .try_decode_block_into(&bp_payload, n, gw, tw, skip, &mut reference)
                .unwrap();

            for codec in [CodecId::StreamVByte, CodecId::SimdBp128] {
                let ops = codec.ops();
                let mut payload = Vec::new();
                ops.encode_block(&gaps, tfs, gw, tw, &mut payload);
                let mut out = Vec::new();
                ops.try_decode_block_into(&payload, n, gw, tw, skip, &mut out).unwrap();
                prop_assert_eq!(&out, &reference, "{} diverged from the reference", codec);
            }
        }

        /// Mutated and truncated payloads never panic: they either decode
        /// to some postings or return a typed error.
        #[test]
        fn prop_decode_never_panics_on_arbitrary_bytes(
            bytes in proptest::collection::vec(proptest::num::u8::ANY, 0..600),
            count in 0usize..600,
            gw in 0u8..36,
            tw in 0u8..36,
            skip in proptest::num::u32::ANY,
        ) {
            for codec in CodecId::ALL {
                let mut out = Vec::new();
                let res = codec.ops().try_decode_block_into(&bytes, count, gw, tw, skip, &mut out);
                if res.is_err() {
                    prop_assert!(out.is_empty(), "{} left partial output on error", codec);
                }
            }
        }
    }
}
