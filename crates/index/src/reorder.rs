//! Document-identifier reordering.
//!
//! Delta-encoded indexes compress better when similar documents sit at
//! nearby docIDs (small d-gaps). The paper's related work leans on this —
//! Yan et al.'s "optimized document ordering" (the paper's ref. 17) anchors
//! its compression baselines, and the CC-News/ClueWeb12 gap in Table 2 is
//! exactly an ordering effect (a chronological news crawl clusters;
//! a breadth-first web crawl scatters). This module implements the classic
//! remedies:
//!
//! * [`Ordering::Identity`] — keep crawl order;
//! * [`Ordering::Random`] — adversarial shuffle (a lower bound);
//! * [`Ordering::ByLength`] — sort by document length, a cheap proxy for
//!   URL sorting;
//! * [`Ordering::MinHash`] — lexicographic sort by a k-MinHash signature of
//!   each document's term set, clustering topically similar documents.

use crate::posting::{DocId, Posting, PostingList};

/// A docID-reordering strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ordering {
    /// Keep the existing order.
    Identity,
    /// Pseudo-random shuffle seeded by the given value (worst case).
    Random(u64),
    /// Ascending document length.
    ByLength,
    /// Lexicographic k-MinHash signature of the term set (k = 4).
    MinHash,
}

/// SplitMix64, the mixer driving the shuffle and the hash family.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Computes the permutation `new_id[old_id]` for the chosen strategy over
/// a corpus given as `(term, posting list)` pairs and a document-length
/// table.
pub fn permutation(
    lists: &[(String, PostingList)],
    doc_lens: &[u32],
    ordering: Ordering,
) -> Vec<DocId> {
    let n = doc_lens.len();
    let mut order: Vec<usize> = (0..n).collect();
    match ordering {
        Ordering::Identity => {}
        Ordering::Random(seed) => {
            // Fisher-Yates driven by SplitMix64.
            let mut s = seed;
            for i in (1..n).rev() {
                s = splitmix(s);
                let j = (s % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
        }
        Ordering::ByLength => {
            order.sort_by_key(|&d| (doc_lens[d], d));
        }
        Ordering::MinHash => {
            const K: usize = 4;
            let mut sigs = vec![[u64::MAX; K]; n];
            for (t, (_, list)) in lists.iter().enumerate() {
                let hashes: [u64; K] =
                    std::array::from_fn(|i| splitmix(t as u64 ^ ((i as u64 + 1) << 48)));
                for p in list.iter() {
                    let sig = &mut sigs[p.doc_id as usize];
                    for (slot, &h) in sig.iter_mut().zip(&hashes) {
                        if h < *slot {
                            *slot = h;
                        }
                    }
                }
            }
            order.sort_by_key(|&d| (sigs[d], d));
        }
    }
    // order[rank] = old id; invert into new_id[old id] = rank.
    let mut new_id = vec![0 as DocId; n];
    for (rank, &old) in order.iter().enumerate() {
        new_id[old] = rank as DocId;
    }
    new_id
}

/// Applies a permutation `new_id[old_id]` to a corpus, returning remapped
/// posting lists and document lengths.
///
/// # Panics
///
/// Panics if `new_id` is not a permutation of `0..doc_lens.len()` or a
/// list references an out-of-range docID.
pub fn apply(
    lists: Vec<(String, PostingList)>,
    doc_lens: Vec<u32>,
    new_id: &[DocId],
) -> (Vec<(String, PostingList)>, Vec<u32>) {
    let n = doc_lens.len();
    assert_eq!(new_id.len(), n, "permutation must cover every document");
    let mut seen = vec![false; n];
    for &d in new_id {
        assert!(!std::mem::replace(&mut seen[d as usize], true), "not a permutation");
    }

    let remapped = lists
        .into_iter()
        .map(|(term, list)| {
            let postings: Vec<Posting> = list
                .into_iter()
                .map(|p| Posting::new(new_id[p.doc_id as usize], p.tf))
                .collect();
            (term, PostingList::from_unsorted(postings))
        })
        .collect();
    let mut lens = vec![0u32; n];
    for (old, &len) in doc_lens.iter().enumerate() {
        lens[new_id[old] as usize] = len;
    }
    (remapped, lens)
}

/// Convenience: permute a corpus with a strategy in one call.
pub fn reorder(
    lists: Vec<(String, PostingList)>,
    doc_lens: Vec<u32>,
    ordering: Ordering,
) -> (Vec<(String, PostingList)>, Vec<u32>) {
    let perm = permutation(&lists, &doc_lens, ordering);
    apply(lists, doc_lens, &perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partitioner;
    use crate::score::Bm25Params;
    use crate::InvertedIndex;

    fn toy_corpus() -> (Vec<(String, PostingList)>, Vec<u32>) {
        // Docs 0/2/4 share terms a+b; docs 1/3/5 share c+d: interleaved by
        // id, so identity order has gaps of 2 and a good reorder gaps of 1.
        let list = |ids: &[u32]| {
            PostingList::from_sorted(ids.iter().map(|&d| Posting::new(d, 1)).collect())
        };
        (
            vec![
                ("a".into(), list(&[0, 2, 4])),
                ("b".into(), list(&[0, 2, 4])),
                ("c".into(), list(&[1, 3, 5])),
                ("d".into(), list(&[1, 3, 5])),
            ],
            vec![10, 20, 10, 20, 10, 20],
        )
    }

    #[test]
    fn identity_is_a_noop() {
        let (lists, lens) = toy_corpus();
        let (l2, n2) = reorder(lists.clone(), lens.clone(), Ordering::Identity);
        assert_eq!(l2, lists);
        assert_eq!(n2, lens);
    }

    #[test]
    fn random_is_a_permutation_preserving_content() {
        let (lists, lens) = toy_corpus();
        let (l2, n2) = reorder(lists.clone(), lens.clone(), Ordering::Random(7));
        assert_ne!(l2, lists, "seeded shuffle should move something");
        // Every list keeps its length; lengths multiset is preserved.
        for ((ta, la), (tb, lb)) in lists.iter().zip(&l2) {
            assert_eq!(ta, tb);
            assert_eq!(la.len(), lb.len());
        }
        let mut a = lens.clone();
        let mut b = n2.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn by_length_sorts_doc_lens() {
        let (lists, lens) = toy_corpus();
        let (_, n2) = reorder(lists, lens, Ordering::ByLength);
        assert!(n2.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn minhash_clusters_similar_documents() {
        let (lists, lens) = toy_corpus();
        let perm = permutation(&lists, &lens, Ordering::MinHash);
        // Docs {0,2,4} have identical term sets, as do {1,3,5}: each group
        // must land on consecutive new ids.
        let group_a: Vec<u32> = [0usize, 2, 4].iter().map(|&d| perm[d]).collect();
        let group_b: Vec<u32> = [1usize, 3, 5].iter().map(|&d| perm[d]).collect();
        let spread = |g: &[u32]| g.iter().max().unwrap() - g.iter().min().unwrap();
        assert_eq!(spread(&group_a), 2, "identical docs must be adjacent: {group_a:?}");
        assert_eq!(spread(&group_b), 2, "identical docs must be adjacent: {group_b:?}");
    }

    #[test]
    fn minhash_reorder_improves_compression_on_toy() {
        let (lists, lens) = toy_corpus();
        let ratio = |lists: Vec<(String, PostingList)>, lens: Vec<u32>| {
            InvertedIndex::from_lists(
                lists,
                lens,
                Partitioner::default(),
                Bm25Params::default(),
            )
            .unwrap()
            .size_stats()
            .model_bits
        };
        let before = ratio(lists.clone(), lens.clone());
        let (l2, n2) = reorder(lists, lens, Ordering::MinHash);
        let after = ratio(l2, n2);
        assert!(after <= before, "clustering must not hurt ({after} vs {before} bits)");
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn apply_rejects_duplicates() {
        let (lists, lens) = toy_corpus();
        let bad = vec![0u32; lens.len()];
        let _ = apply(lists, lens, &bad);
    }

    #[test]
    fn queries_survive_reordering() {
        let (lists, lens) = toy_corpus();
        let (l2, n2) = reorder(lists, lens, Ordering::MinHash);
        let index =
            InvertedIndex::from_lists(l2, n2, Partitioner::default(), Bm25Params::default())
                .unwrap();
        // "a AND b" still matches exactly three documents.
        let a = index.decode_term("a").unwrap();
        let b = index.decode_term("b").unwrap();
        let sa: std::collections::BTreeSet<u32> = a.doc_ids().into_iter().collect();
        let sb: std::collections::BTreeSet<u32> = b.doc_ids().into_iter().collect();
        assert_eq!(sa.intersection(&sb).count(), 3);
    }
}
